//! Concrete text syntax for regex formulas.
//!
//! The parser accepts a syntax close to ordinary regular expressions,
//! extended with variable captures:
//!
//! ```text
//! formula   := alt
//! alt       := seq ('|' seq)*
//! seq       := item*                        (empty seq = ε)
//! item      := atom ('*' | '+' | '?')*
//! atom      := literal байт
//!            | '.'                          any symbol
//!            | '[' class ']'                byte class, '[^...]' negated
//!            | '(' alt ')'                  grouping ('()' = ε)
//!            | '{' name ':' alt '}'         variable capture  name{α}
//!            | '\' escaped                  \n \t \r \d \w \s \a \l \u \xHH
//!                                           or an escaped metacharacter
//! ```
//!
//! `[]` denotes the empty formula `∅`. Whitespace is significant (a space
//! matches a space). The [`std::fmt::Display`] implementation of
//! [`Rgx`] prints this syntax back.

use crate::ast::Rgx;
use spanner_core::{ByteClass, SpannerError, SpannerResult};

/// Parses a regex formula from its concrete syntax.
pub fn parse(input: &str) -> SpannerResult<Rgx> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    let formula = p.parse_alt()?;
    if p.pos != p.bytes.len() {
        return Err(SpannerError::parse(
            format!("unexpected `{}`", p.peek().unwrap() as char),
            p.pos,
        ));
    }
    Ok(formula)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn expect(&mut self, b: u8) -> SpannerResult<()> {
        match self.peek() {
            Some(c) if c == b => {
                self.pos += 1;
                Ok(())
            }
            Some(c) => Err(SpannerError::parse(
                format!("expected `{}`, found `{}`", b as char, c as char),
                self.pos,
            )),
            None => Err(SpannerError::parse(
                format!("expected `{}`, found end of input", b as char),
                self.pos,
            )),
        }
    }

    fn parse_alt(&mut self) -> SpannerResult<Rgx> {
        let mut branches = vec![self.parse_seq()?];
        while self.peek() == Some(b'|') {
            self.bump();
            branches.push(self.parse_seq()?);
        }
        if branches.len() == 1 {
            Ok(branches.pop().unwrap())
        } else {
            Ok(Rgx::Union(branches))
        }
    }

    fn parse_seq(&mut self) -> SpannerResult<Rgx> {
        let mut items = Vec::new();
        while let Some(b) = self.peek() {
            if matches!(b, b'|' | b')' | b'}') {
                break;
            }
            items.push(self.parse_item()?);
        }
        Ok(Rgx::concat(items))
    }

    fn parse_item(&mut self) -> SpannerResult<Rgx> {
        let mut atom = self.parse_atom()?;
        loop {
            match self.peek() {
                Some(b'*') => {
                    self.bump();
                    atom = Rgx::star(atom);
                }
                Some(b'+') => {
                    self.bump();
                    atom = Rgx::plus(atom);
                }
                Some(b'?') => {
                    self.bump();
                    atom = Rgx::opt(atom);
                }
                _ => break,
            }
        }
        Ok(atom)
    }

    fn parse_atom(&mut self) -> SpannerResult<Rgx> {
        let start = self.pos;
        match self.bump() {
            None => Err(SpannerError::parse("unexpected end of input", start)),
            Some(b'(') => {
                if self.peek() == Some(b')') {
                    self.bump();
                    return Ok(Rgx::Epsilon);
                }
                let inner = self.parse_alt()?;
                self.expect(b')')?;
                Ok(inner)
            }
            Some(b'{') => self.parse_capture(),
            Some(b'[') => self.parse_class(),
            Some(b'.') => Ok(Rgx::any_symbol()),
            Some(b'\\') => Ok(Rgx::Class(self.parse_escape()?)),
            Some(b) if matches!(b, b'*' | b'+' | b'?' | b')' | b'}' | b']' | b'|') => Err(
                SpannerError::parse(format!("unexpected `{}`", b as char), start),
            ),
            Some(b) => Ok(Rgx::symbol(b)),
        }
    }

    fn parse_capture(&mut self) -> SpannerResult<Rgx> {
        let name_start = self.pos;
        let mut name = String::new();
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || b == b'_' {
                name.push(b as char);
                self.bump();
            } else {
                break;
            }
        }
        if name.is_empty() {
            return Err(SpannerError::parse(
                "expected a variable name after `{`",
                name_start,
            ));
        }
        self.expect(b':')?;
        let inner = self.parse_alt()?;
        self.expect(b'}')?;
        Ok(Rgx::capture(name, inner))
    }

    fn parse_class(&mut self) -> SpannerResult<Rgx> {
        // '[' already consumed.
        if self.peek() == Some(b']') {
            self.bump();
            return Ok(Rgx::Empty); // `[]` = ∅
        }
        let negated = if self.peek() == Some(b'^') {
            self.bump();
            true
        } else {
            false
        };
        let mut class = ByteClass::empty();
        loop {
            match self.peek() {
                None => {
                    return Err(SpannerError::parse(
                        "unterminated character class",
                        self.pos,
                    ))
                }
                Some(b']') => {
                    self.bump();
                    break;
                }
                Some(_) => {
                    let lo = self.parse_class_byte()?;
                    match lo {
                        ClassItem::Class(c) => class = class.union(&c),
                        ClassItem::Byte(lo) => {
                            if self.peek() == Some(b'-')
                                && self.bytes.get(self.pos + 1) != Some(&b']')
                            {
                                self.bump(); // '-'
                                match self.parse_class_byte()? {
                                    ClassItem::Byte(hi) => {
                                        class = class.union(&ByteClass::range(lo, hi))
                                    }
                                    ClassItem::Class(_) => {
                                        return Err(SpannerError::parse(
                                            "invalid range end in character class",
                                            self.pos,
                                        ))
                                    }
                                }
                            } else {
                                class.insert(lo);
                            }
                        }
                    }
                }
            }
        }
        let class = if negated { class.complement() } else { class };
        Ok(Rgx::Class(class))
    }

    fn parse_class_byte(&mut self) -> SpannerResult<ClassItem> {
        match self.bump() {
            None => Err(SpannerError::parse(
                "unterminated character class",
                self.pos,
            )),
            Some(b'\\') => Ok(ClassItem::from_escape(self.parse_escape()?)),
            Some(b) => Ok(ClassItem::Byte(b)),
        }
    }

    fn parse_escape(&mut self) -> SpannerResult<ByteClass> {
        let start = self.pos;
        match self.bump() {
            None => Err(SpannerError::parse("dangling escape", start)),
            Some(b'n') => Ok(ByteClass::single(b'\n')),
            Some(b't') => Ok(ByteClass::single(b'\t')),
            Some(b'r') => Ok(ByteClass::single(b'\r')),
            Some(b'd') => Ok(ByteClass::ascii_digit()),
            Some(b'w') => Ok(ByteClass::ascii_word()),
            Some(b's') => Ok(ByteClass::ascii_space()),
            Some(b'a') => Ok(ByteClass::ascii_alpha()),
            Some(b'l') => Ok(ByteClass::ascii_lower()),
            Some(b'u') => Ok(ByteClass::ascii_upper()),
            Some(b'x') => {
                let hi = self.bump();
                let lo = self.bump();
                match (hi, lo) {
                    (Some(hi), Some(lo)) => {
                        let hex = |c: u8| (c as char).to_digit(16);
                        match (hex(hi), hex(lo)) {
                            (Some(h), Some(l)) => Ok(ByteClass::single((h * 16 + l) as u8)),
                            _ => Err(SpannerError::parse("invalid \\x escape", start)),
                        }
                    }
                    _ => Err(SpannerError::parse("truncated \\x escape", start)),
                }
            }
            Some(b) => Ok(ByteClass::single(b)),
        }
    }
}

enum ClassItem {
    Byte(u8),
    Class(ByteClass),
}

impl ClassItem {
    fn from_escape(c: ByteClass) -> ClassItem {
        if c.len() == 1 {
            ClassItem::Byte(c.iter().next().unwrap())
        } else {
            ClassItem::Class(c)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::{is_functional, is_sequential};
    use crate::eval::reference_eval;
    use spanner_core::{Document, Span, VarSet};

    #[test]
    fn literals_and_grouping() {
        assert_eq!(parse("abc").unwrap(), Rgx::literal("abc"));
        assert_eq!(parse("").unwrap(), Rgx::Epsilon);
        assert_eq!(parse("()").unwrap(), Rgx::Epsilon);
        assert_eq!(parse("[]").unwrap(), Rgx::Empty);
        assert_eq!(parse("(a)").unwrap(), Rgx::symbol(b'a'));
    }

    #[test]
    fn postfix_operators() {
        assert_eq!(parse("a*").unwrap(), Rgx::star(Rgx::symbol(b'a')));
        assert_eq!(parse("a+").unwrap(), Rgx::plus(Rgx::symbol(b'a')));
        assert_eq!(parse("a?").unwrap(), Rgx::opt(Rgx::symbol(b'a')));
        // Double star is fine.
        assert_eq!(parse("a**").unwrap(), Rgx::star(Rgx::symbol(b'a')));
    }

    #[test]
    fn alternation_binds_weakest() {
        let r = parse("ab|cd").unwrap();
        assert_eq!(r, Rgx::Union(vec![Rgx::literal("ab"), Rgx::literal("cd")]));
    }

    #[test]
    fn captures() {
        let r = parse("{x:a+}b").unwrap();
        assert_eq!(r.vars(), VarSet::from_iter(["x"]));
        assert!(is_functional(&r));
        assert!(is_sequential(&r));

        let r = parse("{outer:a{inner:b}c}").unwrap();
        assert_eq!(r.vars(), VarSet::from_iter(["outer", "inner"]));
    }

    #[test]
    fn classes() {
        assert_eq!(parse("[abc]").unwrap(), Rgx::Class(ByteClass::of(b"abc")));
        assert_eq!(
            parse("[a-c0-2]").unwrap(),
            Rgx::Class(ByteClass::of(b"abc012"))
        );
        assert_eq!(
            parse("[^a]").unwrap(),
            Rgx::Class(ByteClass::single(b'a').complement())
        );
        assert_eq!(
            parse(r"[\d]").unwrap(),
            Rgx::Class(ByteClass::ascii_digit())
        );
        assert_eq!(parse(r"\w").unwrap(), Rgx::Class(ByteClass::ascii_word()));
        assert_eq!(parse("[a-]").unwrap(), Rgx::Class(ByteClass::of(b"a-")));
    }

    #[test]
    fn escapes() {
        assert_eq!(parse(r"\{").unwrap(), Rgx::symbol(b'{'));
        assert_eq!(parse(r"\\").unwrap(), Rgx::symbol(b'\\'));
        assert_eq!(parse(r"\x41").unwrap(), Rgx::symbol(b'A'));
        assert_eq!(parse(r"\n").unwrap(), Rgx::symbol(b'\n'));
    }

    #[test]
    fn errors() {
        assert!(parse("(a").is_err());
        assert!(parse("a)").is_err());
        assert!(parse("{x a}").is_err());
        assert!(parse("{:a}").is_err());
        assert!(parse("[a").is_err());
        assert!(parse("*a").is_err());
        assert!(parse(r"\x4").is_err());
    }

    #[test]
    fn end_to_end_extraction() {
        let alpha = parse(r".*{user:\l+}@{host:\l+(\.\l+)*}.*").unwrap();
        assert!(is_sequential(&alpha));
        let doc = Document::new("mail to bob@edu.ru now");
        let result = reference_eval(&alpha, &doc);
        // The maximal match binds user="bob" host="edu.ru".
        assert!(result.iter().any(|m| {
            doc.slice(m.get(&"user".into()).unwrap()) == "bob"
                && doc.slice(m.get(&"host".into()).unwrap()) == "edu.ru"
        }));
    }

    #[test]
    fn display_parse_round_trip() {
        for src in [
            "abc",
            "a|b|c",
            "(ab|c)*d",
            "{x:a+}(b|{y:c?})",
            r"[a-z]+@[a-z]+\.[a-z]+",
            "a b",
            r"\{escaped\}",
        ] {
            let first = parse(src).unwrap();
            let printed = format!("{first}");
            let second = parse(&printed)
                .unwrap_or_else(|e| panic!("re-parsing {printed:?} (from {src:?}) failed: {e}"));
            // Compare semantics on a small document rather than ASTs (the
            // printer may introduce harmless structural changes).
            let doc = Document::new("ab cab");
            assert_eq!(
                reference_eval(&first, &doc),
                reference_eval(&second, &doc),
                "round trip changed semantics for {src:?} -> {printed:?}"
            );
        }
    }

    #[test]
    fn capture_span_positions() {
        let alpha = parse("a{x:b}c").unwrap();
        let doc = Document::new("abc");
        let result = reference_eval(&alpha, &doc);
        assert_eq!(result.len(), 1);
        assert_eq!(
            result.iter().next().unwrap().get(&"x".into()),
            Some(Span::new(2, 3))
        );
    }
}
