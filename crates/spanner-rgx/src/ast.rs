//! Abstract syntax of regex formulas.

use spanner_core::{ByteClass, VarSet, Variable};
use std::fmt;

/// A regex formula, following the grammar of Section 2.2:
///
/// ```text
/// α := ∅ | ε | σ | (α ∨ α) | (α · α) | α* | x{α}
/// ```
///
/// Two engineering liberties are taken, neither of which changes
/// expressiveness or any of the paper's syntactic classes:
///
/// * union and concatenation are n-ary (a binary tree is a special case);
/// * the symbol case `σ` is generalized to a [`ByteClass`] (a set of symbols),
///   which is shorthand for the disjunction of its members.
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum Rgx {
    /// `∅` — matches nothing.
    Empty,
    /// `ε` — matches the empty string.
    Epsilon,
    /// A set of symbols; matches any single symbol of the class.
    Class(ByteClass),
    /// Concatenation `α₁ · α₂ ⋯ αₙ`.
    Concat(Vec<Rgx>),
    /// Disjunction `α₁ ∨ α₂ ⋯ ∨ αₙ`.
    Union(Vec<Rgx>),
    /// Kleene star `α*`.
    Star(Box<Rgx>),
    /// Variable capture `x{α}`.
    Capture(Variable, Box<Rgx>),
}

impl Rgx {
    /// The formula matching a single symbol.
    pub fn symbol(b: u8) -> Rgx {
        Rgx::Class(ByteClass::single(b))
    }

    /// The formula matching exactly the literal string `s`.
    pub fn literal(s: &str) -> Rgx {
        match s.len() {
            0 => Rgx::Epsilon,
            1 => Rgx::symbol(s.as_bytes()[0]),
            _ => Rgx::Concat(s.bytes().map(Rgx::symbol).collect()),
        }
    }

    /// The formula matching any single symbol (`Σ` / the `.` wildcard).
    pub fn any_symbol() -> Rgx {
        Rgx::Class(ByteClass::any())
    }

    /// `Σ*`: matches any string.
    pub fn any_string() -> Rgx {
        Rgx::Star(Box::new(Rgx::any_symbol()))
    }

    /// Concatenation of the given formulas (flattens nested concatenations).
    pub fn concat(parts: impl IntoIterator<Item = Rgx>) -> Rgx {
        let mut flat = Vec::new();
        for p in parts {
            match p {
                Rgx::Concat(inner) => flat.extend(inner),
                Rgx::Epsilon => {}
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => Rgx::Epsilon,
            1 => flat.pop().unwrap(),
            _ => Rgx::Concat(flat),
        }
    }

    /// Disjunction of the given formulas (flattens nested unions).
    pub fn union(parts: impl IntoIterator<Item = Rgx>) -> Rgx {
        let mut flat = Vec::new();
        for p in parts {
            match p {
                Rgx::Union(inner) => flat.extend(inner),
                Rgx::Empty => {}
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => Rgx::Empty,
            1 => flat.pop().unwrap(),
            _ => Rgx::Union(flat),
        }
    }

    /// Kleene star `α*`.
    pub fn star(inner: Rgx) -> Rgx {
        match inner {
            Rgx::Empty | Rgx::Epsilon => Rgx::Epsilon,
            Rgx::Star(s) => Rgx::Star(s),
            other => Rgx::Star(Box::new(other)),
        }
    }

    /// `α+ = α · α*`.
    pub fn plus(inner: Rgx) -> Rgx {
        Rgx::concat([inner.clone(), Rgx::star(inner)])
    }

    /// `α? = ε ∨ α`.
    pub fn opt(inner: Rgx) -> Rgx {
        Rgx::Union(vec![Rgx::Epsilon, inner])
    }

    /// Variable capture `x{α}`.
    pub fn capture(var: impl Into<Variable>, inner: Rgx) -> Rgx {
        Rgx::Capture(var.into(), Box::new(inner))
    }

    /// The set `Vars(α)` of variables syntactically occurring in the formula.
    pub fn vars(&self) -> VarSet {
        let mut out = VarSet::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut VarSet) {
        match self {
            Rgx::Empty | Rgx::Epsilon | Rgx::Class(_) => {}
            Rgx::Concat(parts) | Rgx::Union(parts) => {
                for p in parts {
                    p.collect_vars(out);
                }
            }
            Rgx::Star(inner) => inner.collect_vars(out),
            Rgx::Capture(v, inner) => {
                out.insert(v.clone());
                inner.collect_vars(out);
            }
        }
    }

    /// Number of AST nodes (a simple size measure used in experiments).
    pub fn size(&self) -> usize {
        match self {
            Rgx::Empty | Rgx::Epsilon | Rgx::Class(_) => 1,
            Rgx::Concat(parts) | Rgx::Union(parts) => {
                1 + parts.iter().map(Rgx::size).sum::<usize>()
            }
            Rgx::Star(inner) => 1 + inner.size(),
            Rgx::Capture(_, inner) => 1 + inner.size(),
        }
    }

    /// Applies `f` to every subformula (pre-order), including `self`.
    pub fn visit<'a>(&'a self, f: &mut impl FnMut(&'a Rgx)) {
        f(self);
        match self {
            Rgx::Empty | Rgx::Epsilon | Rgx::Class(_) => {}
            Rgx::Concat(parts) | Rgx::Union(parts) => {
                for p in parts {
                    p.visit(f);
                }
            }
            Rgx::Star(inner) | Rgx::Capture(_, inner) => inner.visit(f),
        }
    }
}

/// Renders a byte for inclusion in the concrete syntax.
fn escape_byte(b: u8, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    match b {
        b'(' | b')' | b'{' | b'}' | b'[' | b']' | b'*' | b'+' | b'?' | b'|' | b'.' | b'\\'
        | b':' => write!(f, "\\{}", b as char),
        b'\n' => write!(f, "\\n"),
        b'\t' => write!(f, "\\t"),
        b'\r' => write!(f, "\\r"),
        _ if b.is_ascii_graphic() || b == b' ' => write!(f, "{}", b as char),
        _ => write!(f, "\\x{b:02x}"),
    }
}

impl fmt::Display for Rgx {
    /// Prints the formula in the concrete syntax accepted by
    /// [`crate::parser::parse`] (round-trips for parser-produced formulas).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rgx::Empty => write!(f, "[]"),
            Rgx::Epsilon => write!(f, "()"),
            Rgx::Class(c) if *c == ByteClass::any() => write!(f, "."),
            Rgx::Class(c) if c.len() == 1 => escape_byte(c.iter().next().unwrap(), f),
            Rgx::Class(c) => write!(f, "{c:?}"),
            Rgx::Concat(parts) => {
                for p in parts {
                    match p {
                        Rgx::Union(_) => write!(f, "({p})")?,
                        _ => write!(f, "{p}")?,
                    }
                }
                Ok(())
            }
            Rgx::Union(parts) => {
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        write!(f, "|")?;
                    }
                    write!(f, "{p}")?;
                }
                Ok(())
            }
            Rgx::Star(inner) => match **inner {
                Rgx::Class(_) | Rgx::Epsilon | Rgx::Empty | Rgx::Capture(..) => {
                    write!(f, "{inner}*")
                }
                _ => write!(f, "({inner})*"),
            },
            Rgx::Capture(v, inner) => write!(f, "{{{v}:{inner}}}"),
        }
    }
}

impl fmt::Debug for Rgx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Rgx({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_normalize() {
        assert_eq!(Rgx::concat([]), Rgx::Epsilon);
        assert_eq!(Rgx::union([]), Rgx::Empty);
        assert_eq!(Rgx::concat([Rgx::symbol(b'a')]), Rgx::symbol(b'a'));
        // Nested concatenations flatten.
        let r = Rgx::concat([
            Rgx::concat([Rgx::symbol(b'a'), Rgx::symbol(b'b')]),
            Rgx::symbol(b'c'),
        ]);
        assert!(matches!(&r, Rgx::Concat(parts) if parts.len() == 3));
        // ∅ disappears from unions, ε from concatenations.
        assert_eq!(
            Rgx::union([Rgx::Empty, Rgx::symbol(b'a')]),
            Rgx::symbol(b'a')
        );
        assert_eq!(
            Rgx::concat([Rgx::Epsilon, Rgx::symbol(b'a')]),
            Rgx::symbol(b'a')
        );
        // (α*)* = α*, ∅* = ε* = ε.
        assert_eq!(
            Rgx::star(Rgx::star(Rgx::symbol(b'a'))),
            Rgx::star(Rgx::symbol(b'a'))
        );
        assert_eq!(Rgx::star(Rgx::Empty), Rgx::Epsilon);
    }

    #[test]
    fn vars_collects_all_occurrences() {
        let r = Rgx::concat([
            Rgx::capture("x", Rgx::any_string()),
            Rgx::union([
                Rgx::capture("y", Rgx::Epsilon),
                Rgx::capture("z", Rgx::Epsilon),
            ]),
        ]);
        assert_eq!(r.vars(), VarSet::from_iter(["x", "y", "z"]));
        assert!(Rgx::any_string().vars().is_empty());
    }

    #[test]
    fn literal_builder() {
        assert_eq!(Rgx::literal(""), Rgx::Epsilon);
        assert_eq!(Rgx::literal("a"), Rgx::symbol(b'a'));
        let ab = Rgx::literal("ab");
        assert!(matches!(&ab, Rgx::Concat(p) if p.len() == 2));
    }

    #[test]
    fn size_counts_nodes() {
        let r = Rgx::capture("x", Rgx::concat([Rgx::symbol(b'a'), Rgx::symbol(b'b')]));
        // capture + concat + 2 symbols
        assert_eq!(r.size(), 4);
    }

    #[test]
    fn display_round_trip_shapes() {
        let r = Rgx::concat([
            Rgx::literal("ab"),
            Rgx::capture("x", Rgx::plus(Rgx::Class(ByteClass::ascii_digit()))),
            Rgx::opt(Rgx::symbol(b'!')),
        ]);
        let s = format!("{r}");
        assert!(s.contains("{x:"), "display was {s}");
        assert!(s.starts_with("ab"), "display was {s}");
    }

    #[test]
    fn visit_enumerates_subformulas() {
        let r = Rgx::union([Rgx::symbol(b'a'), Rgx::capture("x", Rgx::symbol(b'b'))]);
        let mut count = 0;
        r.visit(&mut |_| count += 1);
        assert_eq!(count, 4);
    }
}
