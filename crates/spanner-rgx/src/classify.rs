//! Syntactic classes of regex formulas.
//!
//! The paper studies several syntactic restrictions of regex formulas:
//!
//! * **functional** (`funcRGX`, Fagin et al.): every parse tree contains
//!   exactly one occurrence of every variable — these are the schema-based
//!   spanners;
//! * **sequential** (`seqRGX`, Maturana et al.): every parse tree contains at
//!   most one occurrence of every variable — the schemaless spanners;
//! * **disjunctive functional** (`dfuncRGX`, Section 3.2): a disjunction of
//!   functional formulas;
//! * **synchronized for a set X** (Section 4.2): no variable of X occurs
//!   under a disjunction;
//! * **disjunction-free** (Proposition 4.10): no `∨` at all.
//!
//! The containments are `funcRGX ⊊ dfuncRGX ⊊ seqRGX` (Section 3.2).

use crate::ast::Rgx;
use spanner_core::{VarSet, Variable};

/// Checks whether `alpha` is *sequential* (Section 2.2):
///
/// * every sub-formula `α₁ · α₂` satisfies `Vars(α₁) ∩ Vars(α₂) = ∅`;
/// * every sub-formula `α*` satisfies `Vars(α) = ∅`;
/// * every sub-formula `x{α}` satisfies `x ∉ Vars(α)`.
pub fn is_sequential(alpha: &Rgx) -> bool {
    fn rec(alpha: &Rgx) -> Option<VarSet> {
        match alpha {
            Rgx::Empty | Rgx::Epsilon | Rgx::Class(_) => Some(VarSet::new()),
            Rgx::Concat(parts) => {
                let mut seen = VarSet::new();
                for p in parts {
                    let vs = rec(p)?;
                    if !seen.is_disjoint(&vs) {
                        return None;
                    }
                    seen = seen.union(&vs);
                }
                Some(seen)
            }
            Rgx::Union(parts) => {
                let mut all = VarSet::new();
                for p in parts {
                    all = all.union(&rec(p)?);
                }
                Some(all)
            }
            Rgx::Star(inner) => {
                let vs = rec(inner)?;
                if vs.is_empty() {
                    Some(vs)
                } else {
                    None
                }
            }
            Rgx::Capture(v, inner) => {
                let vs = rec(inner)?;
                if vs.contains(v) {
                    None
                } else {
                    let mut out = vs;
                    out.insert(v.clone());
                    Some(out)
                }
            }
        }
    }
    rec(alpha).is_some()
}

/// Checks whether `alpha` is *functional for* the variable set `vars`
/// (the inductive definition of Section 2.2).
pub fn is_functional_for(alpha: &Rgx, vars: &VarSet) -> bool {
    match alpha {
        Rgx::Empty | Rgx::Epsilon | Rgx::Class(_) => vars.is_empty(),
        Rgx::Union(parts) => parts.iter().all(|p| is_functional_for(p, vars)),
        Rgx::Concat(parts) => {
            // The split V₁ ⊎ V₂ ⊎ ⋯ is forced: part i can only be functional
            // for a subset of its own variables, so Vᵢ = Vars(αᵢ) ∩ V, and the
            // Vᵢ must be pairwise disjoint and cover V.
            let mut covered = VarSet::new();
            for p in parts {
                let vi = p.vars().intersection(vars);
                if !covered.is_disjoint(&vi) {
                    return false;
                }
                if !is_functional_for(p, &vi) {
                    return false;
                }
                covered = covered.union(&vi);
            }
            covered == *vars
        }
        Rgx::Star(inner) => vars.is_empty() && is_functional_for(inner, &VarSet::new()),
        Rgx::Capture(v, inner) => {
            if !vars.contains(v) {
                return false;
            }
            let mut rest = vars.clone();
            rest.remove(v);
            is_functional_for(inner, &rest)
        }
    }
}

/// Checks whether `alpha` is *functional*: functional for `Vars(alpha)`.
///
/// Every functional formula is sequential (Maturana et al.).
pub fn is_functional(alpha: &Rgx) -> bool {
    is_functional_for(alpha, &alpha.vars())
}

/// Checks whether `alpha` is *disjunctive functional*: a finite disjunction
/// of functional regex formulas (a single functional formula counts, as a
/// disjunction with one disjunct).
pub fn is_disjunctive_functional(alpha: &Rgx) -> bool {
    match alpha {
        Rgx::Union(parts) => parts.iter().all(is_functional),
        other => is_functional(other),
    }
}

/// Checks whether `alpha` is *synchronized for* the variable `x`
/// (Section 4.2): no sub-formula `α₁ ∨ α₂` mentions `x` in either operand.
pub fn is_synchronized_for_var(alpha: &Rgx, x: &Variable) -> bool {
    let mut ok = true;
    alpha.visit(&mut |sub| {
        if let Rgx::Union(parts) = sub {
            if parts.iter().any(|p| p.vars().contains(x)) {
                ok = false;
            }
        }
    });
    ok
}

/// Checks whether `alpha` is synchronized for every variable in `vars`.
pub fn is_synchronized_for(alpha: &Rgx, vars: &VarSet) -> bool {
    vars.iter().all(|x| is_synchronized_for_var(alpha, x))
}

/// Checks whether `alpha` contains no disjunction at all
/// (the restriction of Proposition 4.10).
pub fn is_disjunction_free(alpha: &Rgx) -> bool {
    let mut ok = true;
    alpha.visit(&mut |sub| {
        if matches!(sub, Rgx::Union(_)) {
            ok = false;
        }
    });
    ok
}

/// A summary of the syntactic classes a formula belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RgxClass {
    /// `funcRGX` membership.
    pub functional: bool,
    /// `seqRGX` membership.
    pub sequential: bool,
    /// `dfuncRGX` membership.
    pub disjunctive_functional: bool,
    /// No `∨` anywhere.
    pub disjunction_free: bool,
    /// Synchronized for all of its own variables.
    pub synchronized: bool,
}

impl RgxClass {
    /// Classifies a formula.
    pub fn of(alpha: &Rgx) -> RgxClass {
        RgxClass {
            functional: is_functional(alpha),
            sequential: is_sequential(alpha),
            disjunctive_functional: is_disjunctive_functional(alpha),
            disjunction_free: is_disjunction_free(alpha),
            synchronized: is_synchronized_for(alpha, &alpha.vars()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spanner_core::ByteClass;

    fn sym(b: u8) -> Rgx {
        Rgx::symbol(b)
    }

    /// The paper's Example 2.2 name extractor:
    /// `(xfirst{δ} ␣ xlast{δ}) ∨ (xlast{δ})` — sequential but not functional.
    fn alpha_name() -> Rgx {
        let delta = Rgx::concat([
            Rgx::Class(ByteClass::ascii_upper()),
            Rgx::star(Rgx::Class(ByteClass::ascii_lower())),
        ]);
        Rgx::union([
            Rgx::concat([
                Rgx::capture("xfirst", delta.clone()),
                sym(b' '),
                Rgx::capture("xlast", delta.clone()),
            ]),
            Rgx::capture("xlast", delta),
        ])
    }

    #[test]
    fn functional_formulas() {
        // x{a*}·y{b} is functional.
        let f = Rgx::concat([
            Rgx::capture("x", Rgx::star(sym(b'a'))),
            Rgx::capture("y", sym(b'b')),
        ]);
        assert!(is_functional(&f));
        assert!(is_sequential(&f));
        assert!(is_disjunctive_functional(&f));

        // Variable-free formulas are functional.
        assert!(is_functional(&Rgx::any_string()));

        // A variable under a star is not functional (and not sequential).
        let bad = Rgx::star(Rgx::capture("x", sym(b'a')));
        assert!(!is_functional(&bad));
        assert!(!is_sequential(&bad));

        // A variable missing from one disjunct is not functional.
        assert!(!is_functional(&alpha_name()));
        assert!(is_sequential(&alpha_name()));
    }

    #[test]
    fn functional_requires_single_occurrence() {
        // x{a}·x{a}: the same variable twice in a concatenation.
        let twice = Rgx::concat([Rgx::capture("x", sym(b'a')), Rgx::capture("x", sym(b'a'))]);
        assert!(!is_functional(&twice));
        assert!(!is_sequential(&twice));

        // Nested re-capture x{x{a}}.
        let nested = Rgx::capture("x", Rgx::capture("x", sym(b'a')));
        assert!(!is_functional(&nested));
        assert!(!is_sequential(&nested));
    }

    #[test]
    fn sequential_but_not_disjunctive_functional() {
        // The paper's Section 3.2 example: z{Σ*}·(x{Σ*} ∨ y{Σ*}).
        let r = Rgx::concat([
            Rgx::capture("z", Rgx::any_string()),
            Rgx::union([
                Rgx::capture("x", Rgx::any_string()),
                Rgx::capture("y", Rgx::any_string()),
            ]),
        ]);
        assert!(is_sequential(&r));
        assert!(!is_disjunctive_functional(&r));
        assert!(!is_functional(&r));
    }

    #[test]
    fn disjunctive_functional_examples() {
        // (x{a}·y{b}) ∨ (x{b}·y{a}) — disjunction of functional formulas.
        let df = Rgx::union([
            Rgx::concat([Rgx::capture("x", sym(b'a')), Rgx::capture("y", sym(b'b'))]),
            Rgx::concat([Rgx::capture("x", sym(b'b')), Rgx::capture("y", sym(b'a'))]),
        ]);
        assert!(is_disjunctive_functional(&df));
        // Both disjuncts bind exactly {x, y}, so the union is functional too.
        assert!(is_functional(&df));
    }

    #[test]
    fn dfunc_with_unequal_disjunct_vars() {
        // (x{a}) ∨ (y{a}) is disjunctive functional but not functional.
        let df = Rgx::union([Rgx::capture("x", sym(b'a')), Rgx::capture("y", sym(b'a'))]);
        assert!(is_disjunctive_functional(&df));
        assert!(!is_functional(&df));
        assert!(is_sequential(&df));
    }

    #[test]
    fn functional_union_with_equal_vars() {
        // A union whose disjuncts bind the same variables *is* functional.
        let f = Rgx::union([
            Rgx::concat([Rgx::capture("x", sym(b'a')), sym(b'a')]),
            Rgx::capture("x", sym(b'b')),
        ]);
        assert!(is_functional(&f));
    }

    #[test]
    fn synchronized_classification() {
        // (x{Σ*} ∨ ε)·y{Σ*} — Example 4.5: synchronized for y, not for x.
        let r = Rgx::concat([
            Rgx::union([Rgx::capture("x", Rgx::any_string()), Rgx::Epsilon]),
            Rgx::capture("y", Rgx::any_string()),
        ]);
        assert!(is_synchronized_for_var(&r, &"y".into()));
        assert!(!is_synchronized_for_var(&r, &"x".into()));
        assert!(is_synchronized_for(&r, &VarSet::from_iter(["y"])));
        assert!(!is_synchronized_for(&r, &VarSet::from_iter(["x", "y"])));
        // Synchronization for variables not occurring at all is trivially true.
        assert!(is_synchronized_for_var(&r, &"unused".into()));
    }

    #[test]
    fn disjunction_free_classification() {
        let r = Rgx::concat([Rgx::capture("x", Rgx::star(sym(b'a'))), sym(b'b')]);
        assert!(is_disjunction_free(&r));
        assert!(!is_disjunction_free(&Rgx::opt(sym(b'a'))));
    }

    #[test]
    fn class_summary() {
        let c = RgxClass::of(&alpha_name());
        assert!(c.sequential);
        assert!(!c.functional);
        assert!(c.disjunctive_functional);
        assert!(!c.disjunction_free);
        assert!(!c.synchronized);
    }

    #[test]
    fn containment_chain_funcrgx_dfuncrgx_seqrgx() {
        // Every functional formula is disjunctive functional; every
        // disjunctive functional formula is sequential. Spot-check on a
        // handful of formulas.
        let formulas = vec![
            Rgx::capture("x", Rgx::any_string()),
            alpha_name(),
            Rgx::union([Rgx::capture("x", sym(b'a')), Rgx::capture("y", sym(b'b'))]),
            Rgx::concat([
                Rgx::capture("z", Rgx::any_string()),
                Rgx::union([
                    Rgx::capture("x", Rgx::any_string()),
                    Rgx::capture("y", Rgx::any_string()),
                ]),
            ]),
        ];
        for f in &formulas {
            if is_functional(f) {
                assert!(is_disjunctive_functional(f), "func ⊆ dfunc failed on {f}");
            }
            if is_disjunctive_functional(f) {
                assert!(is_sequential(f), "dfunc ⊆ seq failed on {f}");
            }
        }
    }
}
