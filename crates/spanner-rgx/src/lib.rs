//! Regex formulas: regular expressions with capture variables.
//!
//! This crate implements the `RGX` representation language of Section 2.2 of
//! *Complexity Bounds for Relational Algebra over Document Spanners*
//! (PODS 2019): the abstract syntax, a concrete text syntax with a parser,
//! the syntactic classes studied in the paper (functional, sequential,
//! disjunctive functional, synchronized, disjunction-free), the schemaless
//! evaluation semantics `[α](d)` / `VαW(d)` as a reference evaluator, and the
//! sequential → disjunctive-functional rewriting of Proposition 3.9.
//!
//! The reference evaluator is intentionally naive (worst-case exponential):
//! its job is to be *obviously correct* so that the compiled evaluation
//! pipelines in `spanner-vset`, `spanner-enum` and `spanner-algebra` can be
//! validated against it.
//!
//! # Example
//!
//! ```
//! use spanner_core::Document;
//! use spanner_rgx::{parse, reference_eval};
//!
//! // Extract "key=value" pairs: the schemaless spanner binds `val` only
//! // when a value is present.
//! let alpha = parse(r".* {key:\w+}(={val:\w+})? .*").unwrap();
//! let doc = Document::new(" color=red  verbose ");
//! let result = reference_eval(&alpha, &doc);
//! assert!(result.iter().any(|m| doc.slice(m.get(&"key".into()).unwrap()) == "verbose"
//!     && m.get(&"val".into()).is_none()));
//! assert!(result.iter().any(|m| m.get(&"val".into()).map(|s| doc.slice(s)) == Some("red")));
//! ```

pub mod ast;
pub mod classify;
pub mod eval;
pub mod parser;
pub mod rewrite;

pub use ast::Rgx;
pub use classify::{
    is_disjunction_free, is_disjunctive_functional, is_functional, is_sequential,
    is_synchronized_for, RgxClass,
};
pub use eval::{reference_eval, reference_eval_spans};
pub use parser::parse;
pub use rewrite::{to_disjunctive_functional, DEFAULT_DISJUNCT_LIMIT};
