//! Reference (oracle) evaluation of regex formulas.
//!
//! Implements the schemaless semantics `[α](d)` of Section 2.2 by structural
//! recursion, exactly as written in the paper. The result of a sub-formula is
//! a set of pairs `(span, mapping)`; the result of the whole formula on `d`
//! is `VαW(d) = { µ | ([1, |d|+1⟩, µ) ∈ [α](d) }`.
//!
//! This evaluator is exponential in the worst case (it materializes every
//! intermediate pair) and exists to be a trustworthy oracle for the compiled
//! evaluation pipelines. Use `spanner-enum` / `spanner-algebra` for real
//! workloads.

use crate::ast::Rgx;
use spanner_core::{Document, Mapping, MappingSet, Span};
use std::collections::BTreeSet;

/// A set of `(span, mapping)` pairs — the denotation `[α](d)` of a
/// sub-formula.
pub type SpanMappingSet = BTreeSet<(Span, Mapping)>;

/// Computes `[α](d)`: all pairs `(s, µ)` where `s` is a span of `d` matched
/// by `α` and `µ` is the mapping produced by the captures along that match.
pub fn reference_eval_spans(alpha: &Rgx, doc: &Document) -> SpanMappingSet {
    let n = doc.len() as u32;
    match alpha {
        Rgx::Empty => BTreeSet::new(),
        Rgx::Epsilon => (1..=n + 1)
            .map(|i| (Span::empty(i), Mapping::new()))
            .collect(),
        Rgx::Class(c) => (1..=n)
            .filter(|&i| c.contains(doc.symbol_at(i).expect("position in range")))
            .map(|i| (Span::new(i, i + 1), Mapping::new()))
            .collect(),
        Rgx::Capture(x, inner) => reference_eval_spans(inner, doc)
            .into_iter()
            .filter(|(_, mu)| !mu.contains(x))
            .map(|(s, mut mu)| {
                mu.insert(x.clone(), s);
                (s, mu)
            })
            .collect(),
        Rgx::Union(parts) => {
            let mut out = BTreeSet::new();
            for p in parts {
                out.extend(reference_eval_spans(p, doc));
            }
            out
        }
        Rgx::Concat(parts) => {
            let mut acc: SpanMappingSet = (1..=n + 1)
                .map(|i| (Span::empty(i), Mapping::new()))
                .collect();
            for p in parts {
                let rhs = reference_eval_spans(p, doc);
                acc = concat_sets(&acc, &rhs);
                if acc.is_empty() {
                    break;
                }
            }
            acc
        }
        Rgx::Star(inner) => {
            let base = reference_eval_spans(inner, doc);
            // [α*](d) = ⋃_{i≥0} [αⁱ](d); compute the fixpoint.
            let mut result: SpanMappingSet = (1..=n + 1)
                .map(|i| (Span::empty(i), Mapping::new()))
                .collect();
            loop {
                let extended = concat_sets(&result, &base);
                let before = result.len();
                result.extend(extended);
                if result.len() == before {
                    break;
                }
            }
            result
        }
    }
}

/// The concatenation rule of the semantics: pairs `([i, i'⟩, µ₁)` from the
/// left and `([i', j⟩, µ₂)` from the right with **disjoint** mapping domains
/// combine into `([i, j⟩, µ₁ ∪ µ₂)`.
fn concat_sets(lhs: &SpanMappingSet, rhs: &SpanMappingSet) -> SpanMappingSet {
    let mut out = BTreeSet::new();
    for (s1, m1) in lhs {
        for (s2, m2) in rhs {
            if s1.end != s2.start {
                continue;
            }
            if !m1.domain().is_disjoint(&m2.domain()) {
                continue;
            }
            let merged = m1
                .union(m2)
                .expect("disjoint-domain mappings are always compatible");
            out.insert((Span::new(s1.start, s2.end), merged));
        }
    }
    out
}

/// Computes `VαW(d)`: the mappings of full-document matches.
pub fn reference_eval(alpha: &Rgx, doc: &Document) -> MappingSet {
    let full = doc.full_span();
    reference_eval_spans(alpha, doc)
        .into_iter()
        .filter(|(s, _)| *s == full)
        .map(|(_, mu)| mu)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use spanner_core::{ByteClass, VarSet};

    fn doc(s: &str) -> Document {
        Document::new(s)
    }

    fn sym(b: u8) -> Rgx {
        Rgx::symbol(b)
    }

    #[test]
    fn epsilon_and_symbols() {
        let d = doc("ab");
        let eps = reference_eval_spans(&Rgx::Epsilon, &d);
        assert_eq!(eps.len(), 3); // positions 1, 2, 3

        let a = reference_eval_spans(&sym(b'a'), &d);
        assert_eq!(a.len(), 1);
        assert!(a.contains(&(Span::new(1, 2), Mapping::new())));

        assert!(reference_eval_spans(&Rgx::Empty, &d).is_empty());
    }

    #[test]
    fn full_document_semantics() {
        // VaW("a") = { {} }, VaW("b") = ∅.
        assert_eq!(reference_eval(&sym(b'a'), &doc("a")).len(), 1);
        assert!(reference_eval(&sym(b'a'), &doc("b")).is_empty());
        // ε only matches the empty document in full.
        assert_eq!(reference_eval(&Rgx::Epsilon, &doc("")).len(), 1);
        assert!(reference_eval(&Rgx::Epsilon, &doc("a")).is_empty());
    }

    #[test]
    fn capture_binds_the_matched_span() {
        // Σ* x{a*} Σ* on "baab"
        let alpha = Rgx::concat([
            Rgx::any_string(),
            Rgx::capture("x", Rgx::star(sym(b'a'))),
            Rgx::any_string(),
        ]);
        let d = doc("baab");
        let result = reference_eval(&alpha, &d);
        // x can be any span consisting only of a's (including all empty spans).
        let expected_spans: Vec<Span> =
            result.iter().map(|m| m.get(&"x".into()).unwrap()).collect();
        assert!(expected_spans.contains(&Span::new(2, 4))); // "aa"
        assert!(expected_spans.contains(&Span::new(2, 3))); // "a"
        assert!(expected_spans.contains(&Span::empty(1)));
        // every bound span must cover only 'a's
        for s in expected_spans {
            assert!(d.slice(s).bytes().all(|b| b == b'a'));
        }
        // 5 empty spans + "a"@2, "a"@3, "aa" = 8 mappings
        assert_eq!(result.len(), 8);
    }

    #[test]
    fn union_produces_schemaless_results() {
        // (x{a}b) ∨ (a y{b}) on "ab": two mappings with different domains.
        let alpha = Rgx::union([
            Rgx::concat([Rgx::capture("x", sym(b'a')), sym(b'b')]),
            Rgx::concat([sym(b'a'), Rgx::capture("y", sym(b'b'))]),
        ]);
        let result = reference_eval(&alpha, &doc("ab"));
        assert_eq!(result.len(), 2);
        let domains: Vec<VarSet> = result.iter().map(|m| m.domain()).collect();
        assert!(domains.contains(&VarSet::from_iter(["x"])));
        assert!(domains.contains(&VarSet::from_iter(["y"])));
    }

    #[test]
    fn optional_capture() {
        // a (x{b})? on "a" and on "ab"
        let alpha = Rgx::concat([sym(b'a'), Rgx::opt(Rgx::capture("x", sym(b'b')))]);
        let r1 = reference_eval(&alpha, &doc("a"));
        assert_eq!(r1.len(), 1);
        assert!(r1.iter().next().unwrap().is_empty());
        let r2 = reference_eval(&alpha, &doc("ab"));
        assert_eq!(r2.len(), 1);
        assert_eq!(
            r2.iter().next().unwrap().get(&"x".into()),
            Some(Span::new(2, 3))
        );
    }

    #[test]
    fn capture_requires_fresh_variable() {
        // x{x{a}} produces nothing: the inner pair already has x in its domain.
        let alpha = Rgx::capture("x", Rgx::capture("x", sym(b'a')));
        assert!(reference_eval(&alpha, &doc("a")).is_empty());
    }

    #[test]
    fn star_with_variables_follows_the_grammar() {
        // (x{a})* is not sequential, but the semantics is still defined:
        // iterating twice would need x twice with disjoint domains, which is
        // impossible, so on "aa" there is no full match; on "a" there is one.
        let alpha = Rgx::star(Rgx::capture("x", sym(b'a')));
        assert_eq!(reference_eval(&alpha, &doc("a")).len(), 1);
        assert!(reference_eval(&alpha, &doc("aa")).is_empty());
        // The empty document matches with the empty mapping (zero iterations).
        assert_eq!(reference_eval(&alpha, &doc("")).len(), 1);
    }

    #[test]
    fn digits_class() {
        let alpha = Rgx::concat([
            Rgx::capture("num", Rgx::plus(Rgx::Class(ByteClass::ascii_digit()))),
            Rgx::any_string(),
        ]);
        let d = doc("42x");
        let result = reference_eval(&alpha, &d);
        let spans: BTreeSet<Span> = result
            .iter()
            .map(|m| m.get(&"num".into()).unwrap())
            .collect();
        assert_eq!(spans, BTreeSet::from([Span::new(1, 2), Span::new(1, 3)]));
    }

    #[test]
    fn paper_example_2_2_style_optional_fields() {
        // A simplified αinfo: name, optional phone, mail.
        let word = Rgx::plus(Rgx::Class(ByteClass::ascii_lower()));
        let digits = Rgx::plus(Rgx::Class(ByteClass::ascii_digit()));
        let alpha = Rgx::concat([
            Rgx::capture("name", word.clone()),
            sym(b' '),
            Rgx::union([
                Rgx::concat([Rgx::capture("phone", digits), sym(b' ')]),
                Rgx::Epsilon,
            ]),
            Rgx::capture("mail", word),
        ]);
        // With phone
        let d1 = doc("bob 123 inbox");
        let r1 = reference_eval(&alpha, &d1);
        assert_eq!(r1.len(), 1);
        let m1 = r1.iter().next().unwrap();
        assert_eq!(d1.slice(m1.get(&"phone".into()).unwrap()), "123");
        assert_eq!(d1.slice(m1.get(&"mail".into()).unwrap()), "inbox");
        // Without phone
        let d2 = doc("bob inbox");
        let r2 = reference_eval(&alpha, &d2);
        assert_eq!(r2.len(), 1);
        assert!(!r2.iter().next().unwrap().contains(&"phone".into()));
    }
}
