//! Sequential → disjunctive-functional rewriting (Proposition 3.9).
//!
//! Every sequential regex formula is equivalent to a disjunction of
//! functional regex formulas. The rewriting follows the recursive definition
//! of the set `A(α)` in Appendix A.2 of the paper. Proposition 3.11 shows the
//! number of disjuncts can be exponential in the size of the input — the
//! `limit` argument guards against that blow-up, and experiment E4 measures
//! it on the Example 3.10 family.

use crate::ast::Rgx;
use crate::classify::{is_functional, is_sequential};
use spanner_core::{SpannerError, SpannerResult};

/// Default bound on the number of generated disjuncts.
pub const DEFAULT_DISJUNCT_LIMIT: usize = 1 << 20;

/// Rewrites a *sequential* regex formula into an equivalent list of
/// *functional* regex formulas (the disjuncts of a disjunctive-functional
/// formula).
///
/// Returns an error if the input is not sequential or if the number of
/// disjuncts would exceed `limit` (Proposition 3.11 shows this is
/// unavoidable in the worst case).
pub fn to_disjunctive_functional(alpha: &Rgx, limit: usize) -> SpannerResult<Vec<Rgx>> {
    if !is_sequential(alpha) {
        return Err(SpannerError::requirement(
            "sequential",
            format!("formula {alpha} is not sequential"),
        ));
    }
    let disjuncts = rewrite(alpha, limit)?;
    debug_assert!(disjuncts.iter().all(is_functional));
    Ok(disjuncts)
}

fn check_limit(len: usize, limit: usize) -> SpannerResult<()> {
    if len > limit {
        Err(SpannerError::LimitExceeded {
            what: "disjunctive-functional disjuncts",
            limit,
            actual: len,
        })
    } else {
        Ok(())
    }
}

/// The recursive set `A(α)` of Appendix A.2, restricted to sequential input.
fn rewrite(alpha: &Rgx, limit: usize) -> SpannerResult<Vec<Rgx>> {
    let out = match alpha {
        Rgx::Empty => vec![],
        Rgx::Epsilon => vec![Rgx::Epsilon],
        Rgx::Class(c) => vec![Rgx::Class(*c)],
        Rgx::Union(parts) => {
            // If no variables occur anywhere, keep the union as one
            // (functional, variable-free) disjunct; otherwise recurse.
            if alpha.vars().is_empty() {
                vec![alpha.clone()]
            } else {
                let mut out = Vec::new();
                for p in parts {
                    out.extend(rewrite(p, limit)?);
                    check_limit(out.len(), limit)?;
                }
                out
            }
        }
        Rgx::Concat(parts) => {
            let mut out = vec![Rgx::Epsilon];
            for p in parts {
                let rhs = rewrite(p, limit)?;
                check_limit(out.len().saturating_mul(rhs.len()), limit)?;
                let mut next = Vec::with_capacity(out.len() * rhs.len());
                for left in &out {
                    for right in &rhs {
                        next.push(Rgx::concat([left.clone(), right.clone()]));
                    }
                }
                out = next;
            }
            out
        }
        Rgx::Star(inner) => {
            // Sequential ⇒ Vars(inner) = ∅ ⇒ the star itself is functional.
            debug_assert!(inner.vars().is_empty());
            vec![alpha.clone()]
        }
        Rgx::Capture(v, inner) => rewrite(inner, limit)?
            .into_iter()
            .map(|beta| Rgx::capture(v.clone(), beta))
            .collect(),
    };
    check_limit(out.len(), limit)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::reference_eval;
    use crate::parser::parse;
    use spanner_core::Document;

    /// Checks that the disjunction of the rewritten disjuncts is equivalent
    /// to the original on the given documents.
    fn assert_equivalent(alpha: &Rgx, docs: &[&str]) {
        let disjuncts = to_disjunctive_functional(alpha, DEFAULT_DISJUNCT_LIMIT).unwrap();
        for f in &disjuncts {
            assert!(is_functional(f), "disjunct {f} is not functional");
        }
        let rewritten = Rgx::Union(disjuncts);
        for d in docs {
            let doc = Document::new(*d);
            assert_eq!(
                reference_eval(alpha, &doc),
                reference_eval(&rewritten, &doc),
                "rewriting changed semantics on {d:?} for {alpha}"
            );
        }
    }

    #[test]
    fn functional_formula_is_a_single_disjunct() {
        let alpha = parse("{x:a+}b").unwrap();
        let d = to_disjunctive_functional(&alpha, 100).unwrap();
        assert_eq!(d.len(), 1);
        assert_equivalent(&alpha, &["aab", "b", ""]);
    }

    #[test]
    fn optional_variable_splits_into_disjuncts() {
        // x{a}? ≡ (ε) ∨ (x{a}) — two disjuncts with different variable sets.
        let alpha = parse("{x:a}?b").unwrap();
        let d = to_disjunctive_functional(&alpha, 100).unwrap();
        assert_eq!(d.len(), 2);
        assert_equivalent(&alpha, &["ab", "b", "a"]);
    }

    #[test]
    fn example_3_10_blowup() {
        // (x1{Σ*} ∨ y1{Σ*}) ⋯ (xn{Σ*} ∨ yn{Σ*}) needs 2^n disjuncts.
        for n in 1..=6 {
            let alpha = Rgx::concat((0..n).map(|i| {
                Rgx::union([
                    Rgx::capture(format!("x{i}"), Rgx::any_string()),
                    Rgx::capture(format!("y{i}"), Rgx::any_string()),
                ])
            }));
            let d = to_disjunctive_functional(&alpha, DEFAULT_DISJUNCT_LIMIT).unwrap();
            assert_eq!(d.len(), 1 << n, "n = {n}");
        }
    }

    #[test]
    fn limit_is_enforced() {
        let alpha = Rgx::concat((0..10).map(|i| {
            Rgx::union([
                Rgx::capture(format!("x{i}"), Rgx::any_string()),
                Rgx::capture(format!("y{i}"), Rgx::any_string()),
            ])
        }));
        let err = to_disjunctive_functional(&alpha, 100).unwrap_err();
        assert!(matches!(err, SpannerError::LimitExceeded { .. }));
    }

    #[test]
    fn non_sequential_input_is_rejected() {
        let alpha = parse("({x:a})*").unwrap();
        assert!(matches!(
            to_disjunctive_functional(&alpha, 100),
            Err(SpannerError::Requirement { .. })
        ));
    }

    #[test]
    fn variable_free_unions_are_kept_whole() {
        let alpha = parse("(a|b)*c|d").unwrap();
        let d = to_disjunctive_functional(&alpha, 100).unwrap();
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn semantics_preserved_on_paper_like_formula() {
        // Simplified αname ∨ αmail-ish formula with optional parts.
        let alpha = parse(r"({first:\l+} |()){last:\l+}( {phone:\d+})?").unwrap();
        assert_equivalent(&alpha, &["bob smith 42", "smith", "ann lee"]);
    }

    #[test]
    fn star_of_union_without_vars() {
        let alpha = parse("{x:(a|b)*}c?").unwrap();
        let d = to_disjunctive_functional(&alpha, 100).unwrap();
        // The trailing `c?` is a variable-free union, so it is kept whole and
        // a single functional disjunct suffices.
        assert_eq!(d.len(), 1);
        assert_equivalent(&alpha, &["abba", "abbac", "", "c"]);
    }
}
