//! A persistent, trigram-indexed corpus store.
//!
//! The paper's spanners map one document to a relation; the serving layers
//! built on top apply one query to a whole corpus. Until this crate, every
//! query *touched* every document — the scan fast path made misses cheap,
//! but still linear in corpus size. [`Store`] makes document touch
//! sub-linear for selective queries:
//!
//! * **Segment file**: the corpus is persisted once as a compact
//!   length-prefixed segment file and loaded back into an in-memory
//!   document table (documents are immutable after ingest — the shape of
//!   log-scanning workloads).
//! * **Trigram posting index**: at ingest time every document's byte
//!   trigrams are inverted into sorted posting lists (delta-varint encoded
//!   on disk).
//! * **Literal pruning**: at query time, the *required literals* a
//!   compiled plan extracts from its automata (see
//!   `spanner_vset::scan::ScanPlan::required_literals` — byte strings every
//!   accepted document must contain) are broken into trigrams and their
//!   posting lists intersected into a candidate document set. Every
//!   document outside it is provably result-free and is skipped without
//!   reading a byte ([`CorpusEngine::evaluate_candidates_with_threads`]).
//!
//! Pruning is *sound, never required*: a query whose plan yields no
//! literal of at least [`TRIGRAM_LEN`] bytes falls back to a full scan
//! ([`Store::candidates`] returns `None`), and results are bit-identical
//! to the unindexed path in corpus order either way (pinned by the
//! `store_oracle` differential suite).
//!
//! ```
//! use spanner_core::Document;
//! use spanner_store::Store;
//!
//! let docs = vec![Document::new("error: disk full"), Document::new("ok")];
//! let store = Store::build(docs).unwrap();
//! // "error" → trigrams {err, rro, ror, or:} → only document 0.
//! assert_eq!(store.candidates(&[b"error".to_vec()]), Some(vec![0]));
//! ```

use spanner_core::{Document, FxHashMap, SpannerResult};
use spanner_corpus::{CorpusEngine, CorpusResult};
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Magic bytes opening every segment file.
pub const MAGIC: &[u8; 8] = b"SPANSTOR";

/// Segment file format version.
pub const VERSION: u32 = 1;

/// Length of the indexed n-grams. Literals shorter than this cannot be
/// pruned on and force a full scan.
pub const TRIGRAM_LEN: usize = 3;

/// Errors opening or parsing a segment file.
#[derive(Debug)]
pub enum StoreError {
    /// The underlying file operation failed.
    Io(io::Error),
    /// The file is not a segment file, or is corrupt / truncated.
    Format(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store i/o error: {e}"),
            StoreError::Format(msg) => write!(f, "invalid store file: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> StoreError {
        StoreError::Io(e)
    }
}

/// An immutable corpus with its trigram posting index: built in memory
/// with [`Store::build`], persisted with [`Store::save`], and mapped back
/// with [`Store::load`]. The document table is loaded once and shared by
/// every query against the store.
pub struct Store {
    docs: Vec<Document>,
    /// Sorted, duplicate-free posting lists per byte trigram.
    postings: FxHashMap<[u8; 3], Vec<u32>>,
}

/// What one indexed query did: the full-corpus result plus how the
/// candidate set was obtained.
#[derive(Debug)]
pub struct StoreQueryOutcome {
    /// Per-document relations for the *whole* corpus, in corpus order
    /// (non-candidates are empty), plus aggregate stats — non-candidates
    /// count as `docs_skipped`.
    pub output: CorpusResult,
    /// Number of candidate documents the index produced; `None` when the
    /// plan had no usable literal and the store fell back to a full scan.
    pub candidates: Option<usize>,
    /// The literals the candidate set was intersected from.
    pub literals: Vec<Vec<u8>>,
}

impl StoreQueryOutcome {
    /// Candidate-set selectivity: candidates / corpus size (`1.0` on the
    /// full-scan fallback or an empty corpus).
    pub fn selectivity(&self) -> f64 {
        match (self.candidates, self.output.results.len()) {
            (Some(c), n) if n > 0 => c as f64 / n as f64,
            _ => 1.0,
        }
    }
}

impl Store {
    /// Builds a store over `docs`, inverting every document's trigrams.
    /// Fails only when the corpus exceeds `u32` document ids.
    pub fn build(docs: Vec<Document>) -> Result<Store, StoreError> {
        if docs.len() > u32::MAX as usize {
            return Err(StoreError::Format(format!(
                "corpus of {} documents exceeds u32 document ids",
                docs.len()
            )));
        }
        let mut postings: FxHashMap<[u8; 3], Vec<u32>> = FxHashMap::default();
        for (id, doc) in docs.iter().enumerate() {
            for w in doc.bytes().windows(TRIGRAM_LEN) {
                let key: [u8; 3] = w.try_into().expect("window of TRIGRAM_LEN");
                let list = postings.entry(key).or_default();
                // Windows arrive in order, so a repeated trigram within one
                // document is the tail entry.
                if list.last() != Some(&(id as u32)) {
                    list.push(id as u32);
                }
            }
        }
        Ok(Store { docs, postings })
    }

    /// The resident document table, in ingest order.
    pub fn documents(&self) -> &[Document] {
        &self.docs
    }

    /// Number of documents in the store.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// Whether the store holds no documents.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// Number of distinct trigrams in the index.
    pub fn trigram_count(&self) -> usize {
        self.postings.len()
    }

    /// Total corpus size in bytes.
    pub fn bytes(&self) -> usize {
        self.docs.iter().map(Document::len).sum()
    }

    /// The candidate document set for a query requiring `literals`:
    /// the intersection of the posting lists of every trigram of every
    /// literal of at least [`TRIGRAM_LEN`] bytes — sorted, duplicate-free
    /// document ids. `None` means no literal is usable and the caller must
    /// scan the full corpus (pruning on nothing proves nothing).
    pub fn candidates(&self, literals: &[Vec<u8>]) -> Option<Vec<u32>> {
        let mut result: Option<Vec<u32>> = None;
        for literal in literals {
            for w in literal.windows(TRIGRAM_LEN) {
                let key: [u8; 3] = w.try_into().expect("window of TRIGRAM_LEN");
                // A trigram absent from the index matches no document.
                let list = self.postings.get(&key).map_or(&[][..], Vec::as_slice);
                result = Some(match result {
                    None => list.to_vec(),
                    Some(acc) => intersect_sorted(&acc, list),
                });
                if matches!(result.as_deref(), Some([])) {
                    return Some(Vec::new());
                }
            }
        }
        result
    }

    /// Runs a compiled query against the store: extracts the plan's
    /// required literals, intersects their trigram postings into a
    /// candidate set, and evaluates only the candidates
    /// ([`CorpusEngine::evaluate_candidates_with_threads`]); documents the
    /// index prunes are counted as skipped without being read. Falls back
    /// to the full corpus scan when no literal is usable. Results cover
    /// the whole corpus in order and are bit-identical to the unindexed
    /// path.
    pub fn query(&self, engine: &CorpusEngine, threads: usize) -> SpannerResult<StoreQueryOutcome> {
        let literals = engine.plan().required_literals();
        match self.candidates(&literals) {
            Some(candidates) => {
                let count = candidates.len();
                let output =
                    engine.evaluate_candidates_with_threads(&self.docs, &candidates, threads)?;
                Ok(StoreQueryOutcome {
                    output,
                    candidates: Some(count),
                    literals,
                })
            }
            None => Ok(StoreQueryOutcome {
                output: engine.evaluate_with_threads(&self.docs, threads)?,
                candidates: None,
                literals,
            }),
        }
    }

    /// Persists the store as one segment file (documents + index):
    ///
    /// ```text
    /// magic "SPANSTOR" · version u32 · doc_count u32 · trigram_count u32
    /// doc_count × ( byte_len u32 · utf-8 bytes )
    /// trigram_count × ( 3 trigram bytes · posting_count u32
    ///                   · posting_count × varint doc-id delta )
    /// ```
    ///
    /// All integers little-endian; posting lists are sorted and stored as
    /// varint-encoded gaps (first entry is the id itself).
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), StoreError> {
        let mut w = BufWriter::new(std::fs::File::create(path)?);
        w.write_all(MAGIC)?;
        w.write_all(&VERSION.to_le_bytes())?;
        w.write_all(&(self.docs.len() as u32).to_le_bytes())?;
        w.write_all(&(self.postings.len() as u32).to_le_bytes())?;
        for doc in &self.docs {
            w.write_all(&(doc.len() as u32).to_le_bytes())?;
            w.write_all(doc.bytes())?;
        }
        // Deterministic on-disk order: sorted by trigram.
        let mut keys: Vec<&[u8; 3]> = self.postings.keys().collect();
        keys.sort_unstable();
        for key in keys {
            let list = &self.postings[key];
            w.write_all(key.as_slice())?;
            w.write_all(&(list.len() as u32).to_le_bytes())?;
            let mut prev = 0u32;
            for (i, &id) in list.iter().enumerate() {
                let delta = if i == 0 { id } else { id - prev };
                write_varint(&mut w, delta)?;
                prev = id;
            }
        }
        w.flush()?;
        Ok(())
    }

    /// Loads a segment file written by [`Store::save`] back into a resident
    /// store: the document table is read once, whole; the posting lists are
    /// decoded and validated (sortedness, bounds).
    pub fn load(path: impl AsRef<Path>) -> Result<Store, StoreError> {
        let mut r = BufReader::new(std::fs::File::open(path)?);
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)
            .map_err(|_| StoreError::Format("file shorter than the magic header".into()))?;
        if &magic != MAGIC {
            return Err(StoreError::Format("bad magic (not a segment file)".into()));
        }
        let version = read_u32(&mut r)?;
        if version != VERSION {
            return Err(StoreError::Format(format!(
                "unsupported version {version} (expected {VERSION})"
            )));
        }
        let doc_count = read_u32(&mut r)? as usize;
        let trigram_count = read_u32(&mut r)? as usize;
        let mut docs = Vec::with_capacity(doc_count.min(1 << 20));
        for i in 0..doc_count {
            let len = read_u32(&mut r)? as usize;
            let mut bytes = vec![0u8; len];
            r.read_exact(&mut bytes)
                .map_err(|_| StoreError::Format(format!("document {i} truncated")))?;
            let text = String::from_utf8(bytes)
                .map_err(|_| StoreError::Format(format!("document {i} is not valid UTF-8")))?;
            docs.push(Document::new(text));
        }
        let mut postings: FxHashMap<[u8; 3], Vec<u32>> = FxHashMap::default();
        for _ in 0..trigram_count {
            let mut key = [0u8; 3];
            r.read_exact(&mut key)
                .map_err(|_| StoreError::Format("trigram table truncated".into()))?;
            let count = read_u32(&mut r)? as usize;
            let mut list = Vec::with_capacity(count.min(1 << 20));
            let mut prev = 0u32;
            for i in 0..count {
                let delta = read_varint(&mut r)?;
                let id = if i == 0 {
                    delta
                } else {
                    prev.checked_add(delta)
                        .ok_or_else(|| StoreError::Format("posting id overflow".into()))?
                };
                if i > 0 && delta == 0 {
                    return Err(StoreError::Format("unsorted posting list".into()));
                }
                if id as usize >= doc_count {
                    return Err(StoreError::Format(format!(
                        "posting id {id} out of bounds (doc count {doc_count})"
                    )));
                }
                list.push(id);
                prev = id;
            }
            if postings.insert(key, list).is_some() {
                return Err(StoreError::Format("duplicate trigram entry".into()));
            }
        }
        // Trailing garbage means the file is not what `save` wrote.
        let mut rest = [0u8; 1];
        if r.read(&mut rest)? != 0 {
            return Err(StoreError::Format("trailing bytes after the index".into()));
        }
        Ok(Store { docs, postings })
    }
}

impl std::fmt::Debug for Store {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Store({} docs, {} bytes, {} trigrams)",
            self.docs.len(),
            self.bytes(),
            self.postings.len()
        )
    }
}

/// Intersection of two sorted, duplicate-free id lists.
fn intersect_sorted(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// LEB128-style unsigned varint.
fn write_varint(w: &mut impl Write, mut v: u32) -> io::Result<()> {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            return w.write_all(&[byte]);
        }
        w.write_all(&[byte | 0x80])?;
    }
}

fn read_varint(r: &mut impl Read) -> Result<u32, StoreError> {
    let mut v: u32 = 0;
    let mut shift = 0u32;
    loop {
        let mut byte = [0u8; 1];
        r.read_exact(&mut byte)
            .map_err(|_| StoreError::Format("varint truncated".into()))?;
        let low = (byte[0] & 0x7f) as u32;
        if shift > 28 || (shift == 28 && low > 0xf) {
            return Err(StoreError::Format("varint overflows u32".into()));
        }
        v |= low << shift;
        if byte[0] & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

fn read_u32(r: &mut impl Read) -> Result<u32, StoreError> {
    let mut bytes = [0u8; 4];
    r.read_exact(&mut bytes)
        .map_err(|_| StoreError::Format("u32 field truncated".into()))?;
    Ok(u32::from_le_bytes(bytes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use spanner_algebra::{Instantiation, RaOptions, RaTree};

    fn docs(texts: &[&str]) -> Vec<Document> {
        texts.iter().map(|t| Document::new(*t)).collect()
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("spanner-store-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn candidates_intersect_trigram_postings() {
        let store = Store::build(docs(&[
            "the error log",
            "all fine here",
            "error: disk",
            "err",
        ]))
        .unwrap();
        assert_eq!(store.candidates(&[b"error".to_vec()]), Some(vec![0, 2]));
        // Two literals intersect.
        assert_eq!(
            store.candidates(&[b"error".to_vec(), b"disk".to_vec()]),
            Some(vec![2])
        );
        // An unknown trigram empties the set immediately.
        assert_eq!(store.candidates(&[b"zzz".to_vec()]), Some(Vec::new()));
        // Too-short literals prove nothing: full-scan fallback.
        assert_eq!(store.candidates(&[b"er".to_vec()]), None);
        assert_eq!(store.candidates(&[]), None);
        // A short literal alongside a usable one is simply ignored.
        assert_eq!(
            store.candidates(&[b"er".to_vec(), b"error".to_vec()]),
            Some(vec![0, 2])
        );
    }

    #[test]
    fn save_load_round_trips() {
        let store = Store::build(docs(&[
            "alpha beta",
            "",
            "β-reduction β",
            "alpha",
            &"x".repeat(1000),
        ]))
        .unwrap();
        let path = tmp("roundtrip");
        store.save(&path).unwrap();
        let loaded = Store::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded.documents(), store.documents());
        assert_eq!(loaded.trigram_count(), store.trigram_count());
        assert_eq!(
            loaded.candidates(&[b"alpha".to_vec()]),
            store.candidates(&[b"alpha".to_vec()])
        );
    }

    #[test]
    fn load_rejects_corrupt_files() {
        let path = tmp("corrupt");
        std::fs::write(&path, b"not a store").unwrap();
        assert!(matches!(Store::load(&path), Err(StoreError::Format(_))));
        std::fs::write(&path, b"SPANSTOR\x02\x00\x00\x00").unwrap();
        let err = Store::load(&path).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
        // Truncated document table.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        bytes.extend_from_slice(&2u32.to_le_bytes()); // 2 docs
        bytes.extend_from_slice(&0u32.to_le_bytes()); // 0 trigrams
        bytes.extend_from_slice(&100u32.to_le_bytes()); // 100-byte doc, missing
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(Store::load(&path), Err(StoreError::Format(_))));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn query_prunes_with_literals_and_falls_back_without() {
        let texts: Vec<String> = (0..50)
            .map(|i| {
                if i % 10 == 0 {
                    format!("record {i}: needle found")
                } else {
                    format!("record {i}: nothing")
                }
            })
            .collect();
        let store =
            Store::build(texts.iter().map(|t| Document::new(t.as_str())).collect()).unwrap();
        let inst = Instantiation::new().with(0, spanner_rgx::parse(".*needle{x: .*}").unwrap());
        let engine = CorpusEngine::compile(&RaTree::leaf(0), &inst, RaOptions::default()).unwrap();
        let outcome = store.query(&engine, 2).unwrap();
        assert_eq!(outcome.candidates, Some(5));
        assert!(outcome.selectivity() <= 0.1 + f64::EPSILON);
        assert_eq!(outcome.output.stats.matched_documents, 5);
        assert!(outcome.output.stats.docs_skipped >= 45);
        // Bit-identical to the unindexed path.
        let full = engine.evaluate_with_threads(store.documents(), 2).unwrap();
        assert_eq!(outcome.output.results, full.results);

        // No usable literal → full scan, same results.
        let inst = Instantiation::new().with(0, spanner_rgx::parse("{x:[nr]+}").unwrap());
        let engine = CorpusEngine::compile(&RaTree::leaf(0), &inst, RaOptions::default()).unwrap();
        let outcome = store.query(&engine, 2).unwrap();
        assert_eq!(outcome.candidates, None);
        assert_eq!(outcome.selectivity(), 1.0);
        let full = engine.evaluate_with_threads(store.documents(), 2).unwrap();
        assert_eq!(outcome.output.results, full.results);
    }

    #[test]
    fn empty_store_works() {
        let store = Store::build(Vec::new()).unwrap();
        assert!(store.is_empty());
        assert_eq!(store.candidates(&[b"abc".to_vec()]), Some(Vec::new()));
        let path = tmp("empty");
        store.save(&path).unwrap();
        let loaded = Store::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(loaded.is_empty());
        assert_eq!(loaded.trigram_count(), 0);
    }
}
