//! A persistent, trigram-indexed, *mutable* corpus store.
//!
//! The paper's spanners map one document to a relation; the serving layers
//! built on top apply one query to a whole corpus. Until this crate, every
//! query *touched* every document — the scan fast path made misses cheap,
//! but still linear in corpus size. [`Store`] makes document touch
//! sub-linear for selective queries:
//!
//! * **Segment file**: the corpus is persisted as a compact
//!   length-prefixed segment file and loaded back into an in-memory
//!   document table.
//! * **Trigram posting index**: every document's byte trigrams are
//!   inverted into sorted posting lists (delta-varint encoded on disk).
//! * **Literal pruning**: at query time, the *required literals* a
//!   compiled plan extracts from its automata (see
//!   `spanner_vset::scan::ScanPlan::required_literals` — byte strings every
//!   accepted document must contain) are broken into trigrams and their
//!   posting lists intersected into a candidate document set. Every
//!   document outside it is provably result-free and is skipped without
//!   reading a byte ([`CorpusEngine::evaluate_candidates_with_threads`]).
//!
//! Pruning is *sound, never required*: a query whose plan yields no
//! literal of at least [`TRIGRAM_LEN`] bytes falls back to a full scan
//! ([`Store::candidates`] returns `None`), and results are bit-identical
//! to the unindexed path in corpus order either way (pinned by the
//! `store_oracle` differential suite).
//!
//! **Mutations.** The store is a *living* corpus: [`Store::append`],
//! [`Store::update`] and [`Store::delete`] maintain the index
//! incrementally through a classic LSM shape — a read-only **base**
//! segment (the postings as of the last build/compaction), a small sorted
//! **delta** segment holding the postings of mutated documents, and a
//! **tombstone mask** marking base postings that died. A document's live
//! postings are always entirely in one segment, and every read path
//! (candidates, save) merges `base − tombstones` with the delta, so a
//! mutated store is query- and byte-identical to a from-scratch rebuild
//! over the same documents (pinned by the `incr_oracle` suite). When the
//! pending delta outgrows the base ([`COMPACT_GRACE`]), the index is
//! compacted in place. Each document also carries a 64-bit FNV-1a content
//! hash ([`fnv1a64`]) and the store a monotone [`Store::generation`]
//! counter — the keys the maintained query views of
//! [`spanner_corpus::QueryView`] invalidate on (see [`Store::query_view`]).
//! Deleting a document replaces it with an empty one (document ids are
//! stable — views and journals refer to them), so "rebuild" always means
//! `Store::build(store.documents().to_vec())`.
//!
//! Mutations can be journaled to disk ([`journal::Journal`]) and replayed
//! onto a loaded segment, so persistence is segment + journal.
//!
//! ```
//! use spanner_core::Document;
//! use spanner_store::Store;
//!
//! let docs = vec![Document::new("error: disk full"), Document::new("ok")];
//! let mut store = Store::build(docs).unwrap();
//! // "error" → trigrams {err, rro, ror, or:} → only document 0.
//! assert_eq!(store.candidates(&[b"error".to_vec()]), Some(vec![0]));
//! store.append("another error").unwrap();
//! assert_eq!(store.candidates(&[b"error".to_vec()]), Some(vec![0, 2]));
//! ```

use spanner_core::{Document, FxHashMap, FxHashSet, SpannerResult};
use spanner_corpus::{CorpusEngine, CorpusResult, QueryView};
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

pub mod journal;

pub use journal::{Journal, Mutation};

/// Magic bytes opening every segment file.
pub const MAGIC: &[u8; 8] = b"SPANSTOR";

/// Segment file format version.
pub const VERSION: u32 = 1;

/// Length of the indexed n-grams. Literals shorter than this cannot be
/// pruned on and force a full scan.
pub const TRIGRAM_LEN: usize = 3;

/// Compaction threshold grace: the index is compacted when the pending
/// work (delta postings + tombstoned base postings) exceeds
/// `max(COMPACT_GRACE, base_postings / 2)`. The grace keeps small stores
/// from compacting on every mutation; the ratio keeps amortized mutation
/// cost constant (geometric rebuild schedule).
pub const COMPACT_GRACE: usize = 1024;

/// Errors opening or parsing a segment file, or applying a mutation.
#[derive(Debug)]
pub enum StoreError {
    /// The underlying file operation failed.
    Io(io::Error),
    /// The file is not a segment file, or is corrupt / truncated.
    Format(String),
    /// A mutation was rejected (out-of-bounds document id, id overflow).
    Mutation(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store i/o error: {e}"),
            StoreError::Format(msg) => write!(f, "invalid store file: {msg}"),
            StoreError::Mutation(msg) => write!(f, "invalid mutation: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> StoreError {
        StoreError::Io(e)
    }
}

/// The 64-bit FNV-1a hash of `bytes` — the store's per-document content
/// hash. Std-only, stable across platforms and versions: view entries and
/// journal replays compare these across process boundaries.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x100_0000_01b3;
    let mut hash = OFFSET;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// A trigram-indexed corpus: built in memory with [`Store::build`],
/// persisted with [`Store::save`], mapped back with [`Store::load`], and
/// mutated in place with [`Store::append`] / [`Store::update`] /
/// [`Store::delete`]. The document table is shared by every query against
/// the store.
pub struct Store {
    docs: Vec<Document>,
    /// Per-document FNV-1a content hashes, indexed like `docs`.
    hashes: Vec<u64>,
    /// Base segment: sorted, duplicate-free posting lists per byte trigram
    /// covering documents `0..base_len` as of the last build/compaction.
    base: FxHashMap<[u8; 3], Vec<u32>>,
    /// Documents covered by the base segment.
    base_len: usize,
    /// Total posting entries in the base segment (at compaction time).
    base_postings: usize,
    /// Delta segment: sorted posting lists of documents mutated since the
    /// last compaction. A document's live postings are entirely in the
    /// base xor entirely in the delta.
    delta: FxHashMap<[u8; 3], Vec<u32>>,
    /// Total posting entries currently in the delta.
    delta_postings: usize,
    /// Tombstone mask over `0..base_len`: `true` = this document's base
    /// postings are dead (it was updated or deleted).
    stale: Vec<bool>,
    /// Number of `true` entries in `stale`, weighted per document (the
    /// pending-work trigger counts documents, not their posting entries —
    /// cheap to maintain, same asymptotics).
    stale_count: usize,
    /// Documents tombstoned by [`Store::delete`] (their slot is an empty
    /// document). Advisory — not persisted in the segment file.
    deleted: FxHashSet<u32>,
    /// Monotone mutation counter: bumped once per effective mutation.
    generation: u64,
    /// Number of threshold-triggered or explicit compactions.
    compactions: u64,
}

/// What one indexed query did: the full-corpus result plus how the
/// candidate set was obtained.
#[derive(Debug)]
pub struct StoreQueryOutcome {
    /// Per-document relations for the *whole* corpus, in corpus order
    /// (non-candidates are empty), plus aggregate stats — non-candidates
    /// count as `docs_skipped`.
    pub output: CorpusResult,
    /// Number of candidate documents the index produced; `None` when the
    /// plan had no usable literal and the store fell back to a full scan.
    pub candidates: Option<usize>,
    /// The literals the candidate set was intersected from.
    pub literals: Vec<Vec<u8>>,
}

impl StoreQueryOutcome {
    /// Candidate-set selectivity: candidates / corpus size (`1.0` on the
    /// full-scan fallback or an empty corpus).
    pub fn selectivity(&self) -> f64 {
        match (self.candidates, self.output.results.len()) {
            (Some(c), n) if n > 0 => c as f64 / n as f64,
            _ => 1.0,
        }
    }
}

/// What one view-backed query did: the full-corpus result plus how much
/// came from the maintained view and how the delta was pruned.
#[derive(Debug)]
pub struct ViewQueryOutcome {
    /// Per-document relations for the whole corpus, in corpus order —
    /// bit-identical to [`Store::query`] and the unindexed paths.
    pub output: CorpusResult,
    /// Documents not served from the view (the delta the query touched).
    pub delta_docs: usize,
    /// Documents whose retained relation was reused.
    pub view_hits: usize,
    /// Retained entries dropped because the document's content changed.
    pub invalidated: usize,
    /// Size of the trigram candidate set (`None` = full-scan fallback),
    /// as in [`StoreQueryOutcome::candidates`].
    pub candidates: Option<usize>,
    /// The literals the candidate set was intersected from.
    pub literals: Vec<Vec<u8>>,
    /// The store generation the view now reflects.
    pub generation: u64,
}

impl ViewQueryOutcome {
    /// Candidate-set selectivity: candidates / corpus size (`1.0` on the
    /// full-scan fallback or an empty corpus).
    pub fn selectivity(&self) -> f64 {
        match (self.candidates, self.output.results.len()) {
            (Some(c), n) if n > 0 => c as f64 / n as f64,
            _ => 1.0,
        }
    }
}

/// Inverts every document's trigrams into sorted posting lists; returns
/// the map and the total number of posting entries.
fn index_documents(docs: &[Document]) -> (FxHashMap<[u8; 3], Vec<u32>>, usize) {
    let mut postings: FxHashMap<[u8; 3], Vec<u32>> = FxHashMap::default();
    let mut total = 0usize;
    for (id, doc) in docs.iter().enumerate() {
        for w in doc.bytes().windows(TRIGRAM_LEN) {
            let key: [u8; 3] = w.try_into().expect("window of TRIGRAM_LEN");
            let list = postings.entry(key).or_default();
            // Windows arrive in order, so a repeated trigram within one
            // document is the tail entry.
            if list.last() != Some(&(id as u32)) {
                list.push(id as u32);
                total += 1;
            }
        }
    }
    (postings, total)
}

impl Store {
    /// Builds a store over `docs`, inverting every document's trigrams.
    /// Fails only when the corpus exceeds `u32` document ids.
    pub fn build(docs: Vec<Document>) -> Result<Store, StoreError> {
        if docs.len() > u32::MAX as usize {
            return Err(StoreError::Format(format!(
                "corpus of {} documents exceeds u32 document ids",
                docs.len()
            )));
        }
        let (base, base_postings) = index_documents(&docs);
        let hashes = docs.iter().map(|d| fnv1a64(d.bytes())).collect();
        let base_len = docs.len();
        Ok(Store {
            docs,
            hashes,
            base,
            base_len,
            base_postings,
            delta: FxHashMap::default(),
            delta_postings: 0,
            stale: vec![false; base_len],
            stale_count: 0,
            deleted: FxHashSet::default(),
            generation: 0,
            compactions: 0,
        })
    }

    /// The resident document table, in ingest order. Deleted documents
    /// keep their slot as an empty document (ids are stable).
    pub fn documents(&self) -> &[Document] {
        &self.docs
    }

    /// Per-document FNV-1a content hashes, indexed like
    /// [`Store::documents`].
    pub fn doc_hashes(&self) -> &[u64] {
        &self.hashes
    }

    /// Number of documents in the store (including deleted slots).
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// Whether the store holds no documents.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// Number of distinct trigrams in the index. After mutations this is
    /// an upper bound (tombstoned trigrams are counted until the next
    /// compaction); exact right after build/load/compaction.
    pub fn trigram_count(&self) -> usize {
        self.base.len()
            + self
                .delta
                .keys()
                .filter(|k| !self.base.contains_key(*k))
                .count()
    }

    /// Total corpus size in bytes.
    pub fn bytes(&self) -> usize {
        self.docs.iter().map(Document::len).sum()
    }

    /// Monotone mutation counter: `0` for a fresh build/load, bumped once
    /// per effective `append`/`update`/`delete`.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Number of threshold-triggered or explicit index compactions.
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Posting entries currently in the delta segment.
    pub fn delta_postings(&self) -> usize {
        self.delta_postings
    }

    /// Base documents whose postings are tombstoned (pending compaction).
    pub fn stale_count(&self) -> usize {
        self.stale_count
    }

    /// Documents tombstoned by [`Store::delete`] since build/load.
    pub fn deleted_count(&self) -> usize {
        self.deleted.len()
    }

    /// Whether `id` was deleted since build/load.
    pub fn is_deleted(&self, id: u32) -> bool {
        self.deleted.contains(&id)
    }

    /// Appends a document; returns its id. Bumps the generation.
    pub fn append(&mut self, text: &str) -> Result<u32, StoreError> {
        if self.docs.len() >= u32::MAX as usize {
            return Err(StoreError::Mutation(
                "corpus already holds u32::MAX documents".into(),
            ));
        }
        let id = self.docs.len() as u32;
        let doc = Document::new(text);
        self.add_delta_postings(id, doc.bytes());
        self.hashes.push(fnv1a64(doc.bytes()));
        self.docs.push(doc);
        self.generation += 1;
        self.maybe_compact();
        Ok(id)
    }

    /// Replaces document `id`'s content. Bumps the generation; un-deletes
    /// a previously deleted slot.
    pub fn update(&mut self, id: u32, text: &str) -> Result<(), StoreError> {
        let idx = id as usize;
        if idx >= self.docs.len() {
            return Err(StoreError::Mutation(format!(
                "document id {id} out of bounds (corpus of {})",
                self.docs.len()
            )));
        }
        self.retire_postings(id);
        let doc = Document::new(text);
        self.add_delta_postings(id, doc.bytes());
        self.hashes[idx] = fnv1a64(doc.bytes());
        self.docs[idx] = doc;
        self.deleted.remove(&id);
        self.generation += 1;
        self.maybe_compact();
        Ok(())
    }

    /// Deletes document `id`: the slot becomes an empty document so ids
    /// stay stable (results for it are empty, as for any empty document).
    /// Idempotent — deleting a deleted document is a no-op that does *not*
    /// bump the generation.
    pub fn delete(&mut self, id: u32) -> Result<(), StoreError> {
        let idx = id as usize;
        if idx >= self.docs.len() {
            return Err(StoreError::Mutation(format!(
                "document id {id} out of bounds (corpus of {})",
                self.docs.len()
            )));
        }
        if self.deleted.contains(&id) {
            return Ok(());
        }
        self.retire_postings(id);
        self.docs[idx] = Document::new("");
        self.hashes[idx] = fnv1a64(b"");
        self.deleted.insert(id);
        self.generation += 1;
        self.maybe_compact();
        Ok(())
    }

    /// Applies one [`Mutation`] (the journal's replay unit); returns the
    /// affected document id.
    pub fn apply(&mut self, mutation: &Mutation) -> Result<u32, StoreError> {
        match mutation {
            Mutation::Append { text } => self.append(text),
            Mutation::Update { id, text } => {
                self.update(*id, text)?;
                Ok(*id)
            }
            Mutation::Delete { id } => {
                self.delete(*id)?;
                Ok(*id)
            }
        }
    }

    /// Kills document `id`'s live postings ahead of a rewrite: a tombstone
    /// on the base segment, or a purge from the delta — whichever segment
    /// holds them (exactly one does).
    fn retire_postings(&mut self, id: u32) {
        let idx = id as usize;
        if idx < self.base_len && !self.stale[idx] {
            self.stale[idx] = true;
            self.stale_count += 1;
            return;
        }
        // The document's postings (if any) live in the delta.
        let keys: Vec<[u8; 3]> = self.docs[idx]
            .bytes()
            .windows(TRIGRAM_LEN)
            .map(|w| w.try_into().expect("window of TRIGRAM_LEN"))
            .collect();
        for key in keys {
            if let Some(list) = self.delta.get_mut(&key) {
                if let Ok(pos) = list.binary_search(&id) {
                    list.remove(pos);
                    self.delta_postings -= 1;
                    if list.is_empty() {
                        self.delta.remove(&key);
                    }
                }
            }
        }
    }

    /// Inserts `bytes`' trigrams into the delta segment for `id` (sorted,
    /// duplicate-free).
    fn add_delta_postings(&mut self, id: u32, bytes: &[u8]) {
        for w in bytes.windows(TRIGRAM_LEN) {
            let key: [u8; 3] = w.try_into().expect("window of TRIGRAM_LEN");
            let list = self.delta.entry(key).or_default();
            if let Err(pos) = list.binary_search(&id) {
                list.insert(pos, id);
                self.delta_postings += 1;
            }
        }
    }

    /// Compacts when the pending work outgrows the base (see
    /// [`COMPACT_GRACE`]).
    fn maybe_compact(&mut self) {
        if self.delta_postings + self.stale_count > COMPACT_GRACE.max(self.base_postings / 2) {
            self.compact();
        }
    }

    /// Rebuilds the base segment from the current documents, clearing the
    /// delta and the tombstones. Normally threshold-triggered; public so
    /// callers can force a fully compacted index (e.g. before `save` of a
    /// long-lived segment).
    pub fn compact(&mut self) {
        let (base, base_postings) = index_documents(&self.docs);
        self.base = base;
        self.base_postings = base_postings;
        self.base_len = self.docs.len();
        self.delta.clear();
        self.delta_postings = 0;
        self.stale = vec![false; self.base_len];
        self.stale_count = 0;
        self.compactions += 1;
    }

    /// The live posting list for `key`: base entries that are not
    /// tombstoned, merged with the delta. Sorted and duplicate-free.
    fn effective(&self, key: &[u8; 3]) -> Vec<u32> {
        let base = self.base.get(key).map_or(&[][..], Vec::as_slice);
        let delta = self.delta.get(key).map_or(&[][..], Vec::as_slice);
        let mut out = Vec::with_capacity(base.len() + delta.len());
        let (mut i, mut j) = (0, 0);
        while i < base.len() && j < delta.len() {
            let (b, d) = (base[i], delta[j]);
            if b < d {
                if !self.stale[b as usize] {
                    out.push(b);
                }
                i += 1;
            } else if d < b {
                out.push(d);
                j += 1;
            } else {
                // Same id in both: the base entry is tombstoned (a
                // document's live postings are in exactly one segment).
                out.push(d);
                i += 1;
                j += 1;
            }
        }
        for &b in &base[i..] {
            if !self.stale[b as usize] {
                out.push(b);
            }
        }
        out.extend_from_slice(&delta[j..]);
        out
    }

    /// The candidate document set for a query requiring `literals`:
    /// the intersection of the posting lists of every trigram of every
    /// literal of at least [`TRIGRAM_LEN`] bytes — sorted, duplicate-free
    /// document ids. `None` means no literal is usable and the caller must
    /// scan the full corpus (pruning on nothing proves nothing).
    pub fn candidates(&self, literals: &[Vec<u8>]) -> Option<Vec<u32>> {
        let mut result: Option<Vec<u32>> = None;
        for literal in literals {
            for w in literal.windows(TRIGRAM_LEN) {
                let key: [u8; 3] = w.try_into().expect("window of TRIGRAM_LEN");
                // A trigram absent from the index matches no document.
                let list = self.effective(&key);
                result = Some(match result {
                    None => list,
                    Some(acc) => intersect_sorted(&acc, &list),
                });
                if matches!(result.as_deref(), Some([])) {
                    return Some(Vec::new());
                }
            }
        }
        result
    }

    /// Runs a compiled query against the store: extracts the plan's
    /// required literals, intersects their trigram postings into a
    /// candidate set, and evaluates only the candidates
    /// ([`CorpusEngine::evaluate_candidates_with_threads`]); documents the
    /// index prunes are counted as skipped without being read. Falls back
    /// to the full corpus scan when no literal is usable. Results cover
    /// the whole corpus in order and are bit-identical to the unindexed
    /// path.
    pub fn query(&self, engine: &CorpusEngine, threads: usize) -> SpannerResult<StoreQueryOutcome> {
        let literals = engine.plan().required_literals();
        match self.candidates(&literals) {
            Some(candidates) => {
                let count = candidates.len();
                let output =
                    engine.evaluate_candidates_with_threads(&self.docs, &candidates, threads)?;
                Ok(StoreQueryOutcome {
                    output,
                    candidates: Some(count),
                    literals,
                })
            }
            None => Ok(StoreQueryOutcome {
                output: engine.evaluate_with_threads(&self.docs, threads)?,
                candidates: None,
                literals,
            }),
        }
    }

    /// Runs a compiled query *incrementally* through a maintained
    /// [`QueryView`]: documents whose content hash matches their retained
    /// entry are served from the view; the delta is pruned through the
    /// trigram index and re-evaluated
    /// ([`CorpusEngine::evaluate_delta`]). Results cover the whole corpus
    /// in order and are bit-identical to [`Store::query`] — a repeat query
    /// after `k` mutations touches `O(k)` documents, not `O(n)`.
    pub fn query_view(
        &self,
        engine: &CorpusEngine,
        view: &mut QueryView,
        threads: usize,
    ) -> SpannerResult<ViewQueryOutcome> {
        let literals = engine.plan().required_literals();
        let candidates = self.candidates(&literals);
        let delta = engine.evaluate_delta(
            &self.docs,
            &self.hashes,
            candidates.as_deref(),
            view,
            threads,
        )?;
        view.set_generation(self.generation);
        Ok(ViewQueryOutcome {
            output: delta.output,
            delta_docs: delta.delta_docs,
            view_hits: delta.view_hits,
            invalidated: delta.invalidated,
            candidates: candidates.map(|c| c.len()),
            literals,
            generation: self.generation,
        })
    }

    /// Persists the store as one segment file (documents + index):
    ///
    /// ```text
    /// magic "SPANSTOR" · version u32 · doc_count u32 · trigram_count u32
    /// doc_count × ( byte_len u32 · utf-8 bytes )
    /// trigram_count × ( 3 trigram bytes · posting_count u32
    ///                   · posting_count × varint doc-id delta )
    /// ```
    ///
    /// All integers little-endian; posting lists are sorted and stored as
    /// varint-encoded gaps (first entry is the id itself). The *live*
    /// (merged, tombstone-free) index is written, so the bytes are
    /// identical to saving `Store::build(store.documents().to_vec())` —
    /// mutations never leak into the segment format.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), StoreError> {
        // Deterministic on-disk order: sorted by trigram; dead keys
        // (tombstoned everywhere, nothing in the delta) are dropped.
        let mut keys: Vec<[u8; 3]> = self.base.keys().copied().collect();
        keys.extend(
            self.delta
                .keys()
                .copied()
                .filter(|k| !self.base.contains_key(k)),
        );
        keys.sort_unstable();
        let mut entries: Vec<([u8; 3], Vec<u32>)> = Vec::with_capacity(keys.len());
        for key in keys {
            let list = self.effective(&key);
            if !list.is_empty() {
                entries.push((key, list));
            }
        }
        let mut w = BufWriter::new(std::fs::File::create(path)?);
        w.write_all(MAGIC)?;
        w.write_all(&VERSION.to_le_bytes())?;
        w.write_all(&(self.docs.len() as u32).to_le_bytes())?;
        w.write_all(&(entries.len() as u32).to_le_bytes())?;
        for doc in &self.docs {
            w.write_all(&(doc.len() as u32).to_le_bytes())?;
            w.write_all(doc.bytes())?;
        }
        for (key, list) in &entries {
            w.write_all(key.as_slice())?;
            w.write_all(&(list.len() as u32).to_le_bytes())?;
            let mut prev = 0u32;
            for (i, &id) in list.iter().enumerate() {
                let delta = if i == 0 { id } else { id - prev };
                write_varint(&mut w, delta)?;
                prev = id;
            }
        }
        w.flush()?;
        Ok(())
    }

    /// Loads a segment file written by [`Store::save`] back into a resident
    /// store: the document table is read once, whole; the posting lists are
    /// decoded and validated (sortedness, bounds). Content hashes are
    /// recomputed; the generation restarts at `0` (deletion tombstones are
    /// not persisted — a deleted slot loads as an empty document).
    pub fn load(path: impl AsRef<Path>) -> Result<Store, StoreError> {
        Store::load_from(std::fs::File::open(path)?)
    }

    /// [`Store::load`] from any reader — e.g. a segment piped on stdin.
    pub fn load_from(reader: impl Read) -> Result<Store, StoreError> {
        let mut r = BufReader::new(reader);
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)
            .map_err(|_| StoreError::Format("file shorter than the magic header".into()))?;
        if &magic != MAGIC {
            return Err(StoreError::Format("bad magic (not a segment file)".into()));
        }
        let version = read_u32(&mut r)?;
        if version != VERSION {
            return Err(StoreError::Format(format!(
                "unsupported version {version} (expected {VERSION})"
            )));
        }
        let doc_count = read_u32(&mut r)? as usize;
        let trigram_count = read_u32(&mut r)? as usize;
        let mut docs = Vec::with_capacity(doc_count.min(1 << 20));
        for i in 0..doc_count {
            let len = read_u32(&mut r)? as usize;
            let mut bytes = vec![0u8; len];
            r.read_exact(&mut bytes)
                .map_err(|_| StoreError::Format(format!("document {i} truncated")))?;
            let text = String::from_utf8(bytes)
                .map_err(|_| StoreError::Format(format!("document {i} is not valid UTF-8")))?;
            docs.push(Document::new(text));
        }
        let mut postings: FxHashMap<[u8; 3], Vec<u32>> = FxHashMap::default();
        let mut total = 0usize;
        for _ in 0..trigram_count {
            let mut key = [0u8; 3];
            r.read_exact(&mut key)
                .map_err(|_| StoreError::Format("trigram table truncated".into()))?;
            let count = read_u32(&mut r)? as usize;
            let mut list = Vec::with_capacity(count.min(1 << 20));
            let mut prev = 0u32;
            for i in 0..count {
                let delta = read_varint(&mut r)?;
                let id = if i == 0 {
                    delta
                } else {
                    prev.checked_add(delta)
                        .ok_or_else(|| StoreError::Format("posting id overflow".into()))?
                };
                if i > 0 && delta == 0 {
                    return Err(StoreError::Format("unsorted posting list".into()));
                }
                if id as usize >= doc_count {
                    return Err(StoreError::Format(format!(
                        "posting id {id} out of bounds (doc count {doc_count})"
                    )));
                }
                list.push(id);
                prev = id;
            }
            total += list.len();
            if postings.insert(key, list).is_some() {
                return Err(StoreError::Format("duplicate trigram entry".into()));
            }
        }
        // Trailing garbage means the file is not what `save` wrote.
        let mut rest = [0u8; 1];
        if r.read(&mut rest)? != 0 {
            return Err(StoreError::Format("trailing bytes after the index".into()));
        }
        let hashes = docs.iter().map(|d| fnv1a64(d.bytes())).collect();
        Ok(Store {
            base_len: docs.len(),
            stale: vec![false; docs.len()],
            docs,
            hashes,
            base: postings,
            base_postings: total,
            delta: FxHashMap::default(),
            delta_postings: 0,
            stale_count: 0,
            deleted: FxHashSet::default(),
            generation: 0,
            compactions: 0,
        })
    }
}

impl std::fmt::Debug for Store {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Store({} docs, {} bytes, {} trigrams, gen {}, {} delta postings)",
            self.docs.len(),
            self.bytes(),
            self.trigram_count(),
            self.generation,
            self.delta_postings,
        )
    }
}

/// Intersection of two sorted, duplicate-free id lists.
fn intersect_sorted(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// LEB128-style unsigned varint.
fn write_varint(w: &mut impl Write, mut v: u32) -> io::Result<()> {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            return w.write_all(&[byte]);
        }
        w.write_all(&[byte | 0x80])?;
    }
}

fn read_varint(r: &mut impl Read) -> Result<u32, StoreError> {
    let mut v: u32 = 0;
    let mut shift = 0u32;
    loop {
        let mut byte = [0u8; 1];
        r.read_exact(&mut byte)
            .map_err(|_| StoreError::Format("varint truncated".into()))?;
        let low = (byte[0] & 0x7f) as u32;
        if shift > 28 || (shift == 28 && low > 0xf) {
            return Err(StoreError::Format("varint overflows u32".into()));
        }
        v |= low << shift;
        if byte[0] & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

fn read_u32(r: &mut impl Read) -> Result<u32, StoreError> {
    let mut bytes = [0u8; 4];
    r.read_exact(&mut bytes)
        .map_err(|_| StoreError::Format("u32 field truncated".into()))?;
    Ok(u32::from_le_bytes(bytes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use spanner_algebra::{Instantiation, RaOptions, RaTree};

    fn docs(texts: &[&str]) -> Vec<Document> {
        texts.iter().map(|t| Document::new(*t)).collect()
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("spanner-store-test-{}-{name}", std::process::id()));
        p
    }

    fn engine(pattern: &str) -> CorpusEngine {
        let inst = Instantiation::new().with(0, spanner_rgx::parse(pattern).unwrap());
        CorpusEngine::compile(&RaTree::leaf(0), &inst, RaOptions::default()).unwrap()
    }

    #[test]
    fn candidates_intersect_trigram_postings() {
        let store = Store::build(docs(&[
            "the error log",
            "all fine here",
            "error: disk",
            "err",
        ]))
        .unwrap();
        assert_eq!(store.candidates(&[b"error".to_vec()]), Some(vec![0, 2]));
        // Two literals intersect.
        assert_eq!(
            store.candidates(&[b"error".to_vec(), b"disk".to_vec()]),
            Some(vec![2])
        );
        // An unknown trigram empties the set immediately.
        assert_eq!(store.candidates(&[b"zzz".to_vec()]), Some(Vec::new()));
        // Too-short literals prove nothing: full-scan fallback.
        assert_eq!(store.candidates(&[b"er".to_vec()]), None);
        assert_eq!(store.candidates(&[]), None);
        // A short literal alongside a usable one is simply ignored.
        assert_eq!(
            store.candidates(&[b"er".to_vec(), b"error".to_vec()]),
            Some(vec![0, 2])
        );
    }

    #[test]
    fn save_load_round_trips() {
        let store = Store::build(docs(&[
            "alpha beta",
            "",
            "β-reduction β",
            "alpha",
            &"x".repeat(1000),
        ]))
        .unwrap();
        let path = tmp("roundtrip");
        store.save(&path).unwrap();
        let loaded = Store::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded.documents(), store.documents());
        assert_eq!(loaded.doc_hashes(), store.doc_hashes());
        assert_eq!(loaded.trigram_count(), store.trigram_count());
        assert_eq!(
            loaded.candidates(&[b"alpha".to_vec()]),
            store.candidates(&[b"alpha".to_vec()])
        );
    }

    #[test]
    fn load_rejects_corrupt_files() {
        let path = tmp("corrupt");
        std::fs::write(&path, b"not a store").unwrap();
        assert!(matches!(Store::load(&path), Err(StoreError::Format(_))));
        std::fs::write(&path, b"SPANSTOR\x02\x00\x00\x00").unwrap();
        let err = Store::load(&path).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
        // Truncated document table.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        bytes.extend_from_slice(&2u32.to_le_bytes()); // 2 docs
        bytes.extend_from_slice(&0u32.to_le_bytes()); // 0 trigrams
        bytes.extend_from_slice(&100u32.to_le_bytes()); // 100-byte doc, missing
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(Store::load(&path), Err(StoreError::Format(_))));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn query_prunes_with_literals_and_falls_back_without() {
        let texts: Vec<String> = (0..50)
            .map(|i| {
                if i % 10 == 0 {
                    format!("record {i}: needle found")
                } else {
                    format!("record {i}: nothing")
                }
            })
            .collect();
        let store =
            Store::build(texts.iter().map(|t| Document::new(t.as_str())).collect()).unwrap();
        let engine = engine(".*needle{x: .*}");
        let outcome = store.query(&engine, 2).unwrap();
        assert_eq!(outcome.candidates, Some(5));
        assert!(outcome.selectivity() <= 0.1 + f64::EPSILON);
        assert_eq!(outcome.output.stats.matched_documents, 5);
        assert!(outcome.output.stats.docs_skipped >= 45);
        // Bit-identical to the unindexed path.
        let full = engine.evaluate_with_threads(store.documents(), 2).unwrap();
        assert_eq!(outcome.output.results, full.results);

        // No usable literal → full scan, same results.
        let inst = Instantiation::new().with(0, spanner_rgx::parse("{x:[nr]+}").unwrap());
        let engine = CorpusEngine::compile(&RaTree::leaf(0), &inst, RaOptions::default()).unwrap();
        let outcome = store.query(&engine, 2).unwrap();
        assert_eq!(outcome.candidates, None);
        assert_eq!(outcome.selectivity(), 1.0);
        let full = engine.evaluate_with_threads(store.documents(), 2).unwrap();
        assert_eq!(outcome.output.results, full.results);
    }

    #[test]
    fn empty_store_works() {
        let store = Store::build(Vec::new()).unwrap();
        assert!(store.is_empty());
        assert_eq!(store.candidates(&[b"abc".to_vec()]), Some(Vec::new()));
        let path = tmp("empty");
        store.save(&path).unwrap();
        let loaded = Store::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(loaded.is_empty());
        assert_eq!(loaded.trigram_count(), 0);
    }

    #[test]
    fn mutations_maintain_candidates_and_generation() {
        let mut store = Store::build(docs(&["the error log", "all fine"])).unwrap();
        assert_eq!(store.generation(), 0);
        let id = store.append("error: disk").unwrap();
        assert_eq!(id, 2);
        assert_eq!(store.generation(), 1);
        assert_eq!(store.candidates(&[b"error".to_vec()]), Some(vec![0, 2]));
        // Update removes old postings and adds new ones.
        store.update(0, "all quiet").unwrap();
        assert_eq!(store.candidates(&[b"error".to_vec()]), Some(vec![2]));
        assert_eq!(store.candidates(&[b"quiet".to_vec()]), Some(vec![0]));
        assert_eq!(store.generation(), 2);
        // Delete tombstones the slot; ids stay stable.
        store.delete(2).unwrap();
        assert_eq!(store.candidates(&[b"error".to_vec()]), Some(Vec::new()));
        assert_eq!(store.len(), 3);
        assert!(store.is_deleted(2));
        assert!(store.documents()[2].is_empty());
        assert_eq!(store.generation(), 3);
        // Deleting again is a no-op.
        store.delete(2).unwrap();
        assert_eq!(store.generation(), 3);
        // Updating a deleted slot revives it.
        store.update(2, "error again").unwrap();
        assert!(!store.is_deleted(2));
        assert_eq!(store.candidates(&[b"error".to_vec()]), Some(vec![2]));
        // Out-of-bounds ids are rejected.
        assert!(matches!(
            store.update(99, "x"),
            Err(StoreError::Mutation(_))
        ));
        assert!(matches!(store.delete(99), Err(StoreError::Mutation(_))));
    }

    #[test]
    fn hashes_track_content() {
        let mut store = Store::build(docs(&["abc", "abc"])).unwrap();
        assert_eq!(store.doc_hashes()[0], store.doc_hashes()[1]);
        assert_eq!(store.doc_hashes()[0], fnv1a64(b"abc"));
        store.update(1, "abd").unwrap();
        assert_ne!(store.doc_hashes()[0], store.doc_hashes()[1]);
        store.delete(0).unwrap();
        assert_eq!(store.doc_hashes()[0], fnv1a64(b""));
    }

    #[test]
    fn mutated_store_matches_scratch_rebuild() {
        let mut store =
            Store::build(docs(&["needle one", "hay", "needle two", "hay hay"])).unwrap();
        store.append("fresh needle").unwrap();
        store.update(1, "now a needle too").unwrap();
        store.delete(2).unwrap();
        store.update(3, "still hay").unwrap();
        let rebuilt = Store::build(store.documents().to_vec()).unwrap();
        // Identical candidates...
        for lit in [&b"needle"[..], b"hay", b"fresh"] {
            assert_eq!(
                store.candidates(&[lit.to_vec()]),
                rebuilt.candidates(&[lit.to_vec()]),
                "literal {:?}",
                String::from_utf8_lossy(lit)
            );
        }
        // ...identical query results...
        let e = engine(".*needle{x: .*}");
        let mutated = store.query(&e, 2).unwrap();
        let scratch = rebuilt.query(&e, 2).unwrap();
        assert_eq!(mutated.output.results, scratch.output.results);
        assert_eq!(mutated.candidates, scratch.candidates);
        // ...and identical bytes on disk.
        let p1 = tmp("mutated");
        let p2 = tmp("rebuilt");
        store.save(&p1).unwrap();
        rebuilt.save(&p2).unwrap();
        let b1 = std::fs::read(&p1).unwrap();
        let b2 = std::fs::read(&p2).unwrap();
        std::fs::remove_file(&p1).ok();
        std::fs::remove_file(&p2).ok();
        assert_eq!(b1, b2, "segment bytes differ from a scratch rebuild");
    }

    #[test]
    fn compaction_triggers_and_preserves_results() {
        let mut store = Store::build(Vec::new()).unwrap();
        // Each line contributes ~17 postings; a few hundred appends push
        // the pending delta past COMPACT_GRACE.
        for i in 0..200 {
            store
                .append(&format!("entry number {i} with text"))
                .unwrap();
        }
        assert!(store.compactions() > 0, "no compaction after bulk appends");
        // Pending work stays at or below the trigger threshold.
        assert!(
            store.delta_postings() + store.stale_count()
                <= COMPACT_GRACE.max(store.base_postings / 2)
        );
        let rebuilt = Store::build(store.documents().to_vec()).unwrap();
        assert_eq!(
            store.candidates(&[b"number".to_vec()]),
            rebuilt.candidates(&[b"number".to_vec()])
        );
        // Explicit compaction is also available and idempotent.
        let before = store.compactions();
        store.compact();
        assert_eq!(store.compactions(), before + 1);
        assert_eq!(store.delta_postings(), 0);
        assert_eq!(store.stale_count(), 0);
    }

    #[test]
    fn query_view_is_incremental_and_identical() {
        let texts: Vec<String> = (0..60)
            .map(|i| {
                if i % 6 == 0 {
                    format!("record {i}: needle found")
                } else {
                    format!("record {i}: nothing")
                }
            })
            .collect();
        let mut store =
            Store::build(texts.iter().map(|t| Document::new(t.as_str())).collect()).unwrap();
        let e = engine(".*needle{x: .*}");
        let mut view = QueryView::unbounded();
        let cold = store.query_view(&e, &mut view, 2).unwrap();
        let full = e.evaluate_with_threads(store.documents(), 2).unwrap();
        assert_eq!(cold.output.results, full.results);
        assert_eq!(cold.view_hits, 0);
        assert_eq!(view.generation(), store.generation());
        // Warm re-query: everything from the view.
        let warm = store.query_view(&e, &mut view, 2).unwrap();
        assert_eq!(warm.output.results, full.results);
        assert_eq!(warm.view_hits, store.len());
        assert_eq!(warm.delta_docs, 0);
        // Mutate two documents: only they are touched.
        store.update(1, "record 1: needle appears").unwrap();
        store.append("a fresh needle line").unwrap();
        let after = store.query_view(&e, &mut view, 2).unwrap();
        assert_eq!(after.delta_docs, 2);
        assert_eq!(after.invalidated, 1);
        let full = e.evaluate_with_threads(store.documents(), 2).unwrap();
        assert_eq!(after.output.results, full.results);
        assert_eq!(view.generation(), store.generation());
    }
}
