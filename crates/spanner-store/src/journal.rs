//! The mutation journal: durable append/update/delete records.
//!
//! A segment file ([`crate::Store::save`]) is a point-in-time snapshot;
//! the journal is the tail: every mutation appended through
//! [`Journal::record`] can be replayed onto a loaded segment with
//! [`crate::Store::apply`], reproducing the live store exactly (mutations
//! are deterministic). Readers can tail the file incrementally —
//! [`Journal::read_from`] starts at a byte offset and returns the offset
//! one past the last *complete* record, tolerating a torn tail record
//! (the shape a crashed writer leaves), so a watcher can poll the file
//! and replay only what is new.
//!
//! Format (all integers little-endian):
//!
//! ```text
//! magic "SPANJRNL" · version u32
//! then per record:
//!   op u8 ·   1 = append: text_len u32 · utf-8 bytes
//!             2 = update: doc_id u32 · text_len u32 · utf-8 bytes
//!             3 = delete: doc_id u32
//! ```

use crate::StoreError;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

/// Magic bytes opening every journal file.
pub const JOURNAL_MAGIC: &[u8; 8] = b"SPANJRNL";

/// Journal file format version.
pub const JOURNAL_VERSION: u32 = 1;

/// Byte length of the journal header (magic + version) — the offset of
/// the first record.
pub const JOURNAL_HEADER_LEN: u64 = 12;

const OP_APPEND: u8 = 1;
const OP_UPDATE: u8 = 2;
const OP_DELETE: u8 = 3;

/// One corpus mutation — the journal's record unit and the argument of
/// [`crate::Store::apply`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Mutation {
    /// Append a new document at the next id.
    Append {
        /// The new document's text.
        text: String,
    },
    /// Replace document `id`'s content.
    Update {
        /// The document to rewrite.
        id: u32,
        /// Its new text.
        text: String,
    },
    /// Tombstone document `id` (its slot becomes an empty document).
    Delete {
        /// The document to delete.
        id: u32,
    },
}

/// An open journal file, positioned for appending.
#[derive(Debug)]
pub struct Journal {
    file: File,
}

impl Journal {
    /// Opens `path` for appending, creating it (with a fresh header) if
    /// missing or empty; an existing file's header is validated first.
    pub fn append(path: impl AsRef<Path>) -> Result<Journal, StoreError> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let len = file.seek(SeekFrom::End(0))?;
        if len == 0 {
            file.write_all(JOURNAL_MAGIC)?;
            file.write_all(&JOURNAL_VERSION.to_le_bytes())?;
        } else {
            file.seek(SeekFrom::Start(0))?;
            read_header(&mut file)?;
            file.seek(SeekFrom::End(0))?;
        }
        Ok(Journal { file })
    }

    /// Appends one mutation record and flushes it.
    pub fn record(&mut self, mutation: &Mutation) -> Result<(), StoreError> {
        // One buffered write per record: a torn record can only be a
        // truncated tail, which `read_from` tolerates.
        let mut buf = Vec::new();
        match mutation {
            Mutation::Append { text } => {
                buf.push(OP_APPEND);
                buf.extend_from_slice(&(text.len() as u32).to_le_bytes());
                buf.extend_from_slice(text.as_bytes());
            }
            Mutation::Update { id, text } => {
                buf.push(OP_UPDATE);
                buf.extend_from_slice(&id.to_le_bytes());
                buf.extend_from_slice(&(text.len() as u32).to_le_bytes());
                buf.extend_from_slice(text.as_bytes());
            }
            Mutation::Delete { id } => {
                buf.push(OP_DELETE);
                buf.extend_from_slice(&id.to_le_bytes());
            }
        }
        self.file.write_all(&buf)?;
        self.file.flush()?;
        Ok(())
    }

    /// Reads every *complete* record from byte `offset` on (pass
    /// [`JOURNAL_HEADER_LEN`] — or `0`, which validates the header first —
    /// for the beginning). Returns the mutations and the offset one past
    /// the last complete record: hand it back on the next call to tail the
    /// file incrementally. A truncated tail record is not an error (a
    /// writer may be mid-append); corrupt bytes are.
    pub fn read_from(
        path: impl AsRef<Path>,
        offset: u64,
    ) -> Result<(Vec<Mutation>, u64), StoreError> {
        let mut file = File::open(path)?;
        let start = if offset == 0 {
            read_header(&mut file)?;
            JOURNAL_HEADER_LEN
        } else {
            offset
        };
        file.seek(SeekFrom::Start(start))?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let mut mutations = Vec::new();
        let mut pos = 0usize;
        while let Some((mutation, used)) = decode_record(&bytes[pos..])? {
            mutations.push(mutation);
            pos += used;
        }
        Ok((mutations, start + pos as u64))
    }
}

/// Validates the magic + version header at the reader's position.
fn read_header(r: &mut impl Read) -> Result<(), StoreError> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)
        .map_err(|_| StoreError::Format("journal shorter than the magic header".into()))?;
    if &magic != JOURNAL_MAGIC {
        return Err(StoreError::Format("bad magic (not a journal file)".into()));
    }
    let mut version = [0u8; 4];
    r.read_exact(&mut version)
        .map_err(|_| StoreError::Format("journal version truncated".into()))?;
    let version = u32::from_le_bytes(version);
    if version != JOURNAL_VERSION {
        return Err(StoreError::Format(format!(
            "unsupported journal version {version} (expected {JOURNAL_VERSION})"
        )));
    }
    Ok(())
}

/// Decodes one record from the front of `bytes`: `Ok(None)` when the
/// record is incomplete (torn tail), `Err` when the bytes cannot be a
/// record at all.
fn decode_record(bytes: &[u8]) -> Result<Option<(Mutation, usize)>, StoreError> {
    let Some(&op) = bytes.first() else {
        return Ok(None);
    };
    match op {
        OP_APPEND => {
            let Some((text, used)) = decode_text(&bytes[1..])? else {
                return Ok(None);
            };
            Ok(Some((Mutation::Append { text }, 1 + used)))
        }
        OP_UPDATE => {
            let Some(id) = decode_u32(&bytes[1..]) else {
                return Ok(None);
            };
            let Some((text, used)) = decode_text(&bytes[5..])? else {
                return Ok(None);
            };
            Ok(Some((Mutation::Update { id, text }, 5 + used)))
        }
        OP_DELETE => {
            let Some(id) = decode_u32(&bytes[1..]) else {
                return Ok(None);
            };
            Ok(Some((Mutation::Delete { id }, 5)))
        }
        other => Err(StoreError::Format(format!(
            "unknown journal op byte {other}"
        ))),
    }
}

fn decode_u32(bytes: &[u8]) -> Option<u32> {
    Some(u32::from_le_bytes(bytes.get(..4)?.try_into().ok()?))
}

/// Decodes a length-prefixed UTF-8 string; `None` = incomplete.
fn decode_text(bytes: &[u8]) -> Result<Option<(String, usize)>, StoreError> {
    let Some(len) = decode_u32(bytes) else {
        return Ok(None);
    };
    let len = len as usize;
    let Some(raw) = bytes.get(4..4 + len) else {
        return Ok(None);
    };
    let text = String::from_utf8(raw.to_vec())
        .map_err(|_| StoreError::Format("journal record is not valid UTF-8".into()))?;
    Ok(Some((text, 4 + len)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Store;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "spanner-journal-test-{}-{name}",
            std::process::id()
        ));
        p
    }

    #[test]
    fn record_and_replay_round_trips() {
        let path = tmp("roundtrip");
        std::fs::remove_file(&path).ok();
        let muts = vec![
            Mutation::Append {
                text: "first β-line".into(),
            },
            Mutation::Append { text: "".into() },
            Mutation::Update {
                id: 0,
                text: "rewritten".into(),
            },
            Mutation::Delete { id: 1 },
        ];
        let mut journal = Journal::append(&path).unwrap();
        for m in &muts {
            journal.record(m).unwrap();
        }
        let (read, end) = Journal::read_from(&path, 0).unwrap();
        assert_eq!(read, muts);
        assert_eq!(end, std::fs::metadata(&path).unwrap().len());
        // Replaying onto an empty store reproduces the mutated corpus.
        let mut store = Store::build(Vec::new()).unwrap();
        for m in &read {
            store.apply(m).unwrap();
        }
        assert_eq!(store.len(), 2);
        assert_eq!(store.documents()[0].text(), "rewritten");
        assert!(store.is_deleted(1));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn incremental_tailing_resumes_at_the_returned_offset() {
        let path = tmp("tail");
        std::fs::remove_file(&path).ok();
        let mut journal = Journal::append(&path).unwrap();
        journal
            .record(&Mutation::Append { text: "one".into() })
            .unwrap();
        let (first, offset) = Journal::read_from(&path, 0).unwrap();
        assert_eq!(first.len(), 1);
        // Nothing new yet.
        let (none, same) = Journal::read_from(&path, offset).unwrap();
        assert!(none.is_empty());
        assert_eq!(same, offset);
        // Append more — only the new records are returned.
        journal.record(&Mutation::Delete { id: 0 }).unwrap();
        let (next, end) = Journal::read_from(&path, offset).unwrap();
        assert_eq!(next, vec![Mutation::Delete { id: 0 }]);
        assert!(end > offset);
        // Re-opening for append keeps existing records.
        drop(journal);
        let mut journal = Journal::append(&path).unwrap();
        journal
            .record(&Mutation::Append { text: "two".into() })
            .unwrap();
        let (all, _) = Journal::read_from(&path, 0).unwrap();
        assert_eq!(all.len(), 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_tolerated_and_garbage_is_not() {
        let path = tmp("torn");
        std::fs::remove_file(&path).ok();
        let mut journal = Journal::append(&path).unwrap();
        journal
            .record(&Mutation::Append {
                text: "whole".into(),
            })
            .unwrap();
        drop(journal);
        // Truncate into the middle of a second record.
        let mut bytes = std::fs::read(&path).unwrap();
        let whole_len = bytes.len();
        bytes.push(super::OP_UPDATE);
        bytes.extend_from_slice(&7u32.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let (read, end) = Journal::read_from(&path, 0).unwrap();
        assert_eq!(read.len(), 1);
        assert_eq!(end as usize, whole_len, "torn tail must not be consumed");
        // An unknown op byte is corruption, not truncation.
        bytes.truncate(whole_len);
        bytes.push(0xff);
        std::fs::write(&path, &bytes).unwrap();
        assert!(Journal::read_from(&path, 0).is_err());
        // A non-journal file is rejected up front.
        std::fs::write(&path, b"SPANSTOR\x01\x00\x00\x00").unwrap();
        assert!(Journal::read_from(&path, 0).is_err());
        assert!(Journal::append(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
