//! Core data model for document spanners.
//!
//! This crate defines the vocabulary shared by every other crate in the
//! workspace: documents, spans, variables, mappings, and materialized
//! relations of mappings together with the SPARQL-style relational operators
//! of Peterfreund, Freydenberger, Kimelfeld and Kröll,
//! *Complexity Bounds for Relational Algebra over Document Spanners*
//! (PODS 2019), Section 2.
//!
//! The operators implemented here work on **materialized** sets of mappings.
//! They are deliberately simple and serve two purposes:
//!
//! 1. as the semantic oracle against which the automaton-level compilations
//!    in `spanner-vset`, `spanner-enum` and `spanner-algebra` are tested, and
//! 2. as the fallback evaluation path for small inputs.
//!
//! # Conventions
//!
//! * A document of length `n` has positions `1 ..= n + 1`; a span `[i, j⟩`
//!   satisfies `1 ≤ i ≤ j ≤ n + 1` and denotes the substring starting at the
//!   `i`-th symbol and ending just before the `j`-th, exactly as in the paper.
//! * Two empty spans `[i, i⟩` and `[j, j⟩` with `i ≠ j` are *different*
//!   objects even though they denote equal (empty) substrings.
//! * Mappings are partial: the schemaless semantics of Maturana et al. is the
//!   default throughout the workspace.

pub mod alphabet;
pub mod arena;
pub mod document;
pub mod error;
pub mod fxhash;
pub mod interner;
pub mod mapping;
pub mod relation;
pub mod span;
pub mod variable;

pub use alphabet::ByteClass;
pub use arena::Arena;
pub use document::Document;
pub use error::{SpannerError, SpannerResult};
pub use fxhash::{FxHashMap, FxHashSet};
pub use interner::{Interner, VarId, VarTable};
pub use mapping::Mapping;
pub use relation::{MappingSet, MappingSetBuilder};
pub use span::Span;
pub use variable::{VarSet, Variable};
