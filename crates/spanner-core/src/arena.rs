//! A tiny free-list arena for hot-loop scratch objects.
//!
//! The enumeration core allocates the same shapes over and over per
//! document: state-set bitsets for frontiers, span vectors for join keys,
//! candidate buffers for the match-graph DFS. Each is cheap to *reuse*
//! (clear and refill) but expensive to round-trip through the global
//! allocator thousands of times per document. [`Arena`] is the minimal
//! structure that fixes this: a typed free list that hands out recycled
//! objects and takes them back, reset per document by construction (the
//! arena lives inside the per-document evaluator and drops with it).
//!
//! This is deliberately not a bump allocator with lifetimes: the pooled
//! objects own their storage (`Vec`-backed bitsets and buffers), so
//! recycling them keeps their capacity warm, which is the entire win.

/// A typed free-list pool. `take_or` hands out a recycled object (or builds
/// a fresh one), `put` returns it for reuse.
#[derive(Debug)]
pub struct Arena<T> {
    free: Vec<T>,
}

impl<T> Arena<T> {
    /// An empty arena.
    pub fn new() -> Arena<T> {
        Arena { free: Vec::new() }
    }

    /// Takes a recycled object, or builds one with `fresh` if the pool is
    /// empty. The caller is responsible for clearing recycled state (pooled
    /// objects come back exactly as they were put).
    #[inline]
    pub fn take_or(&mut self, fresh: impl FnOnce() -> T) -> T {
        self.free.pop().unwrap_or_else(fresh)
    }

    /// Returns an object to the pool for reuse.
    #[inline]
    pub fn put(&mut self, value: T) {
        self.free.push(value);
    }

    /// Number of pooled objects currently available.
    pub fn len(&self) -> usize {
        self.free.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.free.is_empty()
    }

    /// Drops every pooled object (releasing their storage).
    pub fn reset(&mut self) {
        self.free.clear();
    }
}

impl<T> Default for Arena<T> {
    fn default() -> Self {
        Arena::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_recycles_put_objects() {
        let mut arena: Arena<Vec<u32>> = Arena::new();
        let mut v = arena.take_or(Vec::new);
        v.extend([1, 2, 3]);
        let capacity = v.capacity();
        v.clear();
        arena.put(v);
        assert_eq!(arena.len(), 1);
        let recycled = arena.take_or(|| panic!("must recycle"));
        assert!(recycled.is_empty());
        assert_eq!(recycled.capacity(), capacity, "capacity stays warm");
        assert!(arena.is_empty());
    }

    #[test]
    fn take_builds_fresh_when_empty() {
        let mut arena: Arena<String> = Arena::new();
        assert_eq!(arena.take_or(|| "fresh".to_string()), "fresh");
    }

    #[test]
    fn reset_releases_the_pool() {
        let mut arena: Arena<Vec<u8>> = Arena::new();
        arena.put(vec![1]);
        arena.put(vec![2]);
        assert_eq!(arena.len(), 2);
        arena.reset();
        assert!(arena.is_empty());
        assert_eq!(arena.take_or(Vec::new), Vec::<u8>::new());
    }
}
