//! Byte classes: compact sets of alphabet symbols.
//!
//! The paper works over an abstract finite alphabet Σ with single-symbol
//! transitions. For realistic extractors (emails, dates, log fields) the
//! compiled automata become much smaller if a single transition can match a
//! *set* of symbols; `ByteClass` provides that as a 256-bit set. Everything
//! expressible with byte classes desugars into a disjunction of single
//! symbols, so no semantics change.

use std::fmt;

/// A set of byte values, stored as a 256-bit bitmap.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ByteClass {
    bits: [u64; 4],
}

impl ByteClass {
    /// The empty class (matches nothing).
    pub const fn empty() -> Self {
        ByteClass { bits: [0; 4] }
    }

    /// The full class (matches every byte) — the `Σ` wildcard.
    pub const fn any() -> Self {
        ByteClass {
            bits: [u64::MAX; 4],
        }
    }

    /// A class containing a single byte.
    pub fn single(b: u8) -> Self {
        let mut c = ByteClass::empty();
        c.insert(b);
        c
    }

    /// A class containing an inclusive byte range.
    pub fn range(lo: u8, hi: u8) -> Self {
        let mut c = ByteClass::empty();
        let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
        for b in lo..=hi {
            c.insert(b);
        }
        c
    }

    /// A class containing exactly the given bytes.
    pub fn of(bytes: &[u8]) -> Self {
        let mut c = ByteClass::empty();
        for &b in bytes {
            c.insert(b);
        }
        c
    }

    /// ASCII letters `a-zA-Z`.
    pub fn ascii_alpha() -> Self {
        ByteClass::range(b'a', b'z').union(&ByteClass::range(b'A', b'Z'))
    }

    /// ASCII lowercase letters `a-z`.
    pub fn ascii_lower() -> Self {
        ByteClass::range(b'a', b'z')
    }

    /// ASCII uppercase letters `A-Z`.
    pub fn ascii_upper() -> Self {
        ByteClass::range(b'A', b'Z')
    }

    /// ASCII digits `0-9`.
    pub fn ascii_digit() -> Self {
        ByteClass::range(b'0', b'9')
    }

    /// ASCII letters, digits and underscore (the `\w` class).
    pub fn ascii_word() -> Self {
        ByteClass::ascii_alpha()
            .union(&ByteClass::ascii_digit())
            .union(&ByteClass::single(b'_'))
    }

    /// ASCII whitespace (space, tab, newline, carriage return).
    pub fn ascii_space() -> Self {
        ByteClass::of(b" \t\n\r")
    }

    /// Inserts a byte into the class.
    #[inline]
    pub fn insert(&mut self, b: u8) {
        self.bits[(b >> 6) as usize] |= 1u64 << (b & 63);
    }

    /// Whether the class contains `b`.
    #[inline]
    pub fn contains(&self, b: u8) -> bool {
        self.bits[(b >> 6) as usize] & (1u64 << (b & 63)) != 0
    }

    /// Number of bytes in the class.
    pub fn len(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the class is empty.
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&w| w == 0)
    }

    /// Set union.
    pub fn union(&self, other: &ByteClass) -> ByteClass {
        let mut out = *self;
        for i in 0..4 {
            out.bits[i] |= other.bits[i];
        }
        out
    }

    /// Set intersection.
    pub fn intersect(&self, other: &ByteClass) -> ByteClass {
        let mut out = *self;
        for i in 0..4 {
            out.bits[i] &= other.bits[i];
        }
        out
    }

    /// Set complement (with respect to all 256 byte values).
    pub fn complement(&self) -> ByteClass {
        let mut out = *self;
        for i in 0..4 {
            out.bits[i] = !out.bits[i];
        }
        out
    }

    /// Iterates over the bytes in the class in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = u8> + '_ {
        (0u16..256).filter_map(move |b| {
            let b = b as u8;
            if self.contains(b) {
                Some(b)
            } else {
                None
            }
        })
    }
}

impl fmt::Debug for ByteClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == ByteClass::any() {
            return write!(f, "[.]");
        }
        write!(f, "[")?;
        let mut bytes: Vec<u8> = self.iter().collect();
        if bytes.len() > 128 {
            // Print the complement for very dense classes.
            write!(f, "^")?;
            bytes = self.complement().iter().collect();
        }
        // Collapse consecutive runs into ranges.
        let mut i = 0;
        while i < bytes.len() {
            let start = bytes[i];
            let mut end = start;
            while i + 1 < bytes.len() && bytes[i + 1] == end + 1 {
                i += 1;
                end = bytes[i];
            }
            let show = |f: &mut fmt::Formatter<'_>, b: u8| -> fmt::Result {
                if b.is_ascii_graphic() {
                    write!(f, "{}", b as char)
                } else {
                    write!(f, "\\x{b:02x}")
                }
            };
            show(f, start)?;
            if end > start {
                write!(f, "-")?;
                show(f, end)?;
            }
            i += 1;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction() {
        let c = ByteClass::single(b'a');
        assert!(c.contains(b'a'));
        assert!(!c.contains(b'b'));
        assert_eq!(c.len(), 1);

        let d = ByteClass::range(b'0', b'9');
        assert_eq!(d.len(), 10);
        assert!(d.contains(b'5'));
        assert!(!d.contains(b'a'));

        assert_eq!(ByteClass::any().len(), 256);
        assert!(ByteClass::empty().is_empty());
    }

    #[test]
    fn set_operations() {
        let alpha = ByteClass::ascii_alpha();
        let digit = ByteClass::ascii_digit();
        assert_eq!(alpha.len(), 52);
        assert!(alpha.intersect(&digit).is_empty());
        assert_eq!(alpha.union(&digit).len(), 62);
        assert_eq!(alpha.complement().complement(), alpha);
        assert_eq!(alpha.complement().len(), 256 - 52);
    }

    #[test]
    fn iteration_is_sorted() {
        let c = ByteClass::of(b"zax");
        let v: Vec<u8> = c.iter().collect();
        assert_eq!(v, vec![b'a', b'x', b'z']);
    }

    #[test]
    fn debug_rendering() {
        assert_eq!(format!("{:?}", ByteClass::range(b'a', b'd')), "[a-d]");
        assert_eq!(format!("{:?}", ByteClass::any()), "[.]");
        assert_eq!(format!("{:?}", ByteClass::of(b"ab0")), "[0a-b]");
    }

    #[test]
    fn word_and_space_classes() {
        assert!(ByteClass::ascii_word().contains(b'_'));
        assert!(ByteClass::ascii_word().contains(b'7'));
        assert!(!ByteClass::ascii_word().contains(b' '));
        assert!(ByteClass::ascii_space().contains(b'\t'));
        assert_eq!(ByteClass::ascii_space().len(), 4);
    }
}
