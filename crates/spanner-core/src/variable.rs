//! Capture variables and ordered variable sets.

use crate::interner::{Interner, VarId};
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

/// A capture variable (an element of the countably infinite set `Vars`).
///
/// Variables are identified by name, but every name is registered in the
/// process-wide [`Interner`] at construction time: equality and hashing work
/// on the interned [`VarId`] (a `u32`), never on the string. Cloning is
/// cheap (one `Arc` bump), and the *ordering* is still the lexicographic
/// ordering of names, which gives every structure built on top of variables
/// a deterministic iteration order across runs.
#[derive(Clone)]
pub struct Variable {
    name: Arc<str>,
    id: VarId,
}

impl Variable {
    /// Creates (or references) the variable with the given name.
    pub fn new(name: impl AsRef<str>) -> Self {
        let (id, name) = Interner::intern(name.as_ref());
        Variable { name, id }
    }

    /// The variable's name.
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The interned id of the variable (process-wide, not stable across
    /// runs — use the name for anything serialized).
    #[inline]
    pub fn id(&self) -> VarId {
        self.id
    }

    /// Reconstructs the variable behind an interned id.
    pub fn from_id(id: VarId) -> Variable {
        Variable {
            name: Interner::resolve(id),
            id,
        }
    }
}

impl PartialEq for Variable {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id
    }
}

impl Eq for Variable {}

impl std::hash::Hash for Variable {
    #[inline]
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.id.hash(state);
    }
}

impl Ord for Variable {
    #[inline]
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        if self.id == other.id {
            std::cmp::Ordering::Equal
        } else {
            self.name.cmp(&other.name)
        }
    }
}

impl PartialOrd for Variable {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Debug for Variable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "${}", self.name)
    }
}

impl fmt::Display for Variable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

impl From<&str> for Variable {
    fn from(s: &str) -> Self {
        Variable::new(s)
    }
}

impl From<String> for Variable {
    fn from(s: String) -> Self {
        Variable::new(s)
    }
}

/// Convenience constructor: `var("x")`.
pub fn var(name: impl AsRef<str>) -> Variable {
    Variable::new(name)
}

/// A finite, ordered set of variables.
///
/// `VarSet` is used for declared variable sets of spanners (`Vars(α)`,
/// `Vars(A)`), for projection lists, and for the shared-variable sets that
/// parameterize the FPT results of the paper.
#[derive(Clone, PartialEq, Eq, Default, Hash, PartialOrd, Ord)]
pub struct VarSet {
    vars: BTreeSet<Variable>,
}

impl VarSet {
    /// The empty variable set.
    pub fn new() -> Self {
        VarSet::default()
    }

    /// Builds a variable set from anything iterable over variables.
    ///
    /// Unlike the `FromIterator` impl, this accepts anything convertible
    /// into a variable (`&str`, `String`, …), hence the inherent method.
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter<I, V>(iter: I) -> Self
    where
        I: IntoIterator<Item = V>,
        V: Into<Variable>,
    {
        VarSet {
            vars: iter.into_iter().map(Into::into).collect(),
        }
    }

    /// Inserts a variable; returns `true` if it was not already present.
    pub fn insert(&mut self, v: impl Into<Variable>) -> bool {
        self.vars.insert(v.into())
    }

    /// Removes a variable; returns `true` if it was present.
    pub fn remove(&mut self, v: &Variable) -> bool {
        self.vars.remove(v)
    }

    /// Whether the set contains `v`.
    #[inline]
    pub fn contains(&self, v: &Variable) -> bool {
        self.vars.contains(v)
    }

    /// Number of variables.
    #[inline]
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }

    /// Iterates over the variables in lexicographic order.
    pub fn iter(&self) -> impl Iterator<Item = &Variable> + '_ {
        self.vars.iter()
    }

    /// Set union.
    pub fn union(&self, other: &VarSet) -> VarSet {
        VarSet {
            vars: self.vars.union(&other.vars).cloned().collect(),
        }
    }

    /// Set intersection — the "common variables" of the paper's FPT bounds.
    pub fn intersection(&self, other: &VarSet) -> VarSet {
        VarSet {
            vars: self.vars.intersection(&other.vars).cloned().collect(),
        }
    }

    /// Set difference.
    pub fn difference(&self, other: &VarSet) -> VarSet {
        VarSet {
            vars: self.vars.difference(&other.vars).cloned().collect(),
        }
    }

    /// Whether the two sets are disjoint.
    pub fn is_disjoint(&self, other: &VarSet) -> bool {
        self.vars.is_disjoint(&other.vars)
    }

    /// Whether `self ⊆ other`.
    pub fn is_subset(&self, other: &VarSet) -> bool {
        self.vars.is_subset(&other.vars)
    }

    /// Returns the variables as a vector (lexicographic order).
    pub fn to_vec(&self) -> Vec<Variable> {
        self.vars.iter().cloned().collect()
    }

    /// Iterates over all subsets of this set (2^n of them).
    ///
    /// Used by the ad-hoc difference construction of Lemma 4.2, where the
    /// set is the (bounded) set of common variables.
    pub fn subsets(&self) -> impl Iterator<Item = VarSet> + '_ {
        let elems: Vec<Variable> = self.to_vec();
        let n = elems.len();
        assert!(
            n < 32,
            "subsets() is only intended for small (bounded) sets"
        );
        (0u32..(1u32 << n)).map(move |mask| {
            VarSet::from_iter(
                elems
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| mask & (1 << i) != 0)
                    .map(|(_, v)| v.clone()),
            )
        })
    }
}

impl fmt::Debug for VarSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.vars.iter()).finish()
    }
}

impl FromIterator<Variable> for VarSet {
    fn from_iter<I: IntoIterator<Item = Variable>>(iter: I) -> Self {
        VarSet {
            vars: iter.into_iter().collect(),
        }
    }
}

impl<'a> IntoIterator for &'a VarSet {
    type Item = &'a Variable;
    type IntoIter = std::collections::btree_set::Iter<'a, Variable>;
    fn into_iter(self) -> Self::IntoIter {
        self.vars.iter()
    }
}

impl IntoIterator for VarSet {
    type Item = Variable;
    type IntoIter = std::collections::btree_set::IntoIter<Variable>;
    fn into_iter(self) -> Self::IntoIter {
        self.vars.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variable_identity() {
        let x1 = Variable::new("x");
        let x2 = var("x");
        let y = var("y");
        assert_eq!(x1, x2);
        assert_ne!(x1, y);
        assert_eq!(x1.name(), "x");
        assert_eq!(format!("{x1:?}"), "$x");
    }

    #[test]
    fn interned_ids_follow_names() {
        let x1 = var("x");
        let x2 = var("x");
        let y = var("y");
        assert_eq!(x1.id(), x2.id());
        assert_ne!(x1.id(), y.id());
        let back = Variable::from_id(x1.id());
        assert_eq!(back, x1);
        assert_eq!(back.name(), "x");
    }

    #[test]
    fn varset_ops() {
        let a = VarSet::from_iter(["x", "y", "z"]);
        let b = VarSet::from_iter(["y", "z", "w"]);
        assert_eq!(a.len(), 3);
        assert!(a.contains(&var("x")));
        assert_eq!(a.intersection(&b), VarSet::from_iter(["y", "z"]));
        assert_eq!(a.union(&b).len(), 4);
        assert_eq!(a.difference(&b), VarSet::from_iter(["x"]));
        assert!(!a.is_disjoint(&b));
        assert!(VarSet::from_iter(["x"]).is_subset(&a));
        assert!(a.is_disjoint(&VarSet::from_iter(["q"])));
    }

    #[test]
    fn varset_iteration_is_sorted() {
        let a = VarSet::from_iter(["zz", "aa", "mm"]);
        let names: Vec<_> = a.iter().map(|v| v.name().to_string()).collect();
        assert_eq!(names, vec!["aa", "mm", "zz"]);
    }

    #[test]
    fn subsets_enumeration() {
        let a = VarSet::from_iter(["x", "y"]);
        let subs: Vec<_> = a.subsets().collect();
        assert_eq!(subs.len(), 4);
        assert!(subs.contains(&VarSet::new()));
        assert!(subs.contains(&VarSet::from_iter(["x", "y"])));
        assert!(subs.contains(&VarSet::from_iter(["x"])));
        assert!(subs.contains(&VarSet::from_iter(["y"])));
    }
}
