//! Spans: intervals of positions within a document.

use std::fmt;

/// A span `[start, end⟩` of a document, using the paper's 1-based convention.
///
/// For a document of length `n`, a span satisfies `1 ≤ start ≤ end ≤ n + 1`.
/// The span denotes the substring `d[start, end⟩ = σ_start ⋯ σ_{end-1}`.
/// `[i, i⟩` is an *empty* span located at position `i`; empty spans at
/// different positions are different spans.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Span {
    /// 1-based start position (inclusive).
    pub start: u32,
    /// 1-based end position (exclusive).
    pub end: u32,
}

impl Span {
    /// Creates a new span `[start, end⟩`.
    ///
    /// # Panics
    ///
    /// Panics if `start == 0` or `start > end` (the paper requires
    /// `1 ≤ start ≤ end`).
    #[inline]
    pub fn new(start: u32, end: u32) -> Self {
        assert!(start >= 1, "span positions are 1-based; got start = 0");
        assert!(
            start <= end,
            "invalid span [{start}, {end}⟩: start must not exceed end"
        );
        Span { start, end }
    }

    /// Creates a span from a 0-based, end-exclusive byte range.
    #[inline]
    pub fn from_range(range: std::ops::Range<usize>) -> Self {
        Span::new(range.start as u32 + 1, range.end as u32 + 1)
    }

    /// The 0-based, end-exclusive byte range covered by this span.
    #[inline]
    pub fn as_range(&self) -> std::ops::Range<usize> {
        (self.start as usize - 1)..(self.end as usize - 1)
    }

    /// The empty span `[pos, pos⟩`.
    #[inline]
    pub fn empty(pos: u32) -> Self {
        Span::new(pos, pos)
    }

    /// Length (number of symbols covered) of the span.
    #[inline]
    pub fn len(&self) -> usize {
        (self.end - self.start) as usize
    }

    /// Whether the span covers no symbols.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Whether the span fits into a document of length `doc_len`
    /// (i.e. `end ≤ doc_len + 1`).
    #[inline]
    pub fn fits(&self, doc_len: usize) -> bool {
        (self.end as usize) <= doc_len + 1
    }

    /// Whether `other` is entirely contained in `self`.
    #[inline]
    pub fn contains(&self, other: &Span) -> bool {
        self.start <= other.start && other.end <= self.end
    }

    /// Whether the two spans overlap in at least one position of content.
    ///
    /// Empty spans carry no content, so they never overlap anything.
    #[inline]
    pub fn overlaps(&self, other: &Span) -> bool {
        !self.is_empty() && !other.is_empty() && self.start < other.end && other.start < self.end
    }

    /// Concatenates two adjacent spans `[i, j⟩` and `[j, k⟩` into `[i, k⟩`.
    ///
    /// Returns `None` if the spans are not adjacent.
    #[inline]
    pub fn concat(&self, other: &Span) -> Option<Span> {
        if self.end == other.start {
            Some(Span::new(self.start, other.end))
        } else {
            None
        }
    }
}

impl fmt::Debug for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}⟩", self.start, self.end)
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}⟩", self.start, self.end)
    }
}

impl From<(u32, u32)> for Span {
    fn from((start, end): (u32, u32)) -> Self {
        Span::new(start, end)
    }
}

/// Iterates over every span of a document of length `n`, in lexicographic
/// order of `(start, end)`. There are `(n + 1)(n + 2) / 2` of them.
pub fn all_spans(doc_len: usize) -> impl Iterator<Item = Span> {
    let n = doc_len as u32;
    (1..=n + 1).flat_map(move |i| (i..=n + 1).map(move |j| Span::new(i, j)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_basics() {
        let s = Span::new(1, 4);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(s.as_range(), 0..3);
        assert_eq!(Span::from_range(0..3), s);
        assert_eq!(format!("{s}"), "[1, 4⟩");
    }

    #[test]
    fn empty_spans_at_distinct_positions_differ() {
        assert_ne!(Span::empty(2), Span::empty(3));
        assert!(Span::empty(2).is_empty());
        assert_eq!(Span::empty(2).len(), 0);
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn zero_start_is_rejected() {
        let _ = Span::new(0, 1);
    }

    #[test]
    #[should_panic(expected = "invalid span")]
    fn backwards_span_is_rejected() {
        let _ = Span::new(3, 2);
    }

    #[test]
    fn containment_and_overlap() {
        let outer = Span::new(1, 10);
        let inner = Span::new(3, 5);
        assert!(outer.contains(&inner));
        assert!(!inner.contains(&outer));
        assert!(outer.overlaps(&inner));
        assert!(!Span::new(1, 3).overlaps(&Span::new(3, 5)));
        // An empty span never overlaps anything (no content).
        assert!(!Span::empty(4).overlaps(&Span::new(1, 10)));
    }

    #[test]
    fn concat_adjacent() {
        assert_eq!(
            Span::new(1, 3).concat(&Span::new(3, 7)),
            Some(Span::new(1, 7))
        );
        assert_eq!(Span::new(1, 3).concat(&Span::new(4, 7)), None);
    }

    #[test]
    fn all_spans_count() {
        // (n+1)(n+2)/2 spans for a document of length n.
        for n in 0..6 {
            let count = all_spans(n).count();
            assert_eq!(count, (n + 1) * (n + 2) / 2, "n = {n}");
        }
        let spans: Vec<_> = all_spans(1).collect();
        assert_eq!(
            spans,
            vec![Span::new(1, 1), Span::new(1, 2), Span::new(2, 2)]
        );
    }

    #[test]
    fn fits_document() {
        assert!(Span::new(1, 4).fits(3));
        assert!(!Span::new(1, 5).fits(3));
        assert!(Span::empty(4).fits(3));
        assert!(!Span::empty(5).fits(3));
    }
}
