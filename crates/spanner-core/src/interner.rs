//! Variable-name interning: the foundation of the compiled evaluation layer.
//!
//! Every [`crate::Variable`] is registered in a process-wide [`Interner`]
//! that assigns it a dense [`VarId`]. All hot-path comparisons, hashing, and
//! lookups on variables then work on `u32` ids instead of strings; names are
//! only touched at construction and display time.
//!
//! Two facts make a *global* interner the right design:
//!
//! 1. mappings produced by different automata must be comparable (the algebra
//!    joins and subtracts relations coming from independently compiled
//!    spanners), so the id space has to be shared;
//! 2. ids are only meaningful within a process, and nothing in the workspace
//!    serializes them — orderings that must be reproducible across runs
//!    (variable sets, debug output) sort by *name*, never by id.
//!
//! [`VarTable`] is the per-automaton companion: it maps the (few) variables
//! of one automaton to a dense local index `0..k`, which is what bitset
//! representations like `spanner-enum`'s operation sets key on.

use std::collections::HashMap;
use std::sync::{Arc, OnceLock, RwLock};

/// The interned identifier of a variable name (process-wide, dense).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct VarId(pub u32);

impl VarId {
    /// The raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

struct InternerInner {
    names: Vec<Arc<str>>,
    ids: HashMap<Arc<str>, u32>,
}

fn interner() -> &'static RwLock<InternerInner> {
    static INTERNER: OnceLock<RwLock<InternerInner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        RwLock::new(InternerInner {
            names: Vec::new(),
            ids: HashMap::new(),
        })
    })
}

/// The process-wide variable-name interner.
///
/// All methods are associated functions; the interner itself is a global
/// behind a `RwLock` (reads — the common case after warm-up — do not
/// contend).
pub struct Interner;

impl Interner {
    /// Interns `name`, returning its id and the shared name storage.
    pub fn intern(name: &str) -> (VarId, Arc<str>) {
        // Fast path: already interned.
        {
            let inner = interner().read().expect("interner poisoned");
            if let Some((stored, &id)) = inner.ids.get_key_value(name) {
                return (VarId(id), Arc::clone(stored));
            }
        }
        let mut inner = interner().write().expect("interner poisoned");
        // Re-check: another thread may have interned it meanwhile.
        if let Some((stored, &id)) = inner.ids.get_key_value(name) {
            return (VarId(id), Arc::clone(stored));
        }
        let id = u32::try_from(inner.names.len()).expect("interner overflow");
        let stored: Arc<str> = Arc::from(name);
        inner.names.push(Arc::clone(&stored));
        inner.ids.insert(Arc::clone(&stored), id);
        (VarId(id), stored)
    }

    /// The name behind an id.
    ///
    /// # Panics
    ///
    /// Panics if the id was not produced by [`Interner::intern`].
    pub fn resolve(id: VarId) -> Arc<str> {
        let inner = interner().read().expect("interner poisoned");
        Arc::clone(&inner.names[id.index()])
    }

    /// Number of distinct names interned so far.
    pub fn len() -> usize {
        interner().read().expect("interner poisoned").names.len()
    }
}

/// A per-automaton table mapping its variables to a dense local index.
///
/// The variables are stored in *name* order (deterministic across runs); the
/// table additionally keeps an id-sorted index so the hot-path lookup
/// `VarId → local index` is a `u32` binary search with no string
/// comparisons.
#[derive(Debug, Clone, Default)]
pub struct VarTable {
    /// Variables in name order; the position is the local index.
    by_name: Vec<crate::Variable>,
    /// `(id, local index)` pairs sorted by id.
    by_id: Vec<(VarId, u32)>,
}

impl VarTable {
    /// Builds the table for the given variables (deduplicated, name order).
    pub fn new<I>(vars: I) -> VarTable
    where
        I: IntoIterator,
        I::Item: Into<crate::Variable>,
    {
        let mut by_name: Vec<crate::Variable> = vars.into_iter().map(Into::into).collect();
        by_name.sort();
        by_name.dedup();
        let mut by_id: Vec<(VarId, u32)> = by_name
            .iter()
            .enumerate()
            .map(|(i, v)| (v.id(), i as u32))
            .collect();
        by_id.sort_unstable();
        VarTable { by_name, by_id }
    }

    /// Number of variables in the table.
    #[inline]
    pub fn len(&self) -> usize {
        self.by_name.len()
    }

    /// Whether the table is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.by_name.is_empty()
    }

    /// The local index of a variable, if present (no string comparisons).
    #[inline]
    pub fn index_of(&self, v: &crate::Variable) -> Option<usize> {
        self.index_of_id(v.id())
    }

    /// The local index of an interned id, if present.
    #[inline]
    pub fn index_of_id(&self, id: VarId) -> Option<usize> {
        self.by_id
            .binary_search_by_key(&id, |&(i, _)| i)
            .ok()
            .map(|pos| self.by_id[pos].1 as usize)
    }

    /// The variable at a local index.
    #[inline]
    pub fn var(&self, index: usize) -> &crate::Variable {
        &self.by_name[index]
    }

    /// The variables in local-index (= name) order.
    #[inline]
    pub fn vars(&self) -> &[crate::Variable] {
        &self.by_name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::variable::var;

    #[test]
    fn interning_is_idempotent() {
        let (a1, n1) = Interner::intern("interner_test_a");
        let (a2, n2) = Interner::intern("interner_test_a");
        let (b, _) = Interner::intern("interner_test_b");
        assert_eq!(a1, a2);
        assert_eq!(&*n1, "interner_test_a");
        assert!(Arc::ptr_eq(&n1, &n2));
        assert_ne!(a1, b);
        assert_eq!(&*Interner::resolve(b), "interner_test_b");
        assert!(Interner::len() >= 2);
    }

    #[test]
    fn var_table_indexing() {
        let t = VarTable::new(["zz", "aa", "mm", "aa"]);
        assert_eq!(t.len(), 3);
        assert_eq!(t.index_of(&var("aa")), Some(0));
        assert_eq!(t.index_of(&var("mm")), Some(1));
        assert_eq!(t.index_of(&var("zz")), Some(2));
        assert_eq!(t.index_of(&var("interner_absent")), None);
        assert_eq!(t.var(1), &var("mm"));
        assert_eq!(t.vars().len(), 3);
        assert!(!t.is_empty());
        assert!(VarTable::new(Vec::<crate::Variable>::new()).is_empty());
    }

    #[test]
    fn var_table_id_lookup_matches_name_lookup() {
        let t = VarTable::new(["x", "y", "z"]);
        for v in ["x", "y", "z"] {
            let v = var(v);
            assert_eq!(t.index_of(&v), t.index_of_id(v.id()));
        }
    }
}
