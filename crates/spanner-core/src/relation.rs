//! Materialized relations of mappings and the algebra of Section 2.4.
//!
//! `MappingSet` implements the SPARQL-style operators — union, projection,
//! natural join, and difference — directly on materialized sets of mappings.
//! These definitions *are* the semantics of the paper's algebra; every
//! automaton-level compilation in the workspace is tested against them.

use crate::fxhash::{FxHashMap, FxHashSet};
use crate::mapping::Mapping;
use crate::span::Span;
use crate::variable::{VarSet, Variable};
use std::collections::BTreeSet;
use std::fmt;

/// A finite set of mappings — the result `P(d)` of applying a schemaless
/// spanner `P` to a document `d`.
#[derive(Clone, PartialEq, Eq, Default)]
pub struct MappingSet {
    mappings: BTreeSet<Mapping>,
}

impl MappingSet {
    /// The empty relation.
    pub fn new() -> Self {
        MappingSet::default()
    }

    /// A relation containing only the empty mapping (the unit of the join).
    pub fn unit() -> Self {
        let mut s = MappingSet::new();
        s.insert(Mapping::new());
        s
    }

    /// Builds a relation from an iterator of mappings (duplicates removed).
    ///
    /// This is the sorted-vec bulk path: the mappings are collected into a
    /// vector, sorted, and deduplicated, and the ordered set is built from
    /// the sorted run in one pass — much cheaper than per-element ordered
    /// inserts when the input is large (the enumerator and the algebra
    /// operators all materialize through here).
    pub fn from_mappings<I: IntoIterator<Item = Mapping>>(iter: I) -> Self {
        let mut v: Vec<Mapping> = iter.into_iter().collect();
        v.sort_unstable();
        v.dedup();
        MappingSet {
            mappings: BTreeSet::from_iter(v),
        }
    }

    /// Inserts a mapping; returns `true` if it was not already present.
    pub fn insert(&mut self, m: Mapping) -> bool {
        self.mappings.insert(m)
    }

    /// Whether the relation contains `m`.
    pub fn contains(&self, m: &Mapping) -> bool {
        self.mappings.contains(m)
    }

    /// Number of mappings in the relation.
    #[inline]
    pub fn len(&self) -> usize {
        self.mappings.len()
    }

    /// Whether the relation is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.mappings.is_empty()
    }

    /// Iterates over the mappings in a deterministic order.
    pub fn iter(&self) -> impl Iterator<Item = &Mapping> + '_ {
        self.mappings.iter()
    }

    /// The union of all mapping domains occurring in the relation.
    pub fn active_domain(&self) -> VarSet {
        let mut out = VarSet::new();
        for m in &self.mappings {
            out = out.union(&m.domain());
        }
        out
    }

    /// The degree of the relation: the maximum cardinality of any mapping
    /// (Section 5 uses the supremum over all documents).
    pub fn degree(&self) -> usize {
        self.mappings.iter().map(Mapping::len).max().unwrap_or(0)
    }

    /// Union: `P₁ ∪ P₂` (set union of the mapping sets).
    pub fn union(&self, other: &MappingSet) -> MappingSet {
        MappingSet {
            mappings: self.mappings.union(&other.mappings).cloned().collect(),
        }
    }

    /// Projection: `π_Y P` restricts every mapping to `Y ∩ dom(µ)`.
    pub fn project(&self, vars: &VarSet) -> MappingSet {
        MappingSet::from_mappings(self.mappings.iter().map(|m| m.restrict(vars)))
    }

    /// Natural join: all unions `µ₁ ∪ µ₂` of compatible pairs.
    ///
    /// When every mapping on both sides binds all the *common* variables
    /// (the schema-based situation, and the common case for compiled join
    /// outputs), this runs as a hash join keyed on the common-variable span
    /// vector — `O(|P₁| + |P₂| + output)` instead of the quadratic
    /// pair scan. Schemaless inputs where some mapping omits a common
    /// variable fall back to the nested-loop evaluation, whose semantics
    /// (missing variables are wildcards) a plain hash key cannot express.
    pub fn join(&self, other: &MappingSet) -> MappingSet {
        let common: Vec<Variable> = self
            .active_domain()
            .intersection(&other.active_domain())
            .to_vec();
        if common.is_empty() {
            // Disjoint active domains: every pair is compatible.
            let mut out = Vec::with_capacity(self.len() * other.len());
            for m1 in &self.mappings {
                for m2 in &other.mappings {
                    out.push(m1.union(m2).expect("disjoint domains are compatible"));
                }
            }
            return MappingSet::from_mappings(out);
        }
        let total = |m: &Mapping| common.iter().all(|v| m.contains(v));
        if self.mappings.iter().all(total) && other.mappings.iter().all(total) {
            let key = |m: &Mapping| -> Vec<Span> {
                common
                    .iter()
                    .map(|v| m.get(v).expect("checked total"))
                    .collect()
            };
            // Build on the smaller side, probe with the larger.
            let (build, probe) = if self.len() <= other.len() {
                (&self.mappings, &other.mappings)
            } else {
                (&other.mappings, &self.mappings)
            };
            let mut buckets: FxHashMap<Vec<Span>, Vec<&Mapping>> = FxHashMap::default();
            for m in build {
                buckets.entry(key(m)).or_default().push(m);
            }
            let mut out = Vec::new();
            for m1 in probe {
                if let Some(matches) = buckets.get(&key(m1)) {
                    for m2 in matches {
                        out.push(m1.union(m2).expect("equal on all common variables"));
                    }
                }
            }
            return MappingSet::from_mappings(out);
        }
        // Schemaless fallback: nested loop with the compatibility predicate.
        let mut out = Vec::new();
        for m1 in &self.mappings {
            for m2 in &other.mappings {
                if let Some(u) = m1.union(m2) {
                    out.push(u);
                }
            }
        }
        MappingSet::from_mappings(out)
    }

    /// Difference: mappings of `self` that are **incompatible with every**
    /// mapping of `other` (the SPARQL-style `MINUS`; Section 2.4).
    ///
    /// Note that this is *not* set difference: a mapping `µ₁` is removed as
    /// soon as some `µ₂ ∈ other` is compatible with it — in particular any
    /// `µ₂` with a disjoint domain removes it.
    pub fn difference(&self, other: &MappingSet) -> MappingSet {
        MappingSet::from_mappings(
            self.mappings
                .iter()
                .filter(|m1| !other.mappings.iter().any(|m2| m1.is_compatible_with(m2)))
                .cloned(),
        )
    }

    /// The anti-join over a probe side: semantically identical to
    /// [`MappingSet::difference`], but evaluated with a hash probe when both
    /// relations bind all their common variables (the schema-based case, and
    /// the common case for compiled operator outputs): the probe side is
    /// hashed once on its common-variable span vector and every mapping of
    /// `self` survives iff its own key misses — `O(|self| + |other|)`
    /// instead of the quadratic compatibility scan. Schemaless inputs where
    /// a common variable may be absent fall back to the nested-loop
    /// evaluation, whose "missing variable = wildcard" semantics a hash key
    /// cannot express.
    ///
    /// [`MappingSet::difference`] stays the deliberately naive oracle; this
    /// is the production operator the physical executor runs on.
    pub fn anti_join(&self, other: &MappingSet) -> MappingSet {
        if other.is_empty() {
            return self.clone();
        }
        let common = self.active_domain().intersection(&other.active_domain());
        if common.is_empty() {
            // No variable occurs on both sides: every pair of mappings has
            // disjoint domains and is therefore compatible, so a nonempty
            // probe side removes everything.
            return MappingSet::new();
        }
        let total = |m: &Mapping| common.iter().all(|v| m.contains(v));
        if self.mappings.iter().all(total) && other.mappings.iter().all(total) {
            let key = |m: &Mapping| -> Vec<Span> {
                common
                    .iter()
                    .map(|v| m.get(v).expect("checked total"))
                    .collect()
            };
            let probe: FxHashSet<Vec<Span>> = other.mappings.iter().map(key).collect();
            return MappingSet {
                mappings: self
                    .mappings
                    .iter()
                    .filter(|m| !probe.contains(&key(m)))
                    .cloned()
                    .collect(),
            };
        }
        self.difference(other)
    }

    /// A [`MappingSetBuilder`] accumulating mappings for one bulk
    /// sort-and-dedup build (the shape every executor operator materializes
    /// through).
    pub fn builder() -> MappingSetBuilder {
        MappingSetBuilder::default()
    }

    /// Plain set difference of the underlying mapping sets (not the paper's
    /// difference operator; provided for tests and diagnostics).
    pub fn set_minus(&self, other: &MappingSet) -> MappingSet {
        MappingSet {
            mappings: self.mappings.difference(&other.mappings).cloned().collect(),
        }
    }

    /// Keeps only the mappings whose domain is exactly `vars`
    /// (the schema-based restriction).
    pub fn filter_total_over(&self, vars: &VarSet) -> MappingSet {
        MappingSet::from_mappings(
            self.mappings
                .iter()
                .filter(|m| m.is_total_over(vars))
                .cloned(),
        )
    }

    /// Returns the mappings as a vector in deterministic order.
    pub fn to_vec(&self) -> Vec<Mapping> {
        self.mappings.iter().cloned().collect()
    }
}

/// An incremental [`MappingSet`] accumulator: operators push mappings as
/// they produce them and pay the sort-and-dedup exactly once at
/// [`MappingSetBuilder::finish`] (the same bulk path as
/// [`MappingSet::from_mappings`], without forcing producers through an
/// iterator shape).
#[derive(Debug, Default, Clone)]
pub struct MappingSetBuilder {
    mappings: Vec<Mapping>,
}

impl MappingSetBuilder {
    /// Appends one mapping (duplicates are removed at build time).
    pub fn push(&mut self, m: Mapping) {
        self.mappings.push(m);
    }

    /// Number of mappings accumulated so far (duplicates still counted).
    pub fn len(&self) -> usize {
        self.mappings.len()
    }

    /// Whether nothing has been accumulated.
    pub fn is_empty(&self) -> bool {
        self.mappings.is_empty()
    }

    /// Builds the deduplicated relation.
    pub fn finish(self) -> MappingSet {
        MappingSet::from_mappings(self.mappings)
    }
}

impl Extend<Mapping> for MappingSetBuilder {
    fn extend<I: IntoIterator<Item = Mapping>>(&mut self, iter: I) {
        self.mappings.extend(iter);
    }
}

impl fmt::Debug for MappingSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.mappings.iter()).finish()
    }
}

impl FromIterator<Mapping> for MappingSet {
    fn from_iter<I: IntoIterator<Item = Mapping>>(iter: I) -> Self {
        MappingSet::from_mappings(iter)
    }
}

impl<'a> IntoIterator for &'a MappingSet {
    type Item = &'a Mapping;
    type IntoIter = std::collections::btree_set::Iter<'a, Mapping>;
    fn into_iter(self) -> Self::IntoIter {
        self.mappings.iter()
    }
}

impl IntoIterator for MappingSet {
    type Item = Mapping;
    type IntoIter = std::collections::btree_set::IntoIter<Mapping>;
    fn into_iter(self) -> Self::IntoIter {
        self.mappings.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Span;

    fn sp(a: u32, b: u32) -> Span {
        Span::new(a, b)
    }

    fn m(pairs: &[(&str, (u32, u32))]) -> Mapping {
        Mapping::from_pairs(pairs.iter().map(|(v, (a, b))| (*v, sp(*a, *b))))
    }

    #[test]
    fn insert_and_dedup() {
        let mut s = MappingSet::new();
        assert!(s.insert(m(&[("x", (1, 2))])));
        assert!(!s.insert(m(&[("x", (1, 2))])));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn union_is_set_union() {
        let a = MappingSet::from_mappings([m(&[("x", (1, 2))]), m(&[("x", (2, 3))])]);
        let b = MappingSet::from_mappings([m(&[("x", (2, 3))]), m(&[("y", (1, 1))])]);
        let u = a.union(&b);
        assert_eq!(u.len(), 3);
    }

    #[test]
    fn projection_restricts_domains() {
        let a =
            MappingSet::from_mappings([m(&[("x", (1, 2)), ("y", (2, 3))]), m(&[("y", (1, 1))])]);
        let p = a.project(&VarSet::from_iter(["x"]));
        // The second mapping becomes the empty mapping.
        assert_eq!(p.len(), 2);
        assert!(p.contains(&m(&[("x", (1, 2))])));
        assert!(p.contains(&Mapping::new()));
    }

    #[test]
    fn join_combines_compatible_mappings() {
        let a =
            MappingSet::from_mappings([m(&[("x", (1, 2)), ("y", (2, 3))]), m(&[("x", (1, 3))])]);
        let b =
            MappingSet::from_mappings([m(&[("y", (2, 3)), ("z", (3, 3))]), m(&[("y", (1, 2))])]);
        let j = a.join(&b);
        // (x,y) joins with (y,z) on equal y; (x,y) with y=[2,3⟩ does not join
        // with y=[1,2⟩; (x) joins with both b-mappings (no common vars).
        assert!(j.contains(&m(&[("x", (1, 2)), ("y", (2, 3)), ("z", (3, 3))])));
        assert!(j.contains(&m(&[("x", (1, 3)), ("y", (2, 3)), ("z", (3, 3))])));
        assert!(j.contains(&m(&[("x", (1, 3)), ("y", (1, 2))])));
        assert_eq!(j.len(), 3);
    }

    #[test]
    fn join_with_unit_is_identity() {
        let a = MappingSet::from_mappings([m(&[("x", (1, 2))]), m(&[("y", (2, 2))])]);
        assert_eq!(a.join(&MappingSet::unit()), a);
        assert_eq!(MappingSet::unit().join(&a), a);
        assert!(a.join(&MappingSet::new()).is_empty());
    }

    #[test]
    fn difference_uses_compatibility_not_equality() {
        // µ1 with domain {x} is compatible with µ2 with domain {y}
        // (disjoint domains), so it is removed — this is the subtlety the
        // paper highlights at the start of the Lemma 4.2 proof.
        let a = MappingSet::from_mappings([m(&[("x", (1, 2))])]);
        let b = MappingSet::from_mappings([m(&[("y", (5, 6))])]);
        assert!(a.difference(&b).is_empty());

        // But an incompatible mapping survives.
        let c = MappingSet::from_mappings([m(&[("x", (2, 3))])]);
        assert_eq!(a.difference(&c), a);

        // Difference against the empty relation is the identity.
        assert_eq!(a.difference(&MappingSet::new()), a);

        // Anything minus a relation containing the empty mapping is empty
        // (the empty mapping is compatible with everything).
        assert!(a.difference(&MappingSet::unit()).is_empty());
    }

    #[test]
    fn set_minus_differs_from_difference() {
        let a = MappingSet::from_mappings([m(&[("x", (1, 2))])]);
        let b = MappingSet::from_mappings([m(&[("y", (5, 6))])]);
        assert_eq!(a.set_minus(&b), a);
        assert!(a.difference(&b).is_empty());
    }

    #[test]
    fn active_domain_and_degree() {
        let a = MappingSet::from_mappings([
            m(&[("x", (1, 2)), ("y", (2, 3))]),
            m(&[("z", (1, 1))]),
            Mapping::new(),
        ]);
        assert_eq!(a.active_domain(), VarSet::from_iter(["x", "y", "z"]));
        assert_eq!(a.degree(), 2);
        assert_eq!(MappingSet::new().degree(), 0);
    }

    #[test]
    fn filter_total_over_selects_schema_based_mappings() {
        let a =
            MappingSet::from_mappings([m(&[("x", (1, 2)), ("y", (2, 3))]), m(&[("x", (1, 2))])]);
        let vars = VarSet::from_iter(["x", "y"]);
        let t = a.filter_total_over(&vars);
        assert_eq!(t.len(), 1);
        assert!(t.contains(&m(&[("x", (1, 2)), ("y", (2, 3))])));
    }

    #[test]
    fn hash_join_and_nested_loop_agree() {
        // Total over the common variable {y}: exercises the hash-join path.
        let a = MappingSet::from_mappings([
            m(&[("x", (1, 2)), ("y", (2, 3))]),
            m(&[("x", (1, 3)), ("y", (3, 4))]),
        ]);
        let b = MappingSet::from_mappings([
            m(&[("y", (2, 3)), ("z", (3, 3))]),
            m(&[("y", (9, 9)), ("z", (1, 1))]),
        ]);
        let j = a.join(&b);
        assert_eq!(j.len(), 1);
        assert!(j.contains(&m(&[("x", (1, 2)), ("y", (2, 3)), ("z", (3, 3))])));

        // A mapping missing the common variable forces the schemaless
        // fallback; it joins with everything on the other side.
        let c = MappingSet::from_mappings([
            m(&[("y", (2, 3))]),
            m(&[("z", (1, 1))]), // no y: compatible with both a-mappings
        ]);
        let j2 = a.join(&c);
        assert_eq!(j2.len(), 3);
    }

    #[test]
    fn anti_join_agrees_with_difference() {
        // Hash path (both sides total over the common variable x).
        let a = MappingSet::from_mappings([
            m(&[("x", (1, 2)), ("y", (2, 3))]),
            m(&[("x", (2, 3)), ("y", (1, 1))]),
        ]);
        let b = MappingSet::from_mappings([m(&[("x", (1, 2)), ("z", (5, 6))])]);
        assert_eq!(a.anti_join(&b), a.difference(&b));
        assert_eq!(a.anti_join(&b).len(), 1);
        // Disjoint schemas: a nonempty probe side removes everything.
        let c = MappingSet::from_mappings([m(&[("w", (1, 1))])]);
        assert_eq!(a.anti_join(&c), a.difference(&c));
        assert!(a.anti_join(&c).is_empty());
        // Empty probe side is the identity.
        assert_eq!(a.anti_join(&MappingSet::new()), a);
        // Schemaless fallback: a probe mapping missing the common variable
        // acts as a wildcard and removes everything it is compatible with.
        let d = MappingSet::from_mappings([m(&[("y", (2, 3))]), Mapping::new()]);
        assert_eq!(a.anti_join(&d), a.difference(&d));
        assert!(a.anti_join(&d).is_empty());
        let e = MappingSet::from_mappings([m(&[("x", (9, 9))]), m(&[("y", (1, 1))])]);
        assert_eq!(a.anti_join(&e), a.difference(&e));
    }

    #[test]
    fn builder_deduplicates_on_finish() {
        let mut b = MappingSet::builder();
        assert!(b.is_empty());
        b.push(m(&[("x", (1, 2))]));
        b.push(m(&[("x", (1, 2))]));
        b.extend([m(&[("y", (3, 4))])]);
        assert_eq!(b.len(), 3);
        let set = b.finish();
        assert_eq!(set.len(), 2);
        assert!(set.contains(&m(&[("x", (1, 2))])));
    }

    #[test]
    fn join_is_commutative_and_associative_on_samples() {
        let a =
            MappingSet::from_mappings([m(&[("x", (1, 2))]), m(&[("x", (2, 3)), ("y", (1, 1))])]);
        let b = MappingSet::from_mappings([m(&[("y", (1, 1))]), m(&[("z", (3, 4))])]);
        let c = MappingSet::from_mappings([m(&[("x", (1, 2)), ("z", (3, 4))])]);
        assert_eq!(a.join(&b), b.join(&a));
        assert_eq!(a.join(&b).join(&c), a.join(&b.join(&c)));
    }
}
