//! Mappings: partial assignments of spans to variables.

use crate::interner::VarId;
use crate::span::Span;
use crate::variable::{VarSet, Variable};
use std::fmt;

/// A mapping `µ` to a document: a function from a finite set of variables
/// (its *domain*) to spans of the document.
///
/// This is the schemaless notion of Maturana et al.: different mappings
/// produced by the same spanner may have different domains. The schema-based
/// spanners of Fagin et al. are the special case where all mappings share the
/// same domain.
///
/// # Representation
///
/// The assignments are stored as a flat vector sorted by interned [`VarId`]
/// — the compiled-evaluation layout. Lookups are `u32` binary searches,
/// compatibility checks and unions are linear merges over ids, and cloning
/// is a single allocation. [`Mapping::iter`] therefore yields pairs in *id*
/// order, which is deterministic within a process but not across runs; the
/// `Debug`/`Display` rendering sorts by name so printed output is stable.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Mapping {
    /// `(variable, span)` pairs sorted by `variable.id()`, no duplicate ids.
    pairs: Vec<(Variable, Span)>,
}

impl Mapping {
    /// The empty mapping (empty domain).
    pub fn new() -> Self {
        Mapping::default()
    }

    /// Builds a mapping from `(variable, span)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if the same variable appears twice with different spans.
    pub fn from_pairs<I, V>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (V, Span)>,
        V: Into<Variable>,
    {
        let mut pairs: Vec<(Variable, Span)> =
            pairs.into_iter().map(|(v, s)| (v.into(), s)).collect();
        pairs.sort_unstable_by_key(|(v, _)| v.id());
        pairs.dedup_by(|(dup, s2), (v1, s1)| {
            if v1.id() == dup.id() {
                assert_eq!(
                    s1, s2,
                    "variable {v1} assigned two different spans ({s1} and {s2})"
                );
                true
            } else {
                false
            }
        });
        Mapping { pairs }
    }

    /// Position of `id` in the sorted pair vector.
    #[inline]
    fn search(&self, id: VarId) -> Result<usize, usize> {
        self.pairs.binary_search_by_key(&id, |(v, _)| v.id())
    }

    /// The domain `dom(µ)` of the mapping.
    pub fn domain(&self) -> VarSet {
        self.pairs.iter().map(|(v, _)| v.clone()).collect()
    }

    /// The span assigned to `v`, if `v ∈ dom(µ)`.
    #[inline]
    pub fn get(&self, v: &Variable) -> Option<Span> {
        self.search(v.id()).ok().map(|i| self.pairs[i].1)
    }

    /// Whether `v ∈ dom(µ)`.
    #[inline]
    pub fn contains(&self, v: &Variable) -> bool {
        self.search(v.id()).is_ok()
    }

    /// Number of variables in the domain (the mapping's *cardinality*; the
    /// maximum over all documents is the spanner's *degree*, Section 5).
    #[inline]
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether the domain is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Assigns `span` to `v`. Returns the previously assigned span, if any.
    pub fn insert(&mut self, v: impl Into<Variable>, span: Span) -> Option<Span> {
        let v = v.into();
        match self.search(v.id()) {
            Ok(i) => Some(std::mem::replace(&mut self.pairs[i].1, span)),
            Err(i) => {
                self.pairs.insert(i, (v, span));
                None
            }
        }
    }

    /// Removes `v` from the domain.
    pub fn remove(&mut self, v: &Variable) -> Option<Span> {
        match self.search(v.id()) {
            Ok(i) => Some(self.pairs.remove(i).1),
            Err(_) => None,
        }
    }

    /// Iterates over `(variable, span)` pairs in interned-id order (see the
    /// type-level docs; sort by name if you need lexicographic order).
    pub fn iter(&self) -> impl Iterator<Item = (&Variable, Span)> + '_ {
        self.pairs.iter().map(|(v, s)| (v, *s))
    }

    /// Two mappings are *compatible* if they agree on every common variable
    /// (Section 2.4). Linear merge over the id-sorted pair vectors.
    pub fn is_compatible_with(&self, other: &Mapping) -> bool {
        let (mut i, mut j) = (0, 0);
        while i < self.pairs.len() && j < other.pairs.len() {
            let (v1, s1) = &self.pairs[i];
            let (v2, s2) = &other.pairs[j];
            match v1.id().cmp(&v2.id()) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    if s1 != s2 {
                        return false;
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        true
    }

    /// The union `µ1 ∪ µ2` of two compatible mappings.
    ///
    /// Returns `None` if the mappings are incompatible.
    pub fn union(&self, other: &Mapping) -> Option<Mapping> {
        let mut out = Vec::with_capacity(self.pairs.len() + other.pairs.len());
        let (mut i, mut j) = (0, 0);
        while i < self.pairs.len() && j < other.pairs.len() {
            let (v1, s1) = &self.pairs[i];
            let (v2, s2) = &other.pairs[j];
            match v1.id().cmp(&v2.id()) {
                std::cmp::Ordering::Less => {
                    out.push(self.pairs[i].clone());
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(other.pairs[j].clone());
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    if s1 != s2 {
                        return None;
                    }
                    out.push(self.pairs[i].clone());
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&self.pairs[i..]);
        out.extend_from_slice(&other.pairs[j..]);
        Some(Mapping { pairs: out })
    }

    /// The restriction `µ ↾ Y` of the mapping to the variables in `Y`
    /// (the projection operator of Section 2.4 applies this to every mapping).
    pub fn restrict(&self, vars: &VarSet) -> Mapping {
        Mapping {
            pairs: self
                .pairs
                .iter()
                .filter(|(v, _)| vars.contains(v))
                .cloned()
                .collect(),
        }
    }

    /// Whether the domain equals exactly `vars` (the schema-based /
    /// "complete" condition).
    pub fn is_total_over(&self, vars: &VarSet) -> bool {
        self.len() == vars.len() && vars.iter().all(|v| self.contains(v))
    }
}

impl PartialOrd for Mapping {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Mapping {
    /// A total order over mappings, used for deterministic (within one
    /// process) set iteration: lexicographic over the id-sorted pair
    /// vectors, comparing variables by id.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        let lhs = self.pairs.iter().map(|(v, s)| (v.id(), *s));
        let rhs = other.pairs.iter().map(|(v, s)| (v.id(), *s));
        lhs.cmp(rhs)
    }
}

impl fmt::Debug for Mapping {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Sort by name so debug output is stable across runs.
        let mut pairs: Vec<&(Variable, Span)> = self.pairs.iter().collect();
        pairs.sort_by(|(v1, _), (v2, _)| v1.cmp(v2));
        write!(f, "{{")?;
        for (i, (v, s)) in pairs.into_iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v} ↦ {s}")?;
        }
        write!(f, "}}")
    }
}

impl fmt::Display for Mapping {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

impl<V: Into<Variable>> FromIterator<(V, Span)> for Mapping {
    fn from_iter<I: IntoIterator<Item = (V, Span)>>(iter: I) -> Self {
        Mapping::from_pairs(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::variable::var;

    fn sp(a: u32, b: u32) -> Span {
        Span::new(a, b)
    }

    #[test]
    fn construction_and_access() {
        let m = Mapping::from_pairs([("x", sp(1, 3)), ("y", sp(3, 5))]);
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(&var("x")), Some(sp(1, 3)));
        assert_eq!(m.get(&var("z")), None);
        assert_eq!(m.domain(), VarSet::from_iter(["x", "y"]));
        assert!(!m.is_empty());
        assert_eq!(format!("{m:?}"), "{x ↦ [1, 3⟩, y ↦ [3, 5⟩}");
    }

    #[test]
    fn pairs_are_sorted_by_id() {
        let m = Mapping::from_pairs([("mz", sp(1, 2)), ("ma", sp(2, 3)), ("mk", sp(3, 4))]);
        let ids: Vec<u32> = m.iter().map(|(v, _)| v.id().0).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(ids, sorted);
    }

    #[test]
    fn insert_remove_roundtrip() {
        let mut m = Mapping::new();
        assert_eq!(m.insert("b", sp(1, 2)), None);
        assert_eq!(m.insert("a", sp(2, 3)), None);
        assert_eq!(m.insert("b", sp(4, 5)), Some(sp(1, 2)));
        assert_eq!(m.len(), 2);
        assert_eq!(m.remove(&var("a")), Some(sp(2, 3)));
        assert_eq!(m.remove(&var("a")), None);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn compatibility_follows_sparql_semantics() {
        let m1 = Mapping::from_pairs([("x", sp(1, 3)), ("y", sp(3, 5))]);
        let m2 = Mapping::from_pairs([("y", sp(3, 5)), ("z", sp(5, 6))]);
        let m3 = Mapping::from_pairs([("y", sp(4, 5))]);
        // Disjoint-domain mappings are always compatible.
        let m4 = Mapping::from_pairs([("w", sp(1, 1))]);
        assert!(m1.is_compatible_with(&m2));
        assert!(!m1.is_compatible_with(&m3));
        assert!(m1.is_compatible_with(&m4));
        assert!(Mapping::new().is_compatible_with(&m1));
    }

    #[test]
    fn union_of_compatible_mappings() {
        let m1 = Mapping::from_pairs([("x", sp(1, 3))]);
        let m2 = Mapping::from_pairs([("y", sp(3, 5))]);
        let u = m1.union(&m2).unwrap();
        assert_eq!(u.len(), 2);
        assert_eq!(u.get(&var("x")), Some(sp(1, 3)));
        assert_eq!(u.get(&var("y")), Some(sp(3, 5)));

        let m3 = Mapping::from_pairs([("x", sp(2, 3))]);
        assert!(m1.union(&m3).is_none());

        // Union with overlap keeps one copy.
        let m4 = Mapping::from_pairs([("x", sp(1, 3)), ("y", sp(3, 5))]);
        let u2 = m4.union(&m1).unwrap();
        assert_eq!(u2, m4);
    }

    #[test]
    fn restriction() {
        let m = Mapping::from_pairs([("x", sp(1, 3)), ("y", sp(3, 5)), ("z", sp(5, 5))]);
        let r = m.restrict(&VarSet::from_iter(["x", "z", "unused"]));
        assert_eq!(r.domain(), VarSet::from_iter(["x", "z"]));
        assert_eq!(r.get(&var("z")), Some(sp(5, 5)));
    }

    #[test]
    fn totality_check() {
        let m = Mapping::from_pairs([("x", sp(1, 1)), ("y", sp(1, 2))]);
        assert!(m.is_total_over(&VarSet::from_iter(["x", "y"])));
        assert!(!m.is_total_over(&VarSet::from_iter(["x", "y", "z"])));
        assert!(!m.is_total_over(&VarSet::from_iter(["x"])));
    }

    #[test]
    fn empty_span_positions_matter() {
        // The paper: [i, i⟩ and [j, j⟩ are different objects even though the
        // substrings are both empty.
        let m1 = Mapping::from_pairs([("x", Span::empty(2))]);
        let m2 = Mapping::from_pairs([("x", Span::empty(3))]);
        assert!(!m1.is_compatible_with(&m2));
        assert_ne!(m1, m2);
    }

    #[test]
    fn ordering_is_total_and_consistent_with_equality() {
        let a = Mapping::from_pairs([("x", sp(1, 2))]);
        let b = Mapping::from_pairs([("x", sp(1, 2))]);
        let c = Mapping::from_pairs([("x", sp(1, 3))]);
        assert_eq!(a.cmp(&b), std::cmp::Ordering::Equal);
        assert_ne!(a.cmp(&c), std::cmp::Ordering::Equal);
        assert_eq!(a.cmp(&c), c.cmp(&a).reverse());
    }

    #[test]
    #[should_panic(expected = "two different spans")]
    fn conflicting_pairs_panic() {
        let _ = Mapping::from_pairs([("x", sp(1, 2)), ("x", sp(1, 3))]);
    }
}
