//! Mappings: partial assignments of spans to variables.

use crate::span::Span;
use crate::variable::{VarSet, Variable};
use std::collections::BTreeMap;
use std::fmt;

/// A mapping `µ` to a document: a function from a finite set of variables
/// (its *domain*) to spans of the document.
///
/// This is the schemaless notion of Maturana et al.: different mappings
/// produced by the same spanner may have different domains. The schema-based
/// spanners of Fagin et al. are the special case where all mappings share the
/// same domain.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Mapping {
    assignments: BTreeMap<Variable, Span>,
}

impl Mapping {
    /// The empty mapping (empty domain).
    pub fn new() -> Self {
        Mapping::default()
    }

    /// Builds a mapping from `(variable, span)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if the same variable appears twice with different spans.
    pub fn from_pairs<I, V>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (V, Span)>,
        V: Into<Variable>,
    {
        let mut m = Mapping::new();
        for (v, s) in pairs {
            let v = v.into();
            if let Some(prev) = m.assignments.insert(v.clone(), s) {
                assert_eq!(
                    prev, s,
                    "variable {v} assigned two different spans ({prev} and {s})"
                );
            }
        }
        m
    }

    /// The domain `dom(µ)` of the mapping.
    pub fn domain(&self) -> VarSet {
        self.assignments.keys().cloned().collect()
    }

    /// The span assigned to `v`, if `v ∈ dom(µ)`.
    #[inline]
    pub fn get(&self, v: &Variable) -> Option<Span> {
        self.assignments.get(v).copied()
    }

    /// Whether `v ∈ dom(µ)`.
    #[inline]
    pub fn contains(&self, v: &Variable) -> bool {
        self.assignments.contains_key(v)
    }

    /// Number of variables in the domain (the mapping's *cardinality*; the
    /// maximum over all documents is the spanner's *degree*, Section 5).
    #[inline]
    pub fn len(&self) -> usize {
        self.assignments.len()
    }

    /// Whether the domain is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.assignments.is_empty()
    }

    /// Assigns `span` to `v`. Returns the previously assigned span, if any.
    pub fn insert(&mut self, v: impl Into<Variable>, span: Span) -> Option<Span> {
        self.assignments.insert(v.into(), span)
    }

    /// Removes `v` from the domain.
    pub fn remove(&mut self, v: &Variable) -> Option<Span> {
        self.assignments.remove(v)
    }

    /// Iterates over `(variable, span)` pairs in variable order.
    pub fn iter(&self) -> impl Iterator<Item = (&Variable, Span)> + '_ {
        self.assignments.iter().map(|(v, s)| (v, *s))
    }

    /// Two mappings are *compatible* if they agree on every common variable
    /// (Section 2.4).
    pub fn is_compatible_with(&self, other: &Mapping) -> bool {
        // Iterate over the smaller mapping.
        let (small, large) = if self.len() <= other.len() {
            (self, other)
        } else {
            (other, self)
        };
        small
            .iter()
            .all(|(v, s)| large.get(v).map_or(true, |t| t == s))
    }

    /// The union `µ1 ∪ µ2` of two compatible mappings.
    ///
    /// Returns `None` if the mappings are incompatible.
    pub fn union(&self, other: &Mapping) -> Option<Mapping> {
        if !self.is_compatible_with(other) {
            return None;
        }
        let mut out = self.clone();
        for (v, s) in other.iter() {
            out.assignments.insert(v.clone(), s);
        }
        Some(out)
    }

    /// The restriction `µ ↾ Y` of the mapping to the variables in `Y`
    /// (the projection operator of Section 2.4 applies this to every mapping).
    pub fn restrict(&self, vars: &VarSet) -> Mapping {
        Mapping {
            assignments: self
                .assignments
                .iter()
                .filter(|(v, _)| vars.contains(v))
                .map(|(v, s)| (v.clone(), *s))
                .collect(),
        }
    }

    /// Whether the domain equals exactly `vars` (the schema-based /
    /// "complete" condition).
    pub fn is_total_over(&self, vars: &VarSet) -> bool {
        self.len() == vars.len() && vars.iter().all(|v| self.contains(v))
    }
}

impl fmt::Debug for Mapping {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (v, s)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v} ↦ {s}")?;
        }
        write!(f, "}}")
    }
}

impl fmt::Display for Mapping {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

impl<V: Into<Variable>> FromIterator<(V, Span)> for Mapping {
    fn from_iter<I: IntoIterator<Item = (V, Span)>>(iter: I) -> Self {
        Mapping::from_pairs(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::variable::var;

    fn sp(a: u32, b: u32) -> Span {
        Span::new(a, b)
    }

    #[test]
    fn construction_and_access() {
        let m = Mapping::from_pairs([("x", sp(1, 3)), ("y", sp(3, 5))]);
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(&var("x")), Some(sp(1, 3)));
        assert_eq!(m.get(&var("z")), None);
        assert_eq!(m.domain(), VarSet::from_iter(["x", "y"]));
        assert!(!m.is_empty());
        assert_eq!(format!("{m:?}"), "{x ↦ [1, 3⟩, y ↦ [3, 5⟩}");
    }

    #[test]
    fn compatibility_follows_sparql_semantics() {
        let m1 = Mapping::from_pairs([("x", sp(1, 3)), ("y", sp(3, 5))]);
        let m2 = Mapping::from_pairs([("y", sp(3, 5)), ("z", sp(5, 6))]);
        let m3 = Mapping::from_pairs([("y", sp(4, 5))]);
        // Disjoint-domain mappings are always compatible.
        let m4 = Mapping::from_pairs([("w", sp(1, 1))]);
        assert!(m1.is_compatible_with(&m2));
        assert!(!m1.is_compatible_with(&m3));
        assert!(m1.is_compatible_with(&m4));
        assert!(Mapping::new().is_compatible_with(&m1));
    }

    #[test]
    fn union_of_compatible_mappings() {
        let m1 = Mapping::from_pairs([("x", sp(1, 3))]);
        let m2 = Mapping::from_pairs([("y", sp(3, 5))]);
        let u = m1.union(&m2).unwrap();
        assert_eq!(u.len(), 2);
        assert_eq!(u.get(&var("x")), Some(sp(1, 3)));
        assert_eq!(u.get(&var("y")), Some(sp(3, 5)));

        let m3 = Mapping::from_pairs([("x", sp(2, 3))]);
        assert!(m1.union(&m3).is_none());
    }

    #[test]
    fn restriction() {
        let m = Mapping::from_pairs([("x", sp(1, 3)), ("y", sp(3, 5)), ("z", sp(5, 5))]);
        let r = m.restrict(&VarSet::from_iter(["x", "z", "unused"]));
        assert_eq!(r.domain(), VarSet::from_iter(["x", "z"]));
        assert_eq!(r.get(&var("z")), Some(sp(5, 5)));
    }

    #[test]
    fn totality_check() {
        let m = Mapping::from_pairs([("x", sp(1, 1)), ("y", sp(1, 2))]);
        assert!(m.is_total_over(&VarSet::from_iter(["x", "y"])));
        assert!(!m.is_total_over(&VarSet::from_iter(["x", "y", "z"])));
        assert!(!m.is_total_over(&VarSet::from_iter(["x"])));
    }

    #[test]
    fn empty_span_positions_matter() {
        // The paper: [i, i⟩ and [j, j⟩ are different objects even though the
        // substrings are both empty.
        let m1 = Mapping::from_pairs([("x", Span::empty(2))]);
        let m2 = Mapping::from_pairs([("x", Span::empty(3))]);
        assert!(!m1.is_compatible_with(&m2));
        assert_ne!(m1, m2);
    }

    #[test]
    #[should_panic(expected = "two different spans")]
    fn conflicting_pairs_panic() {
        let _ = Mapping::from_pairs([("x", sp(1, 2)), ("x", sp(1, 3))]);
    }
}
