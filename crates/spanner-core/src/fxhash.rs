//! A fast, non-cryptographic hasher for the engine's hot-path hash maps.
//!
//! The standard library's default hasher (SipHash 1-3) is DoS-resistant but
//! costs ~1 ns/byte, which dominates profiles of the join product
//! construction and the evaluators' visited-set bookkeeping, where keys are
//! small `Copy` structs of integers. This is the multiply-rotate scheme
//! popularized by Firefox and rustc ("FxHash"): a few cycles per 8-byte
//! word, no allocation, no state beyond one `u64`.
//!
//! Use it for internal maps whose keys are *not* attacker-controlled (state
//! ids, interned ids, packed bit vectors). Anything keyed on user input
//! should stay on the default hasher.

use std::hash::{BuildHasherDefault, Hasher};

/// The multiplier (a 64-bit golden-ratio-derived odd constant).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast multiply-rotate hasher for small integer-shaped keys.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }
}

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_spreads() {
        let mut m: FxHashMap<(usize, u64), usize> = FxHashMap::default();
        for i in 0..1000 {
            m.insert((i, (i as u64) << 32), i);
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000 {
            assert_eq!(m.get(&(i, (i as u64) << 32)), Some(&i));
        }
        let mut s: FxHashSet<u32> = FxHashSet::default();
        assert!(s.insert(7));
        assert!(!s.insert(7));
    }

    #[test]
    fn byte_writes_cover_remainders() {
        use std::hash::Hasher;
        let mut h1 = FxHasher::default();
        h1.write(b"abcdefghij"); // 8-byte chunk + 2-byte remainder
        let mut h2 = FxHasher::default();
        h2.write(b"abcdefghik");
        assert_ne!(h1.finish(), h2.finish());
    }
}
