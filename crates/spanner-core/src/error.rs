//! Error types shared across the workspace.

use std::fmt;

/// Errors produced while parsing, analyzing, compiling, or evaluating
/// spanner representations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpannerError {
    /// A regex formula could not be parsed.
    Parse {
        /// Human-readable description of the problem.
        message: String,
        /// Byte offset in the input at which the problem was detected.
        position: usize,
    },
    /// A representation does not satisfy a syntactic restriction that an
    /// algorithm requires (e.g. a non-sequential operand passed to the FPT
    /// join compilation).
    Requirement {
        /// The requirement that is violated (e.g. "sequential").
        requirement: &'static str,
        /// Explanation of where the violation occurs.
        detail: String,
    },
    /// A size or cardinality limit was exceeded (guards against the
    /// exponential blow-ups the paper proves unavoidable).
    LimitExceeded {
        /// What limit was exceeded.
        what: &'static str,
        /// The configured limit.
        limit: usize,
        /// The size that was requested/produced.
        actual: usize,
    },
    /// An RA-tree instantiation is malformed (e.g. a placeholder is missing).
    Instantiation(String),
    /// Any other invariant violation.
    Invalid(String),
}

impl fmt::Display for SpannerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpannerError::Parse { message, position } => {
                write!(f, "parse error at byte {position}: {message}")
            }
            SpannerError::Requirement {
                requirement,
                detail,
            } => {
                write!(f, "requirement `{requirement}` violated: {detail}")
            }
            SpannerError::LimitExceeded {
                what,
                limit,
                actual,
            } => {
                write!(f, "{what} limit exceeded: {actual} > {limit}")
            }
            SpannerError::Instantiation(msg) => write!(f, "invalid instantiation: {msg}"),
            SpannerError::Invalid(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for SpannerError {}

/// Convenient result alias.
pub type SpannerResult<T> = Result<T, SpannerError>;

impl SpannerError {
    /// Builds a parse error.
    pub fn parse(message: impl Into<String>, position: usize) -> Self {
        SpannerError::Parse {
            message: message.into(),
            position,
        }
    }

    /// Builds a requirement-violation error.
    pub fn requirement(requirement: &'static str, detail: impl Into<String>) -> Self {
        SpannerError::Requirement {
            requirement,
            detail: detail.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = SpannerError::parse("unexpected `}`", 7);
        assert_eq!(e.to_string(), "parse error at byte 7: unexpected `}`");

        let e = SpannerError::requirement("sequential", "variable x occurs twice");
        assert!(e.to_string().contains("sequential"));

        let e = SpannerError::LimitExceeded {
            what: "states",
            limit: 10,
            actual: 200,
        };
        assert_eq!(e.to_string(), "states limit exceeded: 200 > 10");
    }
}
