//! Documents: the strings that spanners extract from.

use crate::span::Span;
use std::fmt;

/// An input document: a finite string over the (byte) alphabet.
///
/// The paper fixes a finite alphabet Σ; this implementation runs over the
/// bytes of a UTF-8 string, which makes ASCII examples (the paper's examples
/// are all ASCII) behave exactly as on the abstract alphabet while still
/// allowing arbitrary byte content.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Document {
    text: String,
}

impl Document {
    /// Wraps a string as a document.
    pub fn new(text: impl Into<String>) -> Self {
        Document { text: text.into() }
    }

    /// The document length `n` (number of symbols / bytes).
    #[inline]
    pub fn len(&self) -> usize {
        self.text.len()
    }

    /// Whether the document is the empty string ε.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.text.is_empty()
    }

    /// The underlying text.
    #[inline]
    pub fn text(&self) -> &str {
        &self.text
    }

    /// The underlying bytes.
    #[inline]
    pub fn bytes(&self) -> &[u8] {
        self.text.as_bytes()
    }

    /// The symbol at 1-based position `pos` (`1 ≤ pos ≤ n`), if any.
    #[inline]
    pub fn symbol_at(&self, pos: u32) -> Option<u8> {
        self.bytes().get(pos as usize - 1).copied()
    }

    /// The substring `d[span⟩` covered by `span`.
    ///
    /// # Panics
    ///
    /// Panics if the span does not fit the document.
    #[inline]
    pub fn slice(&self, span: Span) -> &str {
        &self.text[span.as_range()]
    }

    /// The substring covered by `span`, or `None` if the span does not fit.
    #[inline]
    pub fn try_slice(&self, span: Span) -> Option<&str> {
        if span.fits(self.len()) {
            Some(&self.text[span.as_range()])
        } else {
            None
        }
    }

    /// The span covering the whole document, `[1, n + 1⟩`.
    #[inline]
    pub fn full_span(&self) -> Span {
        Span::new(1, self.len() as u32 + 1)
    }

    /// Number of distinct spans of this document.
    #[inline]
    pub fn span_count(&self) -> usize {
        let n = self.len();
        (n + 1) * (n + 2) / 2
    }
}

impl fmt::Debug for Document {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Document({:?})", self.text)
    }
}

impl fmt::Display for Document {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

impl From<&str> for Document {
    fn from(s: &str) -> Self {
        Document::new(s)
    }
}

impl From<String> for Document {
    fn from(s: String) -> Self {
        Document::new(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basics() {
        let d = Document::new("abcde");
        assert_eq!(d.len(), 5);
        assert!(!d.is_empty());
        assert_eq!(d.symbol_at(1), Some(b'a'));
        assert_eq!(d.symbol_at(5), Some(b'e'));
        assert_eq!(d.symbol_at(6), None);
        assert_eq!(d.full_span(), Span::new(1, 6));
        assert_eq!(d.span_count(), 21);
    }

    #[test]
    fn slicing_follows_paper_convention() {
        // d[i, j⟩ = σ_i ⋯ σ_{j-1}
        let d = Document::new("Rodion");
        assert_eq!(d.slice(Span::new(1, 7)), "Rodion");
        assert_eq!(d.slice(Span::new(1, 1)), "");
        assert_eq!(d.slice(Span::new(2, 4)), "od");
        assert_eq!(d.try_slice(Span::new(2, 9)), None);
        assert_eq!(d.try_slice(Span::new(7, 7)), Some(""));
    }

    #[test]
    fn empty_document() {
        let d = Document::new("");
        assert!(d.is_empty());
        assert_eq!(d.full_span(), Span::new(1, 1));
        assert_eq!(d.span_count(), 1);
    }
}
