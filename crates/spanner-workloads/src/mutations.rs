//! Random mutation scripts for the incremental-evaluation tests.
//!
//! The differential oracles (`tests/incr_oracle.rs`) and the `exp_incr`
//! benchmark need reproducible interleavings of appends, updates, and
//! deletes whose document ids are always valid for the corpus they run
//! against. The generated texts deliberately mix needle hits, misses,
//! empty documents, and multi-byte UTF-8, so hash-keyed view invalidation
//! is exercised across char boundaries and on the empty-document edge.

use crate::corpora::needle_padding;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spanner_store::Mutation;

/// One random replacement/insertion text: empty, multi-byte UTF-8 around
/// the needle, an ASCII needle hit, or plain padding (a miss).
fn random_text(rng: &mut StdRng) -> String {
    match rng.gen_range(0..6u32) {
        0 => String::new(),
        1 => format!("αβ needle δέλτα {}", rng.gen_range(0..100u32)),
        2 => format!("line with needle {}", rng.gen_range(0..1_000u32)),
        _ => needle_padding(rng.gen_range(1..60), rng.gen_range(0..u64::MAX)),
    }
}

/// A reproducible script of `count` mutations, valid against a corpus
/// that starts at `corpus_len` documents: every generated `Update`/
/// `Delete` id is below the corpus length at its point in the script
/// (appends grow it). Deletes may hit an already-deleted id — the store
/// treats that as an idempotent no-op, and the scripts exercise it on
/// purpose. Weights are 3 appends : 4 updates : 3 deletes (all appends
/// while the corpus is empty).
pub fn random_mutations(corpus_len: usize, count: usize, seed: u64) -> Vec<Mutation> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut len = corpus_len;
    let mut script = Vec::with_capacity(count);
    for _ in 0..count {
        let roll = if len == 0 { 0 } else { rng.gen_range(0..10u32) };
        script.push(match roll {
            0..=2 => {
                len += 1;
                Mutation::Append {
                    text: random_text(&mut rng),
                }
            }
            3..=6 => Mutation::Update {
                id: rng.gen_range(0..len) as u32,
                text: random_text(&mut rng),
            },
            _ => Mutation::Delete {
                id: rng.gen_range(0..len) as u32,
            },
        });
    }
    script
}

#[cfg(test)]
mod tests {
    use super::*;
    use spanner_core::Document;
    use spanner_store::Store;

    #[test]
    fn scripts_are_deterministic_and_always_applicable() {
        assert_eq!(random_mutations(5, 40, 7), random_mutations(5, 40, 7));
        assert_ne!(random_mutations(5, 40, 7), random_mutations(5, 40, 8));
        for seed in 0..20 {
            let docs: Vec<Document> = (0..5).map(|i| Document::new(format!("doc {i}"))).collect();
            let mut store = Store::build(docs).unwrap();
            for m in random_mutations(5, 60, seed) {
                store.apply(&m).expect("generated ids are always in range");
            }
        }
    }

    #[test]
    fn scripts_cover_every_operation_and_text_shape() {
        let script = random_mutations(10, 400, 42);
        let (mut appends, mut updates, mut deletes) = (0, 0, 0);
        let (mut empty, mut multibyte) = (0, 0);
        for m in &script {
            let text = match m {
                Mutation::Append { text } => {
                    appends += 1;
                    Some(text)
                }
                Mutation::Update { text, .. } => {
                    updates += 1;
                    Some(text)
                }
                Mutation::Delete { .. } => {
                    deletes += 1;
                    None
                }
            };
            if let Some(text) = text {
                empty += usize::from(text.is_empty());
                multibyte += usize::from(text.len() > text.chars().count());
            }
        }
        assert!(appends > 0 && updates > 0 && deletes > 0, "{script:?}");
        assert!(empty > 0, "empty documents must appear");
        assert!(multibyte > 0, "multi-byte UTF-8 must appear");
    }

    #[test]
    fn empty_corpus_scripts_start_with_an_append() {
        let script = random_mutations(0, 10, 3);
        assert!(matches!(script[0], Mutation::Append { .. }));
        let mut store = Store::build(Vec::new()).unwrap();
        for m in &script {
            store.apply(m).unwrap();
        }
    }
}
