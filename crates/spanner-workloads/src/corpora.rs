//! Synthetic document corpora.
//!
//! The paper motivates its complexity questions with text-analytics
//! workloads: personal-information records (the `dStudents` document of
//! Figure 1), system logs, and large machine-generated extractors. These
//! generators produce documents of a controlled size with the same structure
//! so that the experiments in EXPERIMENTS.md can sweep the document length.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spanner_core::Document;

const FIRST_NAMES: &[&str] = &[
    "Rodion", "Pyotr", "Avdotya", "Arkady", "Sofya", "Dmitri", "Katerina", "Porfiry", "Mikolka",
    "Alyona", "Zosimov", "Andrey", "Marfa", "Nikodim", "Ilya",
];

const LAST_NAMES: &[&str] = &[
    "Raskolnikov",
    "Luzhin",
    "Svidrigailov",
    "Marmeladov",
    "Razumikhin",
    "Petrovich",
    "Ivanovna",
    "Lebezyatnikov",
    "Zamyotov",
    "Lizaveta",
];

const MAIL_HOSTS: &[&str] = &[
    "edu.ru", "edu.uk", "uni.de", "inst.fr", "labs.org", "dept.edu",
];

const POSITIVE_WORDS: &[&str] = &[
    "excellent",
    "outstanding",
    "brilliant",
    "recommended",
    "strong",
];
const NEUTRAL_WORDS: &[&str] = &["attended", "average", "completed", "enrolled", "registered"];

/// The exact example document `dStudents` of Figure 1 (three student lines).
pub fn students_figure_1() -> Document {
    Document::new(
        "Rodion Raskolnikov rr@edu.ru\nZosimov 6222345 mov@edu.ru\nPyotr Luzhin 6225545 luzi@edu.uk\n",
    )
}

/// Generates a student-records document with `lines` lines in the format of
/// Figure 1: optional first name, last name, optional phone number, email
/// address, separated by spaces, one student per line.
pub fn student_records(lines: usize, seed: u64) -> Document {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut text = String::with_capacity(lines * 40);
    for _ in 0..lines {
        if rng.gen_bool(0.7) {
            text.push_str(FIRST_NAMES[rng.gen_range(0..FIRST_NAMES.len())]);
            text.push(' ');
        }
        let last = LAST_NAMES[rng.gen_range(0..LAST_NAMES.len())];
        text.push_str(last);
        text.push(' ');
        if rng.gen_bool(0.6) {
            let phone: u32 = rng.gen_range(6_000_000..7_000_000);
            text.push_str(&phone.to_string());
            text.push(' ');
        }
        // Mailbox derived from the last name.
        let user: String = last.to_lowercase().chars().take(4).collect();
        text.push_str(&user);
        text.push('@');
        text.push_str(MAIL_HOSTS[rng.gen_range(0..MAIL_HOSTS.len())]);
        text.push('\n');
    }
    Document::new(text)
}

/// Generates a student-records document extended with recommendation lines
/// (for the Example 5.1 / 5.4 queries): after each student line, with the
/// given probability, a line `"<LastName> rec: <words>"` follows.
pub fn student_records_with_recommendations(
    lines: usize,
    rec_probability: f64,
    seed: u64,
) -> Document {
    let mut rng = StdRng::seed_from_u64(seed);
    let base = student_records(lines, seed);
    let mut text = String::with_capacity(base.len() * 2);
    for line in base.text().lines() {
        text.push_str(line);
        text.push('\n');
        if rng.gen_bool(rec_probability) {
            // Recommendation for the student on this line (second-to-last
            // token before the mail is the last name or the only name).
            let name = line.split(' ').next().unwrap_or("Someone");
            let lexicon = if rng.gen_bool(0.5) {
                POSITIVE_WORDS
            } else {
                NEUTRAL_WORDS
            };
            let word = lexicon[rng.gen_range(0..lexicon.len())];
            text.push_str(&format!("{name} rec {word} work this term\n"));
        }
    }
    Document::new(text)
}

/// Generates an HTTP-access-log-like document with `lines` entries:
/// `ip - user [day/month] "METHOD /path" status bytes`.
pub fn access_log(lines: usize, seed: u64) -> Document {
    let mut rng = StdRng::seed_from_u64(seed);
    let methods = ["GET", "POST", "PUT", "DELETE"];
    let paths = [
        "/index",
        "/api/v1/items",
        "/login",
        "/static/app.js",
        "/health",
    ];
    let mut text = String::with_capacity(lines * 64);
    for _ in 0..lines {
        let ip = format!(
            "{}.{}.{}.{}",
            rng.gen_range(1..255),
            rng.gen_range(0..255),
            rng.gen_range(0..255),
            rng.gen_range(1..255)
        );
        let user = if rng.gen_bool(0.3) {
            FIRST_NAMES[rng.gen_range(0..FIRST_NAMES.len())].to_lowercase()
        } else {
            "-".to_string()
        };
        let method = methods[rng.gen_range(0..methods.len())];
        let path = paths[rng.gen_range(0..paths.len())];
        let status = [200, 200, 200, 301, 404, 500][rng.gen_range(0..6)];
        let bytes = rng.gen_range(0..100_000);
        text.push_str(&format!(
            "{ip} - {user} [{:02}/{:02}] \"{method} {path}\" {status} {bytes}\n",
            rng.gen_range(1..29),
            rng.gen_range(1..13),
        ));
    }
    Document::new(text)
}

/// Deterministic padding over lowercase letters and spaces (xorshift, no
/// `rand` state). The alphabet includes every byte of "needle", so
/// candidate pruning over this text has to work on whole trigrams, not on
/// byte absence.
pub fn needle_padding(len: usize, seed: u64) -> String {
    const ALPHABET: &[u8] = b"abcdefghijklmnop qrstuvwxyz ";
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ALPHABET[(state % ALPHABET.len() as u64) as usize] as char
        })
        .collect()
}

/// One needle-corpus line: a hit embeds the needle in a short
/// alert-shaped line, a miss is a long padding-only line. (Hits are short
/// on purpose: every evaluation path pays the same enumeration cost on a
/// true match, so sweeps over this corpus isolate what an index or view
/// actually saves — touching the misses.)
pub fn needle_line(hit: bool, seed: u64) -> Document {
    let text = if hit {
        format!(
            "{} needle {}",
            needle_padding(4, seed),
            needle_padding(4, seed.wrapping_add(1))
        )
    } else {
        needle_padding(103, seed)
    };
    Document::new(&text)
}

/// A corpus of `lines` documents where `hits_per_10k` of every 10 000
/// lines contain the needle, spread evenly.
pub fn needle_corpus(lines: usize, hits_per_10k: usize, seed: u64) -> Vec<Document> {
    (0..lines)
        .map(|i| {
            let hit = hits_per_10k > 0 && (i * hits_per_10k) % 10_000 < hits_per_10k;
            needle_line(hit, seed.wrapping_add(i as u64))
        })
        .collect()
}

/// Generates a random document over a small alphabet (for stress tests).
pub fn random_text(len: usize, alphabet: &[u8], seed: u64) -> Document {
    let mut rng = StdRng::seed_from_u64(seed);
    let bytes: Vec<u8> = (0..len)
        .map(|_| alphabet[rng.gen_range(0..alphabet.len())])
        .collect();
    Document::new(String::from_utf8(bytes).expect("ASCII alphabet"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_1_document_has_three_lines() {
        let d = students_figure_1();
        assert_eq!(d.text().lines().count(), 3);
        assert!(d.text().contains("Raskolnikov"));
    }

    #[test]
    fn student_records_are_deterministic_and_well_formed() {
        let d1 = student_records(50, 3);
        let d2 = student_records(50, 3);
        assert_eq!(d1, d2);
        assert_eq!(d1.text().lines().count(), 50);
        for line in d1.text().lines() {
            assert!(line.contains('@'), "line without mail: {line}");
        }
        assert_ne!(student_records(50, 4), d1);
    }

    #[test]
    fn recommendations_are_interleaved() {
        let d = student_records_with_recommendations(40, 0.5, 9);
        assert!(d.text().lines().count() > 40);
        assert!(d.text().contains(" rec "));
    }

    #[test]
    fn access_log_shape() {
        let d = access_log(20, 1);
        assert_eq!(d.text().lines().count(), 20);
        assert!(d.text().contains('"'));
    }

    #[test]
    fn needle_corpus_is_deterministic_with_the_planted_rate() {
        let docs = needle_corpus(10_000, 10, 42);
        assert_eq!(docs, needle_corpus(10_000, 10, 42));
        let hits = docs.iter().filter(|d| d.text().contains("needle")).count();
        assert_eq!(hits, 10, "planted rate is exact at the 10k granularity");
        assert!(needle_corpus(100, 0, 1)
            .iter()
            .all(|d| !d.text().contains("needle")));
        assert_ne!(needle_corpus(100, 10, 1), needle_corpus(100, 10, 2));
    }

    #[test]
    fn random_text_uses_only_the_alphabet() {
        let d = random_text(200, b"ab", 5);
        assert_eq!(d.len(), 200);
        assert!(d.bytes().iter().all(|&b| b == b'a' || b == b'b'));
    }
}
