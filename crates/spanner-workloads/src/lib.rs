//! Synthetic workloads: corpora, extractor libraries, and random spanners.
//!
//! The paper has no public benchmark suite, so this crate provides the
//! workloads used by the experiments in EXPERIMENTS.md: student-record and
//! access-log corpora of a controlled size (the Figure 1 document family),
//! the paper's running-example extractors (Examples 2.1–2.4, 5.1, 5.4), the
//! Example 3.10 blow-up family, and random sequential vset-automata / regex
//! formulas standing in for the large machine-generated extractors the paper
//! cites as motivation.

pub mod corpora;
pub mod extractors;
pub mod mutations;
pub mod random_ql;
pub mod random_ra;
pub mod random_vsa;
pub mod requests;

pub use corpora::{
    access_log, needle_corpus, needle_line, needle_padding, random_text, student_records,
    student_records_with_recommendations, students_figure_1,
};
pub use extractors::{
    example_3_10_formula, log_error_extractor, log_request_extractor, mail_extractor,
    name_extractor, phone_extractor, recommendation_extractor, student_info_extractor,
    uk_mail_extractor,
};
pub use mutations::random_mutations;
pub use random_ql::{random_ql_program, RandomQlConfig, RandomQlProgram};
pub use random_ra::{random_ra_tree, RandomRaConfig};
pub use random_vsa::{random_sequential_rgx, random_sequential_vsa, RandomVsaConfig};
pub use requests::{program_library, request_mix, RequestKind, RequestMixConfig, ServeRequest};
