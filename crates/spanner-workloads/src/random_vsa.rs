//! Random sequential vset-automata and regex formulas.
//!
//! The paper argues that atomic extractors must be treated as part of the
//! input because realistic ones are large (hand-written regexes with hundreds
//! of symbols, automata distilled from neural models with thousands of
//! states). These generators produce automata and formulas whose size and
//! variable count are controlled parameters, for the scaling experiments.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spanner_core::ByteClass;
use spanner_rgx::Rgx;
use spanner_vset::{Label, Vsa};

/// Configuration for [`random_sequential_vsa`].
#[derive(Debug, Clone, Copy)]
pub struct RandomVsaConfig {
    /// Number of "letter-consuming" layers.
    pub layers: usize,
    /// States per layer.
    pub width: usize,
    /// Alphabet to draw letter transitions from.
    pub alphabet: &'static [u8],
    /// Variables to weave into the automaton (each is opened and closed on
    /// some runs).
    pub num_vars: usize,
    /// Prefix for the generated variable names.
    pub var_prefix: &'static str,
}

impl Default for RandomVsaConfig {
    fn default() -> Self {
        RandomVsaConfig {
            layers: 8,
            width: 4,
            alphabet: b"ab",
            num_vars: 2,
            var_prefix: "v",
        }
    }
}

/// Generates a random *sequential* vset-automaton.
///
/// The automaton is built as a layered DAG with back edges on letters only:
/// layer `i` reads a letter and moves to layer `i + 1` (or stays, to accept
/// documents longer than the number of layers). Each variable `vⱼ` is opened
/// on the way out of one randomly chosen layer and closed at a later one, on
/// a randomly chosen subset of the states, which makes the automaton
/// schemaless (some accepting runs skip the variable) yet sequential by
/// construction.
pub fn random_sequential_vsa(config: RandomVsaConfig, seed: u64) -> Vsa {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut vsa = Vsa::new();
    let layers = config.layers.max(2);
    let width = config.width.max(1);

    // States: layer × width, plus the initial state which feeds layer 0.
    let mut grid = vec![vec![0usize; width]; layers];
    for row in grid.iter_mut() {
        for slot in row.iter_mut() {
            *slot = vsa.add_state();
        }
    }
    for &q in &grid[0] {
        vsa.add_transition(0, Label::Epsilon, q);
    }
    // Letter transitions between consecutive layers (and self-loops on the
    // last layer so that longer documents are accepted).
    for layer in 0..layers {
        for &q in &grid[layer] {
            let fanout = rng.gen_range(1..=2);
            for _ in 0..fanout {
                let symbol = config.alphabet[rng.gen_range(0..config.alphabet.len())];
                let target_layer = if layer + 1 < layers { layer + 1 } else { layer };
                let target = grid[target_layer][rng.gen_range(0..width)];
                vsa.add_transition(q, Label::Class(ByteClass::single(symbol)), target);
            }
        }
    }
    // Accepting states: the last layer.
    for &q in &grid[layers - 1] {
        vsa.set_accepting(q, true);
    }
    // Variables: variable j is opened between layer o and o+1 and closed
    // between layer c and c+1 (o < c), by routing some letter transitions
    // through fresh intermediate states.
    for j in 0..config.num_vars {
        let var = spanner_core::Variable::new(format!("{}{}", config.var_prefix, j));
        let open_layer = rng.gen_range(0..layers - 1);
        let close_layer = rng.gen_range(open_layer + 1..layers);
        // Open: add an alternative path q --open--> fresh --ε--> q' for a few
        // states of the open layer.
        for _ in 0..width.max(1) {
            let q = grid[open_layer][rng.gen_range(0..width)];
            let fresh = vsa.add_state();
            vsa.add_transition(q, Label::Open(var.clone()), fresh);
            // From the fresh state, a letter into the next layer.
            let symbol = config.alphabet[rng.gen_range(0..config.alphabet.len())];
            let target = grid[open_layer + 1][rng.gen_range(0..width)];
            vsa.add_transition(fresh, Label::Class(ByteClass::single(symbol)), target);
            // Close: from a state of the close layer, close the variable and
            // continue with an ε into the same layer (the close is only
            // reachable when the variable was opened — see below).
            let q_close = grid[close_layer][rng.gen_range(0..width)];
            let fresh_close = vsa.add_state();
            vsa.add_transition(q_close, Label::Close(var.clone()), fresh_close);
            vsa.add_transition(fresh_close, Label::Epsilon, q_close);
        }
    }
    // The construction above can create runs that open without closing or
    // close without opening; those runs are invalid and therefore do not
    // contribute mappings, but they would make the automaton non-sequential.
    // Sanitize by tracking the variables: the semi-functional transformation
    // drops exactly the invalid prefixes.
    let vars = vsa.vars().clone();
    spanner_vset::make_semi_functional(&vsa, &vars).vsa.trim()
}

/// Generates a random sequential regex formula with `depth` nested operators
/// over the given alphabet, introducing at most `max_vars` capture variables.
pub fn random_sequential_rgx(depth: usize, max_vars: usize, seed: u64) -> Rgx {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut next_var = 0usize;
    build_rgx(depth, max_vars, &mut next_var, &mut rng)
}

fn build_rgx(depth: usize, max_vars: usize, next_var: &mut usize, rng: &mut StdRng) -> Rgx {
    if depth == 0 {
        return match rng.gen_range(0..4) {
            0 => Rgx::Epsilon,
            1 => Rgx::symbol(b"abc"[rng.gen_range(0..3)]),
            2 => Rgx::Class(ByteClass::range(b'a', b'c')),
            _ => Rgx::star(Rgx::symbol(b"abc"[rng.gen_range(0..3)])),
        };
    }
    match rng.gen_range(0..5) {
        0 => Rgx::concat([
            build_rgx(depth - 1, max_vars, next_var, rng),
            build_rgx(depth - 1, max_vars, next_var, rng),
        ]),
        1 => Rgx::union([
            build_rgx(depth - 1, max_vars, next_var, rng),
            build_rgx(depth - 1, max_vars, next_var, rng),
        ]),
        2 => {
            // Stars must not contain variables (sequentiality), so build a
            // variable-free body.
            let mut no_vars = 0usize;
            let body = build_rgx(depth.saturating_sub(1).min(2), 0, &mut no_vars, rng);
            Rgx::star(strip_vars(body))
        }
        _ => {
            if *next_var < max_vars {
                let name = format!("r{}", *next_var);
                *next_var += 1;
                Rgx::capture(name, build_rgx(depth - 1, max_vars, next_var, rng))
            } else {
                build_rgx(depth - 1, max_vars, next_var, rng)
            }
        }
    }
}

/// Removes every capture from a formula (keeps the regular-language part).
fn strip_vars(r: Rgx) -> Rgx {
    match r {
        Rgx::Capture(_, inner) => strip_vars(*inner),
        Rgx::Concat(parts) => Rgx::concat(parts.into_iter().map(strip_vars)),
        Rgx::Union(parts) => Rgx::union(parts.into_iter().map(strip_vars)),
        Rgx::Star(inner) => Rgx::star(strip_vars(*inner)),
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spanner_core::Document;
    use spanner_rgx::is_sequential as rgx_sequential;
    use spanner_vset::{analysis, compile, interpret};

    #[test]
    fn random_vsa_is_sequential_and_deterministic() {
        for seed in 0..6 {
            let cfg = RandomVsaConfig {
                layers: 5,
                width: 3,
                num_vars: 2,
                ..RandomVsaConfig::default()
            };
            let a = random_sequential_vsa(cfg, seed);
            assert!(analysis::is_sequential(&a), "seed {seed}");
            assert_eq!(
                a.state_count(),
                random_sequential_vsa(cfg, seed).state_count()
            );
        }
    }

    #[test]
    fn random_vsa_produces_mappings() {
        let cfg = RandomVsaConfig {
            layers: 4,
            width: 2,
            num_vars: 1,
            ..RandomVsaConfig::default()
        };
        // Over several seeds, at least one automaton must produce a
        // non-empty result on some short document.
        let mut produced = false;
        for seed in 0..10 {
            let a = random_sequential_vsa(cfg, seed);
            for text in ["aaa", "abab", "bbbb", "aaaa"] {
                if !interpret(&a, &Document::new(text)).is_empty() {
                    produced = true;
                }
            }
        }
        assert!(produced);
    }

    #[test]
    fn random_rgx_is_sequential_and_compiles() {
        for seed in 0..20 {
            let r = random_sequential_rgx(4, 3, seed);
            assert!(rgx_sequential(&r), "seed {seed}: {r}");
            let a = compile(&r);
            assert!(analysis::is_sequential(&a), "seed {seed}");
        }
    }

    #[test]
    fn random_rgx_matches_reference_semantics() {
        use spanner_enum::evaluate_rgx;
        use spanner_rgx::reference_eval;
        for seed in 0..10 {
            let r = random_sequential_rgx(3, 2, seed);
            for text in ["", "a", "ab", "abc"] {
                let doc = Document::new(text);
                assert_eq!(
                    evaluate_rgx(&r, &doc).unwrap(),
                    reference_eval(&r, &doc),
                    "seed {seed} text {text:?} formula {r}"
                );
            }
        }
    }
}
