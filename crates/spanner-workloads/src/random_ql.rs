//! Random SpannerQL programs paired with their programmatic lowering.
//!
//! The query-language front end is differentially tested the same way the
//! planner is: a seeded generator emits a program *text* together with the
//! `RaTree` + `Instantiation` the text is supposed to lower to, built
//! programmatically while the text is rendered. The oracle then checks that
//! parsing + preparing the text evaluates bit-identically to the
//! programmatic pair. The generator mixes spelled-out keywords with the
//! symbolic aliases (`π`, `∪`, `⋈`, `\`), name references with anonymous
//! regex literals, and exercises binding reuse (the same name in several
//! positions).

use crate::random_vsa::random_sequential_rgx;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spanner_algebra::{Instantiation, RaTree};
use spanner_core::{VarSet, Variable};
use spanner_rgx::Rgx;

/// Configuration for [`random_ql_program`].
#[derive(Debug, Clone, Copy)]
pub struct RandomQlConfig {
    /// Number of `let` bindings.
    pub bindings: usize,
    /// Maximum operator nesting depth of the result expression.
    pub depth: usize,
    /// Capture variables per regex formula.
    pub vars_per_leaf: usize,
    /// Whether `minus` may appear.
    pub allow_difference: bool,
}

impl Default for RandomQlConfig {
    fn default() -> Self {
        RandomQlConfig {
            bindings: 3,
            depth: 3,
            vars_per_leaf: 2,
            allow_difference: true,
        }
    }
}

/// A generated program and the instantiated RA tree it must lower to.
#[derive(Debug, Clone)]
pub struct RandomQlProgram {
    /// The SpannerQL source text.
    pub text: String,
    /// The RA tree built programmatically alongside the text.
    pub tree: RaTree,
    /// The matching atom assignment.
    pub inst: Instantiation,
}

/// Generates a random SpannerQL program. Deterministic per `(config, seed)`.
pub fn random_ql_program(config: RandomQlConfig, seed: u64) -> RandomQlProgram {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0xa076_1d64_78bd_642f));
    let bindings = config.bindings.max(1);

    let mut text = String::new();
    let mut inst = Instantiation::new();
    let mut pool = VarSet::new();
    for id in 0..bindings {
        let rgx = random_sequential_rgx(3, config.vars_per_leaf, rng.next_u64());
        pool = pool.union(&rgx.vars());
        text.push_str(&format!("let b{id} = /{}/;\n", escape_regex(&rgx)));
        inst = inst.with(id, rgx);
    }
    // Projections also target a variable no formula binds.
    pool.insert(Variable::new("unbound"));

    let mut gen = Gen {
        rng,
        bindings,
        next_leaf: bindings,
        pool: pool.to_vec(),
        allow_difference: config.allow_difference,
        vars_per_leaf: config.vars_per_leaf,
    };
    let tree = gen.expr(&mut text, &mut inst, config.depth);
    text.push(';');
    RandomQlProgram { text, tree, inst }
}

/// Escapes a formula's concrete syntax for embedding in a `/…/` literal
/// (only the delimiter needs care; `\/` denotes a literal `/` byte).
fn escape_regex(rgx: &Rgx) -> String {
    format!("{rgx}").replace('/', "\\/")
}

struct Gen {
    rng: StdRng,
    bindings: usize,
    next_leaf: usize,
    pool: Vec<Variable>,
    allow_difference: bool,
    vars_per_leaf: usize,
}

impl Gen {
    /// Emits a primary-level operand: a name reference, an anonymous regex
    /// literal, or a parenthesized subexpression.
    fn primary(&mut self, text: &mut String, inst: &mut Instantiation, depth: usize) -> RaTree {
        if depth == 0 || self.rng.gen_bool(0.3) {
            if self.rng.gen_bool(0.25) {
                // Anonymous literal: a fresh placeholder.
                let rgx = random_sequential_rgx(2, self.vars_per_leaf, self.rng.next_u64());
                let id = self.next_leaf;
                self.next_leaf += 1;
                text.push_str(&format!("/{}/", escape_regex(&rgx)));
                *inst = std::mem::take(inst).with(id, rgx);
                return RaTree::leaf(id);
            }
            let id = self.rng.gen_range(0..self.bindings);
            text.push_str(&format!("b{id}"));
            return RaTree::leaf(id);
        }
        text.push('(');
        let tree = self.expr(text, inst, depth - 1);
        text.push(')');
        tree
    }

    /// Emits an expression of the given depth budget.
    fn expr(&mut self, text: &mut String, inst: &mut Instantiation, depth: usize) -> RaTree {
        if depth == 0 {
            return self.primary(text, inst, 0);
        }
        match self.rng.gen_range(0..8u32) {
            0 | 1 => {
                // Projection onto a random subset of the variable pool.
                let mut keep = VarSet::new();
                let mut names = Vec::new();
                for v in &self.pool {
                    if self.rng.gen_bool(0.5) {
                        keep.insert(v.clone());
                        names.push(v.name().to_string());
                    }
                }
                text.push_str(if self.rng.gen_bool(0.5) {
                    "project "
                } else {
                    "π "
                });
                text.push_str(&names.join(", "));
                if !names.is_empty() {
                    text.push(' ');
                }
                text.push('(');
                let child = self.expr(text, inst, depth - 1);
                text.push(')');
                RaTree::project(keep, child)
            }
            2 | 3 => {
                let (left, right) = self.pair(text, inst, depth, &["union", "∪"]);
                RaTree::union(left, right)
            }
            4 | 5 => {
                let (left, right) = self.pair(text, inst, depth, &["join", "⋈"]);
                RaTree::join(left, right)
            }
            _ if self.allow_difference => {
                let (left, right) = self.pair(text, inst, depth, &["minus", "\\"]);
                RaTree::difference(left, right)
            }
            _ => {
                let (left, right) = self.pair(text, inst, depth, &["join", "⋈"]);
                RaTree::join(left, right)
            }
        }
    }

    /// Emits `left OP right` with a randomly chosen spelling of the
    /// operator, parenthesizing the operands so the rendered precedence is
    /// exactly the generated tree.
    fn pair(
        &mut self,
        text: &mut String,
        inst: &mut Instantiation,
        depth: usize,
        spellings: &[&str],
    ) -> (RaTree, RaTree) {
        let left = self.primary(text, inst, depth - 1);
        let op = spellings[self.rng.gen_range(0..spellings.len())];
        text.push_str(&format!(" {op} "));
        let right = self.primary(text, inst, depth - 1);
        (left, right)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = RandomQlConfig::default();
        let a = random_ql_program(cfg, 11);
        let b = random_ql_program(cfg, 11);
        assert_eq!(a.text, b.text);
        assert_eq!(a.tree, b.tree);
        assert_eq!(a.inst.len(), b.inst.len());
    }

    #[test]
    fn programs_mention_every_binding() {
        let cfg = RandomQlConfig::default();
        let p = random_ql_program(cfg, 3);
        for id in 0..cfg.bindings {
            assert!(p.text.contains(&format!("let b{id} = /")), "{}", p.text);
        }
        assert!(p.text.ends_with(';'), "{}", p.text);
    }
}
