//! A library of ready-made extractors (regex formulas) for the synthetic
//! corpora, including the paper's running example (Example 2.2 / 2.4).

use spanner_core::SpannerResult;
use spanner_rgx::{parse, Rgx};

/// `αmail`-style extractor: binds `mail` to an email address occurring
/// anywhere in the document.
pub fn mail_extractor() -> SpannerResult<Rgx> {
    parse(r"(.*\s)?{mail:\l+@\l+(\.\l+)+}(\s.*)?")
}

/// `αname`-style extractor for one line: binds an optional `first` name and a
/// `last` name at the start of a line.
pub fn name_extractor() -> SpannerResult<Rgx> {
    parse(r"(.*\n)?({first:\u\l+} )?{last:\u\l+} .*")
}

/// `αphone`-style extractor: binds `phone` to a digit run.
pub fn phone_extractor() -> SpannerResult<Rgx> {
    parse(r"(.*\s)?{phone:\d+}(\s.*)?")
}

/// The paper's `αinfo` (Example 2.2), adapted to the student-records corpus:
/// one student line with optional first name, mandatory last name, optional
/// phone, and mail address. Sequential but **not** functional (the optional
/// fields may be absent).
pub fn student_info_extractor() -> SpannerResult<Rgx> {
    parse(r"(.*\n)?({first:\u\l+} )?{last:\u\l+} ({phone:\d+} )?{mail:\l+@\l+(\.\l+)+}\n.*")
}

/// The paper's `αUKm` (Example 2.4): binds `mail` to an address ending in
/// `.uk`.
pub fn uk_mail_extractor() -> SpannerResult<Rgx> {
    parse(r"(.*\s)?{mail:\l+@\l+(\.\l+)*\.uk}(\s.*)?")
}

/// Extractor pairing a student (line-initial capitalized token) with a
/// recommendation text on a `rec` line.
pub fn recommendation_extractor() -> SpannerResult<Rgx> {
    parse(r"(.*\n)?{student:\u\l+} rec{rec: [\l ]+}\n.*")
}

/// Access-log extractor: binds `ip`, optional `user`, `method`, `path`,
/// `status`.
pub fn log_request_extractor() -> SpannerResult<Rgx> {
    parse(
        r#"(.*\n)?{ip:\d+\.\d+\.\d+\.\d+} - ({user:\l+}|-) \[[\d/]+\] "{method:\u+} {path:[\w/\.]+}" {status:\d\d\d} \d+\n.*"#,
    )
}

/// Access-log error extractor: binds `ip` and `status` for 5xx responses.
pub fn log_error_extractor() -> SpannerResult<Rgx> {
    parse(r#"(.*\n)?{ip:\d+\.\d+\.\d+\.\d+} [^\n]*"{method:\u+} [\w/\.]+" {status:5\d\d} \d+\n.*"#)
}

/// The Example 3.10 / Proposition 3.11 family:
/// `(x₁{Σ*} ∨ y₁{Σ*}) ⋯ (xₙ{Σ*} ∨ yₙ{Σ*})` — sequential, with an
/// exponentially large smallest equivalent disjunctive-functional formula.
pub fn example_3_10_formula(n: usize) -> Rgx {
    Rgx::concat((1..=n).map(|i| {
        Rgx::union([
            Rgx::capture(format!("x{i}"), Rgx::any_string()),
            Rgx::capture(format!("y{i}"), Rgx::any_string()),
        ])
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpora;
    use spanner_core::Document;
    use spanner_enum::evaluate_rgx;
    use spanner_rgx::{is_functional, is_sequential};

    #[test]
    fn all_extractors_parse_and_are_sequential() {
        let extractors: Vec<Rgx> = vec![
            mail_extractor().unwrap(),
            name_extractor().unwrap(),
            phone_extractor().unwrap(),
            student_info_extractor().unwrap(),
            uk_mail_extractor().unwrap(),
            recommendation_extractor().unwrap(),
            log_request_extractor().unwrap(),
            log_error_extractor().unwrap(),
        ];
        for e in &extractors {
            assert!(is_sequential(e), "not sequential: {e}");
        }
        // The student-info extractor is schemaless (not functional): the
        // first name and phone are optional.
        assert!(!is_functional(&student_info_extractor().unwrap()));
    }

    #[test]
    fn student_info_on_figure_1() {
        let doc = corpora::students_figure_1();
        let alpha = student_info_extractor().unwrap();
        let result = evaluate_rgx(&alpha, &doc).unwrap();
        // Three students (the paper's µ1, µ2, µ3), possibly with additional
        // sub-matches of the mail host; at least one mapping per line.
        let lasts: std::collections::BTreeSet<&str> = result
            .iter()
            .filter_map(|m| m.get(&"last".into()))
            .map(|s| doc.slice(s))
            .collect();
        assert!(lasts.contains("Raskolnikov"));
        assert!(lasts.contains("Luzhin"));
        assert!(lasts.contains("Zosimov"));
        // µ2 (Zosimov) has no first name.
        assert!(result.iter().any(|m| {
            m.get(&"last".into()).map(|s| doc.slice(s)) == Some("Zosimov")
                && !m.contains(&"first".into())
        }));
    }

    #[test]
    fn uk_mail_on_figure_1() {
        let doc = corpora::students_figure_1();
        let alpha = uk_mail_extractor().unwrap();
        let result = evaluate_rgx(&alpha, &doc).unwrap();
        assert!(!result.is_empty());
        for m in result.iter() {
            assert!(doc.slice(m.get(&"mail".into()).unwrap()).ends_with(".uk"));
        }
    }

    #[test]
    fn log_extractors_on_synthetic_log() {
        let doc = corpora::access_log(30, 2);
        let requests = evaluate_rgx(&log_request_extractor().unwrap(), &doc).unwrap();
        assert!(requests.len() >= 30, "got {}", requests.len());
        let errors = evaluate_rgx(&log_error_extractor().unwrap(), &doc).unwrap();
        for m in errors.iter() {
            assert!(doc.slice(m.get(&"status".into()).unwrap()).starts_with('5'));
        }
    }

    #[test]
    fn example_3_10_family_shape() {
        let f = example_3_10_formula(4);
        assert!(is_sequential(&f));
        assert!(!is_functional(&f));
        assert_eq!(f.vars().len(), 8);
        // On the empty document each factor binds the empty span to either
        // xi or yi: 2^4 mappings.
        let result = evaluate_rgx(&f, &Document::new("")).unwrap();
        assert_eq!(result.len(), 16);
    }
}
