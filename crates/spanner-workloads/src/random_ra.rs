//! Random RA trees over random atomic spanners.
//!
//! The planner and the evaluation pipelines are differentially tested
//! against the materialized oracle on *generated* query plans: seeded,
//! reproducible RA trees whose leaves are random sequential vset-automata
//! and regex formulas (see `random_vsa`). Variable names are drawn from two
//! small pools on purpose, so that joins share variables (exercising the
//! FPT product and the planner's join ordering) and differences relate
//! overlapping schemas.

use crate::random_vsa::{random_sequential_rgx, random_sequential_vsa, RandomVsaConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spanner_algebra::{Atom, Instantiation, RaTree};
use spanner_core::{VarSet, Variable};

/// Configuration for [`random_ra_tree`].
#[derive(Debug, Clone, Copy)]
pub struct RandomRaConfig {
    /// Maximum operator nesting depth.
    pub depth: usize,
    /// Number of atomic spanners to draw leaves from.
    pub leaves: usize,
    /// Capture variables per atom.
    pub vars_per_leaf: usize,
    /// Whether difference nodes may appear (they are the most expensive
    /// operator — the oracle holds them to the ad-hoc pipeline's cost).
    pub allow_difference: bool,
}

impl Default for RandomRaConfig {
    fn default() -> Self {
        RandomRaConfig {
            depth: 3,
            leaves: 3,
            vars_per_leaf: 2,
            allow_difference: true,
        }
    }
}

/// Generates a random RA tree together with an instantiation assigning a
/// random sequential atom to every placeholder. Deterministic per
/// `(config, seed)`.
pub fn random_ra_tree(config: RandomRaConfig, seed: u64) -> (RaTree, Instantiation) {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let leaves = config.leaves.max(1);

    // Atoms: alternate automaton and regex-formula leaves. Both families
    // use fixed variable-name pools ("v*" for automata, "r*" for formulas),
    // so distinct leaves genuinely share variables.
    let mut inst = Instantiation::new();
    let mut pool = VarSet::new();
    for id in 0..leaves {
        let atom_seed = rng.next_u64();
        let atom = if id % 2 == 0 {
            let cfg = RandomVsaConfig {
                layers: 4,
                width: 2,
                num_vars: 1 + atom_seed as usize % config.vars_per_leaf.max(1),
                ..RandomVsaConfig::default()
            };
            Atom::Vsa(random_sequential_vsa(cfg, atom_seed))
        } else {
            Atom::Rgx(random_sequential_rgx(3, config.vars_per_leaf, atom_seed))
        };
        pool = pool.union(&atom.vars());
        inst = inst.with(id, atom);
    }
    // Projection targets also include a variable no atom binds, so trees
    // exercise projections onto unknown variables.
    pool.insert(Variable::new("unbound"));

    let tree = gen_tree(
        &mut rng,
        config.depth,
        leaves,
        config.allow_difference,
        &pool,
    );
    (tree, inst)
}

fn gen_tree(
    rng: &mut StdRng,
    depth: usize,
    leaves: usize,
    allow_difference: bool,
    pool: &VarSet,
) -> RaTree {
    if depth == 0 || rng.gen_bool(0.2) {
        return RaTree::leaf(rng.gen_range(0..leaves));
    }
    match rng.gen_range(0..8u32) {
        0 | 1 => RaTree::project(
            random_subset(rng, pool),
            gen_tree(rng, depth - 1, leaves, allow_difference, pool),
        ),
        2..=4 => RaTree::union(
            gen_tree(rng, depth - 1, leaves, allow_difference, pool),
            gen_tree(rng, depth - 1, leaves, allow_difference, pool),
        ),
        5 | 6 => RaTree::join(
            gen_tree(rng, depth - 1, leaves, allow_difference, pool),
            gen_tree(rng, depth - 1, leaves, allow_difference, pool),
        ),
        _ if allow_difference => RaTree::difference(
            gen_tree(rng, depth - 1, leaves, allow_difference, pool),
            gen_tree(rng, depth - 1, leaves, allow_difference, pool),
        ),
        _ => RaTree::join(
            gen_tree(rng, depth - 1, leaves, allow_difference, pool),
            gen_tree(rng, depth - 1, leaves, allow_difference, pool),
        ),
    }
}

/// A random subset of the variable pool (possibly empty — the boolean
/// projection — and possibly everything).
fn random_subset(rng: &mut StdRng, pool: &VarSet) -> VarSet {
    let mut out = VarSet::new();
    for v in pool.iter() {
        if rng.gen_bool(0.5) {
            out.insert(v.clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use spanner_algebra::{evaluate_ra, evaluate_ra_materialized, tree_vars, RaOptions};
    use spanner_core::Document;

    #[test]
    fn generation_is_deterministic() {
        let cfg = RandomRaConfig::default();
        let (t1, i1) = random_ra_tree(cfg, 7);
        let (t2, i2) = random_ra_tree(cfg, 7);
        assert_eq!(t1, t2);
        assert_eq!(i1.len(), i2.len());
        assert_eq!(tree_vars(&t1, &i1).unwrap(), tree_vars(&t2, &i2).unwrap());
        let (t3, _) = random_ra_tree(cfg, 8);
        // Different seeds almost always differ; at minimum the pair must
        // stay internally consistent, so only check reproducibility here.
        let _ = t3;
    }

    #[test]
    fn generated_trees_evaluate() {
        let cfg = RandomRaConfig {
            depth: 2,
            ..RandomRaConfig::default()
        };
        let doc = Document::new("ab");
        for seed in 0..10 {
            let (tree, inst) = random_ra_tree(cfg, seed);
            let expected = evaluate_ra_materialized(&tree, &inst, &doc).unwrap();
            let actual = evaluate_ra(&tree, &inst, &doc, RaOptions::default()).unwrap();
            assert_eq!(actual, expected, "seed {seed}: {tree}");
        }
    }
}
