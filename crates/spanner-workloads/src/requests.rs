//! A request-mix generator for the serving layer.
//!
//! Serving benchmarks and tests need traffic that looks like a real query
//! service's: a small hot set of programs hit over and over (the case the
//! prepared-query cache exists for), a long tail of colder programs, and a
//! mix of single-document, corpus, and introspection requests. This module
//! generates such a mix deterministically from a seed, as plain data — the
//! workloads crate knows nothing about the wire protocol, so the serve
//! layer (or a benchmark) maps [`ServeRequest`] onto whatever transport it
//! drives.

use crate::corpora::access_log;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// What a generated request asks the service to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestKind {
    /// Evaluate the program on one document.
    Query,
    /// Evaluate the program over a multi-line corpus.
    QueryCorpus,
    /// Render the program's plan explanation.
    Explain,
    /// Read the service counters (no program attached).
    Stats,
}

/// One generated request: the operation, the program text, and the
/// document (or corpus text) it applies to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeRequest {
    /// The operation.
    pub kind: RequestKind,
    /// SpannerQL program text (empty for [`RequestKind::Stats`]).
    pub program: String,
    /// Document text for queries; newline-separated corpus text for corpus
    /// requests; empty otherwise.
    pub doc: String,
}

/// Tuning knobs of [`request_mix`].
#[derive(Debug, Clone, Copy)]
pub struct RequestMixConfig {
    /// Percent of program picks that go to the hottest program (the rest
    /// spread uniformly over the remaining library) — the cache-hit knob.
    pub hot_percent: u32,
    /// Percent of requests that are corpus scans.
    pub corpus_percent: u32,
    /// Percent of requests that are explains / stats (half each).
    pub introspection_percent: u32,
    /// Lines per generated corpus request.
    pub corpus_lines: usize,
}

impl Default for RequestMixConfig {
    fn default() -> RequestMixConfig {
        RequestMixConfig {
            hot_percent: 70,
            corpus_percent: 10,
            introspection_percent: 6,
            corpus_lines: 50,
        }
    }
}

/// The program library the mix draws from: a hot user/host join (first
/// entry) plus a tail of colder extractors, all over email- and log-shaped
/// lines.
pub fn program_library() -> Vec<String> {
    vec![
        // The hot program: the running-example extraction pipeline grown to
        // a three-way join chain with an admin filter — the compile cost
        // (FPT join products over the chain) is exactly what a
        // prepared-query cache amortizes.
        "let pair   = /{user:[a-z]+}@{host:[a-z]+(\\.[a-z]+)*}( .*)?/;\n\
         let dotted = /[a-z]+@[a-z]+(\\.[a-z]+)*\\.{tld:[a-z]+}( .*)?/;\n\
         let sub    = /[a-z]+@{sub:[a-z]+}(\\.[a-z]+)+( .*)?/;\n\
         project user, tld ((pair join dotted) join sub)\n\
           minus /{user:admin[a-z]*}@[a-z]+(\\.[a-z]+)*\\.{tld:[a-z]+}( .*)?/;"
            .to_string(),
        // Colder tail: single-extractor and small compound programs.
        "/{user:[a-z]+}@{host:[a-z]+(\\.[a-z]+)*}( .*)?/".to_string(),
        "let ip = /{ip:[0-9]+\\.[0-9]+\\.[0-9]+\\.[0-9]+}( .*)?/; project ip (ip);".to_string(),
        "let method = /.*\"{method:[A-Z]+} .*/; let path = /.* {path:\\/[a-zA-Z0-9_\\/\\.]*} .*/;\n\
         method join path;"
            .to_string(),
        "/.*{status:[0-9][0-9][0-9]} [0-9]+/ minus /.*{status:200} [0-9]+/".to_string(),
    ]
}

/// Generates `n` requests with the configured mix, deterministically from
/// `seed`. The document stream reuses the access-log corpus generator, so
/// the programs actually extract something.
pub fn request_mix(n: usize, config: RequestMixConfig, seed: u64) -> Vec<ServeRequest> {
    let mut rng = StdRng::seed_from_u64(seed);
    let programs = program_library();
    let log = access_log(200, seed ^ 0x5eed);
    let lines: Vec<&str> = log.text().lines().collect();
    let email_line = |rng: &mut StdRng| {
        let users = ["bob", "carol", "adminx", "dave", "eve"];
        let hosts = ["edu.ru", "site.org", "dot.net", "mail.co.uk"];
        format!(
            "{}@{} msg {}",
            users[rng.gen_range(0..users.len())],
            hosts[rng.gen_range(0..hosts.len())],
            rng.gen_range(0..1000)
        )
    };
    (0..n)
        .map(|_| {
            let roll = rng.gen_range(0..100u32);
            let kind = if roll < config.introspection_percent {
                if roll % 2 == 0 {
                    RequestKind::Stats
                } else {
                    RequestKind::Explain
                }
            } else if roll < config.introspection_percent + config.corpus_percent {
                RequestKind::QueryCorpus
            } else {
                RequestKind::Query
            };
            if kind == RequestKind::Stats {
                return ServeRequest {
                    kind,
                    program: String::new(),
                    doc: String::new(),
                };
            }
            let program = if rng.gen_range(0..100u32) < config.hot_percent {
                programs[0].clone()
            } else {
                programs[1 + rng.gen_range(0..programs.len() - 1)].clone()
            };
            let doc = match kind {
                RequestKind::Query => {
                    if rng.gen_bool(0.5) {
                        email_line(&mut rng)
                    } else {
                        lines[rng.gen_range(0..lines.len())].to_string()
                    }
                }
                RequestKind::QueryCorpus => {
                    let mut corpus = String::new();
                    for _ in 0..config.corpus_lines {
                        if rng.gen_bool(0.5) {
                            corpus.push_str(&email_line(&mut rng));
                        } else {
                            corpus.push_str(lines[rng.gen_range(0..lines.len())]);
                        }
                        corpus.push('\n');
                    }
                    corpus
                }
                RequestKind::Explain | RequestKind::Stats => String::new(),
            };
            ServeRequest { kind, program, doc }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use spanner_ql::PreparedQuery;

    #[test]
    fn mix_is_deterministic_and_sized() {
        let a = request_mix(100, RequestMixConfig::default(), 7);
        let b = request_mix(100, RequestMixConfig::default(), 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 100);
        let c = request_mix(100, RequestMixConfig::default(), 8);
        assert_ne!(a, c, "different seeds give different mixes");
    }

    #[test]
    fn mix_respects_the_shape_knobs() {
        let mix = request_mix(500, RequestMixConfig::default(), 11);
        let queries = mix.iter().filter(|r| r.kind == RequestKind::Query).count();
        let corpora = mix
            .iter()
            .filter(|r| r.kind == RequestKind::QueryCorpus)
            .count();
        assert!(queries > 300, "queries dominate: {queries}");
        assert!(corpora > 10, "corpus requests present: {corpora}");
        let hot = &program_library()[0];
        let hot_hits = mix.iter().filter(|r| &r.program == hot).count();
        assert!(
            hot_hits * 2 > mix.len(),
            "the hot program dominates the program picks: {hot_hits}"
        );
        for r in &mix {
            match r.kind {
                RequestKind::Stats => assert!(r.program.is_empty()),
                RequestKind::Explain => assert!(!r.program.is_empty()),
                RequestKind::Query => assert!(!r.doc.is_empty()),
                RequestKind::QueryCorpus => {
                    assert_eq!(r.doc.lines().count(), 50);
                }
            }
        }
    }

    #[test]
    fn every_generated_program_compiles() {
        for program in program_library() {
            PreparedQuery::prepare(&program)
                .unwrap_or_else(|e| panic!("{program}\n{}", e.pretty(&program)));
        }
    }
}
