//! The atomic metrics registry.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap `Arc` clones
//! around atomics: a caller registers once at startup, stores the handle,
//! and records with one lock-free `fetch_add` per event — the registry
//! [`Mutex`] is held only while registering and while rendering a scrape,
//! never on the recording path. Rendering walks families in registration
//! order and emits the Prometheus text format through [`Exposition`].

use crate::expo::Exposition;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Default latency histogram bounds, in seconds: 50µs up to 10s, the
/// range a request to the serve daemon can realistically land in.
pub const LATENCY_BUCKETS: &[f64] = &[
    50e-6, 100e-6, 250e-6, 500e-6, 1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3,
    1.0, 2.5, 5.0, 10.0,
];

/// Default bounds for ratios in `[0, 1]` (e.g. index selectivity).
pub const RATIO_BUCKETS: &[f64] = &[0.0001, 0.001, 0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0];

/// A monotonically increasing counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A free-standing counter (most callers get one from
    /// [`Registry::counter`] instead).
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down (stored as `u64`; the
/// workspace's gauges are all non-negative counts).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// A free-standing gauge.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Sets the value.
    pub fn set(&self, value: u64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Scale of the histogram sum accumulator: sums are recorded in integer
/// nano-units so recording stays one `fetch_add` (no CAS loop on floats).
/// At 1e9 units per 1.0, a latency histogram can absorb ~584 years of
/// observed seconds before the `u64` sum wraps.
const SUM_SCALE: f64 = 1e9;

#[derive(Debug)]
struct HistogramCore {
    /// Finite upper bounds, strictly increasing.
    bounds: Vec<f64>,
    /// Per-bucket (non-cumulative) counts; the last entry is the overflow
    /// (`+Inf`) bucket, so `buckets.len() == bounds.len() + 1`.
    buckets: Vec<AtomicU64>,
    /// Sum of observed values in [`SUM_SCALE`]ths.
    sum: AtomicU64,
}

/// A fixed-bucket histogram with lock-free recording.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    /// A histogram over the given finite upper bounds (must be strictly
    /// increasing; the `+Inf` overflow bucket is implicit).
    pub fn new(bounds: &[f64]) -> Histogram {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram(Arc::new(HistogramCore {
            bounds: bounds.to_vec(),
            buckets: (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
        }))
    }

    /// Records one observation.
    pub fn observe(&self, value: f64) {
        let core = &self.0;
        let idx = core
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(core.bounds.len());
        core.buckets[idx].fetch_add(1, Ordering::Relaxed);
        let scaled = (value * SUM_SCALE).max(0.0) as u64;
        core.sum.fetch_add(scaled, Ordering::Relaxed);
    }

    /// Records a duration, in seconds.
    pub fn observe_duration(&self, elapsed: Duration) {
        self.observe(elapsed.as_secs_f64());
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.0
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .sum()
    }

    /// Sum of observed values.
    pub fn sum(&self) -> f64 {
        self.0.sum.load(Ordering::Relaxed) as f64 / SUM_SCALE
    }

    /// The finite bounds plus the cumulative counts (one entry per bound,
    /// plus the trailing `+Inf` total) — the exposition shape.
    pub fn snapshot(&self) -> (Vec<f64>, Vec<u64>, f64) {
        let mut cumulative = Vec::with_capacity(self.0.buckets.len());
        let mut running = 0u64;
        for bucket in &self.0.buckets {
            running += bucket.load(Ordering::Relaxed);
            cumulative.push(running);
        }
        (self.0.bounds.clone(), cumulative, self.sum())
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    fn name(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

#[derive(Debug)]
struct Series {
    labels: Vec<(String, String)>,
    metric: Metric,
}

#[derive(Debug)]
struct Family {
    name: String,
    help: String,
    kind: Kind,
    series: Vec<Series>,
}

/// A set of registered metric families, renderable as one Prometheus
/// text exposition. Registration is idempotent: asking for an existing
/// (name, labels) pair returns a clone of the existing handle, so
/// concurrent workers can all "register" and share the same atomics.
#[derive(Debug, Default)]
pub struct Registry {
    families: Mutex<Vec<Family>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Registers (or retrieves) a counter.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.register(name, help, Kind::Counter, labels, || {
            Metric::Counter(Counter::new())
        }) {
            Metric::Counter(c) => c,
            _ => unreachable!("kind checked in register"),
        }
    }

    /// Registers one counter per value of a single label key — a whole
    /// family at once, in value order. This is the shape of per-partition
    /// families whose cardinality is only known at startup (one series
    /// per backend shard, one per HTTP status class): the caller indexes
    /// the returned handles positionally and never touches the registry
    /// mutex again.
    pub fn counters<S: AsRef<str>>(
        &self,
        name: &str,
        help: &str,
        key: &str,
        values: &[S],
    ) -> Vec<Counter> {
        values
            .iter()
            .map(|value| self.counter(name, help, &[(key, value.as_ref())]))
            .collect()
    }

    /// Registers (or retrieves) a gauge.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.register(name, help, Kind::Gauge, labels, || {
            Metric::Gauge(Gauge::new())
        }) {
            Metric::Gauge(g) => g,
            _ => unreachable!("kind checked in register"),
        }
    }

    /// Registers (or retrieves) a histogram over `bounds`.
    pub fn histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        bounds: &[f64],
    ) -> Histogram {
        match self.register(name, help, Kind::Histogram, labels, || {
            Metric::Histogram(Histogram::new(bounds))
        }) {
            Metric::Histogram(h) => h,
            _ => unreachable!("kind checked in register"),
        }
    }

    fn register(
        &self,
        name: &str,
        help: &str,
        kind: Kind,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Metric,
    ) -> Metric {
        let labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        let mut families = self.families.lock().expect("registry poisoned");
        let family = match families.iter_mut().find(|f| f.name == name) {
            Some(family) => {
                assert_eq!(
                    family.kind,
                    kind,
                    "metric `{name}` already registered as a {}",
                    family.kind.name()
                );
                family
            }
            None => {
                families.push(Family {
                    name: name.to_string(),
                    help: help.to_string(),
                    kind,
                    series: Vec::new(),
                });
                families.last_mut().expect("just pushed")
            }
        };
        if let Some(series) = family.series.iter().find(|s| s.labels == labels) {
            return series.metric.clone();
        }
        let metric = make();
        family.series.push(Series {
            labels,
            metric: metric.clone(),
        });
        metric
    }

    /// Appends every registered family to an exposition (families in
    /// registration order, series in per-family registration order).
    pub fn export_into(&self, out: &mut Exposition) {
        let families = self.families.lock().expect("registry poisoned");
        for family in families.iter() {
            out.family(&family.name, family.kind.name(), &family.help);
            for series in &family.series {
                let labels: Vec<(&str, &str)> = series
                    .labels
                    .iter()
                    .map(|(k, v)| (k.as_str(), v.as_str()))
                    .collect();
                match &series.metric {
                    Metric::Counter(c) => out.sample(&family.name, &labels, c.get() as f64),
                    Metric::Gauge(g) => out.sample(&family.name, &labels, g.get() as f64),
                    Metric::Histogram(h) => {
                        let (bounds, cumulative, sum) = h.snapshot();
                        out.histogram(&family.name, &labels, &bounds, &cumulative, sum);
                    }
                }
            }
        }
    }

    /// Renders the whole registry as Prometheus text.
    pub fn render(&self) -> String {
        let mut out = Exposition::new();
        self.export_into(&mut out);
        out.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expo::check_exposition;

    #[test]
    fn counter_families_register_per_label_value() {
        let registry = Registry::new();
        let shards: Vec<String> = (0..3).map(|i| i.to_string()).collect();
        let family = registry.counters(
            "backend_requests_total",
            "per-shard requests",
            "shard",
            &shards,
        );
        assert_eq!(family.len(), 3);
        family[1].add(5);
        // Re-registering yields the same underlying series, positionally.
        let again = registry.counters(
            "backend_requests_total",
            "per-shard requests",
            "shard",
            &shards,
        );
        assert_eq!(again[1].get(), 5);
        assert_eq!(again[0].get(), 0);
        let mut out = Exposition::new();
        registry.export_into(&mut out);
        let rendered = out.finish();
        assert!(rendered.contains("backend_requests_total{shard=\"1\"} 5"));
        check_exposition(&rendered).unwrap();
    }

    #[test]
    fn counters_aggregate_across_threads() {
        let registry = Registry::new();
        let counter = registry.counter("hits_total", "hits", &[]);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                // Each worker re-registers (idempotent) and hammers the
                // shared atomic — the serve daemon's connection-worker
                // shape.
                scope.spawn(|| {
                    let mine = registry.counter("hits_total", "hits", &[]);
                    for _ in 0..1000 {
                        mine.inc();
                    }
                });
            }
        });
        assert_eq!(counter.get(), 8000);
        assert!(registry.render().contains("hits_total 8000"));
    }

    #[test]
    fn histogram_buckets_are_monotone_with_inf_sum_count_invariants() {
        let h = Histogram::new(&[0.1, 1.0, 10.0]);
        for v in [0.05, 0.5, 0.5, 5.0, 50.0] {
            h.observe(v);
        }
        let (bounds, cumulative, sum) = h.snapshot();
        assert_eq!(bounds, vec![0.1, 1.0, 10.0]);
        // Cumulative counts never decrease and end at the total count.
        assert_eq!(cumulative, vec![1, 3, 4, 5]);
        assert_eq!(*cumulative.last().unwrap(), h.count());
        assert!((sum - 56.05).abs() < 1e-6, "{sum}");
        // A boundary value lands in its bucket (le is inclusive).
        let edge = Histogram::new(&[1.0]);
        edge.observe(1.0);
        assert_eq!(edge.snapshot().1, vec![1, 1]);
    }

    #[test]
    fn histogram_recording_is_concurrent_safe() {
        let h = Histogram::new(LATENCY_BUCKETS);
        std::thread::scope(|scope| {
            for t in 0..4 {
                let h = h.clone();
                scope.spawn(move || {
                    for i in 0..500 {
                        h.observe((t * 500 + i) as f64 * 1e-6);
                    }
                });
            }
        });
        assert_eq!(h.count(), 2000);
        let (_, cumulative, sum) = h.snapshot();
        assert!(cumulative.windows(2).all(|w| w[0] <= w[1]));
        // Sum of 0..2000 µs = 1.999 s, within scaled-integer rounding.
        assert!((sum - 1.999).abs() < 1e-3, "{sum}");
    }

    #[test]
    fn registry_renders_checkable_prometheus_text() {
        let registry = Registry::new();
        registry
            .counter("req_total", "requests", &[("op", "query")])
            .add(3);
        registry
            .counter("req_total", "requests", &[("op", "explain")])
            .inc();
        registry.gauge("entries", "cache entries", &[]).set(7);
        registry
            .histogram("lat_seconds", "latency", &[("op", "query")], &[0.001, 0.1])
            .observe(0.05);
        let text = registry.render();
        check_exposition(&text).unwrap();
        assert!(text.contains(r#"req_total{op="query"} 3"#), "{text}");
        assert!(text.contains(r#"req_total{op="explain"} 1"#), "{text}");
        assert!(text.contains("# TYPE lat_seconds histogram"), "{text}");
        assert!(
            text.contains(r#"lat_seconds_bucket{op="query",le="+Inf"} 1"#),
            "{text}"
        );
        // One family header per family, even with several series.
        assert_eq!(text.matches("# TYPE req_total counter").count(), 1);
    }

    #[test]
    fn registration_is_idempotent_and_kind_checked() {
        let registry = Registry::new();
        let a = registry.counter("x_total", "x", &[]);
        let b = registry.counter("x_total", "x", &[]);
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2, "same handle behind both registrations");
        let panic = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            registry.gauge("x_total", "x", &[]);
        }));
        assert!(panic.is_err(), "kind mismatch must be a programmer error");
    }
}
