//! Observability primitives for the document-spanners stack.
//!
//! The engine now spans five evaluation surfaces (ad-hoc, executor, corpus
//! pool, serve daemon, indexed store); this crate is the shared
//! instrumentation layer they all report through. It is std-only and has
//! zero dependencies, like the rest of the workspace. Three pieces:
//!
//! * [`metrics`] — a process-wide metrics [`Registry`] of atomic
//!   [`Counter`]s, [`Gauge`]s, and fixed-bucket [`Histogram`]s. Recording
//!   is one lock-free `fetch_add`; the registry mutex is touched only at
//!   registration and render time, never on the hot path.
//! * [`expo`] — the Prometheus text exposition format ([`Exposition`]):
//!   `# HELP` / `# TYPE` headers, label escaping, histogram
//!   `_bucket`/`_sum`/`_count` triples. The registry renders through it,
//!   and scrape-time values (cache stats, uptime) can be appended to the
//!   same exposition so one scrape carries everything.
//! * [`trace`] — a lightweight span tree ([`TraceNode`]) for per-operator
//!   execution traces: rows, wall time, named counters, children. Traces
//!   from repeated evaluations of the same plan [`TraceNode::merge`] into
//!   an aggregate, which is how `explain --analyze` reports a corpus run.
//!
//! ```
//! use spanner_obs::Registry;
//!
//! let registry = Registry::new();
//! let requests = registry.counter("requests_total", "Requests served", &[("op", "query")]);
//! requests.inc();
//! let text = registry.render();
//! assert!(text.contains(r#"requests_total{op="query"} 1"#));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod expo;
pub mod metrics;
pub mod trace;

pub use expo::Exposition;
pub use metrics::{Counter, Gauge, Histogram, Registry, LATENCY_BUCKETS, RATIO_BUCKETS};
pub use trace::TraceNode;
