//! The Prometheus text exposition format (version 0.0.4).
//!
//! [`Exposition`] is a small append-only builder: callers open a metric
//! family (`# HELP` + `# TYPE` headers) and append samples to it. Escaping
//! follows the format specification exactly — in help text `\` and line
//! feeds are escaped; in label values `\`, `"`, and line feeds are — so
//! arbitrary program text (which ends up in labels via error messages or
//! operator names) can never corrupt a scrape.
//!
//! Values render the way Prometheus clients conventionally do: integral
//! values without a fractional part (`17`, not `17.0`), everything else in
//! shortest-roundtrip float form, and the histogram overflow bound as
//! `+Inf`.

use std::fmt::Write as _;

/// Escapes a `# HELP` text: `\` → `\\`, newline → `\n`.
pub fn escape_help(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '\\' => out.push_str(r"\\"),
            '\n' => out.push_str(r"\n"),
            c => out.push(c),
        }
    }
    out
}

/// Escapes a label value: `\` → `\\`, `"` → `\"`, newline → `\n`.
pub fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str(r"\\"),
            '"' => out.push_str(r#"\""#),
            '\n' => out.push_str(r"\n"),
            c => out.push(c),
        }
    }
    out
}

/// Renders a sample value: integers without a trailing `.0`, `+Inf` for
/// the histogram overflow bound, shortest-roundtrip floats otherwise.
pub fn render_value(value: f64) -> String {
    if value == f64::INFINITY {
        "+Inf".to_string()
    } else if value == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else if value.fract() == 0.0 && value.abs() < 1e15 {
        format!("{}", value as i64)
    } else {
        format!("{value}")
    }
}

/// An in-progress Prometheus text exposition.
#[derive(Debug, Default)]
pub struct Exposition {
    out: String,
}

impl Exposition {
    /// An empty exposition.
    pub fn new() -> Exposition {
        Exposition::default()
    }

    /// Opens a metric family: one `# HELP` and one `# TYPE` line.
    /// `kind` is the Prometheus type (`counter`, `gauge`, `histogram`).
    pub fn family(&mut self, name: &str, kind: &str, help: &str) {
        let _ = writeln!(self.out, "# HELP {name} {}", escape_help(help));
        let _ = writeln!(self.out, "# TYPE {name} {kind}");
    }

    /// Appends one sample line (`name{labels} value`); empty label sets
    /// render without braces.
    pub fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.out.push_str(name);
        self.append_labels(labels);
        self.out.push(' ');
        self.out.push_str(&render_value(value));
        self.out.push('\n');
    }

    /// Appends the `_bucket`/`_sum`/`_count` triple of one histogram:
    /// `bounds` are the finite upper bounds, `cumulative` the cumulative
    /// counts per bound **plus** the final `+Inf` count (so
    /// `cumulative.len() == bounds.len() + 1` and the last entry equals
    /// the total observation count).
    pub fn histogram(
        &mut self,
        name: &str,
        labels: &[(&str, &str)],
        bounds: &[f64],
        cumulative: &[u64],
        sum: f64,
    ) {
        debug_assert_eq!(cumulative.len(), bounds.len() + 1);
        let bucket = format!("{name}_bucket");
        for (bound, count) in bounds
            .iter()
            .copied()
            .chain(std::iter::once(f64::INFINITY))
            .zip(cumulative)
        {
            self.out.push_str(&bucket);
            let le = render_value(bound);
            let mut with_le: Vec<(&str, &str)> = labels.to_vec();
            with_le.push(("le", &le));
            self.append_labels(&with_le);
            let _ = writeln!(self.out, " {count}");
        }
        self.sample(&format!("{name}_sum"), labels, sum);
        self.sample(
            &format!("{name}_count"),
            labels,
            *cumulative.last().unwrap_or(&0) as f64,
        );
    }

    fn append_labels(&mut self, labels: &[(&str, &str)]) {
        if labels.is_empty() {
            return;
        }
        self.out.push('{');
        for (i, (key, value)) in labels.iter().enumerate() {
            if i > 0 {
                self.out.push(',');
            }
            let _ = write!(self.out, "{key}=\"{}\"", escape_label(value));
        }
        self.out.push('}');
    }

    /// The rendered exposition text.
    pub fn finish(self) -> String {
        self.out
    }
}

/// Structural well-formedness check used by the tests and the CI smoke:
/// every non-comment line is `name[{labels}] value`, every sample is
/// preceded (possibly transitively) by a `# TYPE` header for its family,
/// and histogram bucket counts are monotone in `le` order ending at
/// `_count`. Returns the first violation as an error string.
pub fn check_exposition(text: &str) -> Result<(), String> {
    let mut typed: Vec<String> = Vec::new();
    let mut bucket_last: Option<(String, u64)> = None;
    for (i, line) in text.lines().enumerate() {
        let n = i + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split(' ');
            let name = parts.next().unwrap_or_default();
            let kind = parts.next().unwrap_or_default();
            if !matches!(kind, "counter" | "gauge" | "histogram") {
                return Err(format!("line {n}: unknown metric type `{kind}`"));
            }
            typed.push(name.to_string());
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        let (series, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {n}: no value on `{line}`"))?;
        if value != "+Inf" && value != "-Inf" && value.parse::<f64>().is_err() {
            return Err(format!("line {n}: bad value `{value}`"));
        }
        let name = series.split('{').next().unwrap_or(series);
        let base = name
            .strip_suffix("_bucket")
            .or_else(|| name.strip_suffix("_sum"))
            .or_else(|| name.strip_suffix("_count"))
            .filter(|b| typed.iter().any(|t| t == b));
        if !typed.iter().any(|t| t == name) && base.is_none() {
            return Err(format!("line {n}: sample `{name}` has no # TYPE header"));
        }
        // Bucket monotonicity: within one series' run of _bucket lines,
        // cumulative counts never decrease.
        if name.ends_with("_bucket") && base.is_some() {
            let count: u64 = value
                .parse()
                .map_err(|_| format!("line {n}: bucket count `{value}` is not an integer"))?;
            if let Some((prev_name, prev)) = &bucket_last {
                if prev_name == name && count < *prev {
                    return Err(format!(
                        "line {n}: bucket counts of `{name}` decreased ({prev} -> {count})"
                    ));
                }
            }
            bucket_last = Some((name.to_string(), count));
        } else {
            bucket_last = None;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn help_and_label_escaping() {
        assert_eq!(escape_help("a\\b\nc"), "a\\\\b\\nc");
        assert_eq!(escape_label("say \"hi\"\n\\x"), "say \\\"hi\\\"\\n\\\\x");
        // Characters that need no escaping pass through untouched.
        assert_eq!(escape_label("π ∪ ⋈ {x:a+}"), "π ∪ ⋈ {x:a+}");
    }

    #[test]
    fn value_rendering() {
        assert_eq!(render_value(17.0), "17");
        assert_eq!(render_value(0.25), "0.25");
        assert_eq!(render_value(f64::INFINITY), "+Inf");
        assert_eq!(render_value(-3.0), "-3");
    }

    #[test]
    fn samples_round_trip_through_the_checker() {
        let mut e = Exposition::new();
        e.family(
            "req_total",
            "counter",
            "requests with \"quotes\"\nand lines",
        );
        e.sample("req_total", &[("op", "a\"b\\c\nd")], 3.0);
        e.family("lat", "histogram", "latency");
        e.histogram("lat", &[("op", "q")], &[0.1, 1.0], &[1, 4, 6], 2.5);
        let text = e.finish();
        assert!(text.contains(r#"req_total{op="a\"b\\c\nd"} 3"#), "{text}");
        assert!(text.contains(r#"lat_bucket{op="q",le="+Inf"} 6"#), "{text}");
        assert!(text.contains("lat_sum{op=\"q\"} 2.5"), "{text}");
        assert!(text.contains("lat_count{op=\"q\"} 6"), "{text}");
        check_exposition(&text).unwrap();
    }

    #[test]
    fn checker_flags_malformed_expositions() {
        assert!(check_exposition("orphan 1").is_err());
        assert!(check_exposition("# TYPE x counter\nx notanumber").is_err());
        assert!(check_exposition("# TYPE x wat\n").is_err());
        let shrinking = "# TYPE h histogram\n\
                         h_bucket{le=\"1\"} 5\n\
                         h_bucket{le=\"+Inf\"} 3\n\
                         h_sum 1\nh_count 3\n";
        let err = check_exposition(shrinking).unwrap_err();
        assert!(err.contains("decreased"), "{err}");
    }
}
