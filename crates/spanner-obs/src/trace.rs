//! Per-operator execution traces.
//!
//! A [`TraceNode`] mirrors one operator of a physical plan: how many rows
//! it produced, how long it ran, plus named counters for operator-specific
//! detail (prescan verdicts, hash-join build sizes, limit trips). Traces
//! from repeated executions of the *same* plan — every document of a
//! corpus run, every shard of a worker pool — [`TraceNode::merge`] into
//! one aggregate tree, which is what `explain --analyze` prints.
//!
//! The tree's *shape* is a function of the plan alone, never of the data:
//! executors emit a zero-valued skeleton for subtrees they short-circuit
//! (an empty-build hash join skips its probe side but still reports it),
//! so any two traces of one plan merge position-by-position.

use std::fmt::Write as _;
use std::time::Duration;

/// One operator's measurements in an execution trace tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceNode {
    /// Operator label, e.g. `⋈ (shared: x)` or `scan [compiled]`.
    pub label: String,
    /// Rows (mappings) this operator produced.
    pub rows: u64,
    /// Wall time spent in this operator, **inclusive** of its children.
    pub nanos: u64,
    /// Named operator-specific counters, in first-recorded order.
    pub counters: Vec<(String, u64)>,
    /// Child operators, in plan order.
    pub children: Vec<TraceNode>,
}

impl TraceNode {
    /// A fresh zero-valued node.
    pub fn new(label: impl Into<String>) -> TraceNode {
        TraceNode {
            label: label.into(),
            rows: 0,
            nanos: 0,
            counters: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Adds `value` to the named counter, creating it at zero first if
    /// this node has not seen it yet.
    pub fn add(&mut self, name: &str, value: u64) {
        match self.counters.iter_mut().find(|(n, _)| n == name) {
            Some((_, v)) => *v += value,
            None => self.counters.push((name.to_string(), value)),
        }
    }

    /// The named counter's value (zero if never recorded).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// Records elapsed wall time.
    pub fn observe_elapsed(&mut self, elapsed: Duration) {
        self.nanos += elapsed.as_nanos().min(u64::MAX as u128) as u64;
    }

    /// Accumulates another trace of the same plan into this one: rows,
    /// time, and counters add up (counters by name), children merge
    /// positionally. Shape mismatches (different labels or child counts)
    /// are a programmer error — the executor guarantees plan-stable
    /// shapes via its skeleton traces.
    pub fn merge(&mut self, other: &TraceNode) {
        debug_assert_eq!(self.label, other.label, "merging traces of different plans");
        debug_assert_eq!(
            self.children.len(),
            other.children.len(),
            "merging traces of different shapes"
        );
        self.rows += other.rows;
        self.nanos += other.nanos;
        for (name, value) in &other.counters {
            self.add(name, *value);
        }
        for (mine, theirs) in self.children.iter_mut().zip(&other.children) {
            mine.merge(theirs);
        }
    }

    /// Total rows produced across the whole tree.
    pub fn total_rows(&self) -> u64 {
        self.rows + self.children.iter().map(TraceNode::total_rows).sum::<u64>()
    }

    /// Renders the tree as indented text, one operator per line:
    /// `label  rows=N time=X [counter=V ...]`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        let _ = write!(
            out,
            "{}  rows={} time={}",
            self.label,
            self.rows,
            format_nanos(self.nanos)
        );
        for (name, value) in &self.counters {
            let _ = write!(out, " {name}={value}");
        }
        out.push('\n');
        for child in &self.children {
            child.render_into(out, depth + 1);
        }
    }

    /// Serializes the tree as a JSON object:
    /// `{"label": .., "rows": .., "nanos": .., "counters": {..}, "children": [..]}`.
    /// Counters keep their first-recorded order; the schema is documented
    /// in `docs/OPS.md`.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.json_into(&mut out);
        out
    }

    fn json_into(&self, out: &mut String) {
        let _ = write!(
            out,
            r#"{{"label":{},"rows":{},"nanos":{},"counters":{{"#,
            json_string(&self.label),
            self.rows,
            self.nanos
        );
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{value}", json_string(name));
        }
        out.push_str("},\"children\":[");
        for (i, child) in self.children.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            child.json_into(out);
        }
        out.push_str("]}");
    }
}

/// Human-readable wall time: `412ns`, `3.2µs`, `1.7ms`, `2.41s`.
pub fn format_nanos(nanos: u64) -> String {
    if nanos < 1_000 {
        format!("{nanos}ns")
    } else if nanos < 1_000_000 {
        format!("{:.1}µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.1}ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2}s", nanos as f64 / 1e9)
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TraceNode {
        let mut join = TraceNode::new("⋈ (shared: x)");
        join.rows = 4;
        join.nanos = 10_000;
        join.add("build_rows", 2);
        let mut left = TraceNode::new("scan [compiled]");
        left.rows = 2;
        left.add("prescan_accept", 1);
        let right = TraceNode::new("scan [boxed]");
        join.children = vec![left, right];
        join
    }

    #[test]
    fn counters_accumulate_by_name() {
        let mut node = TraceNode::new("op");
        node.add("hits", 2);
        node.add("misses", 1);
        node.add("hits", 3);
        assert_eq!(node.counter("hits"), 5);
        assert_eq!(node.counter("misses"), 1);
        assert_eq!(node.counter("absent"), 0);
        // First-recorded order is stable — render output is deterministic.
        assert_eq!(node.counters[0].0, "hits");
    }

    #[test]
    fn merge_adds_values_and_preserves_shape() {
        let mut a = sample();
        let b = sample();
        a.merge(&b);
        assert_eq!(a.rows, 8);
        assert_eq!(a.nanos, 20_000);
        assert_eq!(a.counter("build_rows"), 4);
        assert_eq!(a.children[0].counter("prescan_accept"), 2);
        assert_eq!(a.children.len(), 2, "shape unchanged by merge");
        assert_eq!(a.total_rows(), 12);
    }

    #[test]
    fn render_is_an_indented_tree() {
        let text = sample().render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("⋈ (shared: x)  rows=4"), "{text}");
        assert!(lines[0].contains("time=10.0µs build_rows=2"), "{text}");
        assert!(lines[1].starts_with("  scan [compiled]"), "{text}");
        assert!(lines[2].starts_with("  scan [boxed]  rows=0"), "{text}");
    }

    #[test]
    fn json_is_well_formed_and_escaped() {
        let mut node = TraceNode::new("say \"hi\"\n");
        node.add("k\\v", 1);
        let json = node.to_json();
        assert_eq!(
            json,
            r#"{"label":"say \"hi\"\n","rows":0,"nanos":0,"counters":{"k\\v":1},"children":[]}"#
        );
        let nested = sample().to_json();
        assert!(
            nested.contains(r#""children":[{"label":"scan [compiled]""#),
            "{nested}"
        );
    }

    #[test]
    fn nanos_formatting() {
        assert_eq!(format_nanos(412), "412ns");
        assert_eq!(format_nanos(3_200), "3.2µs");
        assert_eq!(format_nanos(1_700_000), "1.7ms");
        assert_eq!(format_nanos(2_410_000_000), "2.41s");
    }
}
