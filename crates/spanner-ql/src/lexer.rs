//! Tokenizer for SpannerQL programs.
//!
//! The lexer produces spanned tokens; every keyword has a symbolic alias
//! from the paper's notation (`π` for `project`, `∪` for `union`, `⋈` for
//! `join`, `\` for `minus`). Regex literals are delimited by `/` and keep
//! their content verbatim — the content is parsed by `spanner_rgx::parse`
//! later, with positions mapped back into the program source. `\/` inside a
//! literal escapes the delimiter (and reaches the regex parser unchanged,
//! where `\/` denotes the literal byte `/`). `#` starts a comment running
//! to the end of the line.

use crate::error::{QlError, SrcSpan};

/// A token kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// A name: bindings, variables.
    Ident(String),
    /// A regex literal `/…/`; the payload is the text between the slashes.
    Regex(String),
    /// `let`.
    Let,
    /// `project` or `π`.
    Project,
    /// `union` or `∪`.
    Union,
    /// `join` or `⋈`.
    Join,
    /// `minus` or `\`.
    Minus,
    /// `=`.
    Eq,
    /// `;`.
    Semi,
    /// `(`.
    LParen,
    /// `)`.
    RParen,
    /// `,`.
    Comma,
}

impl Tok {
    /// How the token reads in an error message.
    pub fn describe(&self) -> String {
        match self {
            Tok::Ident(name) => format!("`{name}`"),
            Tok::Regex(_) => "a regex literal".to_string(),
            Tok::Let => "`let`".to_string(),
            Tok::Project => "`project`".to_string(),
            Tok::Union => "`union`".to_string(),
            Tok::Join => "`join`".to_string(),
            Tok::Minus => "`minus`".to_string(),
            Tok::Eq => "`=`".to_string(),
            Tok::Semi => "`;`".to_string(),
            Tok::LParen => "`(`".to_string(),
            Tok::RParen => "`)`".to_string(),
            Tok::Comma => "`,`".to_string(),
        }
    }
}

/// A token with its source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token kind (and payload).
    pub tok: Tok,
    /// Where it sits in the source.
    pub span: SrcSpan,
}

/// Tokenizes a whole program.
pub fn tokenize(src: &str) -> Result<Vec<Token>, QlError> {
    let mut out = Vec::new();
    let mut chars = src.char_indices().peekable();
    while let Some((start, c)) = chars.next() {
        let tok = match c {
            c if c.is_whitespace() => continue,
            '#' => {
                while let Some(&(_, c)) = chars.peek() {
                    chars.next();
                    if c == '\n' {
                        break;
                    }
                }
                continue;
            }
            '=' => Tok::Eq,
            ';' => Tok::Semi,
            '(' => Tok::LParen,
            ')' => Tok::RParen,
            ',' => Tok::Comma,
            'π' => Tok::Project,
            '∪' => Tok::Union,
            '⋈' => Tok::Join,
            '\\' => Tok::Minus,
            '/' => {
                let mut content = String::new();
                loop {
                    match chars.next() {
                        None => {
                            return Err(QlError::new(
                                "unterminated regex literal (missing closing `/`)",
                                SrcSpan::new(start, src.len()),
                            ))
                        }
                        Some((_, '/')) => break,
                        Some((i, '\\')) => {
                            // Keep the escape pair verbatim for the regex
                            // parser; only the delimiter must not end the
                            // literal here.
                            content.push('\\');
                            match chars.next() {
                                Some((_, c)) => content.push(c),
                                None => {
                                    return Err(QlError::new(
                                        "dangling escape in regex literal",
                                        SrcSpan::new(i, src.len()),
                                    ))
                                }
                            }
                        }
                        Some((_, c)) => content.push(c),
                    }
                }
                let end = chars.peek().map_or(src.len(), |&(i, _)| i);
                out.push(Token {
                    tok: Tok::Regex(content),
                    span: SrcSpan::new(start, end),
                });
                continue;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut name = String::new();
                name.push(c);
                while let Some(&(_, c)) = chars.peek() {
                    if c.is_ascii_alphanumeric() || c == '_' {
                        name.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                match name.as_str() {
                    "let" => Tok::Let,
                    "project" => Tok::Project,
                    "union" => Tok::Union,
                    "join" => Tok::Join,
                    "minus" => Tok::Minus,
                    _ => Tok::Ident(name),
                }
            }
            other => {
                return Err(QlError::new(
                    format!("unexpected character `{other}`"),
                    SrcSpan::new(start, start + other.len_utf8()),
                ))
            }
        };
        let end = chars.peek().map_or(src.len(), |&(i, _)| i);
        out.push(Token {
            tok,
            span: SrcSpan::new(start, end),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        tokenize(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn keywords_and_aliases() {
        assert_eq!(
            kinds("project union join minus let"),
            vec![Tok::Project, Tok::Union, Tok::Join, Tok::Minus, Tok::Let]
        );
        assert_eq!(
            kinds(r"π ∪ ⋈ \"),
            vec![Tok::Project, Tok::Union, Tok::Join, Tok::Minus]
        );
    }

    #[test]
    fn regex_literals_keep_content_verbatim() {
        assert_eq!(
            kinds(r"/{x:[a-z]+}@/"),
            vec![Tok::Regex("{x:[a-z]+}@".to_string())]
        );
        // `\/` does not terminate the literal.
        assert_eq!(kinds(r"/a\/b/"), vec![Tok::Regex(r"a\/b".to_string())]);
    }

    #[test]
    fn idents_and_punctuation_are_spanned() {
        let toks = tokenize("let user = /a/;").unwrap();
        assert_eq!(toks[1].tok, Tok::Ident("user".to_string()));
        assert_eq!(toks[1].span, SrcSpan::new(4, 8));
        assert_eq!(toks.last().unwrap().tok, Tok::Semi);
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("# a comment\nuser # trailing\n"),
            vec![Tok::Ident("user".to_string())]
        );
    }

    #[test]
    fn errors_are_spanned() {
        let err = tokenize("a @ b").unwrap_err();
        assert_eq!(err.span.unwrap().start, 2);
        let err = tokenize("/never closed").unwrap_err();
        assert!(err.message.contains("unterminated"));
    }
}
