//! Prepared queries: parse + lower + optimize + compile once, evaluate many.
//!
//! [`PreparedQuery::prepare`] runs the whole front half of the pipeline —
//! tokenize, parse, lower to `RaTree` + `Instantiation`, optimize with
//! `spanner_algebra::optimize_ra`, compile to a [`CompiledPlan`] (which
//! lowers onto the physical operator executor) — exactly once. The handle
//! then evaluates any number of documents through that one executor: single
//! documents stream through the operator pull pipeline (polynomial delay on
//! static plans, via [`CompiledPlan::stream`]), corpora shard across a
//! [`CorpusEngine`] thread pool.

use crate::error::QlError;
use crate::lower::Lowered;
use crate::parser::{parse_program, Program};
use spanner_algebra::{
    shared_variable_bound, tree_vars, CompiledPlan, ExecTrace, Instantiation, PhysOp, PhysicalPlan,
    PlanStream, RaOptions, RaTree,
};
use spanner_core::{Document, MappingSet, SpannerResult, VarSet};
use spanner_corpus::{CorpusEngine, CorpusResult, DeltaOutcome, QueryView, WorkerPool};
use std::sync::Arc;

/// A compiled SpannerQL query, ready for repeated evaluation.
///
/// `PreparedQuery` is `Send + Sync` and immutable after
/// [`PreparedQuery::prepare`]: wrap it in an [`Arc`] and any number of
/// threads can evaluate against the one compiled plan concurrently — the
/// sharing model of the `spanner-serve` prepared-query cache.
pub struct PreparedQuery {
    program: Program,
    lowered: Lowered,
    engine: Arc<CorpusEngine>,
    vars: VarSet,
    bound_before: usize,
    bound_after: usize,
}

/// Everything inside a prepared query is read-only after compilation; the
/// serving layer shares one `Arc<PreparedQuery>` across worker threads.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<PreparedQuery>();
};

impl PreparedQuery {
    /// Parses, lowers, optimizes, and compiles a program with the default
    /// [`RaOptions`].
    ///
    /// ```
    /// use spanner_core::Document;
    /// use spanner_ql::PreparedQuery;
    ///
    /// let q = PreparedQuery::prepare("let a = /{x:a+}b/; project x (a);").unwrap();
    /// let out = q.evaluate(&Document::new("aab")).unwrap();
    /// assert_eq!(out.len(), 1);
    /// ```
    pub fn prepare(src: &str) -> Result<PreparedQuery, QlError> {
        PreparedQuery::prepare_with_options(src, RaOptions::default())
    }

    /// The canonical cache key for a program text: the source with leading
    /// and trailing whitespace trimmed, otherwise byte-identical.
    ///
    /// The serving layer keys its prepared-query cache on this. No deeper
    /// normalization is attempted — two programs that differ in interior
    /// whitespace or comments are different keys even though they compile
    /// to the same plan; a false *split* only costs a duplicate cache
    /// entry, whereas any unsound merge would serve wrong results.
    pub fn cache_key(src: &str) -> &str {
        src.trim()
    }

    /// [`PreparedQuery::prepare`] with explicit evaluation options (the
    /// differential tests prepare with the optimizer off).
    pub fn prepare_with_options(src: &str, options: RaOptions) -> Result<PreparedQuery, QlError> {
        let program = parse_program(src)?;
        let lowered = program.lower()?;
        let vars = tree_vars(&lowered.tree, &lowered.inst)?;
        let bound_before = shared_variable_bound(&lowered.tree, &lowered.inst)?;
        let engine = Arc::new(CorpusEngine::compile(
            &lowered.tree,
            &lowered.inst,
            options,
        )?);
        let bound_after = shared_variable_bound(engine.plan().tree(), &lowered.inst)?;
        Ok(PreparedQuery {
            program,
            lowered,
            engine,
            vars,
            bound_before,
            bound_after,
        })
    }

    /// Evaluates the query on one document into a materialized relation.
    pub fn evaluate(&self, doc: &Document) -> SpannerResult<MappingSet> {
        self.engine.plan().evaluate(doc)
    }

    /// [`PreparedQuery::evaluate`] with a per-operator execution trace
    /// (see [`spanner_algebra::PhysicalPlan::execute_traced`]); the trace
    /// is returned alongside the result, also on error.
    pub fn evaluate_traced(&self, doc: &Document) -> (SpannerResult<MappingSet>, ExecTrace) {
        self.engine.plan().evaluate_traced(doc)
    }

    /// Streams the query's mappings on one document (polynomial delay for
    /// fully static plans).
    pub fn stream<'a>(&'a self, doc: &'a Document) -> SpannerResult<PlanStream<'a>> {
        self.engine.plan().stream(doc)
    }

    /// Evaluates the query over a corpus, sharded across `threads` workers
    /// (`0` = one per CPU). Results are in corpus order and bit-identical
    /// for every thread count.
    pub fn evaluate_corpus(
        &self,
        docs: &[Document],
        threads: usize,
    ) -> SpannerResult<CorpusResult> {
        self.engine.evaluate_with_threads(docs, threads)
    }

    /// Evaluates the query over a corpus sharded across a persistent
    /// [`WorkerPool`] (see
    /// [`CorpusEngine::evaluate_on_pool`]) — the serving-layer shape, where
    /// one pool outlives thousands of requests. Results are bit-identical
    /// to [`PreparedQuery::evaluate_corpus`].
    pub fn evaluate_corpus_on_pool(
        &self,
        docs: &Arc<Vec<Document>>,
        pool: &WorkerPool,
    ) -> SpannerResult<CorpusResult> {
        self.engine.evaluate_on_pool(docs, pool)
    }

    /// Evaluates the query over a corpus *incrementally* through a
    /// maintained [`QueryView`] (see [`CorpusEngine::evaluate_delta`]):
    /// documents whose content hash matches their retained entry reuse the
    /// memoized relation; only the delta is re-run. Results are
    /// bit-identical to [`PreparedQuery::evaluate_corpus`] for every
    /// thread count and view budget. `hashes` holds one content hash per
    /// document and `candidates` an optional sound sorted candidate set
    /// (both in the shape a `spanner_store::Store` maintains).
    pub fn evaluate_corpus_delta(
        &self,
        docs: &[Document],
        hashes: &[u64],
        candidates: Option<&[u32]>,
        view: &mut QueryView,
        threads: usize,
    ) -> SpannerResult<DeltaOutcome> {
        self.engine
            .evaluate_delta(docs, hashes, candidates, view, threads)
    }

    /// [`PreparedQuery::evaluate_corpus`] with per-operator instrumentation
    /// aggregated over every document
    /// (see [`CorpusEngine::evaluate_traced_with_threads`]).
    pub fn evaluate_corpus_traced(
        &self,
        docs: &[Document],
        threads: usize,
    ) -> SpannerResult<(CorpusResult, ExecTrace)> {
        self.engine.evaluate_traced_with_threads(docs, threads)
    }

    /// The corpus engine wrapping the compiled plan.
    pub fn engine(&self) -> &CorpusEngine {
        &self.engine
    }

    /// The corpus engine as a shareable handle (for `'static` jobs on
    /// persistent worker pools).
    pub fn shared_engine(&self) -> &Arc<CorpusEngine> {
        &self.engine
    }

    /// A one-line outline of the compiled plan — static/dynamic shape,
    /// operator count, output variables, and the planned shared-variable
    /// bound. The serving layer reports this from `prepare` and `stats`
    /// responses without paying for the full multi-line
    /// [`PreparedQuery::explain`].
    pub fn plan_outline(&self) -> String {
        let plan = self.engine.plan();
        let physical = PhysicalPlan::lower(plan);
        let vars: Vec<String> = self.vars.iter().map(|v| v.to_string()).collect();
        format!(
            "{} plan, {} operator{}, vars {{{}}}, bound {}",
            if plan.is_static() {
                "static"
            } else {
                "dynamic"
            },
            physical.operator_count(),
            if physical.operator_count() == 1 {
                ""
            } else {
                "s"
            },
            vars.join(","),
            self.bound_after,
        )
    }

    /// The compiled physical plan.
    pub fn plan(&self) -> &CompiledPlan {
        self.engine.plan()
    }

    /// The parsed program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The RA tree exactly as the program wrote it (before optimization).
    pub fn tree(&self) -> &RaTree {
        &self.lowered.tree
    }

    /// The optimized RA tree the plan was compiled from.
    pub fn optimized_tree(&self) -> &RaTree {
        self.engine.plan().tree()
    }

    /// The atom assignment shared by both trees.
    pub fn instantiation(&self) -> &Instantiation {
        &self.lowered.inst
    }

    /// The declared output variables of the query.
    pub fn vars(&self) -> &VarSet {
        &self.vars
    }

    /// The Lemma 3.2 / Theorem 5.2 shared-variable bound of the tree as
    /// written.
    pub fn shared_variable_bound_before(&self) -> usize {
        self.bound_before
    }

    /// The shared-variable bound after planning (never larger than
    /// [`PreparedQuery::shared_variable_bound_before`] — the optimizer
    /// guards every rewrite on it).
    pub fn shared_variable_bound_after(&self) -> usize {
        self.bound_after
    }

    /// A human-readable explanation: the query as written, the leaf
    /// bindings, the optimized tree, the shared-variable bound before and
    /// after planning, whether the plan compiled statically, and the lowered
    /// physical operator tree the executor runs.
    pub fn explain(&self) -> String {
        let plan = self.engine.plan();
        let physical = PhysicalPlan::lower(plan);
        let vars: Vec<String> = self.vars.iter().map(|v| v.to_string()).collect();
        let mut out = String::new();
        out.push_str(&format!("query      : {}\n", self.lowered.tree));
        for (id, name) in self.lowered.leaf_names.iter().enumerate() {
            out.push_str(&format!("  ?{id} = {name}\n"));
        }
        out.push_str(&format!("output vars: {{{}}}\n", vars.join(", ")));
        out.push_str(&format!(
            "shared-variable bound (Lemma 3.2): {} before planning, {} after\n",
            self.bound_before, self.bound_after
        ));
        out.push_str(&format!(
            "optimized  : {}\n{}\n",
            plan.tree(),
            plan.tree().describe(&self.lowered.inst)
        ));
        out.push_str(&format!(
            "plan       : {} ({})\n",
            if plan.is_static() {
                "static — one compiled scan, zero per-document composition"
            } else {
                "dynamic — relational operators over compiled scans"
            },
            if plan.is_static() {
                "Theorem 5.2"
            } else {
                "Theorem 5.2 / Corollary 5.3, executor"
            },
        ));
        out.push_str(&format!(
            "physical   : {} operator{}\n{}\n",
            physical.operator_count(),
            if physical.operator_count() == 1 {
                ""
            } else {
                "s"
            },
            physical.describe()
        ));
        let mut scans = Vec::new();
        scan_plan_lines(physical.root(), &mut scans);
        out.push_str(&format!(
            "scan plan  : {} compiled scan{}\n",
            scans.len(),
            if scans.len() == 1 { "" } else { "s" },
        ));
        for line in &scans {
            out.push_str(line);
            out.push('\n');
        }
        // Plan-level required literals: what a corpus index can prune on.
        let literals = physical.required_literals();
        if literals.is_empty() {
            out.push_str("literals   : none (an indexed store falls back to a full scan)\n");
        } else {
            let rendered: Vec<String> = literals
                .iter()
                .map(|l| format!("{:?}", String::from_utf8_lossy(l)))
                .collect();
            out.push_str(&format!("literals   : {}\n", rendered.join(" ")));
        }
        out
    }

    /// [`PreparedQuery::explain`], then actually *runs* the query on `doc`
    /// through the traced executor and appends the measured per-operator
    /// tree — rows produced, inclusive wall time, prescan verdicts,
    /// boolean-scan tier, join build sizes, limit trips. A failing
    /// evaluation still reports its (partial) trace, with the error on the
    /// `analyze` line, so `LimitExceeded` trips stay diagnosable.
    pub fn explain_analyze(&self, doc: &Document) -> String {
        let (result, trace) = self.evaluate_traced(doc);
        self.render_analyze(doc, &result, &trace)
    }

    /// Renders the [`PreparedQuery::explain_analyze`] text from an
    /// already-measured run — the serving layer evaluates once through
    /// [`PreparedQuery::evaluate_traced`] and feeds the same trace to both
    /// this rendering and the structured trace JSON, so the two reports
    /// can never disagree.
    pub fn render_analyze(
        &self,
        doc: &Document,
        result: &SpannerResult<MappingSet>,
        trace: &ExecTrace,
    ) -> String {
        let mut out = self.explain();
        match result {
            Ok(set) => out.push_str(&format!(
                "analyze    : {} mapping{} in {:.3}ms on a {}-byte document\n",
                set.len(),
                if set.len() == 1 { "" } else { "s" },
                trace.nanos as f64 / 1e6,
                doc.len(),
            )),
            Err(e) => out.push_str(&format!("analyze    : error: {e}\n")),
        }
        for line in trace.render().lines() {
            out.push_str("  ");
            out.push_str(line);
            out.push('\n');
        }
        out
    }
}

/// Appends one line per [`PhysOp::CompiledScan`] in the operator tree (in
/// operator order): the static prefilters the scan fast path derived at
/// compile time — minimum accepted length, anchored-prefix byte class,
/// required byte factors — and whether the boolean pre-pass runs on a lazy
/// DFA or fell back to NFA frontier stepping (state budget exceeded).
fn scan_plan_lines(op: &PhysOp, out: &mut Vec<String>) {
    match op {
        PhysOp::CompiledScan {
            compiled,
            fast_path,
            ..
        } => {
            let plan = compiled.scan_plan();
            let mut parts = Vec::new();
            match plan.min_len() {
                None => parts.push("empty language (always skipped)".to_string()),
                Some(n) => parts.push(format!("min_len={n}")),
            }
            if let Some(class) = plan.prefix_class() {
                parts.push(format!("prefix={class:?}"));
            }
            if !plan.required_factors().is_empty() {
                let factors: Vec<String> = plan
                    .required_factors()
                    .iter()
                    .map(|f| format!("{f:?}"))
                    .collect();
                parts.push(format!("factors={}", factors.join("")));
            }
            if !plan.required_literals().is_empty() {
                let literals: Vec<String> = plan
                    .required_literals()
                    .iter()
                    .map(|l| format!("{:?}", String::from_utf8_lossy(l)))
                    .collect();
                parts.push(format!("literals={}", literals.join(" ")));
            }
            match compiled.boolean_dfa_states() {
                Some(n) => parts.push(format!(
                    "lazy DFA: {n} state{}",
                    if n == 1 { "" } else { "s" }
                )),
                None => parts.push("lazy DFA: over budget, NFA fallback".to_string()),
            }
            out.push(format!(
                "  scan #{}: fast path {}, {}",
                out.len(),
                if *fast_path { "on" } else { "off" },
                parts.join(", "),
            ));
        }
        PhysOp::BlackBoxScan(_) => {}
        PhysOp::Project { input, .. } => scan_plan_lines(input, out),
        PhysOp::UnionAll(inputs) => {
            for input in inputs {
                scan_plan_lines(input, out);
            }
        }
        PhysOp::HashJoin { left, right } => {
            scan_plan_lines(left, out);
            scan_plan_lines(right, out);
        }
        PhysOp::Difference { input, probe } => {
            scan_plan_lines(input, out);
            scan_plan_lines(probe, out);
        }
    }
}

impl std::fmt::Debug for PreparedQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PreparedQuery({})", self.lowered.tree)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepare_and_evaluate_the_readme_query() {
        // Difference is *relational*: the subtracted relation must have the
        // same schema, hence the projection down to `user` on both sides.
        let q = PreparedQuery::prepare(
            "let user = /{user:[a-z]+}@[a-z]+(\\.[a-z]+)*/;\n\
             let host = /[a-z]+@{host:[a-z]+(\\.[a-z]+)*}/;\n\
             project user (user join host) minus /{user:admin[a-z]*}@.*/;",
        )
        .unwrap();
        let doc = Document::new("bob@edu.ru");
        let out = q.evaluate(&doc).unwrap();
        assert_eq!(out.len(), 1);
        let admin = Document::new("adminx@edu.ru");
        assert!(q.evaluate(&admin).unwrap().is_empty());
    }

    #[test]
    fn stream_agrees_with_evaluate() {
        let q = PreparedQuery::prepare("let a = /{x:a+}b*/; a union /{x:b+}/").unwrap();
        for text in ["aab", "bb", ""] {
            let doc = Document::new(text);
            let streamed: MappingSet = q
                .stream(&doc)
                .unwrap()
                .collect::<SpannerResult<Vec<_>>>()
                .unwrap()
                .into_iter()
                .collect();
            assert_eq!(streamed, q.evaluate(&doc).unwrap(), "{text:?}");
        }
    }

    #[test]
    fn corpus_evaluation_matches_per_document() {
        let q = PreparedQuery::prepare("/{x:a+}/").unwrap();
        let docs = vec![Document::new("aa"), Document::new("b"), Document::new("a")];
        let out = q.evaluate_corpus(&docs, 2).unwrap();
        for (doc, got) in docs.iter().zip(&out.results) {
            assert_eq!(got, &q.evaluate(doc).unwrap());
        }
        // The persistent-pool path produces the same relations.
        let docs = Arc::new(docs);
        let pool = WorkerPool::new(2);
        let pooled = q.evaluate_corpus_on_pool(&docs, &pool).unwrap();
        assert_eq!(pooled.results, out.results);
    }

    #[test]
    fn corpus_delta_evaluation_is_incremental_and_identical() {
        let q = PreparedQuery::prepare("/{x:a+}/").unwrap();
        let mut docs = vec![Document::new("aa"), Document::new("b"), Document::new("a")];
        let hash = |docs: &[Document]| -> Vec<u64> {
            docs.iter()
                .map(|d| spanner_store::fnv1a64(d.bytes()))
                .collect()
        };
        let mut view = QueryView::unbounded();
        let cold = q
            .evaluate_corpus_delta(&docs, &hash(&docs), None, &mut view, 1)
            .unwrap();
        assert_eq!(
            cold.output.results,
            q.evaluate_corpus(&docs, 1).unwrap().results
        );
        assert_eq!((cold.delta_docs, cold.view_hits), (3, 0));
        // One changed document: only it is re-evaluated, results stay
        // bit-identical to the full pass.
        docs[1] = Document::new("aba");
        let warm = q
            .evaluate_corpus_delta(&docs, &hash(&docs), None, &mut view, 2)
            .unwrap();
        assert_eq!(
            (warm.delta_docs, warm.view_hits, warm.invalidated),
            (1, 2, 1)
        );
        assert_eq!(
            warm.output.results,
            q.evaluate_corpus(&docs, 1).unwrap().results
        );
    }

    #[test]
    fn cache_key_trims_only_outer_whitespace() {
        assert_eq!(PreparedQuery::cache_key("  /a/ ;\n"), "/a/ ;");
        // Interior differences stay distinct keys (never merge unsoundly).
        assert_ne!(
            PreparedQuery::cache_key("/a/  union /b/"),
            PreparedQuery::cache_key("/a/ union /b/")
        );
    }

    #[test]
    fn plan_outline_is_one_line() {
        let q = PreparedQuery::prepare("let a = /{x:a+}/; a minus /{x:aa}/;").unwrap();
        let outline = q.plan_outline();
        assert!(!outline.contains('\n'), "{outline}");
        assert!(outline.contains("dynamic plan"), "{outline}");
        assert!(outline.contains("vars {x}"), "{outline}");
        let s = PreparedQuery::prepare("/{x:a}/").unwrap();
        assert!(s.plan_outline().contains("static plan, 1 operator,"));
    }

    #[test]
    fn explain_reports_the_planner_firing_on_a_join_chain() {
        // (?0{x} ⋈ ?1{y}) ⋈ ?2{x,y}: bound 2 as written, 1 after reordering.
        let q = PreparedQuery::prepare(
            "let a = /{x:a}b*/; let b = /a{y:b+}/; let c = /{x:a}{y:b+}/;\n\
             (a join b) join c;",
        )
        .unwrap();
        assert_eq!(q.shared_variable_bound_before(), 2);
        assert_eq!(q.shared_variable_bound_after(), 1);
        let explain = q.explain();
        assert!(explain.contains("2 before planning, 1 after"), "{explain}");
        assert!(explain.contains("static"), "{explain}");
        assert!(explain.contains("?0 = a"), "{explain}");
        // The physical outline: a fully static plan is one compiled scan.
        assert!(explain.contains("physical   : 1 operator\n"), "{explain}");
        assert!(explain.contains("CompiledScan("), "{explain}");
    }

    #[test]
    fn explain_outlines_the_physical_operators_of_a_dynamic_plan() {
        let q = PreparedQuery::prepare(
            "let a = /{x:a+}{y:b*}/; let b = /{x:a}b/; project x (a minus b);",
        )
        .unwrap();
        let explain = q.explain();
        assert!(explain.contains("Project{x}"), "{explain}");
        assert!(explain.contains("Difference(anti-join)"), "{explain}");
        assert!(explain.contains("physical   : 4 operators"), "{explain}");
    }

    #[test]
    fn explain_reports_the_scan_plan_per_compiled_scan() {
        let q = PreparedQuery::prepare("let a = /.*{x:a+}@.*/; let b = /.*{x:aa+}@.*/; a minus b;")
            .unwrap();
        let explain = q.explain();
        assert!(
            explain.contains("scan plan  : 2 compiled scans"),
            "{explain}"
        );
        assert!(explain.contains("scan #0: fast path on"), "{explain}");
        assert!(explain.contains("scan #1: fast path on"), "{explain}");
        // Both scans require an 'a' and an '@' somewhere in the document.
        assert!(explain.contains("factors=[@][a]"), "{explain}");
        assert!(explain.contains("min_len="), "{explain}");
        assert!(explain.contains("lazy DFA:"), "{explain}");
    }

    #[test]
    fn explain_reports_required_literals() {
        let q = PreparedQuery::prepare("/.*needle{x:a+}.*/;").unwrap();
        let explain = q.explain();
        assert!(explain.contains("literals   : "), "{explain}");
        assert!(explain.contains("needle"), "{explain}");
        // Unconstrained plans say so (an indexed store must full-scan).
        let q = PreparedQuery::prepare("/{x:[ab]+}/;").unwrap();
        assert!(q.explain().contains("literals   : none"), "{}", q.explain());
    }

    #[test]
    fn explain_reports_a_disabled_fast_path() {
        let q = PreparedQuery::prepare_with_options(
            "/{x:a+}b/;",
            RaOptions {
                scan_fast_path: false,
                ..RaOptions::default()
            },
        )
        .unwrap();
        let explain = q.explain();
        assert!(
            explain.contains("scan plan  : 1 compiled scan\n"),
            "{explain}"
        );
        assert!(explain.contains("scan #0: fast path off"), "{explain}");
    }

    #[test]
    fn explain_analyze_reports_measured_operator_counters() {
        let q = PreparedQuery::prepare(
            "let a = /{x:a+}{y:b*}/; let b = /{x:a}b/; project x (a minus b);",
        )
        .unwrap();
        let text = q.explain_analyze(&Document::new("aab"));
        // Everything `explain` prints, plus the measured section.
        assert!(text.contains("physical   :"), "{text}");
        assert!(text.contains("analyze    : "), "{text}");
        assert!(text.contains("rows="), "{text}");
        assert!(text.contains("time="), "{text}");
        assert!(text.contains("prescan_accept=1"), "{text}");
        // A document the pre-pass rejects reports the verdict, not rows.
        let miss = q.explain_analyze(&Document::new("zzz"));
        assert!(
            miss.contains("prescan_skip=1") || miss.contains("prescan_reject=1"),
            "{miss}"
        );
        assert!(miss.contains("analyze    : 0 mappings"), "{miss}");
    }

    #[test]
    fn traced_query_evaluation_matches_untraced() {
        let q = PreparedQuery::prepare("let a = /{x:a+}b*/; a union /{x:b+}/").unwrap();
        for text in ["aab", "bb", ""] {
            let doc = Document::new(text);
            let (traced, trace) = q.evaluate_traced(&doc);
            assert_eq!(traced.unwrap(), q.evaluate(&doc).unwrap(), "{text:?}");
            assert!(trace.children.len() == 2 || trace.children.is_empty());
        }
        let docs = vec![Document::new("aab"), Document::new("bb")];
        let (out, trace) = q.evaluate_corpus_traced(&docs, 2).unwrap();
        assert_eq!(out.results, q.evaluate_corpus(&docs, 2).unwrap().results);
        assert_eq!(trace.total_rows(), out.stats.mappings as u64);
    }

    #[test]
    fn bound_never_increases_under_planning() {
        let q = PreparedQuery::prepare(
            "let a = /{x:a}{y:b?}/; let b = /{x:a}{z:b?}/; project x (a join b) minus a;",
        )
        .unwrap();
        assert!(q.shared_variable_bound_after() <= q.shared_variable_bound_before());
    }

    #[test]
    fn compile_errors_surface_as_ql_errors() {
        // A sequential program whose automaton-level compilation exceeds the
        // configured state limit.
        let result = PreparedQuery::prepare_with_options(
            "let a = /{x:a+}{y:a+}/; a join a",
            RaOptions {
                max_states: 1,
                ..RaOptions::default()
            },
        );
        let err = result.unwrap_err();
        assert!(err.message.contains("limit"), "{err}");
    }
}
