//! Spanned errors for SpannerQL programs.

use spanner_core::SpannerError;
use std::fmt;

/// A half-open byte range `[start, end)` into the program source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SrcSpan {
    /// First byte of the offending region.
    pub start: usize,
    /// One past the last byte of the offending region.
    pub end: usize,
}

impl SrcSpan {
    /// A span covering `[start, end)`.
    pub fn new(start: usize, end: usize) -> SrcSpan {
        SrcSpan { start, end }
    }

    /// A zero-width span at `pos` (end-of-input errors).
    pub fn at(pos: usize) -> SrcSpan {
        SrcSpan {
            start: pos,
            end: pos,
        }
    }
}

/// An error raised while parsing, lowering, or compiling a SpannerQL
/// program. Syntax and lowering errors always carry the source span they
/// were detected at; errors surfaced by the compilation layers below the
/// language (state-limit blowups and the like) may not map to one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QlError {
    /// Human-readable description of the problem.
    pub message: String,
    /// Source region the error points at, when known.
    pub span: Option<SrcSpan>,
}

impl QlError {
    /// Builds a spanned error.
    pub fn new(message: impl Into<String>, span: SrcSpan) -> QlError {
        QlError {
            message: message.into(),
            span: Some(span),
        }
    }

    /// Renders the error with the offending source line and a caret marker:
    ///
    /// ```text
    /// error at line 2, column 11: unknown extractor `hots`
    ///   project x (hots join user);
    ///              ^^^^
    /// ```
    pub fn pretty(&self, src: &str) -> String {
        let Some(span) = self.span else {
            return format!("error: {}", self.message);
        };
        // Spans originating from byte-oriented layers (the regex parser) can
        // land inside a multi-byte character; snap to char boundaries.
        let mut start = span.start.min(src.len());
        while !src.is_char_boundary(start) {
            start -= 1;
        }
        let line_start = src[..start].rfind('\n').map_or(0, |i| i + 1);
        let line_end = src[start..].find('\n').map_or(src.len(), |i| start + i);
        let line_no = src[..start].matches('\n').count() + 1;
        let column = src[line_start..start].chars().count() + 1;
        let caret_pad = " ".repeat(column - 1);
        let mut end = span.end.clamp(start, line_end);
        while !src.is_char_boundary(end) {
            end -= 1;
        }
        let width = src[start..end.max(start)].chars().count();
        let carets = "^".repeat(width.max(1));
        format!(
            "error at line {line_no}, column {column}: {}\n  {}\n  {caret_pad}{carets}",
            self.message,
            &src[line_start..line_end],
        )
    }
}

impl fmt::Display for QlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.span {
            Some(span) => write!(f, "error at byte {}: {}", span.start, self.message),
            None => write!(f, "error: {}", self.message),
        }
    }
}

impl std::error::Error for QlError {}

impl From<SpannerError> for QlError {
    fn from(e: SpannerError) -> QlError {
        QlError {
            message: e.to_string(),
            span: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let e = QlError::new("unexpected `)`", SrcSpan::new(4, 5));
        assert_eq!(e.to_string(), "error at byte 4: unexpected `)`");
    }

    #[test]
    fn pretty_points_at_the_line() {
        let src = "let a = /x/;\nproject q (b);";
        let pos = src.find('b').unwrap();
        let e = QlError::new("unknown extractor `b`", SrcSpan::new(pos, pos + 1));
        let rendered = e.pretty(src);
        assert!(rendered.contains("line 2"), "{rendered}");
        assert!(rendered.contains("project q (b);"), "{rendered}");
        assert!(rendered.lines().last().unwrap().contains('^'), "{rendered}");
    }

    #[test]
    fn pretty_survives_out_of_range_spans() {
        let e = QlError::new("truncated", SrcSpan::at(1_000));
        let rendered = e.pretty("ab");
        assert!(rendered.contains("truncated"), "{rendered}");
    }
}
