//! Spanned errors for SpannerQL programs.

use spanner_core::SpannerError;
use std::fmt;

/// A half-open byte range `[start, end)` into the program source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SrcSpan {
    /// First byte of the offending region.
    pub start: usize,
    /// One past the last byte of the offending region.
    pub end: usize,
}

impl SrcSpan {
    /// A span covering `[start, end)`.
    pub fn new(start: usize, end: usize) -> SrcSpan {
        SrcSpan { start, end }
    }

    /// A zero-width span at `pos` (end-of-input errors).
    pub fn at(pos: usize) -> SrcSpan {
        SrcSpan {
            start: pos,
            end: pos,
        }
    }
}

/// An error raised while parsing, lowering, or compiling a SpannerQL
/// program. Syntax and lowering errors always carry the source span they
/// were detected at; errors surfaced by the compilation layers below the
/// language (state-limit blowups and the like) may not map to one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QlError {
    /// Human-readable description of the problem.
    pub message: String,
    /// Source region the error points at, when known.
    pub span: Option<SrcSpan>,
}

impl QlError {
    /// Builds a spanned error.
    pub fn new(message: impl Into<String>, span: SrcSpan) -> QlError {
        QlError {
            message: message.into(),
            span: Some(span),
        }
    }

    /// Renders the error with the offending source line and a caret marker:
    ///
    /// ```text
    /// error at line 2, column 11: unknown extractor `hots`
    ///   project x (hots join user);
    ///              ^^^^
    /// ```
    ///
    /// Tabs in the source line are expanded to spaces (a fixed [`TAB_WIDTH`]
    /// per tab) in both the echoed line and the caret padding, so the caret
    /// stays aligned however the source was indented.
    pub fn pretty(&self, src: &str) -> String {
        let Some(span) = self.span else {
            return format!("error: {}", self.message);
        };
        // Spans originating from byte-oriented layers (the regex parser) can
        // land inside a multi-byte character; snap to char boundaries.
        let mut start = span.start.min(src.len());
        while !src.is_char_boundary(start) {
            start -= 1;
        }
        let line_start = src[..start].rfind('\n').map_or(0, |i| i + 1);
        let line_end = src[start..].find('\n').map_or(src.len(), |i| start + i);
        let line_no = src[..start].matches('\n').count() + 1;
        let column = src[line_start..start].chars().count() + 1;
        // The echoed line and the caret padding must expand tabs the same
        // way, or a tab-indented line would render the caret misaligned
        // (a tab occupies one char but many columns).
        let caret_pad = " ".repeat(display_width(&src[line_start..start]));
        let mut end = span.end.clamp(start, line_end);
        while !src.is_char_boundary(end) {
            end -= 1;
        }
        let width = display_width(&src[start..end.max(start)]);
        let carets = "^".repeat(width.max(1));
        format!(
            "error at line {line_no}, column {column}: {}\n  {}\n  {caret_pad}{carets}",
            self.message,
            expand_tabs(&src[line_start..line_end]),
        )
    }
}

/// Number of spaces a tab expands to in [`QlError::pretty`] output.
pub const TAB_WIDTH: usize = 4;

/// Expands every tab to [`TAB_WIDTH`] spaces (uniformly — not to tab
/// stops — so the width of a prefix is the sum of its char widths and the
/// caret padding can be computed independently of the echoed line).
fn expand_tabs(text: &str) -> String {
    if !text.contains('\t') {
        return text.to_string();
    }
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        if c == '\t' {
            out.push_str(&" ".repeat(TAB_WIDTH));
        } else {
            out.push(c);
        }
    }
    out
}

/// The rendered width of a source fragment under [`expand_tabs`]: one
/// column per char, [`TAB_WIDTH`] per tab.
fn display_width(text: &str) -> usize {
    text.chars()
        .map(|c| if c == '\t' { TAB_WIDTH } else { 1 })
        .sum()
}

impl fmt::Display for QlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.span {
            Some(span) => write!(f, "error at byte {}: {}", span.start, self.message),
            None => write!(f, "error: {}", self.message),
        }
    }
}

impl std::error::Error for QlError {}

impl From<SpannerError> for QlError {
    fn from(e: SpannerError) -> QlError {
        QlError {
            message: e.to_string(),
            span: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let e = QlError::new("unexpected `)`", SrcSpan::new(4, 5));
        assert_eq!(e.to_string(), "error at byte 4: unexpected `)`");
    }

    #[test]
    fn pretty_points_at_the_line() {
        let src = "let a = /x/;\nproject q (b);";
        let pos = src.find('b').unwrap();
        let e = QlError::new("unknown extractor `b`", SrcSpan::new(pos, pos + 1));
        let rendered = e.pretty(src);
        assert!(rendered.contains("line 2"), "{rendered}");
        assert!(rendered.contains("project q (b);"), "{rendered}");
        assert!(rendered.lines().last().unwrap().contains('^'), "{rendered}");
    }

    #[test]
    fn pretty_survives_out_of_range_spans() {
        let e = QlError::new("truncated", SrcSpan::at(1_000));
        let rendered = e.pretty("ab");
        assert!(rendered.contains("truncated"), "{rendered}");
    }

    /// The caret must sit directly under the offending token in the
    /// rendered output. Returns (echoed line, caret line) without the
    /// two-space gutter.
    fn rendered_lines(rendered: &str) -> (String, String) {
        let mut lines = rendered.lines().skip(1);
        let echoed = lines.next().unwrap().strip_prefix("  ").unwrap();
        let caret = lines.next().unwrap().strip_prefix("  ").unwrap();
        (echoed.to_string(), caret.to_string())
    }

    #[test]
    fn caret_aligns_on_tab_indented_lines() {
        // One tab, then spaces, then the offending name: the caret column
        // must match the expanded position of `b`, not its char index.
        let src = "let a = /x/;\n\tproject q (b);";
        let pos = src.find('b').unwrap();
        let e = QlError::new("unknown extractor `b`", SrcSpan::new(pos, pos + 1));
        let (echoed, caret) = rendered_lines(&e.pretty(src));
        assert!(!echoed.contains('\t'), "tabs must be expanded: {echoed:?}");
        assert_eq!(
            caret.len(),
            echoed.find('b').unwrap() + 1,
            "{echoed:?} / {caret:?}"
        );
        assert_eq!(&echoed[caret.len() - 1..caret.len()], "b");
    }

    #[test]
    fn caret_width_covers_tabs_inside_the_span() {
        // A span that contains a tab: the caret run must cover the
        // expanded width, staying aligned with the expanded line.
        let src = "x\t= 1";
        let e = QlError::new("bad assignment", SrcSpan::new(0, 3));
        let (echoed, caret) = rendered_lines(&e.pretty(src));
        assert_eq!(echoed, "x    = 1");
        assert_eq!(caret, "^".repeat(1 + TAB_WIDTH + 1));
    }
}
