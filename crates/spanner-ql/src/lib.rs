//! SpannerQL — a declarative query language for relational algebra over
//! document spanners.
//!
//! The paper's headline results (Theorem 5.2 / Corollary 5.3) are about
//! evaluating *whole RA trees* over extractors with polynomial delay. This
//! crate puts a textual front end on that machinery: a program is a sequence
//! of `let` bindings and one result expression over the RA operators
//! `project` / `union` / `join` / `minus` (with the paper's symbols `π`,
//! `∪`, `⋈`, `\` as aliases), and regex-formula literals written `/…/` in
//! the `spanner_rgx::parse` syntax:
//!
//! ```text
//! let user = /.*{user:[a-z]+}@.*/;
//! let host = /.*@{host:[a-z]+(\.[a-z]+)*}.*/;
//! project user, host (user join host) minus /.*{user:admin[a-z]*}@.*/;
//! ```
//!
//! The pipeline is parse ([`parse_program`]) → lower
//! ([`Program::lower`], producing `RaTree` + `Instantiation` with
//! duplicate-binding / unknown-name / non-sequentiality diagnostics) →
//! optimize + compile once ([`PreparedQuery::prepare`], through
//! `spanner_algebra::optimize_ra` and `CompiledPlan`) → evaluate any number
//! of documents (single documents via the polynomial-delay enumerator,
//! corpora via `spanner_corpus::CorpusEngine`). Every error before
//! compilation carries a source span; [`QlError::pretty`] renders it with
//! the offending line and a caret.
//!
//! ```
//! use spanner_core::Document;
//! use spanner_ql::PreparedQuery;
//!
//! let q = PreparedQuery::prepare(
//!     "let word = /.*{w:[a-z]+}.*/; project w (word) minus /.*{w:the}.*/;",
//! )
//! .unwrap();
//! let doc = Document::new("the cat");
//! let out = q.evaluate(&doc).unwrap();
//! assert!(!out.is_empty());
//! ```

#![warn(missing_docs)]

pub mod error;
pub mod lexer;
pub mod lower;
pub mod parser;
pub mod prepare;

pub use error::{QlError, SrcSpan};
pub use lower::Lowered;
pub use parser::{parse_program, Binding, Program, QlExpr};
pub use prepare::PreparedQuery;
