//! Recursive-descent parser for SpannerQL.
//!
//! The grammar (keywords interchangeable with their symbolic aliases):
//!
//! ```text
//! program  := binding* expr ';'? EOF
//! binding  := 'let' name '=' regex ';'
//! expr     := joined (('union' | 'minus') joined)*          left-assoc
//! joined   := primary ('join' primary)*                     left-assoc
//! primary  := '(' expr ')'
//!           | 'project' varlist primary                     π_{varlist}(…)
//!           | name                                          a `let` binding
//!           | regex                                         anonymous atom
//! varlist  := (name (',' name)*)?                           empty before '('
//! ```
//!
//! `union` and `minus` share the lowest precedence level and associate to
//! the left, `join` binds tighter, and `project` tighter still — so
//! `a union b join c minus d` reads as `(a ∪ (b ⋈ c)) \ d`. Regex literals
//! use the `spanner_rgx::parse` syntax between `/` delimiters; parse errors
//! inside a literal are reported at their exact position in the program.

use crate::error::{QlError, SrcSpan};
use crate::lexer::{tokenize, Tok, Token};
use spanner_rgx::Rgx;

/// A parsed `let` binding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Binding {
    /// The bound name.
    pub name: String,
    /// Span of the name (duplicate-binding diagnostics point here).
    pub name_span: SrcSpan,
    /// The regex formula bound to the name.
    pub rgx: Rgx,
    /// Span of the regex literal.
    pub rgx_span: SrcSpan,
}

/// A parsed query expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QlExpr {
    /// A reference to a `let` binding.
    Name(String, SrcSpan),
    /// An anonymous regex-formula atom.
    Regex(Rgx, SrcSpan),
    /// `project v1, …, vn (child)`.
    Project(Vec<String>, Box<QlExpr>),
    /// `left union right`.
    Union(Box<QlExpr>, Box<QlExpr>),
    /// `left join right`.
    Join(Box<QlExpr>, Box<QlExpr>),
    /// `left minus right`.
    Minus(Box<QlExpr>, Box<QlExpr>),
}

/// A whole SpannerQL program: bindings followed by one result expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// The `let` bindings, in source order.
    pub bindings: Vec<Binding>,
    /// The result expression.
    pub expr: QlExpr,
}

/// Parses a SpannerQL program.
pub fn parse_program(src: &str) -> Result<Program, QlError> {
    let tokens = tokenize(src)?;
    let mut p = Parser {
        tokens: &tokens,
        pos: 0,
        eof: SrcSpan::at(src.len()),
    };
    let mut bindings = Vec::new();
    while p.peek() == Some(&Tok::Let) {
        bindings.push(p.parse_binding()?);
    }
    if p.peek().is_none() {
        return Err(QlError::new(
            if bindings.is_empty() {
                "empty program: expected a query expression"
            } else {
                "expected a query expression after the `let` bindings"
            },
            p.eof,
        ));
    }
    let expr = p.parse_expr()?;
    if p.peek() == Some(&Tok::Semi) {
        p.bump();
    }
    if let Some(tok) = p.peek() {
        return Err(QlError::new(
            format!("unexpected {} after the query expression", tok.describe()),
            p.span(),
        ));
    }
    Ok(Program { bindings, expr })
}

struct Parser<'t> {
    tokens: &'t [Token],
    pos: usize,
    eof: SrcSpan,
}

impl<'t> Parser<'t> {
    fn peek(&self) -> Option<&'t Tok> {
        self.tokens.get(self.pos).map(|t| &t.tok)
    }

    /// Span of the current token (or the end of input).
    fn span(&self) -> SrcSpan {
        self.tokens.get(self.pos).map_or(self.eof, |t| t.span)
    }

    fn bump(&mut self) -> Option<&'t Token> {
        let t = self.tokens.get(self.pos);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, tok: Tok, what: &str) -> Result<&'t Token, QlError> {
        match self.tokens.get(self.pos) {
            Some(t) if t.tok == tok => {
                self.pos += 1;
                Ok(t)
            }
            Some(t) => Err(QlError::new(
                format!("expected {what}, found {}", t.tok.describe()),
                t.span,
            )),
            None => Err(QlError::new(
                format!("expected {what}, found end of input"),
                self.eof,
            )),
        }
    }

    fn parse_binding(&mut self) -> Result<Binding, QlError> {
        self.expect(Tok::Let, "`let`")?;
        let (name, name_span) = self.parse_ident("a binding name after `let`")?;
        self.expect(Tok::Eq, "`=`")?;
        let (rgx, rgx_span) = match self.bump() {
            Some(Token {
                tok: Tok::Regex(content),
                span,
            }) => (parse_regex(content, *span)?, *span),
            Some(t) => {
                return Err(QlError::new(
                    format!("expected a regex literal `/…/`, found {}", t.tok.describe()),
                    t.span,
                ))
            }
            None => {
                return Err(QlError::new(
                    "expected a regex literal `/…/`, found end of input",
                    self.eof,
                ))
            }
        };
        self.expect(Tok::Semi, "`;` after the binding")?;
        Ok(Binding {
            name,
            name_span,
            rgx,
            rgx_span,
        })
    }

    fn parse_ident(&mut self, what: &str) -> Result<(String, SrcSpan), QlError> {
        match self.tokens.get(self.pos) {
            Some(Token {
                tok: Tok::Ident(name),
                span,
            }) => {
                self.pos += 1;
                Ok((name.clone(), *span))
            }
            Some(t) => Err(QlError::new(
                format!("expected {what}, found {}", t.tok.describe()),
                t.span,
            )),
            None => Err(QlError::new(
                format!("expected {what}, found end of input"),
                self.eof,
            )),
        }
    }

    fn parse_expr(&mut self) -> Result<QlExpr, QlError> {
        let mut left = self.parse_joined()?;
        loop {
            match self.peek() {
                Some(Tok::Union) => {
                    self.bump();
                    let right = self.parse_joined()?;
                    left = QlExpr::Union(Box::new(left), Box::new(right));
                }
                Some(Tok::Minus) => {
                    self.bump();
                    let right = self.parse_joined()?;
                    left = QlExpr::Minus(Box::new(left), Box::new(right));
                }
                _ => return Ok(left),
            }
        }
    }

    fn parse_joined(&mut self) -> Result<QlExpr, QlError> {
        let mut left = self.parse_primary()?;
        while self.peek() == Some(&Tok::Join) {
            self.bump();
            let right = self.parse_primary()?;
            left = QlExpr::Join(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_primary(&mut self) -> Result<QlExpr, QlError> {
        match self.tokens.get(self.pos) {
            Some(Token {
                tok: Tok::LParen, ..
            }) => {
                self.pos += 1;
                let inner = self.parse_expr()?;
                self.expect(Tok::RParen, "`)`")?;
                Ok(inner)
            }
            Some(Token {
                tok: Tok::Project, ..
            }) => {
                self.pos += 1;
                let mut vars = Vec::new();
                if matches!(self.peek(), Some(Tok::Ident(_))) {
                    loop {
                        let (name, _) = self.parse_ident("a variable name")?;
                        vars.push(name);
                        if self.peek() == Some(&Tok::Comma) {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                }
                let child = self.parse_primary()?;
                Ok(QlExpr::Project(vars, Box::new(child)))
            }
            Some(Token {
                tok: Tok::Ident(name),
                span,
            }) => {
                self.pos += 1;
                Ok(QlExpr::Name(name.clone(), *span))
            }
            Some(Token {
                tok: Tok::Regex(content),
                span,
            }) => {
                self.pos += 1;
                Ok(QlExpr::Regex(parse_regex(content, *span)?, *span))
            }
            Some(t) => Err(QlError::new(
                format!(
                    "expected an extractor name, a regex literal, `project`, or `(`, found {}",
                    t.tok.describe()
                ),
                t.span,
            )),
            None => Err(QlError::new(
                "expected an extractor name, a regex literal, `project`, or `(`, \
                 found end of input",
                self.eof,
            )),
        }
    }
}

/// Parses the content of a regex literal, translating regex-parser byte
/// positions into program-source positions (the content sits verbatim one
/// byte past the opening `/`).
fn parse_regex(content: &str, literal: SrcSpan) -> Result<Rgx, QlError> {
    spanner_rgx::parse(content).map_err(|e| match e {
        spanner_core::SpannerError::Parse { message, position } => {
            let at = literal.start + 1 + position;
            QlError::new(
                format!("in regex literal: {message}"),
                SrcSpan::new(at, at + 1),
            )
        }
        other => QlError::new(format!("in regex literal: {other}"), literal),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bindings_then_expression() {
        let p = parse_program(
            "let user = /{x:[a-z]+}@/; let host = /@{y:[a-z]+}/;\n\
             project x, y (user join host) minus /{x:admin.*}/;",
        )
        .unwrap();
        assert_eq!(p.bindings.len(), 2);
        assert_eq!(p.bindings[0].name, "user");
        assert!(matches!(&p.expr, QlExpr::Minus(l, _)
            if matches!(l.as_ref(), QlExpr::Project(vars, _) if vars == &["x", "y"])));
    }

    #[test]
    fn precedence_union_minus_below_join() {
        let p = parse_program("/a/ union /b/ join /c/ minus /d/").unwrap();
        // (a ∪ (b ⋈ c)) \ d
        let QlExpr::Minus(l, _) = &p.expr else {
            panic!("{:?}", p.expr);
        };
        let QlExpr::Union(_, r) = l.as_ref() else {
            panic!("{:?}", p.expr);
        };
        assert!(matches!(r.as_ref(), QlExpr::Join(_, _)));
    }

    /// The operator shape of an expression, with spans and atoms erased.
    fn shape(e: &QlExpr) -> String {
        match e {
            QlExpr::Name(n, _) => n.clone(),
            QlExpr::Regex(_, _) => "R".to_string(),
            QlExpr::Project(v, c) => format!("π{v:?}({})", shape(c)),
            QlExpr::Union(l, r) => format!("({}∪{})", shape(l), shape(r)),
            QlExpr::Join(l, r) => format!("({}⋈{})", shape(l), shape(r)),
            QlExpr::Minus(l, r) => format!("({}\\{})", shape(l), shape(r)),
        }
    }

    #[test]
    fn symbolic_aliases_parse() {
        let symbolic = parse_program(r"let u = /{x:a}/; π x (u ⋈ /{x:a}b/) ∪ u \ u;").unwrap();
        let spelled =
            parse_program("let u = /{x:a}/; project x (u join /{x:a}b/) union u minus u;").unwrap();
        assert_eq!(shape(&symbolic.expr), shape(&spelled.expr));
    }

    #[test]
    fn empty_projection_is_boolean() {
        let p = parse_program("project (/{x:a}/)").unwrap();
        assert!(matches!(&p.expr, QlExpr::Project(vars, _) if vars.is_empty()));
    }

    #[test]
    fn trailing_semicolon_is_optional() {
        assert!(parse_program("/a/").is_ok());
        assert!(parse_program("/a/;").is_ok());
    }

    #[test]
    fn regex_errors_map_to_program_positions() {
        //        0123456789012345
        let src = "let a = /{x:/; a";
        let err = parse_program(src).unwrap_err();
        let span = err.span.unwrap();
        // The regex error sits inside the literal, not at literal start.
        assert!(span.start > src.find('/').unwrap(), "{err}");
        assert!(span.start <= src.len(), "{err}");
    }

    #[test]
    fn syntax_errors_are_spanned() {
        for src in [
            "",
            "let = /a/; a",
            "let a /a/; a",
            "let a = b; a",
            "let a = /a/ a",
            "a join",
            "(a",
            "a)",
            "project x, (a)",
            "a extra",
            "let a = /a/;",
        ] {
            let err = parse_program(src).unwrap_err();
            let span = err.span.expect("syntax errors carry spans");
            assert!(span.start <= src.len(), "{src:?}: {err}");
        }
    }
}
