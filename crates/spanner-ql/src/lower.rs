//! Lowering parsed programs to `RaTree` + `Instantiation`.
//!
//! Every `let` binding becomes one leaf placeholder (reused by every
//! reference to the name, so a binding used in several positions shares one
//! atom); anonymous regex literals get fresh placeholders in source order.
//! Lowering diagnoses duplicate bindings, unknown names, and non-sequential
//! regex formulas — all with source spans, before any compilation work
//! starts.

use crate::error::{QlError, SrcSpan};
use crate::parser::{Program, QlExpr};
use spanner_algebra::{Instantiation, LeafId, RaTree};
use spanner_core::VarSet;
use std::collections::HashMap;

/// A lowered program, ready for the planner and the compilation pipelines.
#[derive(Debug, Clone)]
pub struct Lowered {
    /// The RA tree exactly as the program wrote it.
    pub tree: RaTree,
    /// The atom assignment for the tree's placeholders.
    pub inst: Instantiation,
    /// For each placeholder, the binding name it came from (or the regex
    /// literal text for anonymous atoms) — used by `explain` output.
    pub leaf_names: Vec<String>,
}

impl Program {
    /// Lowers the program to an instantiated RA tree.
    pub fn lower(&self) -> Result<Lowered, QlError> {
        let mut inst = Instantiation::new();
        let mut leaf_names: Vec<String> = Vec::new();
        let mut by_name: HashMap<&str, LeafId> = HashMap::new();
        for binding in &self.bindings {
            if by_name.contains_key(binding.name.as_str()) {
                return Err(QlError::new(
                    format!("duplicate binding `{}`", binding.name),
                    binding.name_span,
                ));
            }
            check_sequential(&binding.rgx, binding.rgx_span)?;
            let id = leaf_names.len();
            by_name.insert(binding.name.as_str(), id);
            leaf_names.push(binding.name.clone());
            inst = inst.with(id, binding.rgx.clone());
        }
        let tree = lower_expr(&self.expr, &by_name, &mut inst, &mut leaf_names)?;
        Ok(Lowered {
            tree,
            inst,
            leaf_names,
        })
    }
}

fn lower_expr(
    expr: &QlExpr,
    by_name: &HashMap<&str, LeafId>,
    inst: &mut Instantiation,
    leaf_names: &mut Vec<String>,
) -> Result<RaTree, QlError> {
    Ok(match expr {
        QlExpr::Name(name, span) => match by_name.get(name.as_str()) {
            Some(&id) => RaTree::leaf(id),
            None => {
                return Err(QlError::new(
                    format!("unknown extractor `{name}` (no `let {name} = /…/;` binding)"),
                    *span,
                ))
            }
        },
        QlExpr::Regex(rgx, span) => {
            check_sequential(rgx, *span)?;
            let id = leaf_names.len();
            leaf_names.push(format!("/{rgx}/"));
            *inst = std::mem::take(inst).with(id, rgx.clone());
            RaTree::leaf(id)
        }
        QlExpr::Project(vars, child) => RaTree::project(
            VarSet::from_iter(vars.iter().map(String::as_str)),
            lower_expr(child, by_name, inst, leaf_names)?,
        ),
        QlExpr::Union(l, r) => RaTree::union(
            lower_expr(l, by_name, inst, leaf_names)?,
            lower_expr(r, by_name, inst, leaf_names)?,
        ),
        QlExpr::Join(l, r) => RaTree::join(
            lower_expr(l, by_name, inst, leaf_names)?,
            lower_expr(r, by_name, inst, leaf_names)?,
        ),
        QlExpr::Minus(l, r) => RaTree::difference(
            lower_expr(l, by_name, inst, leaf_names)?,
            lower_expr(r, by_name, inst, leaf_names)?,
        ),
    })
}

/// The whole pipeline below the language requires sequential formulas;
/// rejecting them here attaches the source span the compiler would lose.
fn check_sequential(rgx: &spanner_rgx::Rgx, span: SrcSpan) -> Result<(), QlError> {
    if spanner_rgx::is_sequential(rgx) {
        Ok(())
    } else {
        Err(QlError::new(
            "regex formula is not sequential (a capture repeats on some path, \
             e.g. under a star or on both sides of a concatenation)",
            span,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn lower(src: &str) -> Result<Lowered, QlError> {
        parse_program(src)?.lower()
    }

    #[test]
    fn names_share_one_placeholder() {
        let lowered = lower("let u = /{x:a}/; u join u").unwrap();
        assert_eq!(lowered.tree, RaTree::join(RaTree::leaf(0), RaTree::leaf(0)));
        assert_eq!(lowered.inst.len(), 1);
        assert_eq!(lowered.leaf_names, vec!["u"]);
    }

    #[test]
    fn anonymous_literals_get_fresh_placeholders() {
        let lowered = lower("let u = /{x:a}/; u union /{x:b}/").unwrap();
        assert_eq!(
            lowered.tree,
            RaTree::union(RaTree::leaf(0), RaTree::leaf(1))
        );
        assert_eq!(lowered.leaf_names[1], "/{x:b}/");
    }

    #[test]
    fn duplicate_binding_is_diagnosed_at_the_name() {
        let src = "let u = /a/; let u = /b/; u";
        let err = lower(src).unwrap_err();
        assert!(err.message.contains("duplicate binding `u`"), "{err}");
        assert_eq!(err.span.unwrap().start, src.rfind("u =").unwrap());
    }

    #[test]
    fn unknown_name_is_diagnosed_at_the_use() {
        let src = "let user = /a/; usr";
        let err = lower(src).unwrap_err();
        assert!(err.message.contains("unknown extractor `usr`"), "{err}");
        assert_eq!(err.span.unwrap().start, src.find("usr").unwrap());
    }

    #[test]
    fn non_sequential_formulas_are_rejected_with_a_span() {
        let err = lower("let b = /({x:a})*/; b").unwrap_err();
        assert!(err.message.contains("not sequential"), "{err}");
        let err = lower("/({x:a})*/ minus /b/").unwrap_err();
        assert!(err.message.contains("not sequential"), "{err}");
        assert_eq!(err.span.unwrap().start, 0);
    }

    #[test]
    fn projection_onto_unknown_variables_is_allowed() {
        // π over a variable no atom binds intersects to the empty schema —
        // legal RA, so the language allows it.
        let lowered = lower("let u = /{x:a}/; project nope (u)").unwrap();
        assert!(matches!(lowered.tree, RaTree::Project(_, _)));
    }
}
