//! Shared helpers for the benchmark harness and the `exp_*` experiment
//! binaries (see EXPERIMENTS.md for the experiment index).

use std::path::Path;
use std::time::{Duration, Instant};

/// Times a closure, returning its result and the elapsed wall-clock time.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let value = f();
    (value, start.elapsed())
}

/// Formats a duration in milliseconds with three decimals.
pub fn ms(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1e3)
}

/// Throughput in MiB/s (0 when nothing was timed).
pub fn mib_per_second(bytes: usize, elapsed: Duration) -> f64 {
    let secs = elapsed.as_secs_f64();
    if secs > 0.0 {
        bytes as f64 / secs / (1024.0 * 1024.0)
    } else {
        0.0
    }
}

/// Prints a Markdown-style table row.
pub fn row(cells: &[String]) {
    println!("| {} |", cells.join(" | "));
}

/// Prints a Markdown-style table header (with the separator line).
pub fn header(cells: &[&str]) {
    println!("| {} |", cells.join(" | "));
    println!(
        "|{}|",
        cells.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
}

/// One machine-readable measurement in the `BENCH_ql.json` summary: a
/// workload name, the median wall-clock time, and the mapping count (so a
/// perf regression that silently changes the result is visible too).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchEntry {
    /// Hierarchical workload name, e.g. `"ql/join-chain/120"`.
    pub workload: String,
    /// Median wall-clock nanoseconds.
    pub median_ns: u128,
    /// Number of mappings the workload produced.
    pub mappings: usize,
}

impl BenchEntry {
    /// Builds an entry from a [`median_of`]-style measurement.
    pub fn new(workload: impl Into<String>, median: Duration, mappings: usize) -> BenchEntry {
        BenchEntry {
            workload: workload.into(),
            median_ns: median.as_nanos(),
            mappings,
        }
    }
}

/// Runs `f` `runs` times and returns the last value with the median
/// wall-clock time.
pub fn median_of<T>(runs: usize, mut f: impl FnMut() -> T) -> (T, Duration) {
    let mut times = Vec::with_capacity(runs);
    let mut out = None;
    for _ in 0..runs {
        let (value, elapsed) = timed(&mut f);
        times.push(elapsed);
        out = Some(value);
    }
    times.sort();
    (out.expect("runs > 0"), times[times.len() / 2])
}

/// Merges entries into a `BENCH_ql.json`-style summary file: existing
/// entries with other workload names are kept (so `exp_planner` and
/// `exp_ql` can both contribute to one file), same-named ones are replaced,
/// and the result is written sorted by workload name — one entry per line,
/// so diffs across PRs stay readable.
pub fn merge_bench_json(path: impl AsRef<Path>, new_entries: &[BenchEntry]) -> std::io::Result<()> {
    let path = path.as_ref();
    let mut entries: Vec<BenchEntry> = std::fs::read_to_string(path)
        .map(|existing| parse_bench_json(&existing))
        .unwrap_or_default();
    entries.retain(|e| !new_entries.iter().any(|n| n.workload == e.workload));
    entries.extend_from_slice(new_entries);
    entries.sort_by(|a, b| a.workload.cmp(&b.workload));
    let mut out = String::from("{\n  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workload\": \"{}\", \"median_ns\": {}, \"mappings\": {}}}{}\n",
            e.workload,
            e.median_ns,
            e.mappings,
            if i + 1 < entries.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out)
}

/// Parses the summary format written by [`merge_bench_json`] (one entry per
/// line); lines that do not look like entries are ignored, so a corrupted
/// file degrades to a rewrite instead of an error.
pub fn parse_bench_json(text: &str) -> Vec<BenchEntry> {
    let field = |line: &str, key: &str| -> Option<String> {
        let at = line.find(&format!("\"{key}\":"))? + key.len() + 3;
        let rest = line[at..].trim_start();
        let rest = rest.strip_prefix('"').unwrap_or(rest);
        let end = rest.find(['"', ',', '}']).unwrap_or(rest.len());
        Some(rest[..end].trim().to_string())
    };
    text.lines()
        .filter_map(|line| {
            Some(BenchEntry {
                workload: field(line, "workload")?,
                median_ns: field(line, "median_ns")?.parse().ok()?,
                mappings: field(line, "mappings")?.parse().ok()?,
            })
        })
        .collect()
}

/// One violation found by [`gate_regressions`]: either a slowdown past
/// the tolerance or a silent change in a workload's mapping count.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// The workload that regressed.
    pub workload: String,
    /// Committed baseline median, nanoseconds.
    pub baseline_ns: u128,
    /// Freshly measured median, nanoseconds.
    pub fresh_ns: u128,
    /// What tripped the gate.
    pub kind: RegressionKind,
}

/// Why [`gate_regressions`] flagged a workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RegressionKind {
    /// `fresh > baseline * (1 + tolerance)`.
    Slower {
        /// `fresh / baseline` as a ratio (e.g. `1.4` = 40% slower).
        ratio: f64,
    },
    /// The workload produced a different number of mappings — a perf
    /// "win" that changes the answer is a correctness bug, not a win.
    MappingsChanged {
        /// Mapping count in the committed baseline.
        baseline: usize,
        /// Freshly measured mapping count.
        fresh: usize,
    },
}

impl std::fmt::Display for Regression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.kind {
            RegressionKind::Slower { ratio } => write!(
                f,
                "{}: {} ns -> {} ns ({:.2}x slower)",
                self.workload, self.baseline_ns, self.fresh_ns, ratio
            ),
            RegressionKind::MappingsChanged { baseline, fresh } => write!(
                f,
                "{}: mapping count changed {} -> {}",
                self.workload, baseline, fresh
            ),
        }
    }
}

/// Compares freshly measured entries against a committed baseline.
///
/// A workload regresses when its fresh median exceeds
/// `baseline * (1 + tolerance)` — with `tolerance = 0.25` a >25%
/// slowdown trips the gate while run-to-run noise (the experiment
/// binaries already take medians of repeated runs) passes. A changed
/// mapping count always trips it, whatever the timing. Workloads present
/// on only one side are ignored: a new benchmark is not a regression,
/// and a deleted one is a review concern, not a measurement.
pub fn gate_regressions(
    baseline: &[BenchEntry],
    fresh: &[BenchEntry],
    tolerance: f64,
) -> Vec<Regression> {
    let mut out = Vec::new();
    for base in baseline {
        let Some(new) = fresh.iter().find(|e| e.workload == base.workload) else {
            continue;
        };
        if new.mappings != base.mappings {
            out.push(Regression {
                workload: base.workload.clone(),
                baseline_ns: base.median_ns,
                fresh_ns: new.median_ns,
                kind: RegressionKind::MappingsChanged {
                    baseline: base.mappings,
                    fresh: new.mappings,
                },
            });
            continue;
        }
        let limit = base.median_ns as f64 * (1.0 + tolerance);
        if new.median_ns as f64 > limit && base.median_ns > 0 {
            out.push(Regression {
                workload: base.workload.clone(),
                baseline_ns: base.median_ns,
                fresh_ns: new.median_ns,
                kind: RegressionKind::Slower {
                    ratio: new.median_ns as f64 / base.median_ns as f64,
                },
            });
        }
    }
    out
}

/// Least-squares slope of `log(y)` against `log(x)` — the empirical
/// polynomial degree of a scaling series. Points with non-positive values
/// are skipped.
pub fn log_log_slope(points: &[(f64, f64)]) -> f64 {
    let filtered: Vec<(f64, f64)> = points
        .iter()
        .filter(|(x, y)| *x > 0.0 && *y > 0.0)
        .map(|(x, y)| (x.ln(), y.ln()))
        .collect();
    let n = filtered.len() as f64;
    if filtered.len() < 2 {
        return f64::NAN;
    }
    let sx: f64 = filtered.iter().map(|(x, _)| x).sum();
    let sy: f64 = filtered.iter().map(|(_, y)| y).sum();
    let sxx: f64 = filtered.iter().map(|(x, _)| x * x).sum();
    let sxy: f64 = filtered.iter().map(|(x, y)| x * y).sum();
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slope_of_quadratic_series_is_two() {
        let points: Vec<(f64, f64)> = (1..=10).map(|i| (i as f64, (i * i) as f64)).collect();
        let slope = log_log_slope(&points);
        assert!((slope - 2.0).abs() < 1e-9, "slope {slope}");
    }

    #[test]
    fn slope_handles_degenerate_input() {
        assert!(log_log_slope(&[]).is_nan());
        assert!(log_log_slope(&[(1.0, 1.0)]).is_nan());
    }

    #[test]
    fn timing_and_formatting() {
        let (value, d) = timed(|| 40 + 2);
        assert_eq!(value, 42);
        assert!(!ms(d).is_empty());
    }

    #[test]
    fn bench_json_round_trips_and_merges() {
        let path = std::env::temp_dir().join(format!("bench-json-{}.json", std::process::id()));
        let _ = std::fs::remove_file(&path);
        merge_bench_json(
            &path,
            &[
                BenchEntry::new("b/two", Duration::from_nanos(200), 2),
                BenchEntry::new("a/one", Duration::from_nanos(100), 1),
            ],
        )
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let parsed = parse_bench_json(&text);
        assert_eq!(parsed.len(), 2);
        // Sorted by workload.
        assert_eq!(parsed[0].workload, "a/one");
        assert_eq!(parsed[0].median_ns, 100);
        assert_eq!(parsed[1].mappings, 2);

        // A second merge replaces same-named entries and keeps the rest.
        merge_bench_json(
            &path,
            &[BenchEntry::new("a/one", Duration::from_nanos(150), 3)],
        )
        .unwrap();
        let parsed = parse_bench_json(&std::fs::read_to_string(&path).unwrap());
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].median_ns, 150);
        assert_eq!(parsed[0].mappings, 3);
        assert_eq!(parsed[1].workload, "b/two");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn parse_bench_json_ignores_garbage() {
        assert!(parse_bench_json("not json at all").is_empty());
        assert!(parse_bench_json("{\"workload\": \"x\"}").is_empty());
    }

    #[test]
    fn gate_passes_within_tolerance_and_flags_past_it() {
        let entry = |w: &str, ns: u64, m: usize| BenchEntry::new(w, Duration::from_nanos(ns), m);
        let baseline = [
            entry("a", 1_000, 5),
            entry("b", 1_000, 5),
            entry("c", 1_000, 5),
            entry("gone", 1_000, 5),
        ];
        let fresh = [
            entry("a", 1_240, 5),   // +24%: within the 25% tolerance
            entry("b", 1_300, 5),   // +30%: regression
            entry("c", 500, 5),     // faster: fine
            entry("new", 9_999, 1), // no baseline: ignored
        ];
        let regressions = gate_regressions(&baseline, &fresh, 0.25);
        assert_eq!(regressions.len(), 1);
        assert_eq!(regressions[0].workload, "b");
        assert_eq!(
            regressions[0].kind,
            RegressionKind::Slower { ratio: 1.3 },
            "{}",
            regressions[0]
        );
        assert!(regressions[0].to_string().contains("1.30x slower"));
    }

    #[test]
    fn gate_flags_changed_mapping_counts_even_when_faster() {
        let baseline = [BenchEntry::new("a", Duration::from_nanos(1_000), 5)];
        let fresh = [BenchEntry::new("a", Duration::from_nanos(100), 4)];
        let regressions = gate_regressions(&baseline, &fresh, 0.25);
        assert_eq!(regressions.len(), 1);
        assert_eq!(
            regressions[0].kind,
            RegressionKind::MappingsChanged {
                baseline: 5,
                fresh: 4
            }
        );
        assert!(regressions[0].to_string().contains("5 -> 4"));
    }

    #[test]
    fn gate_is_empty_on_identical_measurements() {
        let entries = [BenchEntry::new("a", Duration::from_nanos(1_000), 5)];
        assert!(gate_regressions(&entries, &entries, 0.25).is_empty());
    }
}
