//! Shared helpers for the benchmark harness and the `exp_*` experiment
//! binaries (see EXPERIMENTS.md for the experiment index).

use std::time::{Duration, Instant};

/// Times a closure, returning its result and the elapsed wall-clock time.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let value = f();
    (value, start.elapsed())
}

/// Formats a duration in milliseconds with three decimals.
pub fn ms(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1e3)
}

/// Prints a Markdown-style table row.
pub fn row(cells: &[String]) {
    println!("| {} |", cells.join(" | "));
}

/// Prints a Markdown-style table header (with the separator line).
pub fn header(cells: &[&str]) {
    println!("| {} |", cells.join(" | "));
    println!(
        "|{}|",
        cells.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
}

/// Least-squares slope of `log(y)` against `log(x)` — the empirical
/// polynomial degree of a scaling series. Points with non-positive values
/// are skipped.
pub fn log_log_slope(points: &[(f64, f64)]) -> f64 {
    let filtered: Vec<(f64, f64)> = points
        .iter()
        .filter(|(x, y)| *x > 0.0 && *y > 0.0)
        .map(|(x, y)| (x.ln(), y.ln()))
        .collect();
    let n = filtered.len() as f64;
    if filtered.len() < 2 {
        return f64::NAN;
    }
    let sx: f64 = filtered.iter().map(|(x, _)| x).sum();
    let sy: f64 = filtered.iter().map(|(_, y)| y).sum();
    let sxx: f64 = filtered.iter().map(|(x, _)| x * x).sum();
    let sxy: f64 = filtered.iter().map(|(x, y)| x * y).sum();
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slope_of_quadratic_series_is_two() {
        let points: Vec<(f64, f64)> = (1..=10).map(|i| (i as f64, (i * i) as f64)).collect();
        let slope = log_log_slope(&points);
        assert!((slope - 2.0).abs() < 1e-9, "slope {slope}");
    }

    #[test]
    fn slope_handles_degenerate_input() {
        assert!(log_log_slope(&[]).is_nan());
        assert!(log_log_slope(&[(1.0, 1.0)]).is_nan());
    }

    #[test]
    fn timing_and_formatting() {
        let (value, d) = timed(|| 40 + 2);
        assert_eq!(value, 42);
        assert!(!ms(d).is_empty());
    }
}
