//! E11 — the parameterized reductions: Theorem 4.4 (W\[1\]) and Proposition 4.10.

use spanner_algebra::{difference_product_eval, DifferenceOptions};
use spanner_bench::{header, ms, row, timed};
use spanner_reductions::{
    bounded_occurrence_cnf, bounded_occurrence_difference_instance,
    has_satisfying_assignment_of_weight, is_satisfiable, random_3cnf, weighted_difference_instance,
};
use spanner_vset::compile;

fn main() {
    let opts = DifferenceOptions::default();
    println!(
        "## E11a — Theorem 4.4: weight-k satisfiability via the difference, k = |shared vars|\n"
    );
    header(&["vars", "k", "weight-k SAT?", "spanner ms", "agree"]);
    for (n, k) in [(5usize, 1usize), (5, 2), (6, 2), (6, 3)] {
        let cnf = random_3cnf(n, 2.0, (n * 10 + k) as u64);
        let expected = has_satisfying_assignment_of_weight(&cnf, k);
        let instance = weighted_difference_instance(&cnf, k).unwrap();
        let a1 = compile(&instance.gamma1);
        let a2 = compile(&instance.gamma2);
        let (diff, t) = timed(|| difference_product_eval(&a1, &a2, &instance.doc, opts).unwrap());
        row(&[
            n.to_string(),
            k.to_string(),
            expected.to_string(),
            ms(t),
            (diff.is_empty() != expected).to_string(),
        ]);
    }

    println!("\n## E11b — Proposition 4.10: bounded-occurrence, disjunction-free difference\n");
    header(&["vars", "clauses", "SAT?", "spanner ms", "agree"]);
    for n in [3usize, 5, 7, 9] {
        let cnf = bounded_occurrence_cnf(n, n as u64);
        let sat = is_satisfiable(&cnf);
        let instance = bounded_occurrence_difference_instance(&cnf);
        let a1 = compile(&instance.gamma1);
        let a2 = compile(&instance.gamma2);
        let (diff, t) = timed(|| difference_product_eval(&a1, &a2, &instance.doc, opts).unwrap());
        row(&[
            n.to_string(),
            cnf.num_clauses().to_string(),
            sat.to_string(),
            ms(t),
            (diff.is_empty() != sat).to_string(),
        ]);
    }
    println!("\nexpected shape: both restricted fragments remain hard — running time grows exponentially with the instance even though the syntax is heavily constrained.");
}
