//! E1 — enumeration delay and throughput table (Theorem 2.5).

use spanner_bench::{header, log_log_slope, ms, row, timed};
use spanner_enum::Enumerator;
use spanner_vset::compile;
use spanner_workloads::{student_info_extractor, student_records};
use std::time::Duration;

fn main() {
    println!("## E1 — polynomial-delay enumeration (Theorem 2.5)\n");
    let vsa = compile(&student_info_extractor().unwrap());
    header(&[
        "doc bytes",
        "mappings",
        "total ms",
        "mean delay µs",
        "max delay µs",
    ]);
    let mut points = Vec::new();
    for lines in [32usize, 64, 128, 256, 512] {
        let doc = student_records(lines, 7);
        let ((count, max_delay), total) = timed(|| {
            let mut e = Enumerator::new(&vsa, &doc).unwrap();
            let mut count = 0usize;
            let mut max_delay = Duration::ZERO;
            let mut last = std::time::Instant::now();
            for m in &mut e {
                m.unwrap();
                let now = std::time::Instant::now();
                max_delay = max_delay.max(now - last);
                last = now;
                count += 1;
            }
            (count, max_delay)
        });
        let mean = total / count.max(1) as u32;
        row(&[
            doc.len().to_string(),
            count.to_string(),
            ms(total),
            format!("{:.1}", mean.as_secs_f64() * 1e6),
            format!("{:.1}", max_delay.as_secs_f64() * 1e6),
        ]);
        points.push((doc.len() as f64, max_delay.as_secs_f64()));
    }
    println!(
        "\nempirical log-log slope of max delay vs document size: {:.2} (polynomial-delay ⇒ small constant degree)",
        log_log_slope(&points)
    );
}
