//! E3 — FPT join compilation: output size and time vs shared variables k.

use spanner_bench::{header, ms, row, timed};
use spanner_core::Document;
use spanner_enum::count_mappings;
use spanner_rgx::parse;
use spanner_vset::{compile, join};

fn main() {
    println!("## E3 — FPT join compilation (Lemma 3.2 / Theorem 3.3)\n");
    header(&[
        "k (shared vars)",
        "|Q1|",
        "|Q2|",
        "product states",
        "compile ms",
        "mappings on sample doc",
    ]);
    let doc = Document::new("abc12 xyz34 qq5 ");
    for k in 0..=5usize {
        let mut shared = String::new();
        for i in 0..k {
            shared.push_str(&format!("({{s{i}:\\l}})?"));
        }
        let a1 = compile(&parse(&format!("{shared}{{left:\\d*}}.*")).unwrap());
        let a2 = compile(&parse(&format!("{shared}.*{{right:\\d*}}")).unwrap());
        let (product, elapsed) = timed(|| join(&a1, &a2).unwrap());
        let mappings = count_mappings(&product, &doc, usize::MAX).unwrap();
        row(&[
            k.to_string(),
            a1.state_count().to_string(),
            a2.state_count().to_string(),
            product.state_count().to_string(),
            ms(elapsed),
            mappings.to_string(),
        ]);
    }
    println!("\nexpected shape: product size grows exponentially in k (FPT) but stays polynomial in the operand sizes for fixed k.");
}
