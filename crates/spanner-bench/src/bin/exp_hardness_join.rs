//! E2 — Theorem 3.1: join nonemptiness vs DPLL on random 3-CNF.

use spanner_bench::{header, ms, row, timed};
use spanner_core::VarSet;
use spanner_reductions::{is_satisfiable, join_hardness_instance, random_3cnf};
use spanner_vset::compile;
use spanner_vset::nfa_accepts;

fn main() {
    println!("## E2 — Theorem 3.1 reduction (3SAT → join nonemptiness), |d| = 1\n");
    header(&[
        "vars",
        "clauses",
        "capture vars",
        "SAT?",
        "spanner ms",
        "DPLL ms",
        "agree",
    ]);
    for n in 2..=5usize {
        let cnf = random_3cnf(n, 2.0, n as u64);
        let (sat, t_dpll) = timed(|| is_satisfiable(&cnf));
        let instance = join_hardness_instance(&cnf);
        let a1 = compile(&instance.gamma1);
        let a2 = compile(&instance.gamma2);
        // The instance has 2·n·m capture variables, so nonemptiness is
        // checked on the Boolean projection of the compiled join; the
        // compilation is exponential, so a state budget bounds each row.
        let limits = spanner_vset::JoinOptions {
            max_states: 500_000,
        };
        let (outcome, t_spanner) = timed(|| {
            spanner_vset::join_with_options(&a1, &a2, limits)
                .map(|joined| nfa_accepts(&joined.project(&VarSet::new()), &instance.doc).unwrap())
        });
        let (answer, agrees) = match outcome {
            Ok(nonempty) => (nonempty.to_string(), (sat == nonempty).to_string()),
            Err(_) => ("state budget exceeded".to_string(), "-".to_string()),
        };
        row(&[
            n.to_string(),
            cnf.num_clauses().to_string(),
            instance
                .gamma1
                .vars()
                .union(&instance.gamma2.vars())
                .len()
                .to_string(),
            format!("{sat} / answered {answer}"),
            ms(t_spanner),
            ms(t_dpll),
            agrees,
        ]);
    }
    println!("\nexpected shape: the spanner-side time explodes (the join instance has 2nm capture variables), while DPLL stays in microseconds — NP-hardness in action.");
}
