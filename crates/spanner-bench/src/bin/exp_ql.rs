//! E12 — the SpannerQL front end, end to end.
//!
//! Measures the three phases a QL user pays for: preparing a program
//! (parse → lower → optimize → compile), evaluating a prepared query on
//! single documents, and scanning a line corpus through the shared plan.
//! Alongside the human-readable tables, the measurements are merged into
//! `BENCH_ql.json` (workload name, median ns, mapping count) so per-PR perf
//! is trackable; `exp_planner` contributes to the same file.

use spanner_bench::{header, median_of, merge_bench_json, mib_per_second, ms, row, BenchEntry};
use spanner_corpus::split_lines;
use spanner_ql::PreparedQuery;
use spanner_workloads::{access_log, random_text};

/// The running-example query: user/host pairs, admins filtered out with
/// the difference operator.
const USERS_QUERY: &str = "\
let user = /{user:[a-z]+}@[a-z]+(\\.[a-z]+)*( .*)?/;
let host = /[a-z]+@{host:[a-z]+(\\.[a-z]+)*}( .*)?/;
project user (user join host) minus /{user:admin[a-z]*}@.*( .*)?/;";

/// The planner-reorder chain: (?0{x} ⋈ ?1{y}) ⋈ ?2{x,y} — bound 2 as
/// written, 1 after planning.
const CHAIN_QUERY: &str = "\
let a = /.*(ab|ba)(ab|ba){x:b+}(ab|ba)(ab|ba).*/;
let b = /.*(aa|bb)(aa|bb){y:a+}(aa|bb)(aa|bb).*/;
let c = /.*ab{x:b+}ab.*bb{y:a+}bb.*/;
(a join b) join c;";

/// The access-log extractor from the corpus experiment, as a QL program.
const LOG_QUERY: &str = "\
project path, status (/{ip:[0-9]+\\.[0-9]+\\.[0-9]+\\.[0-9]+} - ({user:[a-z]+}|-) \
\\[[0-9\\/]+\\] \"{method:[A-Z]+} {path:[a-zA-Z0-9_\\/\\.]+}\" {status:[0-9][0-9][0-9]} [0-9]+/);";

fn main() {
    println!("## E12 — SpannerQL front end\n");
    let mut entries = Vec::new();

    // --- Preparation cost -----------------------------------------------
    println!("### Preparation (parse → lower → optimize → compile)\n");
    header(&["program", "prepare ms"]);
    for (name, src) in [
        ("users", USERS_QUERY),
        ("chain", CHAIN_QUERY),
        ("log", LOG_QUERY),
    ] {
        let (_, t) = median_of(5, || PreparedQuery::prepare(src).unwrap());
        row(&[name.to_string(), ms(t)]);
        entries.push(BenchEntry::new(format!("ql/prepare/{name}"), t, 0));
    }

    // --- Single-document evaluation -------------------------------------
    println!("\n### Single-document evaluation (prepared once)\n");
    let users = PreparedQuery::prepare(USERS_QUERY).unwrap();
    let chain = PreparedQuery::prepare(CHAIN_QUERY).unwrap();
    println!(
        "users plan is {}; chain bound {} → {}\n",
        if users.plan().is_static() {
            "static"
        } else {
            "dynamic"
        },
        chain.shared_variable_bound_before(),
        chain.shared_variable_bound_after(),
    );
    header(&["workload", "doc bytes", "ms", "mappings"]);
    let user_doc = spanner_core::Document::new("bob@edu.ru extra adminx@edu.ru trail");
    let (n, t) = median_of(5, || users.evaluate(&user_doc).unwrap().len());
    row(&[
        "users".to_string(),
        user_doc.len().to_string(),
        ms(t),
        n.to_string(),
    ]);
    entries.push(BenchEntry::new("ql/eval/users", t, n));
    for len in [60usize, 120] {
        let doc = random_text(len, b"ab", 3);
        let (n, t) = median_of(5, || chain.evaluate(&doc).unwrap().len());
        row(&["chain".to_string(), len.to_string(), ms(t), n.to_string()]);
        entries.push(BenchEntry::new(format!("ql/eval/chain/{len}"), t, n));
    }

    // --- Corpus scan ----------------------------------------------------
    println!("\n### Corpus scan (access log through the shared plan)\n");
    let log = PreparedQuery::prepare(LOG_QUERY).unwrap();
    let corpus = access_log(1_000, 11);
    let docs = split_lines(corpus.text());
    header(&["threads", "ms", "MiB/s", "mappings"]);
    for threads in [1usize, 2] {
        let (stats, median) = median_of(3, || log.evaluate_corpus(&docs, threads).unwrap().stats);
        row(&[
            threads.to_string(),
            ms(median),
            format!("{:.1}", mib_per_second(stats.bytes, median)),
            stats.mappings.to_string(),
        ]);
        entries.push(BenchEntry::new(
            format!("ql/corpus/access-log/t{threads}"),
            median,
            stats.mappings,
        ));
    }

    merge_bench_json("BENCH_ql.json", &entries).expect("write BENCH_ql.json");
    println!("\nwrote {} entries to BENCH_ql.json", entries.len());
}
