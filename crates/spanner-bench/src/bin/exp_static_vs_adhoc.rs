//! E10 — why the difference cannot be compiled statically: NFA complement
//! blow-up vs the size of the ad-hoc construction (Section 4 intro, \[17\]).

use spanner_algebra::{difference_product, DifferenceOptions};
use spanner_bench::{header, row};
use spanner_core::Document;
use spanner_rgx::parse;
use spanner_vset::{compile, determinize, static_boolean_difference};

fn main() {
    println!("## E10 — static vs ad-hoc compilation of the (Boolean) difference\n");
    header(&[
        "n",
        "NFA states (L2)",
        "static difference DFA states",
        "ad-hoc VA states (|d| = 2n)",
        "ad-hoc valid for",
    ]);
    let opts = DifferenceOptions::default();
    for n in 2..=12usize {
        // L1 = (a|b)*, L2 = (a|b)* a (a|b)^{n-1}: the complement of L2 needs 2^n DFA states.
        let a1 = compile(&parse("(a|b)*").unwrap());
        let suffix = "(a|b)".repeat(n - 1);
        let a2 = compile(&parse(&format!("(a|b)*a{suffix}")).unwrap());
        let static_dfa = static_boolean_difference(&a1, &a2, 1 << 22).unwrap();
        let _ = determinize(&a2, 1 << 22).unwrap();
        let doc = Document::new("ab".repeat(n));
        let adhoc = difference_product(&a1, &a2, &doc, opts).unwrap();
        row(&[
            n.to_string(),
            a2.state_count().to_string(),
            static_dfa.state_count().to_string(),
            adhoc.state_count().to_string(),
            "this document only".to_string(),
        ]);
    }
    println!("\nexpected shape: the statically compiled difference doubles with every increment of n (NFA complementation); the ad-hoc automaton for one concrete document stays tiny (here the Boolean answer collapses it after trimming) but is valid for that document only.");
}
