//! E14 — horizontal sharding: router-over-N daemons vs a single daemon.
//!
//! Loads the same needle corpus into (a) one daemon and (b) a shard
//! router over 2 and 3 backend daemons, then measures resident
//! `query_corpus` throughput on the same program stream over the real
//! TCP protocol. The router partitions the corpus contiguously and fans
//! each query out in parallel, so with enough CPUs the shards evaluate
//! their slices concurrently and throughput scales; the acceptance bar
//! of the sharding work is ≥ 1.7x single-daemon throughput at 2 local
//! shards. On boxes without the parallelism to express that (the router,
//! backends, and their corpus pools all share the cores), the bar is not
//! meaningfully testable, so the assertion is gated on
//! `available_parallelism` — the honest measured numbers are recorded
//! either way. Results are merged into `BENCH_shard.json`; `bench_gate`
//! holds the mapping totals (which must be identical at every shard
//! count — that is the router's bit-identity contract) and latencies to
//! the committed baseline.

use spanner_bench::{header, merge_bench_json, row, BenchEntry};
use spanner_serve::{Client, Json, RouterOptions, ServeOptions, Server};
use spanner_workloads::needle_corpus;
use std::net::SocketAddr;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

type Handle = JoinHandle<std::io::Result<()>>;

/// Programs with different selectivity over the needle corpus: a
/// selective literal extraction, a broader token scan, and a difference.
fn programs() -> Vec<&'static str> {
    vec![
        "/.*{x:needle}.*/",
        "/{x:[a-p]+}( .*)?/",
        "/.*{x:needle}.*/ minus /.*{x:needle} q.*/",
    ]
}

fn backend_options() -> ServeOptions {
    ServeOptions {
        threads: 2,
        ..ServeOptions::default()
    }
}

fn start_backends(count: usize) -> (Vec<SocketAddr>, Vec<Handle>) {
    (0..count)
        .map(|_| {
            Server::bind("127.0.0.1:0", backend_options())
                .expect("bind backend")
                .spawn()
        })
        .unzip()
}

/// Loads the corpus and replays the program stream `rounds` times;
/// returns the wall-clock time of the query phase and the total mapping
/// count (the correctness invariant: identical at every shard count).
fn replay(client: &mut Client, text: &str, rounds: usize) -> (Duration, usize) {
    let loaded = client.load_corpus(text).expect("load corpus");
    assert_eq!(
        loaded.get("ok").and_then(Json::as_bool),
        Some(true),
        "{loaded}"
    );
    // Warm-up: compile every program on every shard outside the window.
    for program in programs() {
        client.query_store(program).expect("warm-up query");
    }
    let start = Instant::now();
    let mut mappings = 0usize;
    for round in 0..rounds {
        for program in programs() {
            let response = client.query_store(program).expect("query");
            assert_eq!(
                response.get("ok").and_then(Json::as_bool),
                Some(true),
                "round {round}: {response}"
            );
            mappings += response
                .get("mappings")
                .and_then(Json::as_usize)
                .unwrap_or(0);
        }
    }
    (start.elapsed(), mappings)
}

/// Measures one deployment shape (single daemon for `shards == 1`
/// without a router in front; router-over-N otherwise), median of 3.
fn measure(shards: usize, text: &str, rounds: usize) -> (Duration, usize) {
    let mut runs: Vec<(Duration, usize)> = (0..3)
        .map(|_| {
            let (backend_addrs, mut handles) = start_backends(shards);
            let (front_addr, front_handle) = if shards == 1 {
                (backend_addrs[0], None)
            } else {
                let (addr, handle) = Server::bind_router(
                    "127.0.0.1:0",
                    ServeOptions::default(),
                    RouterOptions {
                        backends: backend_addrs.iter().map(SocketAddr::to_string).collect(),
                        ..RouterOptions::default()
                    },
                )
                .expect("bind router")
                .spawn();
                (addr, Some(handle))
            };
            let mut client = Client::connect(front_addr).expect("connect front end");
            let run = replay(&mut client, text, rounds);
            if front_handle.is_some() {
                client.shutdown().expect("shutdown router");
            }
            for addr in &backend_addrs {
                let mut backend = Client::connect(addr).expect("connect backend");
                backend.shutdown().expect("shutdown backend");
            }
            if let Some(handle) = front_handle {
                handles.push(handle);
            }
            for handle in handles {
                handle.join().expect("join").expect("clean exit");
            }
            run
        })
        .collect();
    runs.sort();
    runs[1]
}

fn qps(queries: usize, elapsed: Duration) -> f64 {
    queries as f64 / elapsed.as_secs_f64()
}

fn main() {
    println!("## E14 — shard router: query_corpus fan-out across backend daemons\n");

    let lines = 3_000;
    let rounds = 8;
    let queries = rounds * programs().len();
    let corpus = needle_corpus(lines, 40, 14);
    let text = corpus
        .iter()
        .map(|d| d.text())
        .collect::<Vec<_>>()
        .join("\n");

    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "{lines}-line needle corpus, {queries} resident queries per run, \
         median of 3, {cpus} CPUs\n"
    );
    header(&["deployment", "queries/s", "speedup vs single", "mappings"]);

    let mut entries = Vec::new();
    let mut single_qps = 0.0;
    let mut single_mappings = 0;
    for shards in [1usize, 2, 3] {
        let (elapsed, mappings) = measure(shards, &text, rounds);
        let rate = qps(queries, elapsed);
        let label = if shards == 1 {
            "single daemon".to_string()
        } else {
            format!("router over {shards}")
        };
        if shards == 1 {
            single_qps = rate;
            single_mappings = mappings;
        } else {
            assert_eq!(
                mappings, single_mappings,
                "sharding must not change any mapping count"
            );
        }
        row(&[
            label,
            format!("{rate:.1}"),
            format!("{:.2}x", rate / single_qps),
            mappings.to_string(),
        ]);
        let workload = if shards == 1 {
            "shard/query/single".to_string()
        } else {
            format!("shard/query/{shards}")
        };
        entries.push(BenchEntry::new(
            workload,
            elapsed / queries as u32,
            mappings,
        ));
    }

    merge_bench_json("BENCH_shard.json", &entries).expect("write BENCH_shard.json");
    println!("\nwrote {} entries to BENCH_shard.json", entries.len());

    // Per-query medians: single is entries[0], 2-shard is entries[1].
    let measured = entries[0].median_ns as f64 / entries[1].median_ns as f64;
    println!("2-shard speedup vs single: {measured:.2}x (acceptance bar: ≥ 1.7x with ≥ 4 CPUs)");
    if cpus >= 4 {
        assert!(
            measured >= 1.7,
            "2 local shards must reach at least 1.7x single-daemon throughput, got {measured:.2}x"
        );
    } else {
        println!(
            "({cpus} CPU{}: shards cannot run concurrently here, assertion skipped — \
             numbers recorded as measured)",
            if cpus == 1 { "" } else { "s" }
        );
    }
}
