//! E13 — the serving layer: cached prepared queries vs cold compilation.
//!
//! Drives a live daemon over its real TCP protocol with the
//! `spanner-workloads` request mix and measures requests per second in two
//! configurations on the same workload:
//!
//! * **cold** — cache capacity 0: every request re-parses, re-plans, and
//!   re-compiles its program (what the one-shot CLI paid per invocation);
//! * **cached** — default capacity: a request for a resident program
//!   evaluates against the shared compiled plan with zero compilation.
//!
//! The acceptance bar of the serving-layer work is cached ≥ 5× cold on
//! the same request stream. Results are merged into `BENCH_serve.json`.

use spanner_bench::{header, merge_bench_json, ms, row, BenchEntry};
use spanner_serve::{Client, Json, ServeOptions, Server};
use spanner_workloads::{request_mix, RequestKind, RequestMixConfig, ServeRequest};
use std::time::{Duration, Instant};

/// Replays the request stream against a fresh daemon with the given cache
/// capacity; returns the wall-clock time, the number of responses with
/// `"ok": true`, and the total number of mappings reported across all
/// responses (`count` on query responses, `mappings` on corpus responses)
/// — the correctness invariant `bench_gate` holds the baseline to.
fn replay(requests: &[ServeRequest], cache_capacity: usize) -> (Duration, usize, usize) {
    let server = Server::bind(
        "127.0.0.1:0",
        ServeOptions {
            cache_capacity,
            threads: 2,
            ..ServeOptions::default()
        },
    )
    .expect("bind an ephemeral port");
    let (addr, handle) = server.spawn();
    let mut client = Client::connect(addr).expect("connect");
    let start = Instant::now();
    let mut ok = 0;
    let mut mappings = 0;
    for request in requests {
        let response = match request.kind {
            RequestKind::Query => client.query(&request.program, &request.doc),
            RequestKind::QueryCorpus => client.query_corpus(&request.program, &request.doc),
            RequestKind::Explain => client.explain(&request.program),
            RequestKind::Stats => client.stats(),
        }
        .expect("request round trip");
        if response.get("ok").and_then(Json::as_bool) == Some(true) {
            ok += 1;
        }
        // Single-document responses report `count`; corpus responses
        // report their total as a `mappings` number.
        mappings += match request.kind {
            RequestKind::Query => response.get("count").and_then(Json::as_usize).unwrap_or(0),
            RequestKind::QueryCorpus => response
                .get("mappings")
                .and_then(Json::as_usize)
                .unwrap_or(0),
            RequestKind::Explain | RequestKind::Stats => 0,
        };
    }
    let elapsed = start.elapsed();
    client.shutdown().expect("shutdown");
    handle.join().expect("join").expect("clean exit");
    (elapsed, ok, mappings)
}

/// [`replay`] three times, keeping the median wall-clock run (noise from
/// co-tenants on the machine skews single runs by 2x and more).
fn replay_median(requests: &[ServeRequest], cache_capacity: usize) -> (Duration, usize, usize) {
    let mut runs: Vec<(Duration, usize, usize)> =
        (0..3).map(|_| replay(requests, cache_capacity)).collect();
    runs.sort();
    runs[1]
}

fn qps(n: usize, elapsed: Duration) -> f64 {
    n as f64 / elapsed.as_secs_f64()
}

fn main() {
    println!("## E13 — serving layer: prepared-query cache\n");
    let config = RequestMixConfig {
        // Pure single-document queries for the headline number: corpus and
        // introspection requests would dilute the compile-vs-evaluate
        // contrast this experiment isolates.
        corpus_percent: 0,
        introspection_percent: 0,
        ..RequestMixConfig::default()
    };
    let n = 400;
    let requests = request_mix(n, config, 13);

    println!("{n} single-document requests, 70% on the hot program, over TCP\n");
    header(&["configuration", "total ms", "requests/s", "ok responses"]);

    let (cold, cold_ok, cold_mappings) = replay_median(&requests, 0);
    row(&[
        "cold (capacity 0)".to_string(),
        ms(cold),
        format!("{:.0}", qps(n, cold)),
        cold_ok.to_string(),
    ]);
    let (cached, cached_ok, cached_mappings) = replay_median(&requests, 64);
    row(&[
        "cached (capacity 64)".to_string(),
        ms(cached),
        format!("{:.0}", qps(n, cached)),
        cached_ok.to_string(),
    ]);
    assert_eq!(cold_ok, cached_ok, "the cache must not change any result");
    assert_eq!(
        cold_mappings, cached_mappings,
        "the cache must not change any mapping count"
    );

    let speedup = qps(n, cached) / qps(n, cold);
    println!("\ncached/cold speedup: {speedup:.1}x (acceptance bar: ≥ 5x)");

    // A mixed stream (corpus + introspection included) for the realistic
    // serving picture.
    let mixed = request_mix(200, RequestMixConfig::default(), 17);
    let (mixed_cold, _, mixed_cold_mappings) = replay(&mixed, 0);
    let (mixed_cached, _, mixed_cached_mappings) = replay(&mixed, 64);
    println!(
        "mixed stream (200 requests, 10% corpus): cold {:.0} req/s, cached {:.0} req/s\n",
        qps(200, mixed_cold),
        qps(200, mixed_cached),
    );
    assert_eq!(
        mixed_cold_mappings, mixed_cached_mappings,
        "the cache must not change any mapping count on the mixed stream"
    );

    // Every row carries its measured mapping total so `bench_gate` can
    // hold the baseline to the answer, not just the latency.
    let entries = vec![
        BenchEntry::new("serve/query/cold", cold / n as u32, cold_mappings),
        BenchEntry::new("serve/query/cached", cached / n as u32, cached_mappings),
        BenchEntry::new("serve/mixed/cold", mixed_cold / 200, mixed_cold_mappings),
        BenchEntry::new(
            "serve/mixed/cached",
            mixed_cached / 200,
            mixed_cached_mappings,
        ),
    ];
    merge_bench_json("BENCH_serve.json", &entries).expect("write BENCH_serve.json");
    println!("wrote {} entries to BENCH_serve.json", entries.len());
    assert!(
        speedup >= 5.0,
        "cached serving must be at least 5x cold parse-plan-compile, got {speedup:.1}x"
    );
}
