//! E14 — the scan-core fast path under a match-rate sweep.
//!
//! One email-shaped extractor over corpora whose hit rate sweeps from
//! 0% to 100%: at 0% every line is killed by the static prefilters or
//! the boolean pre-pass without enumeration; at 100% the fast path can
//! only lose its (tiny) pre-pass overhead. The baseline is the same
//! engine with [`RaOptions::scan_fast_path`] off — the full compiled
//! scan runs on every line. Medians land in `BENCH_scan.json`, and the
//! miss-dominated rows (0%, 1%) assert the ≥10x acceptance bar so CI
//! fails loudly if the prefilters stop firing.

use spanner_algebra::{CompiledPlan, Instantiation, RaOptions, RaTree};
use spanner_bench::{header, median_of, merge_bench_json, ms, row, BenchEntry};
use spanner_core::Document;
use spanner_corpus::CorpusEngine;
use spanner_rgx::parse;

/// Deterministic padding over lowercase letters and spaces — no `@`, so
/// a pure-padding line is skippable by the required-factor prefilter.
fn padding(len: usize, seed: u64) -> String {
    const ALPHABET: &[u8] = b"abcdefghijklmnop qrstuvwxyz ";
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ALPHABET[(state % ALPHABET.len() as u64) as usize] as char
        })
        .collect()
}

/// One corpus line: a hit embeds an email between padding runs, a miss
/// is padding only.
fn line(hit: bool, seed: u64) -> Document {
    let text = if hit {
        format!(
            "{} contact{}@mail.example {}",
            padding(40, seed),
            seed % 100,
            padding(60, seed.wrapping_add(1))
        )
    } else {
        padding(110, seed)
    };
    Document::new(&text)
}

/// A corpus of `lines` documents where `hits_per_1000` of every 1000
/// lines contain a match, spread evenly.
fn corpus(lines: usize, hits_per_1000: usize, seed: u64) -> Vec<Document> {
    (0..lines)
        .map(|i| {
            let hit = hits_per_1000 > 0 && (i * hits_per_1000) % 1000 < hits_per_1000;
            line(hit, seed.wrapping_add(i as u64))
        })
        .collect()
}

fn main() {
    println!("## E14 — scan-core fast path: match-rate sweep\n");
    println!("email extractor over 400 ~110-byte lines; fast path vs no-prefilter baseline\n");

    let tree = RaTree::leaf(0);
    let inst = Instantiation::new().with(
        0,
        parse(r".*[ ]{user:\l+\d*}@{host:\l+\.\l+}[ ].*").unwrap(),
    );
    let fast = CorpusEngine::compile(&tree, &inst, RaOptions::default()).unwrap();
    let base = CorpusEngine::compile(
        &tree,
        &inst,
        RaOptions {
            scan_fast_path: false,
            ..RaOptions::default()
        },
    )
    .unwrap();

    let mut entries = Vec::new();
    header(&[
        "hit rate",
        "fast ms",
        "baseline ms",
        "speedup",
        "mappings",
        "skipped",
        "rejected",
    ]);
    for per_mille in [0usize, 10, 500, 1000] {
        let docs = corpus(400, per_mille, 42);
        let (out_fast, t_fast) = median_of(5, || fast.evaluate_with_threads(&docs, 1).unwrap());
        let (out_base, t_base) = median_of(5, || base.evaluate_with_threads(&docs, 1).unwrap());
        assert_eq!(
            out_fast.results, out_base.results,
            "the fast path changed the answer at {per_mille}/1000"
        );
        let speedup = t_base.as_secs_f64() / t_fast.as_secs_f64();
        let label = format!("{}%", per_mille as f64 / 10.0);
        row(&[
            label,
            ms(t_fast),
            ms(t_base),
            format!("{speedup:.1}x"),
            out_fast.stats.mappings.to_string(),
            out_fast.stats.docs_skipped.to_string(),
            out_fast.stats.docs_rejected.to_string(),
        ]);
        entries.push(BenchEntry::new(
            format!("scan/hit-rate-{per_mille}/fastpath"),
            t_fast,
            out_fast.stats.mappings,
        ));
        entries.push(BenchEntry::new(
            format!("scan/hit-rate-{per_mille}/baseline"),
            t_base,
            out_base.stats.mappings,
        ));
        if per_mille <= 10 {
            // The acceptance bar: miss-dominated corpora must be an order
            // of magnitude faster than scanning without prefilters.
            assert!(
                speedup >= 10.0,
                "miss-dominated sweep at {per_mille}/1000 is only {speedup:.1}x (bar: 10x)"
            );
        }
    }

    // Sanity: the static prefilters, not luck, do the skipping — a
    // miss-only corpus must skip every line without enumerating any.
    let misses = corpus(400, 0, 7);
    let out = fast.evaluate_with_threads(&misses, 1).unwrap();
    assert_eq!(out.stats.docs_skipped + out.stats.docs_rejected, 400);
    assert_eq!(out.stats.mappings, 0);

    // And the single-document surface agrees with the corpus surface.
    let plan = CompiledPlan::compile(&tree, &inst, RaOptions::default()).unwrap();
    let hit = line(true, 3);
    assert!(!plan.evaluate(&hit).unwrap().is_empty());

    merge_bench_json("BENCH_scan.json", &entries).expect("write BENCH_scan.json");
    println!("\nwrote {} entries to BENCH_scan.json", entries.len());
}
