//! E4 — the sequential → disjunctive-functional blow-up (Propositions 3.9 / 3.11).

use spanner_bench::{header, ms, row, timed};
use spanner_rgx::to_disjunctive_functional;
use spanner_vset::compile;
use spanner_workloads::example_3_10_formula;

fn main() {
    println!("## E4 — Example 3.10 family: sequential vs disjunctive functional (Prop. 3.11)\n");
    header(&[
        "n",
        "sequential formula size",
        "sequential VA states",
        "dfunc disjuncts",
        "2^n",
        "rewrite ms",
    ]);
    for n in 1..=14usize {
        let alpha = example_3_10_formula(n);
        let vsa = compile(&alpha);
        let (disjuncts, elapsed) = timed(|| to_disjunctive_functional(&alpha, 1 << 22).unwrap());
        row(&[
            n.to_string(),
            alpha.size().to_string(),
            vsa.state_count().to_string(),
            disjuncts.len().to_string(),
            (1usize << n).to_string(),
            ms(elapsed),
        ]);
    }
    println!("\nexpected shape: the sequential representation grows linearly in n while every equivalent disjunctive-functional formula needs exactly 2^n disjuncts.");
}
