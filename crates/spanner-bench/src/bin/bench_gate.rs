//! Bench regression gate: compares a freshly measured `BENCH_*.json`
//! against a committed baseline and fails on any workload that got more
//! than 25% slower (or silently changed its mapping count).
//!
//! ```text
//! bench_gate <baseline.json> <fresh.json> [tolerance]
//! ```
//!
//! CI snapshots the committed summary before regenerating it, reruns the
//! experiment, and runs this gate over the pair — so a perf regression
//! fails the build the same way a broken test does. The experiment
//! binaries measure medians of repeated runs, and the default 25%
//! tolerance absorbs the remaining run-to-run noise of shared runners.

use spanner_bench::{gate_regressions, parse_bench_json};
use std::process::ExitCode;

const DEFAULT_TOLERANCE: f64 = 0.25;

fn load(path: &str) -> Result<Vec<spanner_bench::BenchEntry>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("bench_gate: cannot read {path}: {e}"))?;
    let entries = parse_bench_json(&text);
    if entries.is_empty() {
        return Err(format!("bench_gate: no bench entries in {path}"));
    }
    Ok(entries)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (baseline_path, fresh_path) = match args.as_slice() {
        [b, f] | [b, f, _] => (b, f),
        _ => {
            eprintln!("usage: bench_gate <baseline.json> <fresh.json> [tolerance]");
            return ExitCode::FAILURE;
        }
    };
    let tolerance = match args.get(2) {
        None => DEFAULT_TOLERANCE,
        Some(raw) => match raw.parse::<f64>() {
            Ok(t) if t >= 0.0 => t,
            _ => {
                eprintln!("bench_gate: tolerance must be a non-negative number, got `{raw}`");
                return ExitCode::FAILURE;
            }
        },
    };

    let (baseline, fresh) = match (load(baseline_path), load(fresh_path)) {
        (Ok(b), Ok(f)) => (b, f),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };

    let compared = baseline
        .iter()
        .filter(|b| fresh.iter().any(|f| f.workload == b.workload))
        .count();
    let regressions = gate_regressions(&baseline, &fresh, tolerance);
    if regressions.is_empty() {
        println!(
            "bench_gate: {compared} workloads within {:.0}% of {baseline_path}",
            tolerance * 100.0
        );
        return ExitCode::SUCCESS;
    }
    eprintln!(
        "bench_gate: {} of {compared} workloads regressed past {:.0}% vs {baseline_path}:",
        regressions.len(),
        tolerance * 100.0
    );
    for regression in &regressions {
        eprintln!("  {regression}");
    }
    ExitCode::FAILURE
}
