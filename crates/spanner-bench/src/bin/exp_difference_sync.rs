//! E8 — difference with unboundedly many common variables but a synchronized
//! right operand (Theorem 4.8 / Corollary 4.9).

use spanner_algebra::{difference_product_eval, DifferenceOptions};
use spanner_bench::{header, log_log_slope, ms, row, timed};
use spanner_core::Document;
use spanner_rgx::parse;
use spanner_vset::{compile, is_synchronized};

fn main() {
    println!("## E8 — synchronized difference (Theorem 4.8)\n");
    let opts = DifferenceOptions::default();
    header(&[
        "common vars k",
        "right operand synchronized",
        "|result|",
        "time ms",
    ]);
    let mut points = Vec::new();
    for k in (2..=12usize).step_by(2) {
        let mut left = String::new();
        let mut right = String::new();
        for i in 0..k {
            left.push_str(&format!("{{f{i}:\\d}}"));
            right.push_str(
                if i == 0 { "{f0:7}" } else { "{f_:\\d}" }
                    .replace("f_", &format!("f{i}"))
                    .as_str(),
            );
        }
        let a1 = compile(&parse(&left).unwrap());
        let a2 = compile(&parse(&right).unwrap());
        let doc = Document::new(
            (0..k)
                .map(|i| char::from_digit((i % 10) as u32, 10).unwrap())
                .collect::<String>(),
        );
        let sync = is_synchronized(&a2, a2.vars());
        let (result, elapsed) = timed(|| difference_product_eval(&a1, &a2, &doc, opts).unwrap());
        row(&[
            k.to_string(),
            sync.to_string(),
            result.len().to_string(),
            ms(elapsed),
        ]);
        points.push((k as f64, elapsed.as_secs_f64()));
    }
    println!(
        "\nempirical log-log slope of time vs k: {:.2} (polynomial despite the unbounded number of common variables)",
        log_log_slope(&points)
    );
}
