//! E7 — difference: ad-hoc compilation vs the enumerate-and-filter baseline.

use spanner_algebra::{
    difference_adhoc_eval, difference_filter, difference_product_eval, DifferenceOptions,
};
use spanner_bench::{header, ms, row, timed};
use spanner_core::Document;
use spanner_enum::count_mappings;
use spanner_rgx::parse;
use spanner_vset::compile;
use spanner_workloads::{student_records, uk_mail_extractor};

fn main() {
    let opts = DifferenceOptions::default();
    println!(
        "## E7a — realistic difference (student mails minus UK mails), Lemma 4.2 / Theorem 4.3\n"
    );
    let info = compile(&parse(r"(.*\n)?\u\l+ (\d+ )?{mail:\l+@\l+(\.\l+)+}\n.*").unwrap());
    let uk = compile(&uk_mail_extractor().unwrap());
    header(&[
        "doc bytes",
        "|result|",
        "filter ms",
        "product (T4.8) ms",
        "markers (L4.2) ms",
    ]);
    for lines in [16usize, 32, 64, 128] {
        let doc = student_records(lines, 3);
        let (r1, t_filter) = timed(|| difference_filter(&info, &uk, &doc).unwrap());
        let (r2, t_prod) = timed(|| difference_product_eval(&info, &uk, &doc, opts).unwrap());
        let (r3, t_adhoc) = timed(|| difference_adhoc_eval(&info, &uk, &doc, opts).unwrap());
        assert_eq!(r1, r2);
        assert_eq!(r1, r3);
        row(&[
            doc.len().to_string(),
            r1.len().to_string(),
            ms(t_filter),
            ms(t_prod),
            ms(t_adhoc),
        ]);
    }

    println!(
        "\n## E7b — adversarial empty difference: |VA1W(d)| is Θ(n²) but the output is empty\n"
    );
    let a1 = compile(&parse(".*{x:.*}.*").unwrap());
    let a2 = compile(&parse(".*{x:.*}.*").unwrap());
    header(&["|d|", "|VA1W(d)|", "filter ms", "product ms"]);
    for n in [16usize, 32, 64, 128, 256] {
        let doc = Document::new("ab".repeat(n / 2));
        let left_size = count_mappings(&a1, &doc, usize::MAX).unwrap();
        let (r1, t_filter) = timed(|| difference_filter(&a1, &a2, &doc).unwrap());
        let (r2, t_prod) = timed(|| difference_product_eval(&a1, &a2, &doc, opts).unwrap());
        assert!(r1.is_empty() && r2.is_empty());
        row(&[
            n.to_string(),
            left_size.to_string(),
            ms(t_filter),
            ms(t_prod),
        ]);
    }
    println!("\nexpected shape: the filter baseline scales with |VA1W(d)| (quadratic and worse), the ad-hoc constructions with the document.");
}
