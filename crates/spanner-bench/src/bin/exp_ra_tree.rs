//! E9 — extraction complexity of the Figure 2 RA tree (Theorem 5.2 / Corollary 5.3).

use spanner_algebra::{
    evaluate_ra, figure_2_tree, shared_variable_bound, Instantiation, RaOptions, SentimentSpanner,
};
use spanner_bench::{header, ms, row, timed};
use spanner_core::VarSet;
use spanner_rgx::parse;
use spanner_workloads::student_records_with_recommendations;

fn main() {
    println!("## E9 — Figure 2 query over a growing corpus\n");
    let tree = figure_2_tree(VarSet::from_iter(["student"]));
    let alpha_sm =
        parse(r"(.*\n)?(\u\l+ )?{student:\u\l+} (\d+ )?{mail:\l+@\l+(\.\l+)+}\n.*").unwrap();
    let alpha_sp = parse(r"(.*\n)?(\u\l+ )?{student:\u\l+} {phone:\d+} .*").unwrap();
    let alpha_nr = parse(r"(.*\n)?{student:\u\l+} rec {rec:[\l ]+}\n.*").unwrap();
    let regex_inst = Instantiation::new()
        .with(0, alpha_sm.clone())
        .with(1, alpha_sp.clone())
        .with(2, alpha_nr);
    let blackbox_inst = Instantiation::new()
        .with(0, alpha_sm)
        .with(1, alpha_sp)
        .with_black_box(
            2,
            SentimentSpanner::new("student", "posrec", SentimentSpanner::default_lexicon()),
        );
    println!(
        "RA tree: {tree}, shared-variable bound k = {}\n",
        shared_variable_bound(&tree, &regex_inst).unwrap()
    );
    header(&[
        "doc bytes",
        "regex leaves: |result|",
        "regex ms",
        "black-box leaf: |result|",
        "black-box ms",
    ]);
    let opts = RaOptions::default();
    for lines in [8usize, 16, 32] {
        let doc = student_records_with_recommendations(lines, 0.5, 13);
        let (r1, t1) = timed(|| evaluate_ra(&tree, &regex_inst, &doc, opts).unwrap());
        let (r2, t2) = timed(|| evaluate_ra(&tree, &blackbox_inst, &doc, opts).unwrap());
        row(&[
            doc.len().to_string(),
            r1.len().to_string(),
            ms(t1),
            r2.len().to_string(),
            ms(t2),
        ]);
    }
    println!("\nexpected shape: polynomial growth with the document for the fixed tree (extraction complexity); the black-box instantiation tracks the regex instantiation (same results, comparable cost).");
}
