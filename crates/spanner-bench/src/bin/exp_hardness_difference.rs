//! E6 — Theorem 4.1: difference nonemptiness vs DPLL on random 3-CNF.

use spanner_algebra::{difference_product_eval, DifferenceOptions};
use spanner_bench::{header, ms, row, timed};
use spanner_reductions::{difference_hardness_instance, is_satisfiable, random_3cnf};
use spanner_vset::compile;

fn main() {
    println!("## E6 — Theorem 4.1 reduction (3SAT → difference nonemptiness), d = a^n\n");
    header(&["vars", "clauses", "SAT?", "spanner ms", "DPLL ms", "agree"]);
    let opts = DifferenceOptions::default();
    for n in 2..=6usize {
        let cnf = random_3cnf(n, 4.26, 100 + n as u64);
        let (sat, t_dpll) = timed(|| is_satisfiable(&cnf));
        let instance = difference_hardness_instance(&cnf);
        let a1 = compile(&instance.gamma1);
        let a2 = compile(&instance.gamma2);
        let (diff, t_spanner) =
            timed(|| difference_product_eval(&a1, &a2, &instance.doc, opts).unwrap());
        row(&[
            n.to_string(),
            cnf.num_clauses().to_string(),
            sat.to_string(),
            ms(t_spanner),
            ms(t_dpll),
            (diff.is_empty() != sat).to_string(),
        ]);
    }
    println!("\nexpected shape: the n common variables of the operands make the ad-hoc construction exponential in n — consistent with Theorem 4.1 and the W[1]-hardness of Theorem 4.4.");
}
