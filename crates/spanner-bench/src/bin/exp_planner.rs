//! E11 — what the plan optimizer buys.
//!
//! Three measurements over the same queries evaluated as written
//! (`RaOptions::unoptimized()`) and through the planner (the default):
//! projection pushdown below a join, join-chain reordering by the
//! shared-variable bound, and the corpus engine's thread scaling with one
//! shared compiled plan. The optimized-path measurements are merged into
//! `BENCH_ql.json` (see `exp_ql`) so per-PR perf is trackable.

use spanner_algebra::{
    evaluate_ra, optimize_ra, shared_variable_bound, Instantiation, RaOptions, RaTree,
};
use spanner_bench::{header, median_of, merge_bench_json, mib_per_second, ms, row, BenchEntry};
use spanner_core::VarSet;
use spanner_corpus::{split_lines, CorpusEngine};
use spanner_rgx::parse;
use spanner_workloads::{access_log, random_text, student_records};

fn main() {
    println!("## E11 — plan optimizer and corpus engine\n");
    let mut entries = Vec::new();

    // --- Projection pushdown below a join -------------------------------
    println!("### Projection pushdown: π_student((student,mail) ⋈ (student,phone))\n");
    let push_tree = RaTree::project(
        VarSet::from_iter(["student"]),
        RaTree::join(RaTree::leaf(0), RaTree::leaf(1)),
    );
    let push_inst = Instantiation::new()
        .with(
            0,
            parse(r"(.*\n)?(\u\l+ )?{student:\u\l+} (\d+ )?{mail:\l+@\l+(\.\l+)+}\n.*").unwrap(),
        )
        .with(
            1,
            parse(r"(.*\n)?(\u\l+ )?{student:\u\l+} {phone:\d+} .*").unwrap(),
        );
    println!(
        "optimized plan: {}\n",
        optimize_ra(&push_tree, &push_inst).unwrap()
    );
    header(&["lines", "as-written ms", "optimized ms", "|result|"]);
    for lines in [16usize, 32, 64] {
        let doc = student_records(lines, 5);
        let (n1, t1) = median_of(5, || {
            evaluate_ra(&push_tree, &push_inst, &doc, RaOptions::unoptimized())
                .unwrap()
                .len()
        });
        let (n2, t2) = median_of(5, || {
            evaluate_ra(&push_tree, &push_inst, &doc, RaOptions::default())
                .unwrap()
                .len()
        });
        assert_eq!(n1, n2);
        row(&[lines.to_string(), ms(t1), ms(t2), n1.to_string()]);
        entries.push(BenchEntry::new(format!("planner/pushdown/{lines}"), t2, n2));
    }

    // --- Join reordering ------------------------------------------------
    println!("\n### Join reordering: (?0{{x}} ⋈ ?1{{y}}) ⋈ ?2{{x,y}}\n");
    let chain_tree = RaTree::join(
        RaTree::join(RaTree::leaf(0), RaTree::leaf(1)),
        RaTree::leaf(2),
    );
    let chain_inst = Instantiation::new()
        .with(0, parse(r".*(ab|ba)(ab|ba){x:b+}(ab|ba)(ab|ba).*").unwrap())
        .with(1, parse(r".*(aa|bb)(aa|bb){y:a+}(aa|bb)(aa|bb).*").unwrap())
        .with(2, parse(r".*ab{x:b+}ab.*bb{y:a+}bb.*").unwrap());
    let reordered = optimize_ra(&chain_tree, &chain_inst).unwrap();
    println!(
        "as written: {chain_tree} (bound {}), optimized: {reordered} (bound {})\n",
        shared_variable_bound(&chain_tree, &chain_inst).unwrap(),
        shared_variable_bound(&reordered, &chain_inst).unwrap(),
    );
    header(&["doc bytes", "as-written ms", "optimized ms", "|result|"]);
    for len in [60usize, 120, 240] {
        let doc = random_text(len, b"ab", 3);
        let (n1, t1) = median_of(5, || {
            evaluate_ra(&chain_tree, &chain_inst, &doc, RaOptions::unoptimized())
                .unwrap()
                .len()
        });
        let (n2, t2) = median_of(5, || {
            evaluate_ra(&chain_tree, &chain_inst, &doc, RaOptions::default())
                .unwrap()
                .len()
        });
        assert_eq!(n1, n2);
        row(&[len.to_string(), ms(t1), ms(t2), n1.to_string()]);
        entries.push(BenchEntry::new(format!("planner/reorder/{len}"), t2, n2));
    }

    // --- Corpus engine thread scaling -----------------------------------
    println!("\n### Corpus engine: shared compiled plan over an access log\n");
    let corpus = access_log(2_000, 11);
    let docs = split_lines(corpus.text());
    let engine_tree = RaTree::project(VarSet::from_iter(["path", "status"]), RaTree::leaf(0));
    let engine_inst = Instantiation::new().with(
        0,
        parse(
            r#"{ip:\d+\.\d+\.\d+\.\d+} - ({user:\l+}|-) \[[\d/]+\] "{method:\u+} {path:[\w/\.]+}" {status:\d\d\d} \d+"#,
        )
        .unwrap(),
    );
    let engine = CorpusEngine::compile(&engine_tree, &engine_inst, RaOptions::default()).unwrap();
    println!(
        "corpus: {} documents, {} bytes; plan is {}\n",
        docs.len(),
        corpus.len(),
        if engine.plan().is_static() {
            "static"
        } else {
            "dynamic"
        }
    );
    header(&["threads", "ms", "MiB/s", "mappings"]);
    for threads in [1usize, 2, 4] {
        let (stats, median) = median_of(3, || {
            engine.evaluate_with_threads(&docs, threads).unwrap().stats
        });
        row(&[
            threads.to_string(),
            ms(median),
            format!("{:.1}", mib_per_second(stats.bytes, median)),
            stats.mappings.to_string(),
        ]);
        entries.push(BenchEntry::new(
            format!("planner/corpus/t{threads}"),
            median,
            stats.mappings,
        ));
    }

    merge_bench_json("BENCH_ql.json", &entries).expect("write BENCH_ql.json");
    println!("\nwrote {} entries to BENCH_ql.json", entries.len());
}
