//! E16 — incremental evaluation: maintained query views under mutation
//! batches.
//!
//! One literal-bearing extractor over the needle corpus: a maintained
//! [`QueryView`] answers the hot re-query after a small mutation batch by
//! re-evaluating only the changed documents (plus the view bookkeeping),
//! while the cold baseline re-evaluates the whole corpus from scratch —
//! the unindexed full scan, with the cold *indexed* query reported
//! alongside for honesty about what the trigram index already saves.
//! Every hot result is asserted bit-identical to the full pass and to a
//! from-scratch store rebuild. Medians land in `BENCH_incr.json`, and the
//! ≤10-document batches on the 100k-line corpus assert the ≥10x
//! acceptance bar in-binary so CI fails loudly if delta propagation stops
//! paying.

use spanner_algebra::{Instantiation, RaOptions, RaTree};
use spanner_bench::{header, median_of, merge_bench_json, ms, row, BenchEntry};
use spanner_corpus::{CorpusEngine, QueryView};
use spanner_rgx::parse;
use spanner_store::{Mutation, Store};
use spanner_workloads::{needle_corpus, needle_line};

fn main() {
    println!("## E16 — incremental evaluation: corpus size x mutation batch\n");
    println!("needle extractor; hot = mutate batch + re-query through the view\n");

    let tree = RaTree::leaf(0);
    let inst = Instantiation::new().with(0, parse(".*needle {x:\\l+}.*").unwrap());
    let engine = CorpusEngine::compile(&tree, &inst, RaOptions::default()).unwrap();

    let mut entries = Vec::new();
    header(&[
        "lines",
        "batch",
        "hot ms",
        "cold full ms",
        "cold indexed ms",
        "speedup vs full",
        "delta docs",
    ]);
    for (lines, batch) in [
        (10_000usize, 1usize),
        (10_000, 10),
        (100_000, 1),
        (100_000, 10),
        (100_000, 100),
    ] {
        let docs = needle_corpus(lines, 10, 42);
        let mut store = Store::build(docs).expect("corpus fits u32 ids");
        let mut view = QueryView::unbounded();
        // Warm the view once (untimed): the steady state of a served
        // query is warm-with-mutations, which is what the sweep measures.
        store.query_view(&engine, &mut view, 1).unwrap();

        // Hot re-query: apply a batch of `batch` scattered updates, then
        // re-evaluate through the maintained view. The batch application
        // is inside the timing — incremental upkeep is part of the cost.
        let mut tick = 0u64;
        let (hot, t_hot) = median_of(3, || {
            for i in 0..batch as u64 {
                let id = ((tick * batch as u64 + i) * 37) % lines as u64;
                let text = needle_line((tick + i).is_multiple_of(2), 1_000 + tick * 131 + i);
                store
                    .apply(&Mutation::Update {
                        id: id as u32,
                        text: text.text().to_string(),
                    })
                    .unwrap();
            }
            tick += 1;
            store.query_view(&engine, &mut view, 1).unwrap()
        });
        assert_eq!(
            hot.delta_docs, batch,
            "a {batch}-doc batch must touch exactly {batch} documents"
        );

        let (full, t_full) = median_of(3, || {
            engine.evaluate_with_threads(store.documents(), 1).unwrap()
        });
        let (indexed, t_indexed) = median_of(3, || store.query(&engine, 1).unwrap());

        // Bit-identical: view-backed == full pass == from-scratch rebuild.
        assert_eq!(
            hot.output.results, full.results,
            "the view changed the answer at {lines} lines, batch {batch}"
        );
        let rebuilt = Store::build(store.documents().to_vec()).unwrap();
        let scratch = rebuilt.query(&engine, 1).unwrap();
        assert_eq!(
            hot.output.results, scratch.output.results,
            "mutated store diverged from a scratch rebuild at {lines} lines"
        );

        let speedup = t_full.as_secs_f64() / t_hot.as_secs_f64();
        row(&[
            lines.to_string(),
            batch.to_string(),
            ms(t_hot),
            ms(t_full),
            ms(t_indexed),
            format!("{speedup:.1}x"),
            format!("{} of {lines}", hot.delta_docs),
        ]);
        entries.push(BenchEntry::new(
            format!("incr/lines-{lines}/batch-{batch}/hot"),
            t_hot,
            hot.output.stats.mappings,
        ));
        entries.push(BenchEntry::new(
            format!("incr/lines-{lines}/batch-{batch}/coldfull"),
            t_full,
            full.stats.mappings,
        ));
        entries.push(BenchEntry::new(
            format!("incr/lines-{lines}/batch-{batch}/coldindexed"),
            t_indexed,
            indexed.output.stats.mappings,
        ));

        if lines >= 100_000 && batch <= 10 {
            // The acceptance bar: on the 100k-line corpus, the hot
            // re-query after a ≤10-doc batch beats cold full evaluation
            // by an order of magnitude.
            assert!(
                speedup >= 10.0,
                "hot re-query at {lines} lines, batch {batch} is only \
                 {speedup:.1}x over the cold full pass (bar: 10x)"
            );
        }
    }

    merge_bench_json("BENCH_incr.json", &entries).expect("write BENCH_incr.json");
    println!("\nwrote {} entries to BENCH_incr.json", entries.len());
}
