//! E13 — the physical operator executor vs. per-document recomposition.
//!
//! The executor lowers a difference-bearing plan onto compiled scans plus a
//! relational anti-join: every static subtree (including the FPT join
//! product) compiles exactly once, and per-document work is enumeration
//! plus relational operators. The baseline is the old evaluation path — the
//! ad-hoc pipeline (`compile_ra`), which re-composes the difference product
//! automaton for **every** document. Medians are merged into
//! `BENCH_exec.json` (workload name, median ns, mapping count) so per-PR
//! perf is trackable, same format and discipline as `BENCH_ql.json`.

use spanner_algebra::{compile_ra, figure_2_tree, CompiledPlan, Instantiation, RaOptions, RaTree};
use spanner_bench::{header, median_of, merge_bench_json, ms, row, BenchEntry};
use spanner_core::{Document, VarSet};
use spanner_corpus::split_lines;
use spanner_rgx::parse;
use spanner_workloads::{random_text, student_records};

/// Evaluates one document through the old per-document recomposition
/// pipeline (ad-hoc compile, then enumerate) — what `evaluate_ra` did
/// before the executor existed.
fn recompose_eval(
    tree: &RaTree,
    inst: &Instantiation,
    doc: &Document,
    options: RaOptions,
) -> usize {
    let vsa = compile_ra(tree, inst, doc, options).unwrap();
    if vsa.accepting_states().is_empty() {
        return 0;
    }
    spanner_enum::evaluate(&vsa, doc).unwrap().len()
}

fn main() {
    println!("## E13 — physical operator executor\n");
    let mut entries = Vec::new();

    // --- Difference-bearing plan over a record corpus --------------------
    // π_student((student,mail) ⋈ (student,host) \ students-with-phones):
    // the join compiles once into one scan; the difference is the dynamic
    // part the two paths treat differently.
    println!("### Difference plan: executor (compile once) vs recomposition (per line)\n");
    let tree = figure_2_tree(VarSet::from_iter(["student"]));
    let inst = Instantiation::new()
        .with(
            0,
            parse(r"(\u\l+ )?{student:\u\l+} (\d+ )?{mail:\l+@\l+(\.\l+)*}").unwrap(),
        )
        .with(
            1,
            parse(r"(\u\l+ )?{student:\u\l+} (\d+ )?\l+@{host:\l+(\.\l+)*}").unwrap(),
        )
        .with(2, parse(r"(\u\l+ )?{student:\u\l+} \d+ .*").unwrap());
    let options = RaOptions::default();
    header(&[
        "lines",
        "executor ms",
        "recompose ms",
        "speedup",
        "mappings",
    ]);
    for lines in [100usize, 300] {
        let corpus = student_records(lines, 11);
        let docs = split_lines(corpus.text());
        let plan = CompiledPlan::compile(&tree, &inst, options).unwrap();
        let (n_exec, t_exec) = median_of(5, || {
            docs.iter()
                .map(|d| plan.evaluate(d).unwrap().len())
                .sum::<usize>()
        });
        let (n_base, t_base) = median_of(3, || {
            docs.iter()
                .map(|d| recompose_eval(&tree, &inst, d, options))
                .sum::<usize>()
        });
        assert_eq!(n_exec, n_base, "the two paths must agree");
        row(&[
            lines.to_string(),
            ms(t_exec),
            ms(t_base),
            format!("{:.1}x", t_base.as_secs_f64() / t_exec.as_secs_f64()),
            n_exec.to_string(),
        ]);
        entries.push(BenchEntry::new(
            format!("exec/difference/executor/{lines}"),
            t_exec,
            n_exec,
        ));
        entries.push(BenchEntry::new(
            format!("exec/difference/recompose/{lines}"),
            t_base,
            n_base,
        ));
    }

    // --- Streaming a difference root -------------------------------------
    // New with the executor: a plan with a difference at the root streams
    // (probe side materialized once, input side enumerated lazily). Measure
    // the first-mapping delay against full materialization.
    println!("\n### Streaming with a difference root (first mapping vs full evaluate)\n");
    let stream_tree = RaTree::difference(RaTree::leaf(0), RaTree::leaf(1));
    let stream_inst = Instantiation::new()
        .with(0, parse(r".*{x:a+}.*").unwrap())
        .with(1, parse(r".*{x:aaa+}.*").unwrap());
    header(&[
        "doc bytes",
        "first mapping ms",
        "full evaluate ms",
        "mappings",
    ]);
    for len in [200usize, 400] {
        let doc = random_text(len, b"ab", 7);
        let plan = CompiledPlan::compile(&stream_tree, &stream_inst, options).unwrap();
        let (_, t_first) = median_of(5, || {
            plan.stream(&doc)
                .unwrap()
                .next()
                .expect("at least one mapping")
                .unwrap()
        });
        let (n, t_full) = median_of(5, || plan.evaluate(&doc).unwrap().len());
        row(&[len.to_string(), ms(t_first), ms(t_full), n.to_string()]);
        entries.push(BenchEntry::new(
            format!("exec/stream/first-mapping/{len}"),
            t_first,
            1,
        ));
        entries.push(BenchEntry::new(
            format!("exec/stream/evaluate/{len}"),
            t_full,
            n,
        ));
    }

    // --- Miss-heavy corpus --------------------------------------------
    // Real corpora are mostly misses: only one line in ten is a student
    // record, the rest is noise without the extractors' required factors.
    // The scan fast path should skip the noise without enumeration; the
    // baseline (fast path off) runs the full scans on every line.
    println!("\n### Miss-heavy corpus (10% student records, 90% noise lines)\n");
    let no_fast = RaOptions {
        scan_fast_path: false,
        ..options
    };
    header(&["lines", "fast ms", "no-fast-path ms", "speedup", "mappings"]);
    for lines in [200usize, 600] {
        let records = split_lines(student_records(lines / 10, 23).text());
        let docs: Vec<Document> = (0..lines)
            .map(|i| {
                if i % 10 == 0 {
                    records[i / 10].clone()
                } else {
                    random_text(60, b"xy z", 23 + i as u64)
                }
            })
            .collect();
        let plan = CompiledPlan::compile(&tree, &inst, options).unwrap();
        let base_plan = CompiledPlan::compile(&tree, &inst, no_fast).unwrap();
        let (n_fast, t_fast) = median_of(5, || {
            docs.iter()
                .map(|d| plan.evaluate(d).unwrap().len())
                .sum::<usize>()
        });
        let (n_base, t_base) = median_of(5, || {
            docs.iter()
                .map(|d| base_plan.evaluate(d).unwrap().len())
                .sum::<usize>()
        });
        assert_eq!(n_fast, n_base, "the fast path must not change the answer");
        row(&[
            lines.to_string(),
            ms(t_fast),
            ms(t_base),
            format!("{:.1}x", t_base.as_secs_f64() / t_fast.as_secs_f64()),
            n_fast.to_string(),
        ]);
        entries.push(BenchEntry::new(
            format!("exec/corpus/miss-heavy/fastpath/{lines}"),
            t_fast,
            n_fast,
        ));
        entries.push(BenchEntry::new(
            format!("exec/corpus/miss-heavy/baseline/{lines}"),
            t_base,
            n_base,
        ));
    }

    merge_bench_json("BENCH_exec.json", &entries).expect("write BENCH_exec.json");
    println!("\nwrote {} entries to BENCH_exec.json", entries.len());
}
