//! E15 — the trigram-indexed store under corpus-size and selectivity
//! sweeps.
//!
//! One literal-bearing extractor over synthetic log corpora: the indexed
//! path extracts the plan's required literals, intersects their trigram
//! posting lists, and evaluates only the candidate documents; the
//! baseline is the same engine running the unindexed full scan (static
//! prefilters included — the store has to beat the *fast* path, not a
//! strawman). Rows report how many documents each side actually touched.
//! Medians land in `BENCH_store.json`, and the selective rows (≤1% hit
//! rate) on the ≥100k-line corpus assert the ≥10x acceptance bar so CI
//! fails loudly if literal extraction or the index stops pruning.

use spanner_algebra::{Instantiation, RaOptions, RaTree};
use spanner_bench::{header, median_of, merge_bench_json, ms, row, BenchEntry};
use spanner_core::Document;
use spanner_corpus::CorpusEngine;
use spanner_rgx::parse;
use spanner_store::Store;

/// Deterministic padding over lowercase letters and spaces. The alphabet
/// includes every byte of "needle", so candidate pruning has to work on
/// whole trigrams, not on byte absence.
fn padding(len: usize, seed: u64) -> String {
    const ALPHABET: &[u8] = b"abcdefghijklmnop qrstuvwxyz ";
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ALPHABET[(state % ALPHABET.len() as u64) as usize] as char
        })
        .collect()
}

/// One corpus line: a hit embeds the needle in a short alert-shaped line,
/// a miss is a long padding-only line. (Hits are short on purpose: both
/// paths pay the same enumeration cost on every true match, so the sweep
/// isolates what the index actually saves — touching the misses.)
fn line(hit: bool, seed: u64) -> Document {
    let text = if hit {
        format!(
            "{} needle {}",
            padding(4, seed),
            padding(4, seed.wrapping_add(1))
        )
    } else {
        padding(103, seed)
    };
    Document::new(&text)
}

/// A corpus of `lines` documents where `hits_per_10k` of every 10 000
/// lines contain the needle, spread evenly.
fn corpus(lines: usize, hits_per_10k: usize, seed: u64) -> Vec<Document> {
    (0..lines)
        .map(|i| {
            let hit = hits_per_10k > 0 && (i * hits_per_10k) % 10_000 < hits_per_10k;
            line(hit, seed.wrapping_add(i as u64))
        })
        .collect()
}

fn main() {
    println!("## E15 — trigram store: corpus-size and selectivity sweep\n");
    println!("needle extractor, indexed store vs unindexed full scan (fast path on)\n");

    let tree = RaTree::leaf(0);
    let inst = Instantiation::new().with(0, parse(".*needle {x:\\l+}.*").unwrap());
    let engine = CorpusEngine::compile(&tree, &inst, RaOptions::default()).unwrap();

    let mut entries = Vec::new();
    header(&[
        "lines",
        "hit rate",
        "indexed ms",
        "full ms",
        "speedup",
        "docs touched",
        "mappings",
    ]);
    // Size sweep at 0.1% selectivity, then a selectivity sweep at the
    // 100k-line acceptance corpus (0.01% → 1% hit rate).
    for (lines, per_10k) in [
        (10_000, 10usize),
        (100_000, 1),
        (100_000, 10),
        (100_000, 100),
    ] {
        let docs = corpus(lines, per_10k, 42);
        let store = Store::build(docs.clone()).expect("corpus fits u32 ids");
        let (indexed, t_indexed) = median_of(5, || store.query(&engine, 1).unwrap());
        let (full, t_full) = median_of(5, || engine.evaluate_with_threads(&docs, 1).unwrap());
        assert_eq!(
            indexed.output.results, full.results,
            "the index changed the answer at {lines} lines, {per_10k}/10k"
        );
        let touched = indexed
            .candidates
            .expect("the needle plan must extract a usable literal");
        let speedup = t_full.as_secs_f64() / t_indexed.as_secs_f64();
        row(&[
            lines.to_string(),
            format!("{}%", per_10k as f64 / 100.0),
            ms(t_indexed),
            ms(t_full),
            format!("{speedup:.1}x"),
            format!("{touched} vs {lines}"),
            indexed.output.stats.mappings.to_string(),
        ]);
        entries.push(BenchEntry::new(
            format!("store/lines-{lines}/sel-{per_10k}per10k/indexed"),
            t_indexed,
            indexed.output.stats.mappings,
        ));
        entries.push(BenchEntry::new(
            format!("store/lines-{lines}/sel-{per_10k}per10k/fullscan"),
            t_full,
            full.stats.mappings,
        ));
        // The candidate set must actually be selective: every hit is a
        // candidate, and the set stays within ~2x of the planted rate
        // (trigram noise from the padding is the slack).
        let hits = full.stats.matched_documents;
        assert!(touched >= hits, "candidates {touched} < matches {hits}");
        assert!(
            touched <= (lines * per_10k / 10_000) * 2 + 16,
            "candidate set degenerated: {touched} of {lines} at {per_10k}/10k"
        );
        if lines >= 100_000 && per_10k <= 10 {
            // The acceptance bar: on the ≥100k-line corpus, selective
            // queries (≤0.1% of documents touched) must beat the full scan
            // by an order of magnitude. (Past that rate the shared
            // enumeration cost of the true matches — paid by both paths —
            // caps the ratio: pruning can only save the misses.)
            assert!(
                speedup >= 10.0,
                "selective sweep at {lines} lines, {per_10k}/10k is only \
                 {speedup:.1}x (bar: 10x)"
            );
        }
    }

    // Sanity: a literal-free plan falls back to the full scan and still
    // answers identically — the index never *loses* results.
    let inst = Instantiation::new().with(0, parse("{x:[ne]+}").unwrap());
    let engine = CorpusEngine::compile(&tree, &inst, RaOptions::default()).unwrap();
    let docs = corpus(2_000, 10, 7);
    let store = Store::build(docs.clone()).unwrap();
    let fallback = store.query(&engine, 1).unwrap();
    assert_eq!(fallback.candidates, None);
    let full = engine.evaluate_with_threads(&docs, 1).unwrap();
    assert_eq!(fallback.output.results, full.results);

    merge_bench_json("BENCH_store.json", &entries).expect("write BENCH_store.json");
    println!("\nwrote {} entries to BENCH_store.json", entries.len());
}
