//! E15 — the trigram-indexed store under corpus-size and selectivity
//! sweeps.
//!
//! One literal-bearing extractor over synthetic log corpora: the indexed
//! path extracts the plan's required literals, intersects their trigram
//! posting lists, and evaluates only the candidate documents; the
//! baseline is the same engine running the unindexed full scan (static
//! prefilters included — the store has to beat the *fast* path, not a
//! strawman). Rows report how many documents each side actually touched.
//! Medians land in `BENCH_store.json`, and the selective rows (≤1% hit
//! rate) on the ≥100k-line corpus assert the ≥10x acceptance bar so CI
//! fails loudly if literal extraction or the index stops pruning.

use spanner_algebra::{Instantiation, RaOptions, RaTree};
use spanner_bench::{header, median_of, merge_bench_json, ms, row, BenchEntry};
use spanner_corpus::CorpusEngine;
use spanner_rgx::parse;
use spanner_store::Store;
use spanner_workloads::needle_corpus as corpus;

fn main() {
    println!("## E15 — trigram store: corpus-size and selectivity sweep\n");
    println!("needle extractor, indexed store vs unindexed full scan (fast path on)\n");

    let tree = RaTree::leaf(0);
    let inst = Instantiation::new().with(0, parse(".*needle {x:\\l+}.*").unwrap());
    let engine = CorpusEngine::compile(&tree, &inst, RaOptions::default()).unwrap();

    let mut entries = Vec::new();
    header(&[
        "lines",
        "hit rate",
        "indexed ms",
        "full ms",
        "speedup",
        "docs touched",
        "mappings",
    ]);
    // Size sweep at 0.1% selectivity, then a selectivity sweep at the
    // 100k-line acceptance corpus (0.01% → 1% hit rate).
    for (lines, per_10k) in [
        (10_000, 10usize),
        (100_000, 1),
        (100_000, 10),
        (100_000, 100),
    ] {
        let docs = corpus(lines, per_10k, 42);
        let store = Store::build(docs.clone()).expect("corpus fits u32 ids");
        let (indexed, t_indexed) = median_of(5, || store.query(&engine, 1).unwrap());
        let (full, t_full) = median_of(5, || engine.evaluate_with_threads(&docs, 1).unwrap());
        assert_eq!(
            indexed.output.results, full.results,
            "the index changed the answer at {lines} lines, {per_10k}/10k"
        );
        let touched = indexed
            .candidates
            .expect("the needle plan must extract a usable literal");
        let speedup = t_full.as_secs_f64() / t_indexed.as_secs_f64();
        row(&[
            lines.to_string(),
            format!("{}%", per_10k as f64 / 100.0),
            ms(t_indexed),
            ms(t_full),
            format!("{speedup:.1}x"),
            format!("{touched} vs {lines}"),
            indexed.output.stats.mappings.to_string(),
        ]);
        entries.push(BenchEntry::new(
            format!("store/lines-{lines}/sel-{per_10k}per10k/indexed"),
            t_indexed,
            indexed.output.stats.mappings,
        ));
        entries.push(BenchEntry::new(
            format!("store/lines-{lines}/sel-{per_10k}per10k/fullscan"),
            t_full,
            full.stats.mappings,
        ));
        // The candidate set must actually be selective: every hit is a
        // candidate, and the set stays within ~2x of the planted rate
        // (trigram noise from the padding is the slack).
        let hits = full.stats.matched_documents;
        assert!(touched >= hits, "candidates {touched} < matches {hits}");
        assert!(
            touched <= (lines * per_10k / 10_000) * 2 + 16,
            "candidate set degenerated: {touched} of {lines} at {per_10k}/10k"
        );
        if lines >= 100_000 && per_10k <= 10 {
            // The acceptance bar: on the ≥100k-line corpus, selective
            // queries (≤0.1% of documents touched) must beat the full scan
            // by an order of magnitude. (Past that rate the shared
            // enumeration cost of the true matches — paid by both paths —
            // caps the ratio: pruning can only save the misses.)
            assert!(
                speedup >= 10.0,
                "selective sweep at {lines} lines, {per_10k}/10k is only \
                 {speedup:.1}x (bar: 10x)"
            );
        }
    }

    // Sanity: a literal-free plan falls back to the full scan and still
    // answers identically — the index never *loses* results.
    let inst = Instantiation::new().with(0, parse("{x:[ne]+}").unwrap());
    let engine = CorpusEngine::compile(&tree, &inst, RaOptions::default()).unwrap();
    let docs = corpus(2_000, 10, 7);
    let store = Store::build(docs.clone()).unwrap();
    let fallback = store.query(&engine, 1).unwrap();
    assert_eq!(fallback.candidates, None);
    let full = engine.evaluate_with_threads(&docs, 1).unwrap();
    assert_eq!(fallback.output.results, full.results);

    merge_bench_json("BENCH_store.json", &entries).expect("write BENCH_store.json");
    println!("\nwrote {} entries to BENCH_store.json", entries.len());
}
