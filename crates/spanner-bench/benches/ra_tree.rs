//! E9 — extraction complexity of a fixed RA tree (Theorem 5.2 /
//! Corollary 5.3).
//!
//! The Figure 2 query `π_{student}((mail ⋈ phone) \ rec)` is evaluated over a
//! growing student corpus, with a regex-formula recommendation leaf and with
//! a black-box sentiment leaf.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use spanner_algebra::{evaluate_ra, figure_2_tree, Instantiation, RaOptions, SentimentSpanner};
use spanner_core::VarSet;
use spanner_rgx::parse;
use spanner_workloads::student_records_with_recommendations;

fn instantiations() -> (Instantiation, Instantiation) {
    let alpha_sm =
        parse(r"(.*\n)?(\u\l+ )?{student:\u\l+} (\d+ )?{mail:\l+@\l+(\.\l+)+}\n.*").unwrap();
    let alpha_sp = parse(r"(.*\n)?(\u\l+ )?{student:\u\l+} {phone:\d+} .*").unwrap();
    let alpha_nr = parse(r"(.*\n)?{student:\u\l+} rec {rec:[\l ]+}\n.*").unwrap();
    let regex_inst = Instantiation::new()
        .with(0, alpha_sm.clone())
        .with(1, alpha_sp.clone())
        .with(2, alpha_nr);
    let blackbox_inst = Instantiation::new()
        .with(0, alpha_sm)
        .with(1, alpha_sp)
        .with_black_box(
            2,
            SentimentSpanner::new("student", "posrec", SentimentSpanner::default_lexicon()),
        );
    (regex_inst, blackbox_inst)
}

fn bench_figure_2_query(c: &mut Criterion) {
    let tree = figure_2_tree(VarSet::from_iter(["student"]));
    let (regex_inst, blackbox_inst) = instantiations();
    let opts = RaOptions::default();

    let mut group = c.benchmark_group("ra-tree/figure-2");
    group.sample_size(10);
    for lines in [4usize, 8, 16] {
        let doc = student_records_with_recommendations(lines, 0.5, 13);
        group.throughput(Throughput::Bytes(doc.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("regex-leaves", doc.len()),
            &doc,
            |b, doc| {
                b.iter(|| evaluate_ra(&tree, &regex_inst, doc, opts).unwrap().len());
            },
        );
        group.bench_with_input(
            BenchmarkId::new("blackbox-leaf", doc.len()),
            &doc,
            |b, doc| {
                b.iter(|| evaluate_ra(&tree, &blackbox_inst, doc, opts).unwrap().len());
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_figure_2_query);
criterion_main!(benches);
