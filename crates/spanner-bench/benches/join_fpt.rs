//! E3 — FPT join compilation (Lemma 3.2 / Theorem 3.3).
//!
//! Sweeps the number of shared variables k (the FPT parameter) and the
//! operand size, measuring the compilation time of the join product.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spanner_rgx::{parse, Rgx};
use spanner_vset::{compile, join, Vsa};

/// A pair of sequential operands sharing exactly `k` optional variables.
fn shared_k_pair(k: usize) -> (Vsa, Vsa) {
    let make = |tail: &str| {
        let mut pattern = String::new();
        for i in 0..k {
            pattern.push_str(&format!("({{s{i}:\\l}})?"));
        }
        pattern.push_str(tail);
        compile(&parse(&pattern).unwrap())
    };
    (make(r"{left:\d*}.*"), make(r".*{right:\d*}"))
}

fn bench_shared_variables(c: &mut Criterion) {
    let mut group = c.benchmark_group("join/shared-variables");
    group.sample_size(10);
    for k in [0usize, 1, 2, 3, 4] {
        let (a1, a2) = shared_k_pair(k);
        group.bench_with_input(BenchmarkId::from_parameter(k), &(a1, a2), |b, (a1, a2)| {
            b.iter(|| join(a1, a2).unwrap().state_count());
        });
    }
    group.finish();
}

fn bench_operand_size(c: &mut Criterion) {
    // Fixed k = 1, growing operand size (longer alternations).
    let mut group = c.benchmark_group("join/operand-size");
    group.sample_size(10);
    for blocks in [2usize, 4, 8, 16] {
        let big = |var: &str| {
            let alternation: Vec<Rgx> = (0..blocks)
                .map(|i| Rgx::literal(&format!("tok{i}")))
                .collect();
            Rgx::concat([
                Rgx::star(Rgx::union(alternation)),
                Rgx::capture(var, Rgx::Class(spanner_core::ByteClass::ascii_digit())),
                Rgx::any_string(),
            ])
        };
        let a1 = compile(&Rgx::concat([
            big("shared"),
            Rgx::capture("l", Rgx::any_string()),
        ]));
        let a2 = compile(&Rgx::concat([
            big("shared"),
            Rgx::capture("r", Rgx::any_string()),
        ]));
        group.bench_with_input(
            BenchmarkId::from_parameter(a1.state_count()),
            &(a1, a2),
            |b, (a1, a2)| {
                b.iter(|| join(a1, a2).unwrap().state_count());
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_shared_variables, bench_operand_size);
criterion_main!(benches);
