//! E8 — difference with a synchronized right operand (Theorem 4.8 /
//! Corollary 4.9).
//!
//! The number of common variables is *not* bounded here; tractability comes
//! from the right operand being synchronized for the common variables (and
//! the left operand semi-functional for them).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spanner_algebra::{difference_product_eval, DifferenceOptions};
use spanner_core::Document;
use spanner_rgx::parse;
use spanner_vset::{compile, Vsa};

/// Left operand: k functional digit captures. Right operand: the same shape
/// but with the first field pinned — synchronized for every variable.
fn pair(k: usize) -> (Vsa, Vsa) {
    let mut left = String::new();
    let mut right = String::new();
    for i in 0..k {
        left.push_str(&format!("{{f{i}:\\d}}"));
        if i == 0 {
            right.push_str("{f0:7}");
        } else {
            right.push_str(&format!("{{f{i}:\\d}}"));
        }
    }
    (
        compile(&parse(&left).unwrap()),
        compile(&parse(&right).unwrap()),
    )
}

fn digits_doc(k: usize) -> Document {
    Document::new(
        (0..k)
            .map(|i| char::from_digit((i % 10) as u32, 10).unwrap())
            .collect::<String>(),
    )
}

fn bench_common_variable_count(c: &mut Criterion) {
    let opts = DifferenceOptions::default();
    let mut group = c.benchmark_group("difference/synchronized-common-vars");
    group.sample_size(10);
    for k in [2usize, 4, 6, 8, 10, 12] {
        let (a1, a2) = pair(k);
        let doc = digits_doc(k);
        group.bench_with_input(
            BenchmarkId::from_parameter(k),
            &(a1, a2, doc),
            |b, (a1, a2, doc)| {
                b.iter(|| difference_product_eval(a1, a2, doc, opts).unwrap().len());
            },
        );
    }
    group.finish();
}

fn bench_document_scaling(c: &mut Criterion) {
    // Fixed spanners (3 common variables), growing document.
    let a1 = compile(&parse(r".*a{x:\d+}b{y:\d+}c{z:\d+}d.*").unwrap());
    let a2 = compile(&parse(r".*a{x:\d+}b{y:\d+}c{z:9\d*}d.*").unwrap());
    let opts = DifferenceOptions::default();
    let mut group = c.benchmark_group("difference/synchronized-doc-scaling");
    group.sample_size(10);
    for blocks in [4usize, 8, 16, 32] {
        let doc = Document::new(
            (0..blocks)
                .map(|i| format!("a{}b{}c{}d ", i, i * 7 % 100, 90 + i % 10))
                .collect::<String>(),
        );
        group.bench_with_input(BenchmarkId::from_parameter(doc.len()), &doc, |b, doc| {
            b.iter(|| difference_product_eval(&a1, &a2, doc, opts).unwrap().len());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_common_variable_count, bench_document_scaling);
criterion_main!(benches);
