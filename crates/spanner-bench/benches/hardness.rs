//! E2 / E6 — the NP-hardness reductions as scaling benchmarks
//! (Theorems 3.1 and 4.1).
//!
//! The spanner instances produced by the reductions are evaluated through the
//! general-purpose pipeline (FPT join + enumeration, ad-hoc difference);
//! their running time grows exponentially with the formula size, while the
//! DPLL baseline solves the same formulas directly. The numbers of variables
//! are intentionally tiny — that is the point.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spanner_algebra::{difference_product_eval, DifferenceOptions};
use spanner_reductions::{
    difference_hardness_instance, is_satisfiable, join_hardness_instance, random_3cnf,
};
use spanner_vset::nfa_accepts;
use spanner_vset::{compile, join};

fn bench_join_reduction(c: &mut Criterion) {
    let mut group = c.benchmark_group("hardness/join-reduction");
    group.sample_size(10);
    for n in [2usize, 3] {
        let cnf = random_3cnf(n, 2.0, n as u64);
        let instance = join_hardness_instance(&cnf);
        let a1 = compile(&instance.gamma1);
        let a2 = compile(&instance.gamma2);
        group.bench_with_input(
            BenchmarkId::new("spanner", n),
            &(a1, a2, instance.doc.clone()),
            |b, (a1, a2, doc)| {
                b.iter(|| {
                    let joined = join(a1, a2).unwrap();
                    nfa_accepts(&joined.project(&spanner_core::VarSet::new()), doc).unwrap()
                });
            },
        );
        group.bench_with_input(BenchmarkId::new("dpll", n), &cnf, |b, cnf| {
            b.iter(|| is_satisfiable(cnf));
        });
    }
    group.finish();
}

fn bench_difference_reduction(c: &mut Criterion) {
    let mut group = c.benchmark_group("hardness/difference-reduction");
    group.sample_size(10);
    let opts = DifferenceOptions::default();
    for n in [2usize, 3, 4, 5] {
        let cnf = random_3cnf(n, 2.0, 50 + n as u64);
        let instance = difference_hardness_instance(&cnf);
        let a1 = compile(&instance.gamma1);
        let a2 = compile(&instance.gamma2);
        group.bench_with_input(
            BenchmarkId::new("spanner", n),
            &(a1, a2, instance.doc.clone()),
            |b, (a1, a2, doc)| {
                b.iter(|| {
                    !difference_product_eval(a1, a2, doc, opts)
                        .unwrap()
                        .is_empty()
                });
            },
        );
        group.bench_with_input(BenchmarkId::new("dpll", n), &cnf, |b, cnf| {
            b.iter(|| is_satisfiable(cnf));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_join_reduction, bench_difference_reduction);
criterion_main!(benches);
