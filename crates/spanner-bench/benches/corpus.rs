//! E11 — the corpus engine and the plan optimizer.
//!
//! Two questions: (1) how does multi-document throughput scale with the
//! worker count when the compiled plan is shared across threads, and
//! (2) what does the projection-pushdown rewrite buy on a join query whose
//! operands carry private variables (the planner drops them *before* the
//! join product is built).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use spanner_algebra::{evaluate_ra, shared_variable_bound, Instantiation, RaOptions, RaTree};
use spanner_core::VarSet;
use spanner_corpus::{split_lines, CorpusEngine};
use spanner_rgx::parse;
use spanner_workloads::{access_log, random_text, student_records};

/// Per-line access-log request extractor (each corpus document is one line,
/// so no `.*\n` wrappers are needed).
fn line_request_extractor() -> spanner_rgx::Rgx {
    parse(r#"{ip:\d+\.\d+\.\d+\.\d+} - ({user:\l+}|-) \[[\d/]+\] "{method:\u+} {path:[\w/\.]+}" {status:\d\d\d} \d+"#)
        .unwrap()
}

fn bench_thread_scaling(c: &mut Criterion) {
    let corpus = access_log(600, 11);
    let docs = split_lines(corpus.text());
    let inst = Instantiation::new().with(0, line_request_extractor());
    let tree = RaTree::project(VarSet::from_iter(["path", "status"]), RaTree::leaf(0));
    let engine = CorpusEngine::compile(&tree, &inst, RaOptions::default()).unwrap();
    assert!(engine.plan().is_static());

    let mut group = c.benchmark_group("corpus/threads");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(corpus.len() as u64));
    for threads in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    engine
                        .evaluate_with_threads(&docs, threads)
                        .unwrap()
                        .stats
                        .mappings
                });
            },
        );
    }
    group.finish();
}

fn bench_projection_pushdown(c: &mut Criterion) {
    // π_{student}((student, mail) ⋈ (student, phone)): without the planner
    // the join product carries the private mail/phone variables; with it,
    // both operands are projected to {student} before the product.
    let doc = student_records(48, 5);
    let tree = RaTree::project(
        VarSet::from_iter(["student"]),
        RaTree::join(RaTree::leaf(0), RaTree::leaf(1)),
    );
    let inst = Instantiation::new()
        .with(
            0,
            parse(r"(.*\n)?(\u\l+ )?{student:\u\l+} (\d+ )?{mail:\l+@\l+(\.\l+)+}\n.*").unwrap(),
        )
        .with(
            1,
            parse(r"(.*\n)?(\u\l+ )?{student:\u\l+} {phone:\d+} .*").unwrap(),
        );

    let mut group = c.benchmark_group("corpus/planner-pushdown");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(doc.len() as u64));
    group.bench_with_input(BenchmarkId::new("as-written", doc.len()), &doc, |b, doc| {
        b.iter(|| {
            evaluate_ra(&tree, &inst, doc, RaOptions::unoptimized())
                .unwrap()
                .len()
        });
    });
    group.bench_with_input(BenchmarkId::new("optimized", doc.len()), &doc, |b, doc| {
        b.iter(|| {
            evaluate_ra(&tree, &inst, doc, RaOptions::default())
                .unwrap()
                .len()
        });
    });
    group.finish();
}

fn bench_join_reorder(c: &mut Criterion) {
    // (?0{x} ⋈ ?1{y}) ⋈ ?2{x,y}: as written, the cross product of the two
    // large single-variable extractors is built first and cannot be pruned
    // (no shared variables); the planner joins the selective two-variable
    // extractor early, which lowers the shared-variable bound from 2 to 1
    // and lets the product prune as it is generated.
    let tree = RaTree::join(
        RaTree::join(RaTree::leaf(0), RaTree::leaf(1)),
        RaTree::leaf(2),
    );
    let inst = Instantiation::new()
        .with(0, parse(r".*(ab|ba)(ab|ba){x:b+}(ab|ba)(ab|ba).*").unwrap())
        .with(1, parse(r".*(aa|bb)(aa|bb){y:a+}(aa|bb)(aa|bb).*").unwrap())
        .with(2, parse(r".*ab{x:b+}ab.*bb{y:a+}bb.*").unwrap());
    assert_eq!(shared_variable_bound(&tree, &inst).unwrap(), 2);
    let doc = random_text(120, b"ab", 3);

    let mut group = c.benchmark_group("corpus/planner-join-reorder");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(doc.len() as u64));
    group.bench_with_input(BenchmarkId::new("as-written", doc.len()), &doc, |b, doc| {
        b.iter(|| {
            evaluate_ra(&tree, &inst, doc, RaOptions::unoptimized())
                .unwrap()
                .len()
        });
    });
    group.bench_with_input(BenchmarkId::new("optimized", doc.len()), &doc, |b, doc| {
        b.iter(|| {
            evaluate_ra(&tree, &inst, doc, RaOptions::default())
                .unwrap()
                .len()
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_thread_scaling,
    bench_projection_pushdown,
    bench_join_reorder
);
criterion_main!(benches);
