//! E7 — the difference operator: ad-hoc compilations vs. the filter baseline
//! (Lemma 4.2 / Theorem 4.3).
//!
//! Two workloads:
//! * a realistic one (student mails minus UK mails) swept over the document
//!   length, and
//! * the adversarial family where `VA₁W(d)` is huge but the difference is
//!   empty — the case in which the filter baseline's total time explodes
//!   while the ad-hoc constructions stay polynomial.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spanner_algebra::{
    difference_adhoc_eval, difference_filter, difference_product_eval, DifferenceOptions,
};
use spanner_core::Document;
use spanner_rgx::parse;
use spanner_vset::compile;
use spanner_workloads::{student_records, uk_mail_extractor};

fn bench_realistic_difference(c: &mut Criterion) {
    let info = compile(&parse(r"(.*\n)?\u\l+ (\d+ )?{mail:\l+@\l+(\.\l+)+}\n.*").unwrap());
    let uk = compile(&uk_mail_extractor().unwrap());
    let opts = DifferenceOptions::default();

    let mut group = c.benchmark_group("difference/realistic");
    group.sample_size(10);
    for lines in [16usize, 32, 64] {
        let doc = student_records(lines, 3);
        group.bench_with_input(BenchmarkId::new("filter", doc.len()), &doc, |b, doc| {
            b.iter(|| difference_filter(&info, &uk, doc).unwrap().len());
        });
        group.bench_with_input(BenchmarkId::new("product", doc.len()), &doc, |b, doc| {
            b.iter(|| {
                difference_product_eval(&info, &uk, doc, opts)
                    .unwrap()
                    .len()
            });
        });
        group.bench_with_input(BenchmarkId::new("lemma42", doc.len()), &doc, |b, doc| {
            b.iter(|| difference_adhoc_eval(&info, &uk, doc, opts).unwrap().len());
        });
    }
    group.finish();
}

fn bench_adversarial_empty_difference(c: &mut Criterion) {
    // VA₁W(d) has Θ(n²) mappings; the difference is empty. The ad-hoc
    // constructions answer without enumerating the left side.
    let a1 = compile(&parse(".*{x:.*}.*").unwrap());
    let a2 = compile(&parse(".*{x:.*}.*").unwrap());
    let opts = DifferenceOptions::default();

    let mut group = c.benchmark_group("difference/adversarial-empty");
    group.sample_size(10);
    for n in [8usize, 16, 32, 64] {
        let doc = Document::new("ab".repeat(n / 2));
        group.bench_with_input(BenchmarkId::new("filter", n), &doc, |b, doc| {
            b.iter(|| difference_filter(&a1, &a2, doc).unwrap().len());
        });
        group.bench_with_input(BenchmarkId::new("product", n), &doc, |b, doc| {
            b.iter(|| difference_product_eval(&a1, &a2, doc, opts).unwrap().len());
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_realistic_difference,
    bench_adversarial_empty_difference
);
criterion_main!(benches);
