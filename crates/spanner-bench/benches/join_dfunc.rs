//! E5 — disjunctive-functional join (Proposition 3.12 / Corollary 3.13).
//!
//! Measures the pairwise join of disjunctive-functional VAs as the number of
//! functional components grows: the compilation stays polynomial (quadratic
//! in the number of components), with no dependence on the number of shared
//! variables.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spanner_rgx::parse;
use spanner_vset::{compile, join_disjunctive_functional, Vsa};

/// `count` functional components, each binding the same two variables to a
/// different digit pair.
fn components(count: usize, offset: usize) -> Vec<Vsa> {
    (0..count)
        .map(|i| {
            let a = (i + offset) % 10;
            let b = (i * 3 + offset) % 10;
            compile(&parse(&format!(".*{{x:{a}}}.*{{y:{b}}}.*")).unwrap())
        })
        .collect()
}

fn bench_component_count(c: &mut Criterion) {
    let mut group = c.benchmark_group("join/disjunctive-functional");
    group.sample_size(10);
    for count in [2usize, 4, 8, 16, 32] {
        let left = components(count, 0);
        let right = components(count, 1);
        group.bench_with_input(
            BenchmarkId::from_parameter(count),
            &(left, right),
            |b, (left, right)| {
                b.iter(|| {
                    join_disjunctive_functional(left, right)
                        .unwrap()
                        .iter()
                        .map(Vsa::state_count)
                        .sum::<usize>()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_component_count);
criterion_main!(benches);
