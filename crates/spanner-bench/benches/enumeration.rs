//! E1 — polynomial-delay enumeration (Theorem 2.5).
//!
//! Measures (a) full-result enumeration throughput as the document grows and
//! (b) the time to the first mapping (a proxy for the delay bound) as the
//! automaton grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use spanner_enum::{count_mappings, Enumerator};
use spanner_vset::compile;
use spanner_workloads::{
    random_sequential_vsa, student_info_extractor, student_records, RandomVsaConfig,
};

fn bench_document_scaling(c: &mut Criterion) {
    let vsa = compile(&student_info_extractor().unwrap());
    let mut group = c.benchmark_group("enumeration/document-scaling");
    group.sample_size(10);
    for lines in [32usize, 64, 128, 256] {
        let doc = student_records(lines, 7);
        group.throughput(Throughput::Bytes(doc.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(doc.len()), &doc, |b, doc| {
            b.iter(|| count_mappings(&vsa, doc, usize::MAX).unwrap());
        });
    }
    group.finish();
}

fn bench_first_mapping_delay(c: &mut Criterion) {
    let doc = student_records(128, 7);
    let mut group = c.benchmark_group("enumeration/first-mapping-delay");
    group.sample_size(10);
    for states in [3usize, 6, 12, 24] {
        let cfg = RandomVsaConfig {
            layers: states,
            width: 3,
            num_vars: 2,
            alphabet: b"abcdefgh ",
            ..RandomVsaConfig::default()
        };
        let vsa = random_sequential_vsa(cfg, 11);
        group.bench_with_input(
            BenchmarkId::from_parameter(vsa.state_count()),
            &vsa,
            |b, vsa| {
                b.iter(|| {
                    let mut e = Enumerator::new(vsa, &doc).unwrap();
                    e.next()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_document_scaling, bench_first_mapping_delay);
criterion_main!(benches);
