//! CNF formulas, random generation, and a DPLL satisfiability solver.
//!
//! The hardness results of the paper (Theorems 3.1, 4.1, 4.4 and
//! Proposition 4.10) are reductions from (restricted) CNF satisfiability.
//! This module provides the source side of those reductions: a CNF
//! representation, a DIMACS parser, random instance generators, and a small
//! DPLL solver used to cross-check that the reductions preserve
//! satisfiability.

use spanner_core::{SpannerError, SpannerResult};
use std::fmt;

/// A propositional literal: a 1-based variable index with a sign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Literal {
    /// 1-based variable index.
    pub var: usize,
    /// `true` for a positive literal `x`, `false` for `¬x`.
    pub positive: bool,
}

impl Literal {
    /// A positive literal.
    pub fn pos(var: usize) -> Literal {
        Literal {
            var,
            positive: true,
        }
    }

    /// A negative literal.
    pub fn neg(var: usize) -> Literal {
        Literal {
            var,
            positive: false,
        }
    }

    /// The literal's negation.
    pub fn negated(self) -> Literal {
        Literal {
            var: self.var,
            positive: !self.positive,
        }
    }

    /// Whether the literal is satisfied by the given value of its variable.
    pub fn satisfied_by(self, value: bool) -> bool {
        self.positive == value
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.positive {
            write!(f, "x{}", self.var)
        } else {
            write!(f, "¬x{}", self.var)
        }
    }
}

/// A CNF formula: a conjunction of clauses, each a disjunction of literals.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Cnf {
    /// Number of variables (indices `1..=num_vars`).
    pub num_vars: usize,
    /// The clauses.
    pub clauses: Vec<Vec<Literal>>,
}

impl Cnf {
    /// Creates a formula over `num_vars` variables with no clauses.
    pub fn new(num_vars: usize) -> Cnf {
        Cnf {
            num_vars,
            clauses: Vec::new(),
        }
    }

    /// Adds a clause.
    pub fn add_clause(&mut self, literals: impl IntoIterator<Item = Literal>) {
        let clause: Vec<Literal> = literals.into_iter().collect();
        for l in &clause {
            assert!(
                l.var >= 1 && l.var <= self.num_vars,
                "literal variable out of range"
            );
        }
        self.clauses.push(clause);
    }

    /// Number of clauses.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Whether an assignment (indexed `1..=num_vars`; index 0 unused)
    /// satisfies the formula.
    pub fn is_satisfied_by(&self, assignment: &[bool]) -> bool {
        self.clauses
            .iter()
            .all(|clause| clause.iter().any(|l| l.satisfied_by(assignment[l.var])))
    }

    /// Whether every clause has at most `k` literals.
    pub fn max_clause_width(&self) -> usize {
        self.clauses.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// The number of clauses each variable occurs in (index 0 unused).
    pub fn occurrence_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_vars + 1];
        for clause in &self.clauses {
            let mut seen = vec![false; self.num_vars + 1];
            for l in clause {
                if !seen[l.var] {
                    seen[l.var] = true;
                    counts[l.var] += 1;
                }
            }
        }
        counts
    }

    /// Parses a DIMACS CNF file.
    pub fn parse_dimacs(input: &str) -> SpannerResult<Cnf> {
        let mut num_vars = 0usize;
        let mut clauses: Vec<Vec<Literal>> = Vec::new();
        let mut current: Vec<Literal> = Vec::new();
        for line in input.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('c') || line.starts_with('%') {
                continue;
            }
            if let Some(rest) = line.strip_prefix('p') {
                let parts: Vec<&str> = rest.split_whitespace().collect();
                if parts.len() < 3 || parts[0] != "cnf" {
                    return Err(SpannerError::parse("malformed DIMACS problem line", 0));
                }
                num_vars = parts[1]
                    .parse()
                    .map_err(|_| SpannerError::parse("bad variable count", 0))?;
                continue;
            }
            for token in line.split_whitespace() {
                let value: i64 = token
                    .parse()
                    .map_err(|_| SpannerError::parse(format!("bad literal {token}"), 0))?;
                if value == 0 {
                    clauses.push(std::mem::take(&mut current));
                } else {
                    current.push(Literal {
                        var: value.unsigned_abs() as usize,
                        positive: value > 0,
                    });
                }
            }
        }
        if !current.is_empty() {
            clauses.push(current);
        }
        let max_var = clauses.iter().flatten().map(|l| l.var).max().unwrap_or(0);
        let mut cnf = Cnf::new(num_vars.max(max_var));
        for c in clauses {
            cnf.add_clause(c);
        }
        Ok(cnf)
    }

    /// Renders the formula in DIMACS format.
    pub fn to_dimacs(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(s, "p cnf {} {}", self.num_vars, self.clauses.len());
        for clause in &self.clauses {
            for l in clause {
                let v = l.var as i64;
                let _ = write!(s, "{} ", if l.positive { v } else { -v });
            }
            let _ = writeln!(s, "0");
        }
        s
    }
}

impl fmt::Display for Cnf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, clause) in self.clauses.iter().enumerate() {
            if i > 0 {
                write!(f, " ∧ ")?;
            }
            write!(f, "(")?;
            for (j, l) in clause.iter().enumerate() {
                if j > 0 {
                    write!(f, " ∨ ")?;
                }
                write!(f, "{l}")?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

/// A DPLL satisfiability solver with unit propagation.
///
/// Intended as the *baseline oracle* for the reduction experiments, not as a
/// competitive SAT solver.
pub fn dpll(cnf: &Cnf) -> Option<Vec<bool>> {
    let mut assignment: Vec<Option<bool>> = vec![None; cnf.num_vars + 1];
    if solve(cnf, &mut assignment) {
        Some(
            assignment
                .iter()
                .map(|v| v.unwrap_or(false))
                .collect::<Vec<bool>>(),
        )
    } else {
        None
    }
}

/// Whether the formula is satisfiable.
pub fn is_satisfiable(cnf: &Cnf) -> bool {
    dpll(cnf).is_some()
}

/// Whether the formula has a satisfying assignment with exactly `weight`
/// variables set to true (the W\[1\]-hard problem behind Theorem 4.4).
/// Exhaustive over subsets of the given weight — exponential, test-scale only.
pub fn has_satisfying_assignment_of_weight(cnf: &Cnf, weight: usize) -> bool {
    fn rec(cnf: &Cnf, assignment: &mut Vec<bool>, next_var: usize, remaining: usize) -> bool {
        if remaining == 0 {
            return cnf.is_satisfied_by(assignment);
        }
        if next_var > cnf.num_vars || cnf.num_vars - next_var + 1 < remaining {
            return false;
        }
        assignment[next_var] = true;
        if rec(cnf, assignment, next_var + 1, remaining - 1) {
            return true;
        }
        assignment[next_var] = false;
        rec(cnf, assignment, next_var + 1, remaining)
    }
    let mut assignment = vec![false; cnf.num_vars + 1];
    rec(cnf, &mut assignment, 1, weight)
}

fn solve(cnf: &Cnf, assignment: &mut Vec<Option<bool>>) -> bool {
    // Unit propagation.
    let mut changed = true;
    let mut trail: Vec<usize> = Vec::new();
    while changed {
        changed = false;
        for clause in &cnf.clauses {
            let mut unassigned: Option<Literal> = None;
            let mut satisfied = false;
            let mut unassigned_count = 0;
            for l in clause {
                match assignment[l.var] {
                    Some(v) if l.satisfied_by(v) => {
                        satisfied = true;
                        break;
                    }
                    Some(_) => {}
                    None => {
                        unassigned_count += 1;
                        unassigned = Some(*l);
                    }
                }
            }
            if satisfied {
                continue;
            }
            match unassigned_count {
                0 => {
                    // Conflict: undo the propagation trail.
                    for &v in &trail {
                        assignment[v] = None;
                    }
                    return false;
                }
                1 => {
                    let l = unassigned.unwrap();
                    assignment[l.var] = Some(l.positive);
                    trail.push(l.var);
                    changed = true;
                }
                _ => {}
            }
        }
    }
    // Pick a branching variable.
    let branch = (1..=cnf.num_vars).find(|&v| assignment[v].is_none());
    let Some(var) = branch else {
        let ok = cnf.is_satisfied_by(
            &assignment
                .iter()
                .map(|v| v.unwrap_or(false))
                .collect::<Vec<bool>>(),
        );
        if !ok {
            for &v in &trail {
                assignment[v] = None;
            }
        }
        return ok;
    };
    for value in [true, false] {
        assignment[var] = Some(value);
        if solve(cnf, assignment) {
            return true;
        }
        assignment[var] = None;
    }
    for &v in &trail {
        assignment[v] = None;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clause(lits: &[i64]) -> Vec<Literal> {
        lits.iter()
            .map(|&v| Literal {
                var: v.unsigned_abs() as usize,
                positive: v > 0,
            })
            .collect()
    }

    #[test]
    fn simple_sat_and_unsat() {
        // (x1 ∨ x2) ∧ (¬x1 ∨ x2) ∧ (¬x2 ∨ x1) — satisfiable by x1=x2=1.
        let mut sat = Cnf::new(2);
        sat.add_clause(clause(&[1, 2]));
        sat.add_clause(clause(&[-1, 2]));
        sat.add_clause(clause(&[-2, 1]));
        let model = dpll(&sat).expect("satisfiable");
        assert!(sat.is_satisfied_by(&model));

        // x1 ∧ ¬x1 — unsatisfiable.
        let mut unsat = Cnf::new(1);
        unsat.add_clause(clause(&[1]));
        unsat.add_clause(clause(&[-1]));
        assert!(!is_satisfiable(&unsat));
    }

    #[test]
    fn classic_unsat_pigeonhole_like() {
        // All 2^2 sign combinations over two variables — unsatisfiable.
        let mut cnf = Cnf::new(2);
        cnf.add_clause(clause(&[1, 2]));
        cnf.add_clause(clause(&[1, -2]));
        cnf.add_clause(clause(&[-1, 2]));
        cnf.add_clause(clause(&[-1, -2]));
        assert!(!is_satisfiable(&cnf));
    }

    #[test]
    fn empty_formula_and_empty_clause() {
        let empty = Cnf::new(3);
        assert!(is_satisfiable(&empty));
        let mut with_empty_clause = Cnf::new(1);
        with_empty_clause.add_clause([]);
        assert!(!is_satisfiable(&with_empty_clause));
    }

    #[test]
    fn dimacs_round_trip() {
        let text = "c example\np cnf 3 2\n1 -2 3 0\n-1 2 0\n";
        let cnf = Cnf::parse_dimacs(text).unwrap();
        assert_eq!(cnf.num_vars, 3);
        assert_eq!(cnf.num_clauses(), 2);
        let again = Cnf::parse_dimacs(&cnf.to_dimacs()).unwrap();
        assert_eq!(cnf, again);
    }

    #[test]
    fn weight_bounded_satisfiability() {
        // (x1 ∨ x2) ∧ (x3 ∨ x4): needs at least 2 true variables.
        let mut cnf = Cnf::new(4);
        cnf.add_clause(clause(&[1, 2]));
        cnf.add_clause(clause(&[3, 4]));
        assert!(!has_satisfying_assignment_of_weight(&cnf, 0));
        assert!(!has_satisfying_assignment_of_weight(&cnf, 1));
        assert!(has_satisfying_assignment_of_weight(&cnf, 2));
        assert!(has_satisfying_assignment_of_weight(&cnf, 3));
    }

    #[test]
    fn occurrence_counts_and_width() {
        let mut cnf = Cnf::new(3);
        cnf.add_clause(clause(&[1, 2, 3]));
        cnf.add_clause(clause(&[1, -1, 2]));
        assert_eq!(cnf.max_clause_width(), 3);
        let occ = cnf.occurrence_counts();
        assert_eq!(occ[1], 2);
        assert_eq!(occ[2], 2);
        assert_eq!(occ[3], 1);
    }

    #[test]
    fn exhaustive_agreement_with_brute_force_on_small_formulas() {
        // Check DPLL against brute force on every 3-var formula made of a
        // fixed clause pool.
        let pool = [
            clause(&[1, 2, 3]),
            clause(&[-1, -2]),
            clause(&[-3, 1]),
            clause(&[2, -3]),
            clause(&[-1, 3]),
        ];
        for mask in 0u32..(1 << pool.len()) {
            let mut cnf = Cnf::new(3);
            for (i, c) in pool.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    cnf.add_clause(c.clone());
                }
            }
            let brute = (0u32..8).any(|bits| {
                let assignment = vec![false, bits & 1 != 0, bits & 2 != 0, bits & 4 != 0];
                cnf.is_satisfied_by(&assignment)
            });
            assert_eq!(is_satisfiable(&cnf), brute, "mask {mask}");
        }
    }
}
