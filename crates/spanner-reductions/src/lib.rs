//! Executable hardness reductions and SAT tooling.
//!
//! The lower bounds of *Complexity Bounds for Relational Algebra over
//! Document Spanners* (PODS 2019) are reductions from propositional
//! satisfiability. This crate makes them executable:
//!
//! * [`cnf`] — CNF formulas, DIMACS I/O, a DPLL solver, and the weight-bounded
//!   satisfiability check behind Theorem 4.4;
//! * [`generator`] — random / planted / bounded-occurrence CNF generators;
//! * [`reductions`] — the constructions of Theorem 3.1 (join of sequential
//!   regex formulas), Theorem 4.1 (difference of functional regex formulas),
//!   Theorem 4.4 (W\[1\]-hardness in the number of shared variables) and
//!   Proposition 4.10 (bounded-occurrence disjunction-free difference).
//!
//! Every reduction is machine-checked in the test suite: on exhaustive small
//! and random formulas, spanner nonemptiness coincides with (weight-bounded)
//! satisfiability as decided by DPLL.

pub mod cnf;
pub mod generator;
pub mod reductions;

pub use cnf::{dpll, has_satisfying_assignment_of_weight, is_satisfiable, Cnf, Literal};
pub use generator::{bounded_occurrence_cnf, planted_3cnf, random_3cnf, random_kcnf};
pub use reductions::{
    bounded_occurrence_difference_instance, difference_hardness_instance, join_hardness_instance,
    weighted_difference_instance, DifferenceInstance, JoinInstance,
};
