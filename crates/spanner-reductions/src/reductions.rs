//! Executable hardness reductions (Theorems 3.1, 4.1, 4.4; Proposition 4.10).
//!
//! Each construction takes a CNF formula and produces regex formulas and a
//! document such that satisfiability of the formula coincides with
//! nonemptiness of a join or difference of the produced spanners. The tests
//! machine-check this equivalence against the DPLL solver, and the benchmark
//! harness (experiments E2, E6, E11) measures how quickly the resulting
//! spanner instances become infeasible — the empirical face of the paper's
//! NP-hardness results.

use crate::cnf::Cnf;
use spanner_core::{Document, SpannerError, SpannerResult};
use spanner_rgx::Rgx;
use std::collections::BTreeSet;

/// A join-nonemptiness instance `(γ₁, γ₂, d)`: `Vγ₁ ⋈ γ₂W(d) ≠ ∅` iff the
/// source formula is satisfiable.
#[derive(Debug, Clone)]
pub struct JoinInstance {
    /// The left operand (sequential, not functional).
    pub gamma1: Rgx,
    /// The right operand (sequential, not functional).
    pub gamma2: Rgx,
    /// The input document (a single letter, as in Theorem 3.1).
    pub doc: Document,
}

/// A difference-nonemptiness instance `(γ₁, γ₂, d)`: `Vγ₁ \ γ₂W(d) ≠ ∅` iff
/// the associated condition on the source formula holds (satisfiability for
/// Theorem 4.1 / Proposition 4.10, weight-`k` satisfiability for
/// Theorem 4.4).
#[derive(Debug, Clone)]
pub struct DifferenceInstance {
    /// The left operand.
    pub gamma1: Rgx,
    /// The right operand.
    pub gamma2: Rgx,
    /// The input document.
    pub doc: Document,
}

fn capture_eps(name: String) -> Rgx {
    Rgx::capture(name, Rgx::Epsilon)
}

/// The Theorem 3.1 reduction: 3SAT → nonemptiness of the join of two
/// *sequential* regex formulas over the single-letter document `a`.
pub fn join_hardness_instance(cnf: &Cnf) -> JoinInstance {
    let n = cnf.num_vars;
    let m = cnf.num_clauses();
    let var_name = |i: usize, j: usize, positive: bool| {
        format!("x{i}_{j}_{}", if positive { "t" } else { "f" })
    };

    // γ₁ = γ_{x1} ⋯ γ_{xn} · a, where γ_{xi} chooses the whole "true row" or
    // the whole "false row" of capture variables for xi.
    let mut gamma1_parts: Vec<Rgx> = Vec::with_capacity(n + 1);
    for i in 1..=n {
        let row =
            |positive: bool| Rgx::concat((1..=m).map(|j| capture_eps(var_name(i, j, positive))));
        gamma1_parts.push(Rgx::union([row(true), row(false)]));
    }
    gamma1_parts.push(Rgx::symbol(b'a'));
    let gamma1 = Rgx::concat(gamma1_parts);

    // γ₂ = a · δ₁ ⋯ δ_m, where δ_j picks a literal that satisfies clause j.
    let mut gamma2_parts: Vec<Rgx> = Vec::with_capacity(m + 1);
    gamma2_parts.push(Rgx::symbol(b'a'));
    for (j, clause) in cnf.clauses.iter().enumerate() {
        let j = j + 1;
        let literals: BTreeSet<(usize, bool)> =
            clause.iter().map(|l| (l.var, l.positive)).collect();
        gamma2_parts.push(Rgx::union(
            literals
                .into_iter()
                .map(|(i, positive)| capture_eps(var_name(i, j, positive))),
        ));
    }
    let gamma2 = Rgx::concat(gamma2_parts);

    JoinInstance {
        gamma1,
        gamma2,
        doc: Document::new("a"),
    }
}

/// The Theorem 4.1 reduction: 3SAT → nonemptiness of the difference of two
/// *functional* regex formulas over the document `aⁿ`.
pub fn difference_hardness_instance(cnf: &Cnf) -> DifferenceInstance {
    let n = cnf.num_vars;
    let var_name = |i: usize| format!("x{i}");
    // βᵢ = (xᵢ{ε}·a) ∨ xᵢ{a}: capturing ε means "false", capturing the letter
    // means "true".
    let beta = |i: usize| {
        Rgx::union([
            Rgx::concat([capture_eps(var_name(i)), Rgx::symbol(b'a')]),
            Rgx::capture(var_name(i), Rgx::symbol(b'a')),
        ])
    };
    let gamma1 = Rgx::concat((1..=n).map(beta));

    // γ₂ = ∨_j γ₂ʲ, where γ₂ʲ describes the assignments falsifying clause j.
    let mut disjuncts: Vec<Rgx> = Vec::new();
    for clause in &cnf.clauses {
        // A clause containing complementary literals cannot be falsified.
        let positive: BTreeSet<usize> = clause
            .iter()
            .filter(|l| l.positive)
            .map(|l| l.var)
            .collect();
        let negative: BTreeSet<usize> = clause
            .iter()
            .filter(|l| !l.positive)
            .map(|l| l.var)
            .collect();
        if positive.intersection(&negative).next().is_some() {
            continue;
        }
        let parts = (1..=n).map(|i| {
            if positive.contains(&i) {
                // Falsify xᵢ: capture ε.
                Rgx::concat([capture_eps(var_name(i)), Rgx::symbol(b'a')])
            } else if negative.contains(&i) {
                // Falsify ¬xᵢ: capture the letter.
                Rgx::capture(var_name(i), Rgx::symbol(b'a'))
            } else {
                beta(i)
            }
        });
        disjuncts.push(Rgx::concat(parts));
    }
    let gamma2 = Rgx::union(disjuncts);

    DifferenceInstance {
        gamma1,
        gamma2,
        doc: Document::new("a".repeat(n)),
    }
}

/// The Theorem 4.4 reduction: weight-`k` 3SAT → nonemptiness of the
/// difference of two functional regex formulas sharing only `k` variables
/// (the W\[1\]-hardness parameter).
///
/// The paper encodes document positions by unique `O(log n)`-length blocks
/// over a binary alphabet; this implementation uses one unique byte per
/// propositional variable instead (a presentation simplification that
/// preserves the structure of the reduction; it caps the number of variables
/// at 200).
pub fn weighted_difference_instance(cnf: &Cnf, k: usize) -> SpannerResult<DifferenceInstance> {
    let n = cnf.num_vars;
    if n > 200 {
        return Err(SpannerError::LimitExceeded {
            what: "variables in the Theorem 4.4 reduction",
            limit: 200,
            actual: n,
        });
    }
    let symbol_of = |i: usize| (b'0' + ((i - 1) % 10) as u8, (b'A' + ((i - 1) / 10) as u8));
    // Each position i is the two-byte block symbol_of(i); blocks are unique.
    let mut text = String::with_capacity(2 * n);
    for i in 1..=n {
        let (lo, hi) = symbol_of(i);
        text.push(hi as char);
        text.push(lo as char);
    }
    let doc = Document::new(text);

    let block = |i: usize| {
        let (lo, hi) = symbol_of(i);
        Rgx::concat([Rgx::symbol(hi), Rgx::symbol(lo)])
    };
    let block_class =
        |allowed: &dyn Fn(usize) -> bool| Rgx::union((1..=n).filter(|i| allowed(*i)).map(block));
    let any_block = block_class(&|_| true);
    let y_name = |u: usize| format!("y{u}");

    // α₁ = S* y₁{S} S* ⋯ y_k{S} S*.
    let mut alpha1_parts = vec![Rgx::star(any_block.clone())];
    for u in 1..=k {
        alpha1_parts.push(Rgx::capture(y_name(u), any_block.clone()));
        alpha1_parts.push(Rgx::star(any_block.clone()));
    }
    let alpha1 = Rgx::concat(alpha1_parts);

    // α₂ = ∨_j α_{C_j}: weight-k selections that falsify clause j.
    let mut disjuncts: Vec<Rgx> = Vec::new();
    for clause in &cnf.clauses {
        let positive: BTreeSet<usize> = clause
            .iter()
            .filter(|l| l.positive)
            .map(|l| l.var)
            .collect();
        let negative: BTreeSet<usize> = clause
            .iter()
            .filter(|l| !l.positive)
            .map(|l| l.var)
            .collect();
        if positive.intersection(&negative).next().is_some() {
            continue;
        }
        let neg: Vec<usize> = negative.iter().copied().collect();
        let allowed = |i: usize| !positive.contains(&i);
        // Choose which of the k selection variables pick up the (sorted)
        // negated-literal positions; all other selections avoid the positive
        // positions.
        for combo in increasing_sequences(k, neg.len()) {
            // Separators range over *all* blocks (unselected positions are
            // unconstrained); only the captured blocks avoid the positive
            // literals.
            let mut parts = vec![Rgx::star(any_block.clone())];
            let mut next_forced = 0usize;
            for u in 1..=k {
                if next_forced < combo.len() && combo[next_forced] == u {
                    parts.push(Rgx::capture(y_name(u), block(neg[next_forced])));
                    next_forced += 1;
                } else {
                    parts.push(Rgx::capture(y_name(u), block_class(&allowed)));
                }
                parts.push(Rgx::star(any_block.clone()));
            }
            if next_forced == combo.len() {
                disjuncts.push(Rgx::concat(parts));
            }
        }
    }
    let alpha2 = Rgx::union(disjuncts);

    Ok(DifferenceInstance {
        gamma1: alpha1,
        gamma2: alpha2,
        doc,
    })
}

/// All strictly increasing sequences of length `len` over `1..=k`.
fn increasing_sequences(k: usize, len: usize) -> Vec<Vec<usize>> {
    fn rec(k: usize, len: usize, start: usize, cur: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if cur.len() == len {
            out.push(cur.clone());
            return;
        }
        for u in start..=k {
            cur.push(u);
            rec(k, len, u + 1, cur, out);
            cur.pop();
        }
    }
    let mut out = Vec::new();
    rec(k, len, 1, &mut Vec::new(), &mut out);
    out
}

/// The Proposition 4.10 reduction: bounded-occurrence CNF (every variable in
/// at most 3 clauses, clauses of width 2 or 3) → nonemptiness of `γ₁ \ γ₂`
/// where `γ₁` is functional and disjunction-free and `γ₂` is a disjunction of
/// disjunction-free formulas, each variable occurring in at most 3 disjuncts.
pub fn bounded_occurrence_difference_instance(cnf: &Cnf) -> DifferenceInstance {
    let n = cnf.num_vars;
    let var_name = |i: usize| format!("x{i}");
    // The document is (bab)ⁿ.
    let doc = Document::new("bab".repeat(n));

    // γ₁ = (b x₁{a*} a* b) ⋯ (b xₙ{a*} a* b): capturing "a" means true,
    // capturing ε means false.
    let factor = |i: usize| {
        Rgx::concat([
            Rgx::symbol(b'b'),
            Rgx::capture(var_name(i), Rgx::star(Rgx::symbol(b'a'))),
            Rgx::star(Rgx::symbol(b'a')),
            Rgx::symbol(b'b'),
        ])
    };
    let gamma1 = Rgx::concat((1..=n).map(factor));

    // γ₂ʲ: the assignments falsifying clause j, with plain (bab) blocks at the
    // unconstrained positions (so each variable occurs only in the disjuncts
    // of the clauses that mention it).
    let mut disjuncts: Vec<Rgx> = Vec::new();
    for clause in &cnf.clauses {
        let positive: BTreeSet<usize> = clause
            .iter()
            .filter(|l| l.positive)
            .map(|l| l.var)
            .collect();
        let negative: BTreeSet<usize> = clause
            .iter()
            .filter(|l| !l.positive)
            .map(|l| l.var)
            .collect();
        if positive.intersection(&negative).next().is_some() {
            continue;
        }
        let parts = (1..=n).map(|i| {
            if positive.contains(&i) {
                // Falsify xᵢ: capture ε (the 'a' is consumed outside the capture).
                Rgx::concat([
                    Rgx::symbol(b'b'),
                    capture_eps(var_name(i)),
                    Rgx::symbol(b'a'),
                    Rgx::symbol(b'b'),
                ])
            } else if negative.contains(&i) {
                // Falsify ¬xᵢ: capture the 'a'.
                Rgx::concat([
                    Rgx::symbol(b'b'),
                    Rgx::capture(var_name(i), Rgx::symbol(b'a')),
                    Rgx::symbol(b'b'),
                ])
            } else {
                Rgx::literal("bab")
            }
        });
        disjuncts.push(Rgx::concat(parts));
    }
    let gamma2 = Rgx::union(disjuncts);

    DifferenceInstance {
        gamma1,
        gamma2,
        doc,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::{dpll, has_satisfying_assignment_of_weight, is_satisfiable, Literal};
    use spanner_rgx::{is_disjunction_free, is_functional, is_sequential, reference_eval};

    fn clause(lits: &[i64]) -> Vec<Literal> {
        lits.iter()
            .map(|&v| Literal {
                var: v.unsigned_abs() as usize,
                positive: v > 0,
            })
            .collect()
    }

    fn example_formula() -> Cnf {
        // φ = (x ∨ y ∨ z) ∧ (¬x ∨ y ∨ ¬z) — the paper's running example.
        let mut cnf = Cnf::new(3);
        cnf.add_clause(clause(&[1, 2, 3]));
        cnf.add_clause(clause(&[-1, 2, -3]));
        cnf
    }

    fn unsat_formula() -> Cnf {
        // All sign patterns over two variables.
        let mut cnf = Cnf::new(2);
        for signs in [[1, 2], [1, -2], [-1, 2], [-1, -2]] {
            cnf.add_clause(clause(&signs.map(i64::from)));
        }
        cnf
    }

    /// Evaluates nonemptiness of the join instance with the reference
    /// evaluator (small instances only).
    fn join_nonempty(instance: &JoinInstance) -> bool {
        let left = reference_eval(&instance.gamma1, &instance.doc);
        let right = reference_eval(&instance.gamma2, &instance.doc);
        !left.join(&right).is_empty()
    }

    fn difference_nonempty(instance: &DifferenceInstance) -> bool {
        let left = reference_eval(&instance.gamma1, &instance.doc);
        let right = reference_eval(&instance.gamma2, &instance.doc);
        !left.difference(&right).is_empty()
    }

    #[test]
    fn theorem_3_1_on_the_paper_example() {
        let cnf = example_formula();
        let instance = join_hardness_instance(&cnf);
        assert!(is_sequential(&instance.gamma1));
        assert!(is_sequential(&instance.gamma2));
        assert!(!is_functional(&instance.gamma1));
        assert_eq!(instance.doc.len(), 1);
        assert_eq!(join_nonempty(&instance), is_satisfiable(&cnf));
        assert!(join_nonempty(&instance));
    }

    #[test]
    fn theorem_3_1_on_unsatisfiable_input() {
        let cnf = unsat_formula();
        let instance = join_hardness_instance(&cnf);
        assert!(!join_nonempty(&instance));
    }

    #[test]
    fn theorem_4_1_on_the_paper_example() {
        let cnf = example_formula();
        let instance = difference_hardness_instance(&cnf);
        assert!(is_functional(&instance.gamma1));
        assert!(is_functional(&instance.gamma2));
        assert_eq!(instance.doc.text(), "aaa");
        assert_eq!(difference_nonempty(&instance), is_satisfiable(&cnf));
        assert!(difference_nonempty(&instance));
    }

    #[test]
    fn theorem_4_1_on_unsatisfiable_input() {
        let cnf = unsat_formula();
        let instance = difference_hardness_instance(&cnf);
        assert!(!difference_nonempty(&instance));
    }

    #[test]
    fn reductions_agree_with_dpll_on_exhaustive_small_formulas() {
        // Every subset of a pool of clauses over 3 variables.
        let pool = [
            clause(&[1, 2, 3]),
            clause(&[-1, -2, 3]),
            clause(&[-3, 2, 1]),
            clause(&[-1, -2, -3]),
            clause(&[1, -2, 3]),
        ];
        for mask in 0u32..(1 << pool.len()) {
            let mut cnf = Cnf::new(3);
            for (i, c) in pool.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    cnf.add_clause(c.clone());
                }
            }
            let sat = dpll(&cnf).is_some();
            assert_eq!(
                join_nonempty(&join_hardness_instance(&cnf)),
                sat,
                "join reduction disagrees on mask {mask}"
            );
            assert_eq!(
                difference_nonempty(&difference_hardness_instance(&cnf)),
                sat,
                "difference reduction disagrees on mask {mask}"
            );
        }
    }

    #[test]
    fn theorem_4_4_weighted_reduction() {
        // (x1 ∨ x2) ∧ (x3 ∨ x4): satisfiable with weight 2 but not weight 1.
        let mut cnf = Cnf::new(4);
        cnf.add_clause(clause(&[1, 2]));
        cnf.add_clause(clause(&[3, 4]));
        for k in 1..=3 {
            let instance = weighted_difference_instance(&cnf, k).unwrap();
            assert!(is_functional(&instance.gamma1));
            assert_eq!(
                difference_nonempty(&instance),
                has_satisfying_assignment_of_weight(&cnf, k),
                "k = {k}"
            );
        }
    }

    #[test]
    fn theorem_4_4_with_negated_literals() {
        // (¬x1 ∨ x2) ∧ (x1 ∨ ¬x3)
        let mut cnf = Cnf::new(3);
        cnf.add_clause(clause(&[-1, 2]));
        cnf.add_clause(clause(&[1, -3]));
        for k in 0..=3 {
            let instance = weighted_difference_instance(&cnf, k).unwrap();
            assert_eq!(
                difference_nonempty(&instance),
                has_satisfying_assignment_of_weight(&cnf, k),
                "k = {k}"
            );
        }
    }

    #[test]
    fn proposition_4_10_reduction_shape_and_correctness() {
        // Bounded-occurrence formula: every variable in ≤ 3 clauses.
        let mut cnf = Cnf::new(3);
        cnf.add_clause(clause(&[1, 2]));
        cnf.add_clause(clause(&[-2, 3]));
        cnf.add_clause(clause(&[-1, -3]));
        let instance = bounded_occurrence_difference_instance(&cnf);
        assert!(is_functional(&instance.gamma1));
        assert!(is_disjunction_free(&instance.gamma1));
        // Every disjunct of γ₂ is disjunction-free.
        if let Rgx::Union(parts) = &instance.gamma2 {
            for p in parts {
                assert!(is_disjunction_free(p));
            }
            // Each variable occurs in at most 3 disjuncts.
            for i in 1..=3 {
                let var: spanner_core::Variable = format!("x{i}").into();
                let count = parts.iter().filter(|p| p.vars().contains(&var)).count();
                assert!(count <= 3, "x{i} occurs in {count} disjuncts");
            }
        } else {
            panic!("γ₂ should be a union");
        }
        assert_eq!(difference_nonempty(&instance), is_satisfiable(&cnf));
    }

    #[test]
    fn proposition_4_10_unsatisfiable_instance() {
        let mut cnf = Cnf::new(2);
        cnf.add_clause(clause(&[1, 2]));
        cnf.add_clause(clause(&[1, -2]));
        cnf.add_clause(clause(&[-1, 2]));
        cnf.add_clause(clause(&[-1, -2]));
        // Variables occur 4 times here, so this is outside the strict
        // Proposition 4.10 syntax, but the reduction is still sound.
        let instance = bounded_occurrence_difference_instance(&cnf);
        assert!(!difference_nonempty(&instance));
    }

    #[test]
    fn tautological_clauses_are_ignored() {
        let mut cnf = Cnf::new(2);
        cnf.add_clause(clause(&[1, -1]));
        cnf.add_clause(clause(&[2]));
        let instance = difference_hardness_instance(&cnf);
        assert_eq!(difference_nonempty(&instance), is_satisfiable(&cnf));
        let join = join_hardness_instance(&cnf);
        assert_eq!(join_nonempty(&join), is_satisfiable(&cnf));
    }
}
