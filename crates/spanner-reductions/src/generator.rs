//! Random CNF instance generators for the hardness experiments.

use crate::cnf::{Cnf, Literal};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates a uniform random k-CNF formula with `num_vars` variables and
/// `num_clauses` clauses (each clause has `width` distinct variables with
/// random signs).
pub fn random_kcnf(num_vars: usize, num_clauses: usize, width: usize, seed: u64) -> Cnf {
    assert!(num_vars >= 1, "at least one variable is required");
    let width = width.min(num_vars);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cnf = Cnf::new(num_vars);
    for _ in 0..num_clauses {
        let mut vars = Vec::with_capacity(width);
        while vars.len() < width {
            let v = rng.gen_range(1..=num_vars);
            if !vars.contains(&v) {
                vars.push(v);
            }
        }
        cnf.add_clause(vars.into_iter().map(|v| Literal {
            var: v,
            positive: rng.gen_bool(0.5),
        }));
    }
    cnf
}

/// Generates a random 3-CNF formula at the given clause/variable ratio
/// (4.26 is near the satisfiability threshold).
pub fn random_3cnf(num_vars: usize, ratio: f64, seed: u64) -> Cnf {
    let num_clauses = (num_vars as f64 * ratio).round() as usize;
    random_kcnf(num_vars, num_clauses.max(1), 3, seed)
}

/// Generates a *satisfiable* random 3-CNF formula by planting a hidden
/// assignment: every clause is guaranteed to contain at least one literal
/// satisfied by the planted assignment.
pub fn planted_3cnf(num_vars: usize, num_clauses: usize, seed: u64) -> Cnf {
    let mut rng = StdRng::seed_from_u64(seed);
    let planted: Vec<bool> = (0..=num_vars).map(|_| rng.gen_bool(0.5)).collect();
    let mut cnf = Cnf::new(num_vars);
    for _ in 0..num_clauses {
        let mut vars = Vec::with_capacity(3);
        while vars.len() < 3.min(num_vars) {
            let v = rng.gen_range(1..=num_vars);
            if !vars.contains(&v) {
                vars.push(v);
            }
        }
        // Pick one literal to agree with the planted assignment.
        let witness = rng.gen_range(0..vars.len());
        let clause: Vec<Literal> = vars
            .iter()
            .enumerate()
            .map(|(idx, &v)| {
                let positive = if idx == witness {
                    planted[v]
                } else {
                    rng.gen_bool(0.5)
                };
                Literal { var: v, positive }
            })
            .collect();
        cnf.add_clause(clause);
    }
    cnf
}

/// Generates a CNF formula in the fragment of Proposition 4.10 (clauses of
/// width 2 or 3, every variable occurring in at most 3 clauses).
pub fn bounded_occurrence_cnf(num_vars: usize, seed: u64) -> Cnf {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cnf = Cnf::new(num_vars);
    let mut occurrences = vec![0usize; num_vars + 1];
    // Greedily add clauses while variables with spare occurrences remain.
    loop {
        let available: Vec<usize> = (1..=num_vars).filter(|&v| occurrences[v] < 3).collect();
        if available.len() < 2 {
            break;
        }
        let width = if available.len() >= 3 && rng.gen_bool(0.7) {
            3
        } else {
            2
        };
        let mut vars = Vec::with_capacity(width);
        while vars.len() < width {
            let v = available[rng.gen_range(0..available.len())];
            if !vars.contains(&v) {
                vars.push(v);
            }
        }
        for &v in &vars {
            occurrences[v] += 1;
        }
        cnf.add_clause(vars.into_iter().map(|v| Literal {
            var: v,
            positive: rng.gen_bool(0.5),
        }));
        // Stop once a reasonable density is reached.
        if cnf.num_clauses() >= num_vars {
            break;
        }
    }
    cnf
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::is_satisfiable;

    #[test]
    fn random_kcnf_shape() {
        let cnf = random_kcnf(10, 30, 3, 7);
        assert_eq!(cnf.num_vars, 10);
        assert_eq!(cnf.num_clauses(), 30);
        assert_eq!(cnf.max_clause_width(), 3);
        // Deterministic for a fixed seed.
        assert_eq!(cnf, random_kcnf(10, 30, 3, 7));
        assert_ne!(cnf, random_kcnf(10, 30, 3, 8));
    }

    #[test]
    fn planted_formulas_are_satisfiable() {
        for seed in 0..10 {
            let cnf = planted_3cnf(12, 50, seed);
            assert!(is_satisfiable(&cnf), "seed {seed}");
        }
    }

    #[test]
    fn bounded_occurrence_respects_the_limit() {
        for seed in 0..5 {
            let cnf = bounded_occurrence_cnf(15, seed);
            let occ = cnf.occurrence_counts();
            assert!(occ.iter().all(|&c| c <= 3), "seed {seed}");
            assert!(cnf.max_clause_width() <= 3);
            assert!(cnf.num_clauses() > 0);
        }
    }

    #[test]
    fn ratio_based_generator() {
        let cnf = random_3cnf(20, 4.26, 1);
        assert_eq!(cnf.num_clauses(), (20.0_f64 * 4.26).round() as usize);
    }
}
