//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the subset of the criterion 0.5 API used by the
//! `spanner-bench` benches: [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`Throughput`],
//! and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurements are real: each benchmark is warmed up, then timed over
//! `sample_size` samples, and the median per-iteration time is reported on
//! stdout in a `name/param  time: [median]` format close enough to
//! criterion's for eyeballing and for the CI smoke run. There is no
//! statistical analysis, HTML report, or saved baseline.

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], criterion-style.
pub use std::hint::black_box;

/// Throughput annotation for a benchmark group (accepted, reported as-is).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier: a function name and an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id with an explicit function name and parameter.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id that is just a parameter (the group provides the name).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// The timing driver handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `routine`, first calibrating how many iterations fit in a
    /// sample, then collecting `sample_size` samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibration: find an iteration count that takes ≳ 1 ms, capped so
        // calibration itself stays fast.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
                break;
            }
            iters *= 4;
        }
        self.iters_per_sample = iters;
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }

    fn median_ns_per_iter(&self) -> f64 {
        if self.samples.is_empty() {
            return f64::NAN;
        }
        let mut ns: Vec<f64> = self
            .samples
            .iter()
            .map(|d| d.as_nanos() as f64 / self.iters_per_sample as f64)
            .collect();
        ns.sort_by(|a, b| a.partial_cmp(b).unwrap());
        ns[ns.len() / 2]
    }
}

fn format_ns(ns: f64) -> String {
    if ns.is_nan() {
        "n/a".to_string()
    } else if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// A group of related benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Records the throughput of one iteration (reported alongside timings).
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark over an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
            iters_per_sample: 1,
        };
        f(&mut bencher, input);
        self.report(&id, &bencher);
        self
    }

    /// Runs a benchmark without a dedicated input.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
            iters_per_sample: 1,
        };
        f(&mut bencher);
        self.report(&id, &bencher);
        self
    }

    fn report(&self, id: &BenchmarkId, bencher: &Bencher) {
        let ns = bencher.median_ns_per_iter();
        let mut line = format!("{}/{:<24} time: [{}]", self.name, id, format_ns(ns));
        if let Some(tp) = self.throughput {
            let (amount, unit) = match tp {
                Throughput::Bytes(b) => (b as f64, "B"),
                Throughput::Elements(e) => (e as f64, "elem"),
            };
            if ns.is_finite() && ns > 0.0 {
                line.push_str(&format!("  thrpt: [{:.2} M{unit}/s]", amount / ns * 1e3));
            }
        }
        println!("{line}");
    }

    /// Ends the group (kept for API compatibility; reporting is immediate).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }

    /// Runs a standalone benchmark function.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group(name.to_string())
            .bench_function(BenchmarkId::from_parameter(""), f);
        self
    }
}

/// Declares a group of benchmark functions, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark entry point, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(2);
        group.throughput(Throughput::Bytes(128));
        let mut ran = false;
        group.bench_with_input(BenchmarkId::from_parameter(1), &41u32, |b, &input| {
            b.iter(|| input + 1);
            ran = true;
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn formatting_scales() {
        assert!(format_ns(5.0).ends_with("ns"));
        assert!(format_ns(5.0e3).ends_with("µs"));
        assert!(format_ns(5.0e6).ends_with("ms"));
        assert!(format_ns(5.0e9).ends_with('s'));
    }
}
