//! Offline stand-in for the `rand` crate.
//!
//! The container this workspace builds in has no access to crates.io, so the
//! small subset of the `rand 0.8` API that the workspace uses is implemented
//! here: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] over integer ranges, and [`Rng::gen_bool`].
//!
//! The generator is xoshiro256** seeded through splitmix64 — deterministic
//! across platforms, which is all the workloads and reductions need (they use
//! seeded RNGs for reproducible corpora and random automata).

/// Random number generators.
pub mod rngs {
    /// A deterministic xoshiro256** generator (stand-in for rand's `StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }
}

use rngs::StdRng;

impl StdRng {
    #[inline]
    fn next_u64_impl(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Seedable generators (subset of rand's trait of the same name).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (via splitmix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // splitmix64 to fill the state, as recommended by the xoshiro authors.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        // All-zero state would be degenerate; the splitmix expansion never
        // produces it for any seed, but guard anyway.
        let s = if s == [0; 4] { [1, 2, 3, 4] } else { s };
        StdRng { s }
    }
}

/// A type that can be sampled uniformly from a range (integer subset).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[lo, hi)`; `hi > lo`.
    fn sample_range(rng: &mut StdRng, lo: Self, hi: Self) -> Self;
    /// The successor value (for inclusive ranges).
    fn successor(self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range(rng: &mut StdRng, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                debug_assert!(span > 0);
                // Multiply-shift reduction of a 64-bit draw; bias is
                // negligible for the small spans used in this workspace.
                let r = rng.next_u64_impl() as u128;
                let offset = (r.wrapping_mul(span)) >> 64;
                (lo as i128 + offset as i128) as $t
            }
            #[inline]
            fn successor(self) -> Self {
                self + 1
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample(self, rng: &mut StdRng) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    #[inline]
    fn sample(self, rng: &mut StdRng) -> T {
        assert!(self.start < self.end, "gen_range on an empty range");
        T::sample_range(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    #[inline]
    fn sample(self, rng: &mut StdRng) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range on an empty range");
        T::sample_range(rng, lo, hi.successor())
    }
}

/// The user-facing generator trait (subset of rand's `Rng`).
pub trait Rng {
    /// The next raw 64-bit draw.
    fn next_u64(&mut self) -> u64;

    /// A uniform sample from an integer range (`lo..hi` or `lo..=hi`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>;

    /// A Bernoulli draw with success probability `p` (`0.0 ≤ p ≤ 1.0`).
    fn gen_bool(&mut self, p: f64) -> bool;
}

impl Rng for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.next_u64_impl()
    }

    #[inline]
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        // Compare a 53-bit uniform float in [0, 1) against p.
        let draw = (self.next_u64_impl() >> 11) as f64 / (1u64 << 53) as f64;
        draw < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..10);
            assert!((3..10).contains(&x));
            let y: u32 = rng.gen_range(5..=5);
            assert_eq!(y, 5);
            let z: i32 = rng.gen_range(-4..4);
            assert!((-4..4).contains(&z));
        }
    }

    #[test]
    fn bernoulli_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads = {heads}");
    }
}
