//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest 1.x API that the workspace's
//! property-based tests use: [`strategy::Strategy`] with `prop_map` and
//! `prop_recursive`, [`strategy::Just`], tuple strategies, the
//! [`prop_oneof!`] / [`proptest!`] / [`prop_assume!`] / [`prop_assert!`] /
//! [`prop_assert_eq!`] macros, [`collection::vec`], and [`ProptestConfig`].
//!
//! Semantics are simplified but honest: every test runs `cases` random
//! inputs drawn from the strategies (rejections via `prop_assume!` draw a
//! replacement, with an attempt cap), and failures panic with the standard
//! assertion message. There is no shrinking and no persisted failure seeds;
//! generation is deterministic per test binary (fixed seed), so failures are
//! reproducible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Returned (via `Err`) by [`prop_assume!`] to reject the current case.
#[derive(Debug)]
pub struct TestCaseReject;

/// Runner configuration (subset: only `cases`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Strategies: composable random-value generators.
pub mod strategy {
    use super::*;

    /// A generator of random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Applies a function to every generated value.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Builds a recursive strategy: `recurse` receives a strategy for
        /// the previous depth level and returns the strategy for the next.
        /// `_desired_size` and `_expected_branch_size` are accepted for API
        /// compatibility and ignored.
        fn prop_recursive<F, S>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S,
            S: Strategy<Value = Self::Value> + 'static,
        {
            let base = boxed(self);
            let mut current = base.clone();
            for _ in 0..depth {
                let deeper = boxed(recurse(current));
                let leaf = base.clone();
                // Mix the leaf back in so generated structures stay small.
                current = BoxedStrategy(Arc::new(move |rng: &mut StdRng| {
                    if rng.gen_bool(0.5) {
                        leaf.generate(rng)
                    } else {
                        deeper.generate(rng)
                    }
                }));
            }
            current
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T>(pub(crate) Arc<dyn Fn(&mut StdRng) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Arc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            (self.0)(rng)
        }
    }

    /// Type-erases a strategy.
    pub fn boxed<S>(s: S) -> BoxedStrategy<S::Value>
    where
        S: Strategy + 'static,
    {
        BoxedStrategy(Arc::new(move |rng: &mut StdRng| s.generate(rng)))
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between boxed alternatives ([`prop_oneof!`]).
    #[derive(Clone)]
    pub struct OneOf<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> OneOf<T> {
        /// Builds a uniform choice; panics on an empty option list.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            OneOf { options }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            let i = rng.gen_range(0..self.options.len());
            self.options[i].generate(rng)
        }
    }

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            (self.0.generate(rng), self.1.generate(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            (
                self.0.generate(rng),
                self.1.generate(rng),
                self.2.generate(rng),
            )
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::*;

    /// A length range for [`vec()`](vec()).
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    /// The result of [`vec()`](vec()).
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for vectors whose length lies in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Everything a test usually imports.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Creates a fresh deterministic RNG for one property test.
pub fn test_rng() -> StdRng {
    StdRng::seed_from_u64(0x5eed_d0c5_9a33_e701)
}

/// Uniform choice among strategies (equal weights; weights unsupported).
#[macro_export]
macro_rules! prop_oneof {
    ($($option:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![$($crate::strategy::boxed($option)),+])
    };
}

/// Rejects the current test case (draws a replacement input).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseReject);
        }
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Declares property tests: each `fn` runs `cases` random inputs drawn from
/// its strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    (@impl ($cfg:expr)
        $(
            #[test]
            fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::test_rng();
                let target = config.cases as u64;
                let max_attempts = target.saturating_mul(20).max(100);
                let mut accepted: u64 = 0;
                let mut attempts: u64 = 0;
                while accepted < target && attempts < max_attempts {
                    attempts += 1;
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::TestCaseReject> =
                        (|| { $body Ok(()) })();
                    if outcome.is_ok() {
                        accepted += 1;
                    }
                }
                assert!(
                    accepted > 0,
                    "every generated input was rejected by prop_assume!"
                );
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn just_and_map() {
        let mut rng = crate::test_rng();
        let s = Just(21).prop_map(|x| x * 2);
        assert_eq!(s.generate(&mut rng), 42);
    }

    #[test]
    fn oneof_hits_every_option() {
        let mut rng = crate::test_rng();
        let s = prop_oneof![Just(1), Just(2), Just(3)];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[s.generate(&mut rng)] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn recursive_strategies_terminate() {
        let mut rng = crate::test_rng();
        let s = Just(1u64).prop_recursive(4, 16, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| a + b)
        });
        for _ in 0..100 {
            assert!(s.generate(&mut rng) >= 1);
        }
    }

    #[test]
    fn vec_lengths_respect_range() {
        let mut rng = crate::test_rng();
        let s = crate::collection::vec(Just('a'), 0..=5);
        for _ in 0..100 {
            assert!(s.generate(&mut rng).len() <= 5);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_roundtrip(x in Just(5usize), ys in crate::collection::vec(Just(1usize), 1..=3)) {
            prop_assume!(x == 5);
            prop_assert!(ys.len() <= 3);
            prop_assert_eq!(x, 5);
        }
    }
}
