//! The HTTP/1.1 front end.
//!
//! The same operations as the line-JSON protocol, behind a std-only
//! HTTP/1.1 server running on the existing connection-worker pool — no
//! async runtime, no HTTP dependency. Every endpoint translates its
//! request into the exact [`Request`] the line protocol would decode and
//! funnels through the server's `dispatch_request`, so the two transports share one
//! validation path, one dispatch, one set of per-op metrics, and (on a
//! router front end) one fan-out.
//!
//! | method & path | op | notes |
//! |---|---|---|
//! | `GET /healthz` | — | liveness: `{"ok":true,"uptime_s":…}` |
//! | `GET /metrics` | `metrics` | Prometheus text exposition |
//! | `GET\|POST /v1/stats` | `stats` | counters as JSON |
//! | `POST /v1/prepare` | `prepare` | body: `{"program":…}` |
//! | `POST /v1/query` | `query` | body: `{"program":…,"doc":…}` |
//! | `POST /v1/explain` | `explain` | body: `{"program":…,"analyze"?,"doc"?}` |
//! | `POST /v1/query_corpus` | `query_corpus` | **chunked** streaming response |
//! | `POST /v1/corpus` | `load_corpus` | body: raw text, or JSON with `Content-Type: application/json` |
//! | `POST /v1/corpus/append` | `append_docs` | like `/v1/corpus` |
//! | `POST /v1/corpus/update` | `update_doc` | body: `{"line":…,"text":…}` |
//! | `POST /v1/corpus/delete` | `delete_docs` | body: `{"lines":[…]}` |
//! | `POST /v1/shutdown` | `shutdown` | drain and exit |
//!
//! Hostile-input containment mirrors the line transport: the request
//! head is read through [`ServeOptions::max_head_bytes`] (`431` past
//! it), bodies through [`ServeOptions::max_body_bytes`] (`413`, without
//! reading the body), a `POST` without `Content-Length` is `411`, and
//! the idle/slow-drip deadline ([`ServeOptions::idle_timeout`]) applies
//! to head and body reads alike. Connections are keep-alive by default
//! (HTTP/1.1) and honor `Connection: close`.
//!
//! Error responses carry the protocol's JSON error body: a plain error
//! (bad program, bad field) is `400`; a router *degraded* response
//! (`"degraded": true` — a backend shard stayed unreachable) is `503`.
//!
//! `POST /v1/query_corpus` streams its response with
//! `Transfer-Encoding: chunked`, one chunk per matched document, and the
//! reassembled body is **byte-identical** to the line-protocol response
//! for the same request — pinned by the HTTP conformance tests.

use crate::json::Json;
use crate::protocol::{error_response, Request};
#[cfg_attr(not(doc), allow(unused_imports))] // doc links only
use crate::server::ServeOptions;
use crate::server::{dispatch_request, initiate_shutdown, Shared, POLL_INTERVAL};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::Ordering;
use std::time::Instant;

/// A parsed request head.
struct Head {
    method: String,
    /// The path, query string stripped.
    path: String,
    /// `false` for HTTP/1.0 (keep-alive off by default).
    http11: bool,
    /// Header name/value pairs, names lowercased.
    headers: Vec<(String, String)>,
}

impl Head {
    /// The first value of `name` (lowercase), if present.
    fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the connection should stay open after the response.
    fn keep_alive(&self) -> bool {
        match self.header("connection").map(str::to_ascii_lowercase) {
            Some(v) if v.contains("close") => false,
            Some(v) if v.contains("keep-alive") => true,
            _ => self.http11,
        }
    }

    /// The declared body length; `Err` marks an unparseable value.
    fn content_length(&self) -> Result<Option<usize>, ()> {
        match self.header("content-length") {
            None => Ok(None),
            Some(v) => v.trim().parse::<usize>().map(Some).map_err(|_| ()),
        }
    }
}

/// Outcome of reading one request head.
enum HeadRead {
    Head(Vec<u8>),
    /// Head exceeded [`ServeOptions::max_head_bytes`].
    TooLarge,
    /// EOF, idle deadline, or shutdown while reading.
    Closed,
}

/// Serves one HTTP connection until close, idle timeout, or shutdown.
pub(crate) fn handle_http_connection(stream: TcpStream, shared: &Shared) -> io::Result<()> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(POLL_INTERVAL))?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    loop {
        let head_bytes = match read_head(&mut reader, shared)? {
            HeadRead::Closed => return Ok(()),
            HeadRead::TooLarge => {
                let body = error_response(format!(
                    "request head exceeds the {}-byte limit",
                    shared.options.max_head_bytes
                ));
                shared
                    .metrics
                    .record_request("invalid", std::time::Duration::ZERO, &body);
                // The unread rest of the head is unframed garbage: close.
                return write_json(&mut writer, shared, 431, &body, false);
            }
            HeadRead::Head(bytes) => bytes,
        };
        let started = Instant::now();
        shared.metrics.bytes_read.add(head_bytes.len() as u64);
        let head = match parse_head(&head_bytes) {
            Ok(head) => head,
            Err(message) => {
                let body = error_response(message);
                shared
                    .metrics
                    .record_request("invalid", started.elapsed(), &body);
                // A malformed head leaves the stream unframed: close.
                return write_json(&mut writer, shared, 400, &body, false);
            }
        };
        if head.header("transfer-encoding").is_some() {
            // Request bodies must be length-framed; chunked requests are
            // out of scope (the server streams chunked *responses* only).
            let body = error_response("chunked request bodies are not supported");
            shared
                .metrics
                .record_request("invalid", started.elapsed(), &body);
            return write_json(&mut writer, shared, 501, &body, false);
        }
        let keep_alive = head.keep_alive();
        // Read the body (if any) before routing, so even a 404/405
        // response leaves the connection correctly framed for reuse.
        let declared = match head.content_length() {
            Ok(len) => len,
            Err(()) => {
                let body = error_response("unparseable Content-Length");
                shared
                    .metrics
                    .record_request("invalid", started.elapsed(), &body);
                return write_json(&mut writer, shared, 400, &body, false);
            }
        };
        let body_bytes = match declared {
            None => Vec::new(),
            Some(len) if len > shared.options.max_body_bytes => {
                let body = error_response(format!(
                    "request body of {len} bytes exceeds the {}-byte limit",
                    shared.options.max_body_bytes
                ));
                shared
                    .metrics
                    .record_request("invalid", started.elapsed(), &body);
                // The body was never read: the stream is unframed; close.
                return write_json(&mut writer, shared, 413, &body, false);
            }
            Some(len) => {
                if head
                    .header("expect")
                    .is_some_and(|v| v.eq_ignore_ascii_case("100-continue"))
                {
                    writer.write_all(b"HTTP/1.1 100 Continue\r\n\r\n")?;
                }
                match read_body(&mut reader, len, shared)? {
                    Some(bytes) => bytes,
                    None => return Ok(()), // EOF / idle deadline mid-body
                }
            }
        };
        shared.metrics.bytes_read.add(body_bytes.len() as u64);
        let outcome = route(shared, &head, &body_bytes, started);
        match outcome {
            Routed::Simple {
                status,
                body,
                content_type,
            } => {
                let close = !keep_alive || status == 503;
                write_response(&mut writer, shared, status, &content_type, &body, !close)?;
                if close {
                    return Ok(());
                }
            }
            Routed::Json { status, body } => {
                write_json(&mut writer, shared, status, &body, keep_alive)?;
                if !keep_alive {
                    return Ok(());
                }
            }
            Routed::CorpusStream { response } => {
                write_corpus_chunked(&mut writer, shared, &response, keep_alive)?;
                if !keep_alive {
                    return Ok(());
                }
            }
            Routed::Shutdown { body } => {
                // Answer, then drain: mirror the line transport's
                // shutdown sequencing.
                write_json(&mut writer, shared, 200, &body, false)?;
                initiate_shutdown(shared);
                return Ok(());
            }
        }
    }
}

/// What the router decided to send back.
enum Routed {
    /// A non-JSON (or pre-rendered) response body.
    Simple {
        status: u16,
        content_type: String,
        body: Vec<u8>,
    },
    /// A protocol JSON response.
    Json { status: u16, body: Json },
    /// A successful `query_corpus` response, streamed chunked.
    CorpusStream { response: Json },
    /// A `shutdown` acknowledged; drain after writing.
    Shutdown { body: Json },
}

/// Maps a path to its protocol op, for `POST` endpoints.
fn post_op(path: &str) -> Option<&'static str> {
    match path {
        "/v1/prepare" => Some("prepare"),
        "/v1/query" => Some("query"),
        "/v1/explain" => Some("explain"),
        "/v1/query_corpus" => Some("query_corpus"),
        "/v1/corpus" => Some("load_corpus"),
        "/v1/corpus/append" => Some("append_docs"),
        "/v1/corpus/update" => Some("update_doc"),
        "/v1/corpus/delete" => Some("delete_docs"),
        "/v1/stats" => Some("stats"),
        "/v1/shutdown" => Some("shutdown"),
        _ => None,
    }
}

/// Routes one framed request to a response, recording per-op metrics
/// exactly like the line transport.
fn route(shared: &Shared, head: &Head, body: &[u8], started: Instant) -> Routed {
    match (head.method.as_str(), head.path.as_str()) {
        ("GET", "/healthz") => Routed::Json {
            status: 200,
            body: Json::object([
                ("ok", Json::Bool(true)),
                (
                    "uptime_s",
                    Json::Number(shared.started.elapsed().as_secs_f64()),
                ),
            ]),
        },
        ("GET", "/metrics") => {
            shared.metrics.begin_request("metrics");
            let text = shared.render_metrics();
            shared.metrics.finish_request(
                "metrics",
                started.elapsed(),
                &Json::object([("ok", Json::Bool(true))]),
            );
            Routed::Simple {
                status: 200,
                content_type: "text/plain; version=0.0.4; charset=utf-8".to_string(),
                body: text.into_bytes(),
            }
        }
        ("GET", "/v1/stats") => dispatch(shared, "stats", Json::object::<&str>([]), started),
        ("POST", path) => match post_op(path) {
            None => not_found(shared, started),
            Some(op) => match body_to_fields(head, body, op) {
                Err(message) => {
                    let body = error_response(message);
                    shared
                        .metrics
                        .record_request("invalid", started.elapsed(), &body);
                    Routed::Json { status: 400, body }
                }
                Ok(fields) => dispatch(shared, op, fields, started),
            },
        },
        (_, path)
            if path == "/healthz"
                || path == "/metrics"
                || path == "/v1/stats"
                || post_op(path).is_some() =>
        {
            // Known path, wrong method.
            let allow = match path {
                "/healthz" | "/metrics" => "GET",
                "/v1/stats" => "GET, POST",
                _ => "POST",
            };
            let body = error_response(format!(
                "method {} not allowed (allow: {allow})",
                head.method
            ));
            shared
                .metrics
                .record_request("invalid", started.elapsed(), &body);
            Routed::Simple {
                status: 405,
                content_type: format!("application/json\r\nAllow: {allow}"),
                body: body.to_string().into_bytes(),
            }
        }
        _ => not_found(shared, started),
    }
}

/// The 404 response.
fn not_found(shared: &Shared, started: Instant) -> Routed {
    let body = error_response("no such endpoint");
    shared
        .metrics
        .record_request("invalid", started.elapsed(), &body);
    Routed::Json { status: 404, body }
}

/// Decodes a request body into the fields object the op expects: JSON
/// endpoints must carry a JSON object; the corpus ingest endpoints
/// accept raw text unless `Content-Type` says JSON, so
/// `curl --data-binary @corpus.txt` works without escaping.
fn body_to_fields(head: &Head, body: &[u8], op: &'static str) -> Result<Json, String> {
    let is_json = head
        .header("content-type")
        .is_some_and(|v| v.to_ascii_lowercase().contains("json"));
    if matches!(op, "load_corpus" | "append_docs") && !is_json {
        let text = String::from_utf8_lossy(body).into_owned();
        return Ok(Json::object([("text", Json::string(text))]));
    }
    if body.is_empty() {
        return Ok(Json::object::<&str>([]));
    }
    let text = std::str::from_utf8(body).map_err(|_| "request body is not UTF-8".to_string())?;
    let value = Json::parse(text).map_err(|e| e.to_string())?;
    match value {
        Json::Object(_) => Ok(value),
        _ => Err("request body must be a JSON object".to_string()),
    }
}

/// Inserts the op, re-decodes through [`Request::parse`] (one validation
/// path for both transports), dispatches, and maps the protocol response
/// to an HTTP status.
fn dispatch(shared: &Shared, op: &'static str, fields: Json, started: Instant) -> Routed {
    let Json::Object(mut pairs) = fields else {
        unreachable!("body_to_fields always yields an object");
    };
    pairs.retain(|(k, _)| k != "op");
    pairs.insert(0, ("op".to_string(), Json::string(op)));
    let line = Json::Object(pairs).to_string();
    match Request::parse(&line) {
        Err(message) => {
            let body = error_response(message);
            shared
                .metrics
                .record_request("invalid", started.elapsed(), &body);
            Routed::Json { status: 400, body }
        }
        Ok(request) => {
            let shutdown = request == Request::Shutdown;
            let streaming = matches!(request, Request::QueryCorpus { .. });
            shared.metrics.begin_request(op);
            let response = dispatch_request(shared, request);
            shared
                .metrics
                .finish_request(op, started.elapsed(), &response);
            let ok = response.get("ok").and_then(Json::as_bool) == Some(true);
            if shutdown && ok {
                return Routed::Shutdown { body: response };
            }
            if !ok {
                let degraded = response.get("degraded").and_then(Json::as_bool) == Some(true);
                return Routed::Json {
                    status: if degraded { 503 } else { 400 },
                    body: response,
                };
            }
            if streaming {
                return Routed::CorpusStream { response };
            }
            Routed::Json {
                status: 200,
                body: response,
            }
        }
    }
}

/// The reason phrase for the statuses this server produces.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        411 => "Length Required",
        413 => "Content Too Large",
        431 => "Request Header Fields Too Large",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes one JSON response.
fn write_json(
    writer: &mut TcpStream,
    shared: &Shared,
    status: u16,
    body: &Json,
    keep_alive: bool,
) -> io::Result<()> {
    write_response(
        writer,
        shared,
        status,
        "application/json",
        body.to_string().as_bytes(),
        keep_alive,
    )
}

/// Writes one length-framed response with a single syscall (same
/// rationale as the line transport's `write_response`).
fn write_response(
    writer: &mut TcpStream,
    shared: &Shared,
    status: u16,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
) -> io::Result<()> {
    let mut out = Vec::with_capacity(body.len() + 160);
    out.extend_from_slice(
        format!(
            "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
            reason(status),
            body.len(),
            if keep_alive { "keep-alive" } else { "close" },
        )
        .as_bytes(),
    );
    out.extend_from_slice(body);
    shared.metrics.bytes_written.add(out.len() as u64);
    record_status(shared, status);
    writer.write_all(&out)
}

/// Records the status-class counter.
fn record_status(shared: &Shared, status: u16) {
    let class = (status / 100) as usize;
    if (2..=5).contains(&class) {
        shared.metrics.http_classes[class - 2].inc();
    }
}

/// Streams a successful `query_corpus` response with chunked transfer
/// encoding: one chunk for everything before the `results` array, one
/// chunk per result entry, one closing chunk. The protocol response puts
/// `results` last (see `corpus_response`), so the reassembled body is
/// byte-identical to the line-protocol response — pinned by the HTTP
/// conformance tests. Chunks are coalesced into ~32 KiB writes.
fn write_corpus_chunked(
    writer: &mut TcpStream,
    shared: &Shared,
    response: &Json,
    keep_alive: bool,
) -> io::Result<()> {
    let Json::Object(fields) = response else {
        // Not the expected shape; fall back to a plain response.
        return write_json(writer, shared, 200, response, keep_alive);
    };
    let Some(("results", Json::Array(results))) = fields.last().map(|(k, v)| (k.as_str(), v))
    else {
        return write_json(writer, shared, 200, response, keep_alive);
    };
    let mut head = Json::Object(fields[..fields.len() - 1].to_vec()).to_string();
    head.pop(); // strip '}' — the results array reopens the object
    head.push_str(",\"results\":[");

    let mut out = Vec::with_capacity(64 << 10);
    out.extend_from_slice(
        format!(
            "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nTransfer-Encoding: chunked\r\nConnection: {}\r\n\r\n",
            if keep_alive { "keep-alive" } else { "close" },
        )
        .as_bytes(),
    );
    let mut written = 0u64;
    let chunk = |out: &mut Vec<u8>, data: &str| {
        out.extend_from_slice(format!("{:x}\r\n", data.len()).as_bytes());
        out.extend_from_slice(data.as_bytes());
        out.extend_from_slice(b"\r\n");
    };
    chunk(&mut out, &head);
    for (i, entry) in results.iter().enumerate() {
        let rendered = if i == 0 {
            entry.to_string()
        } else {
            format!(",{entry}")
        };
        chunk(&mut out, &rendered);
        if out.len() >= 32 << 10 {
            written += out.len() as u64;
            writer.write_all(&out)?;
            out.clear();
        }
    }
    chunk(&mut out, "]}");
    out.extend_from_slice(b"0\r\n\r\n");
    written += out.len() as u64;
    writer.write_all(&out)?;
    shared.metrics.bytes_written.add(written);
    record_status(shared, 200);
    Ok(())
}

/// Reads one request head (request line + headers, through the blank
/// line), enforcing [`ServeOptions::max_head_bytes`] and the idle/
/// slow-drip deadline, polling the shutdown flag while idle. Consumes
/// only up to the head terminator, so pipelined bytes stay buffered for
/// the next request.
fn read_head(reader: &mut BufReader<TcpStream>, shared: &Shared) -> io::Result<HeadRead> {
    let cap = shared.options.max_head_bytes;
    let mut buf: Vec<u8> = Vec::new();
    let started = Instant::now();
    loop {
        if started.elapsed() >= shared.options.idle_timeout {
            return Ok(HeadRead::Closed);
        }
        let chunk = match reader.fill_buf() {
            Ok(chunk) => chunk,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return Ok(HeadRead::Closed);
                }
                continue;
            }
            Err(e) => return Err(e),
        };
        if chunk.is_empty() {
            // EOF: a partial head is dropped silently (nothing to frame
            // a response for); between requests this is a clean close.
            return Ok(HeadRead::Closed);
        }
        // Find the head terminator in the window spanning the buffered
        // tail and this chunk, accepting both CRLFCRLF and bare LFLF.
        let tail = buf.len().min(3);
        let mut window = Vec::with_capacity(tail + chunk.len());
        window.extend_from_slice(&buf[buf.len() - tail..]);
        window.extend_from_slice(chunk);
        let crlf = find(&window, b"\r\n\r\n").map(|p| p + 4);
        let lf = find(&window, b"\n\n").map(|p| p + 2);
        let end = match (crlf, lf) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        match end {
            // The terminator must end inside this chunk (a terminator
            // fully inside `buf` would have been found last iteration).
            Some(end) if end > tail => {
                let take = end - tail;
                buf.extend_from_slice(&chunk[..take]);
                reader.consume(take);
                if buf.len() > cap {
                    return Ok(HeadRead::TooLarge);
                }
                return Ok(HeadRead::Head(buf));
            }
            _ => {
                let take = chunk.len();
                buf.extend_from_slice(chunk);
                reader.consume(take);
                if buf.len() > cap {
                    return Ok(HeadRead::TooLarge);
                }
            }
        }
    }
}

/// First occurrence of `needle` in `haystack`.
fn find(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack
        .windows(needle.len())
        .position(|window| window == needle)
}

/// Reads exactly `len` body bytes under the idle deadline; `None` on
/// EOF, deadline, or shutdown (the connection just closes — there is no
/// way to frame a response on a half-sent body).
fn read_body(
    reader: &mut BufReader<TcpStream>,
    len: usize,
    shared: &Shared,
) -> io::Result<Option<Vec<u8>>> {
    let mut buf = Vec::with_capacity(len.min(1 << 20));
    let started = Instant::now();
    while buf.len() < len {
        if started.elapsed() >= shared.options.idle_timeout {
            return Ok(None);
        }
        let chunk = match reader.fill_buf() {
            Ok(chunk) => chunk,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return Ok(None);
                }
                continue;
            }
            Err(e) => return Err(e),
        };
        if chunk.is_empty() {
            return Ok(None);
        }
        let take = chunk.len().min(len - buf.len());
        buf.extend_from_slice(&chunk[..take]);
        reader.consume(take);
    }
    Ok(Some(buf))
}

/// Parses a head's bytes into method, path, version, and headers.
fn parse_head(bytes: &[u8]) -> Result<Head, String> {
    let text = std::str::from_utf8(bytes).map_err(|_| "request head is not UTF-8".to_string())?;
    let mut lines = text.split('\n').map(|l| l.strip_suffix('\r').unwrap_or(l));
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_ascii_whitespace();
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(format!("malformed request line `{request_line}`"));
    };
    if parts.next().is_some() {
        return Err(format!("malformed request line `{request_line}`"));
    }
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        other => return Err(format!("unsupported protocol version `{other}`")),
    };
    let path = target.split('?').next().unwrap_or("").to_string();
    if !path.starts_with('/') {
        return Err(format!("unsupported request target `{target}`"));
    }
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(format!("malformed header line `{line}`"));
        };
        if name.is_empty() || name.contains(' ') {
            return Err(format!("malformed header name `{name}`"));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }
    Ok(Head {
        method: method.to_string(),
        path,
        http11,
        headers,
    })
}

// ---------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------

/// A decoded HTTP response.
#[derive(Debug)]
pub struct HttpResponse {
    /// The status code.
    pub status: u16,
    /// Header name/value pairs, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The response body (chunked bodies reassembled).
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// The first value of header `name` (lowercase).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 text.
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }

    /// The body parsed as JSON.
    pub fn json(&self) -> io::Result<Json> {
        Json::parse(&self.text()).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad response body: {e}"),
            )
        })
    }
}

/// A small synchronous HTTP/1.1 client with keep-alive: one
/// [`HttpClient`] holds one persistent connection and reuses it across
/// requests (the connection-reuse regression test drives a burst through
/// one client and asserts the server accepted exactly one connection).
/// Reassembles chunked responses, so `POST /v1/query_corpus` round-trips
/// to the same JSON the line protocol returns.
pub struct HttpClient {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl HttpClient {
    /// Connects to an HTTP front end.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<HttpClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(HttpClient { stream, reader })
    }

    /// Sends a `GET`.
    pub fn get(&mut self, path: &str) -> io::Result<HttpResponse> {
        self.request("GET", path, None)
    }

    /// Sends a `POST` with a JSON body.
    pub fn post_json(&mut self, path: &str, body: &Json) -> io::Result<HttpResponse> {
        self.request(
            "POST",
            path,
            Some(("application/json", body.to_string().into_bytes())),
        )
    }

    /// Sends a `POST` with a raw text body (the corpus ingest shape).
    pub fn post_text(&mut self, path: &str, body: &str) -> io::Result<HttpResponse> {
        self.request("POST", path, Some(("text/plain", body.as_bytes().to_vec())))
    }

    /// Sends one request and reads one response on the persistent
    /// connection.
    fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<(&str, Vec<u8>)>,
    ) -> io::Result<HttpResponse> {
        let mut out = Vec::new();
        match body {
            None => out.extend_from_slice(format!("{method} {path} HTTP/1.1\r\n\r\n").as_bytes()),
            Some((content_type, bytes)) => {
                out.extend_from_slice(
                    format!(
                        "{method} {path} HTTP/1.1\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n\r\n",
                        bytes.len()
                    )
                    .as_bytes(),
                );
                out.extend_from_slice(&bytes);
            }
        }
        self.stream.write_all(&out)?;
        self.read_response()
    }

    /// Reads one response: status line, headers, then a body framed by
    /// `Content-Length` or reassembled from `Transfer-Encoding: chunked`.
    fn read_response(&mut self) -> io::Result<HttpResponse> {
        let status_line = self.read_line()?;
        let mut parts = status_line.split_ascii_whitespace();
        let (_version, status) = (parts.next(), parts.next());
        let status: u16 = status
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad_data(format!("malformed status line `{status_line}`")))?;
        let mut headers = Vec::new();
        loop {
            let line = self.read_line()?;
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
            }
        }
        // Interim responses (100 Continue) carry no body; read on.
        if status == 100 {
            return self.read_response();
        }
        let chunked = headers
            .iter()
            .any(|(k, v)| k == "transfer-encoding" && v.to_ascii_lowercase().contains("chunked"));
        let body = if chunked {
            let mut body = Vec::new();
            loop {
                let size_line = self.read_line()?;
                let size = usize::from_str_radix(size_line.trim(), 16)
                    .map_err(|_| bad_data(format!("malformed chunk size `{size_line}`")))?;
                if size == 0 {
                    // Trailer section: read through the blank line.
                    loop {
                        if self.read_line()?.is_empty() {
                            break;
                        }
                    }
                    break;
                }
                let mut chunk = vec![0u8; size];
                io::Read::read_exact(&mut self.reader, &mut chunk)?;
                body.extend_from_slice(&chunk);
                let crlf = self.read_line()?;
                if !crlf.is_empty() {
                    return Err(bad_data("chunk not CRLF-terminated".to_string()));
                }
            }
            body
        } else {
            let len: usize = headers
                .iter()
                .find(|(k, _)| k == "content-length")
                .and_then(|(_, v)| v.parse().ok())
                .unwrap_or(0);
            let mut body = vec![0u8; len];
            io::Read::read_exact(&mut self.reader, &mut body)?;
            body
        };
        Ok(HttpResponse {
            status,
            headers,
            body,
        })
    }

    /// Reads one CRLF-terminated line, without the terminator.
    fn read_line(&mut self) -> io::Result<String> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(line)
    }
}

impl std::fmt::Debug for HttpClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.stream.peer_addr() {
            Ok(addr) => write!(f, "HttpClient({addr})"),
            Err(_) => write!(f, "HttpClient(disconnected)"),
        }
    }
}

/// Shorthand for an [`io::ErrorKind::InvalidData`] error.
fn bad_data(message: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heads_parse_and_reject() {
        let head = parse_head(
            b"POST /v1/query?x=1 HTTP/1.1\r\nContent-Type: application/json\r\nContent-Length: 12\r\n\r\n",
        )
        .unwrap();
        assert_eq!(head.method, "POST");
        assert_eq!(head.path, "/v1/query");
        assert!(head.http11);
        assert!(head.keep_alive());
        assert_eq!(head.content_length(), Ok(Some(12)));
        assert_eq!(head.header("content-type"), Some("application/json"));

        // Bare-LF heads are tolerated; HTTP/1.0 defaults to close.
        let head = parse_head(b"GET /healthz HTTP/1.0\n\n").unwrap();
        assert!(!head.http11);
        assert!(!head.keep_alive());

        let head = parse_head(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(!head.keep_alive());

        for bytes in [
            &b"GARBAGE\r\n\r\n"[..],
            b"GET /x HTTP/2\r\n\r\n",
            b"GET /x HTTP/1.1 extra\r\n\r\n",
            b"GET http://example.com HTTP/1.1\r\n\r\n",
            b"GET /x HTTP/1.1\r\nno colon here\r\n\r\n",
            b"GET /x HTTP/1.1\r\nbad name: v\r\n\r\n",
        ] {
            assert!(
                parse_head(bytes).is_err(),
                "{:?}",
                String::from_utf8_lossy(bytes)
            );
        }
    }

    #[test]
    fn endpoint_table_is_total() {
        for (path, op) in [
            ("/v1/prepare", "prepare"),
            ("/v1/query", "query"),
            ("/v1/explain", "explain"),
            ("/v1/query_corpus", "query_corpus"),
            ("/v1/corpus", "load_corpus"),
            ("/v1/corpus/append", "append_docs"),
            ("/v1/corpus/update", "update_doc"),
            ("/v1/corpus/delete", "delete_docs"),
            ("/v1/stats", "stats"),
            ("/v1/shutdown", "shutdown"),
        ] {
            assert_eq!(post_op(path), Some(op));
        }
        assert_eq!(post_op("/v1/nope"), None);
        assert_eq!(post_op("/"), None);
    }
}
