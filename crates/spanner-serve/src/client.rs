//! A small synchronous client for the serve protocol.
//!
//! One [`Client`] wraps one TCP connection; every call writes one request
//! line and reads one response line. The CLI `client` subcommand, the
//! protocol tests, and the serve benchmark all drive the daemon through
//! this type, so the protocol has exactly one encoder.

use crate::json::Json;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// How often a deadline-bound read wakes up to check the clock. The
/// socket timeout is this poll interval, not the deadline itself, so a
/// slow-drip server feeding one byte per interval still hits the overall
/// deadline instead of resetting it per read.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// A connected protocol client.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    /// Overall per-request response deadline; `None` waits forever (the
    /// interactive CLI default — the shard router always sets one).
    deadline: Option<Duration>,
}

impl Client {
    /// Connects to a running daemon.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        Client::from_stream(stream)
    }

    /// Connects with a bound on the TCP connect itself — the shape the
    /// shard router uses, so one dead backend cannot stall a fan-out for
    /// the OS's (minutes-long) connect timeout.
    pub fn connect_with_timeout(addr: &SocketAddr, timeout: Duration) -> io::Result<Client> {
        let stream = TcpStream::connect_timeout(addr, timeout)?;
        Client::from_stream(stream)
    }

    fn from_stream(stream: TcpStream) -> io::Result<Client> {
        // One small line per round trip: disable Nagle, like the server.
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            writer,
            reader: BufReader::new(stream),
            deadline: None,
        })
    }

    /// Bounds every subsequent request: a response that does not complete
    /// within `deadline` fails with [`io::ErrorKind::TimedOut`] instead
    /// of blocking forever. `None` restores unbounded waits.
    pub fn set_deadline(&mut self, deadline: Option<Duration>) -> io::Result<()> {
        let stream = self.reader.get_ref();
        match deadline {
            Some(_) => {
                stream.set_read_timeout(Some(POLL_INTERVAL))?;
                self.writer.set_write_timeout(deadline)?;
            }
            None => {
                stream.set_read_timeout(None)?;
                self.writer.set_write_timeout(None)?;
            }
        }
        self.deadline = deadline;
        Ok(())
    }

    /// Sends one raw line and returns the raw response line (without the
    /// newline). The lowest-level escape hatch — the CLI uses it so users
    /// can type any JSON they like.
    pub fn request_line(&mut self, line: &str) -> io::Result<String> {
        // One write_all, not writeln!: a formatted write issues one
        // syscall (one packet, under NODELAY) per fragment.
        let mut framed = String::with_capacity(line.len() + 1);
        framed.push_str(line);
        framed.push('\n');
        self.writer.write_all(framed.as_bytes())?;
        let limit = self.deadline.map(|d| Instant::now() + d);
        let mut response = String::new();
        loop {
            match self.reader.read_line(&mut response) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "server closed the connection",
                    ));
                }
                // `read_line` also returns on EOF without a terminator: a
                // server that closes mid-response must surface as an error,
                // not as a truncated "line".
                Ok(_) if !response.ends_with('\n') => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "server closed the connection mid-response",
                    ));
                }
                Ok(_) => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                // A poll-interval timeout only matters past the deadline;
                // partial bytes read so far stay buffered in `response`.
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) && self.deadline.is_some() =>
                {
                    if limit.is_some_and(|limit| Instant::now() >= limit) {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            "response deadline exceeded",
                        ));
                    }
                }
                Err(e) => return Err(e),
            }
        }
        Ok(response.trim_end().to_string())
    }

    /// Sends one request value and parses the response.
    pub fn request(&mut self, request: &Json) -> io::Result<Json> {
        let line = self.request_line(&request.to_string())?;
        Json::parse(&line)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad response: {e}")))
    }

    /// `prepare`: compile `program` into the server's cache.
    pub fn prepare(&mut self, program: &str) -> io::Result<Json> {
        self.request(&Json::object([
            ("op", Json::string("prepare")),
            ("program", Json::string(program)),
        ]))
    }

    /// `query`: evaluate `program` on one document.
    pub fn query(&mut self, program: &str, doc: &str) -> io::Result<Json> {
        self.request(&Json::object([
            ("op", Json::string("query")),
            ("program", Json::string(program)),
            ("doc", Json::string(doc)),
        ]))
    }

    /// `query_corpus`: evaluate `program` over every line of `text`.
    pub fn query_corpus(&mut self, program: &str, text: &str) -> io::Result<Json> {
        self.request(&Json::object([
            ("op", Json::string("query_corpus")),
            ("program", Json::string(program)),
            ("text", Json::string(text)),
        ]))
    }

    /// `load_corpus`: ingest every line of `text` into the server's
    /// resident trigram-indexed store.
    pub fn load_corpus(&mut self, text: &str) -> io::Result<Json> {
        self.request(&Json::object([
            ("op", Json::string("load_corpus")),
            ("text", Json::string(text)),
        ]))
    }

    /// `append_docs`: append every line of `text` to the resident store.
    pub fn append_docs(&mut self, text: &str) -> io::Result<Json> {
        self.request(&Json::object([
            ("op", Json::string("append_docs")),
            ("text", Json::string(text)),
        ]))
    }

    /// `update_doc`: replace resident document `line` (0-based) with
    /// `text`.
    pub fn update_doc(&mut self, line: u32, text: &str) -> io::Result<Json> {
        self.request(&Json::object([
            ("op", Json::string("update_doc")),
            ("line", Json::number(line as usize)),
            ("text", Json::string(text)),
        ]))
    }

    /// `delete_docs`: tombstone the given resident document ids.
    pub fn delete_docs(&mut self, lines: &[u32]) -> io::Result<Json> {
        self.request(&Json::object([
            ("op", Json::string("delete_docs")),
            (
                "lines",
                Json::Array(lines.iter().map(|&id| Json::number(id as usize)).collect()),
            ),
        ]))
    }

    /// `query_corpus` without `text`: evaluate `program` against the
    /// resident store loaded by [`Client::load_corpus`], served
    /// incrementally through its maintained view and trigram index.
    pub fn query_store(&mut self, program: &str) -> io::Result<Json> {
        self.request(&Json::object([
            ("op", Json::string("query_corpus")),
            ("program", Json::string(program)),
        ]))
    }

    /// `explain`: the full explain rendering of `program`.
    pub fn explain(&mut self, program: &str) -> io::Result<Json> {
        self.request(&Json::object([
            ("op", Json::string("explain")),
            ("program", Json::string(program)),
        ]))
    }

    /// `explain` with `"analyze": true`: run `program` on `doc` through
    /// the traced executor and report the explain text annotated with the
    /// measured per-operator tree, plus the structured trace.
    pub fn explain_analyze(&mut self, program: &str, doc: &str) -> io::Result<Json> {
        self.request(&Json::object([
            ("op", Json::string("explain")),
            ("program", Json::string(program)),
            ("analyze", Json::Bool(true)),
            ("doc", Json::string(doc)),
        ]))
    }

    /// `stats`: cache and server counters.
    pub fn stats(&mut self) -> io::Result<Json> {
        self.request(&Json::object([("op", Json::string("stats"))]))
    }

    /// `metrics`: the server's metrics registry as Prometheus text
    /// exposition (in the response's `metrics` field).
    pub fn metrics(&mut self) -> io::Result<Json> {
        self.request(&Json::object([("op", Json::string("metrics"))]))
    }

    /// `shutdown`: ask the server to drain and exit.
    pub fn shutdown(&mut self) -> io::Result<Json> {
        self.request(&Json::object([("op", Json::string("shutdown"))]))
    }
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.writer.peer_addr() {
            Ok(addr) => write!(f, "Client({addr})"),
            Err(_) => write!(f, "Client(disconnected)"),
        }
    }
}
