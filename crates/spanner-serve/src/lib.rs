//! A long-running query service over document spanners.
//!
//! Every CLI entry point re-parses, re-plans, and re-compiles its program
//! per invocation, discarding exactly the compile-once amortization the
//! engine is built around (the paper's evaluation model compiles the
//! spanner once and evaluates many documents). This crate keeps the
//! compiled form *resident*: a std-only TCP daemon speaking a
//! line-delimited JSON protocol, backed by
//!
//! * a shared LRU [`QueryCache`] holding `Arc<PreparedQuery>` — concurrent
//!   requests for the same program evaluate against one compiled plan with
//!   zero per-request compilation ([`cache`]);
//! * a fixed pool of connection workers and a persistent
//!   [`spanner_corpus::WorkerPool`] that corpus requests shard across
//!   ([`server`]);
//! * per-request resource limits (`RaOptions::max_states` /
//!   `max_signatures`), so a hostile query fails fast with an error
//!   response instead of taking the process down.
//!
//! The protocol ([`protocol`]) has six requests: `prepare`, `query`,
//! `query_corpus`, `explain`, `stats`, and `shutdown` (graceful: in-flight
//! work drains before the process exits). [`Client`] is the matching
//! synchronous client; [`json`] is the self-contained JSON layer
//! (the workspace builds offline — no serde).
//!
//! Two front ends sit on the same dispatch path:
//!
//! * [`http`] — an HTTP/1.1 transport (`ServeOptions::http`) exposing the
//!   protocol ops as `/v1/*` endpoints with hard head/body byte caps,
//!   keep-alive, chunked streaming for corpus results, `/metrics`, and
//!   `/healthz`, plus the matching [`HttpClient`];
//! * [`router`] — a shard-router mode ([`Server::bind_router`]): one
//!   front end partitions the corpus across N backend daemons, fans
//!   corpus queries out in parallel, and merges per-document results in
//!   corpus order, bit-identical to a single daemon. Backend calls are
//!   bounded by connect/read timeouts with bounded retries on idempotent
//!   ops; a backend that stays unreachable yields a typed degraded
//!   response naming the failed shard instead of a hang.
//!
//! ```
//! use spanner_serve::{Client, ServeOptions, Server};
//!
//! let server = Server::bind("127.0.0.1:0", ServeOptions::default()).unwrap();
//! let (addr, handle) = server.spawn();
//! let mut client = Client::connect(addr).unwrap();
//!
//! let response = client.query("/{x:a+}b/", "aab").unwrap();
//! assert_eq!(response.get("ok").and_then(|v| v.as_bool()), Some(true));
//! assert_eq!(response.get("count").and_then(|v| v.as_usize()), Some(1));
//!
//! client.shutdown().unwrap();
//! handle.join().unwrap().unwrap();
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod http;
pub mod json;
pub mod protocol;
pub mod router;
pub mod server;

pub use cache::{CacheStats, QueryCache};
pub use client::Client;
pub use http::{HttpClient, HttpResponse};
pub use json::Json;
pub use protocol::Request;
pub use router::RouterOptions;
pub use server::{ServeOptions, Server};
