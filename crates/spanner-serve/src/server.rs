//! The long-running query daemon.
//!
//! [`Server`] binds a TCP listener and serves the line-delimited JSON
//! protocol of [`crate::protocol`] from a fixed pool of connection
//! workers. All workers share one [`QueryCache`] (so a hot program is
//! compiled once, ever, per process) and one persistent
//! [`WorkerPool`] for corpus sharding — a corpus request fans its
//! documents out across that pool exactly like the CLI `corpus` command,
//! but without paying thread spawn per request.
//!
//! Robustness choices, all observable through the protocol tests:
//!
//! * request lines are read through a hard byte cap
//!   ([`ServeOptions::max_line_bytes`]) — an oversized line is drained and
//!   answered with an error without ever being buffered whole;
//! * per-request evaluation limits come from the configured
//!   [`RaOptions`] (`max_states`, `max_signatures`), so a hostile query
//!   fails fast with an error response instead of exhausting the process;
//! * `shutdown` stops the accept loop, then *drains*: every connection
//!   worker finishes its in-flight request (and any input already
//!   buffered on its connection) before the server exits.

use crate::cache::{cache_key, QueryCache};
use crate::http::handle_http_connection;
use crate::json::Json;
use crate::protocol::{error_response, mappings_to_json, Request};
use crate::router::{Router, RouterOptions};
use spanner_algebra::RaOptions;
use spanner_core::Document;
use spanner_corpus::{split_lines, CorpusResult, QueryView, WorkerPool};
use spanner_obs::{Counter, Exposition, Histogram, Registry, LATENCY_BUCKETS, RATIO_BUCKETS};
use spanner_store::Store;
use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

/// Configuration of a [`Server`].
#[derive(Debug, Clone, Copy)]
pub struct ServeOptions {
    /// Connection worker threads (`0` = one per available CPU).
    pub threads: usize,
    /// Prepared-query cache capacity (`0` disables caching — every request
    /// compiles; the cold baseline of the serve benchmark).
    pub cache_capacity: usize,
    /// Hard cap on one request line, in bytes; longer lines are rejected
    /// without being buffered.
    pub max_line_bytes: usize,
    /// Per-request evaluation limits (automaton states, materialized
    /// intermediate relations) — the fail-fast guard against hostile
    /// queries.
    pub ra_options: RaOptions,
    /// Worker threads of the shared corpus pool (`0` = one per CPU).
    pub corpus_threads: usize,
    /// A connection that goes this long without completing a request line
    /// is closed — silent or slow-drip clients cannot permanently occupy
    /// one of the fixed connection workers. The clock restarts after each
    /// complete line, so an active client can idle between requests up to
    /// this long.
    pub idle_timeout: Duration,
    /// Retention budget of each maintained query view over the resident
    /// store, in cost units (≈ retained mappings; see
    /// [`QueryView::new`]). `0` disables retention — every store query is
    /// a cold evaluation.
    pub view_budget: usize,
    /// Maximum number of maintained query views per resident store (one
    /// per distinct prepared program); least-recently-used views are
    /// dropped past it. `0` disables views entirely.
    pub max_views: usize,
    /// Serve HTTP/1.1 instead of the line-JSON protocol: the same
    /// operations behind `POST /v1/*` endpoints, plus `GET /healthz` and
    /// `GET /metrics` (see [`crate::http`]).
    pub http: bool,
    /// Hard cap on one HTTP request head (request line + headers), in
    /// bytes; larger heads are answered with `431` and the connection is
    /// closed. Ignored by the line-JSON transport.
    pub max_head_bytes: usize,
    /// Hard cap on one HTTP request body, in bytes; a larger declared
    /// `Content-Length` is answered with `413` without reading the body.
    /// Ignored by the line-JSON transport (which caps whole lines via
    /// [`ServeOptions::max_line_bytes`]).
    pub max_body_bytes: usize,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            threads: 0,
            cache_capacity: 64,
            max_line_bytes: 1 << 20,
            ra_options: RaOptions::default(),
            corpus_threads: 0,
            idle_timeout: Duration::from_secs(60),
            view_budget: 1 << 20,
            max_views: 16,
            http: false,
            max_head_bytes: 16 << 10,
            max_body_bytes: 1 << 20,
        }
    }
}

/// The protocol op labels every per-operation metric family partitions
/// over: one slot per [`Request::op_name`] value plus `"invalid"` for
/// lines that never decode to a request (parse errors, oversized lines).
const OPS: &[&str] = &[
    "prepare",
    "query",
    "load_corpus",
    "append_docs",
    "update_doc",
    "delete_docs",
    "query_corpus",
    "explain",
    "stats",
    "metrics",
    "shutdown",
    "invalid",
];

/// Buckets for delta-size histograms (documents touched per incremental
/// store query) — counts, not seconds.
const DELTA_BUCKETS: &[f64] = &[
    0.0, 1.0, 2.0, 5.0, 10.0, 25.0, 100.0, 1000.0, 10000.0, 100000.0,
];

/// The per-op handles of one protocol operation.
struct OpMetrics {
    requests: Counter,
    errors: Counter,
    latency: Histogram,
}

/// The daemon's metrics: one [`Registry`] plus pre-registered handles for
/// everything recorded on the hot path, so serving a request never takes
/// the registry mutex — recording is `fetch_add` only. Scrape-time values
/// (cache stats, store size, uptime) are appended to the rendered
/// exposition by [`Shared::render_metrics`] instead of being mirrored
/// into yet another set of counters.
pub(crate) struct ServerMetrics {
    registry: Registry,
    /// Per-op request/error/latency, indexed like [`OPS`].
    ops: Vec<OpMetrics>,
    pub(crate) connections: Counter,
    pub(crate) bytes_read: Counter,
    pub(crate) bytes_written: Counter,
    /// HTTP responses by status class (`2xx`…`5xx`), indexed by
    /// `status / 100 - 2`; stays zero on the line-JSON transport.
    pub(crate) http_classes: Vec<Counter>,
    /// Corpus documents by fast-path outcome, accumulated over every
    /// `query_corpus` request: skipped (static prefilters), rejected
    /// (boolean pre-pass), evaluated (reached the executor).
    docs_skipped: Counter,
    docs_rejected: Counter,
    docs_evaluated: Counter,
    /// Trigram-index selectivity (candidates / documents) per resident
    /// store query; full-scan fallbacks observe 1.0.
    store_selectivity: Histogram,
    /// Resident-store build time per `load_corpus` — the expensive part of
    /// corpus ingestion, kept visible because it runs on a connection
    /// worker (the store swap itself is an atomic pointer store).
    store_build_seconds: Histogram,
    /// Store mutations applied, by op (append/update/delete).
    store_appends: Counter,
    store_updates: Counter,
    store_deletes: Counter,
    /// Maintained-view outcomes per resident-store query: documents served
    /// from a retained entry, documents re-evaluated (the delta), and
    /// retained entries dropped because their document changed.
    view_hits: Counter,
    view_misses: Counter,
    view_invalidations: Counter,
    /// Delta size (documents touched) per resident-store query.
    view_delta_docs: Histogram,
    /// Share of documents served from the view per resident-store query.
    view_hit_ratio: Histogram,
}

impl ServerMetrics {
    fn new() -> ServerMetrics {
        let registry = Registry::new();
        let ops = OPS
            .iter()
            .map(|&op| OpMetrics {
                requests: registry.counter(
                    "spanner_requests_total",
                    "Protocol requests handled, by operation",
                    &[("op", op)],
                ),
                errors: registry.counter(
                    "spanner_request_errors_total",
                    "Requests answered with an error response, by operation",
                    &[("op", op)],
                ),
                latency: registry.histogram(
                    "spanner_request_seconds",
                    "Request handling latency in seconds, by operation",
                    &[("op", op)],
                    LATENCY_BUCKETS,
                ),
            })
            .collect();
        let docs = |outcome| {
            registry.counter(
                "spanner_corpus_docs_total",
                "Corpus documents processed, by scan fast-path outcome",
                &[("outcome", outcome)],
            )
        };
        ServerMetrics {
            ops,
            connections: registry.counter(
                "spanner_connections_total",
                "TCP connections accepted",
                &[],
            ),
            bytes_read: registry.counter(
                "spanner_bytes_read_total",
                "Request bytes read from clients",
                &[],
            ),
            bytes_written: registry.counter(
                "spanner_bytes_written_total",
                "Response bytes written to clients",
                &[],
            ),
            http_classes: registry.counters(
                "spanner_http_requests_total",
                "HTTP responses written, by status class",
                "class",
                &["2xx", "3xx", "4xx", "5xx"],
            ),
            docs_skipped: docs("skipped"),
            docs_rejected: docs("rejected"),
            docs_evaluated: docs("evaluated"),
            store_selectivity: registry.histogram(
                "spanner_store_selectivity",
                "Trigram-index selectivity (candidates / documents) per resident-store query",
                &[],
                RATIO_BUCKETS,
            ),
            store_build_seconds: registry.histogram(
                "spanner_store_build_seconds",
                "Resident store build time per load_corpus request",
                &[],
                LATENCY_BUCKETS,
            ),
            store_appends: registry.counter(
                "spanner_store_mutations_total",
                "Resident-store mutations applied, by op",
                &[("op", "append")],
            ),
            store_updates: registry.counter(
                "spanner_store_mutations_total",
                "Resident-store mutations applied, by op",
                &[("op", "update")],
            ),
            store_deletes: registry.counter(
                "spanner_store_mutations_total",
                "Resident-store mutations applied, by op",
                &[("op", "delete")],
            ),
            view_hits: registry.counter(
                "spanner_view_docs_total",
                "Documents per resident-store query, by view outcome",
                &[("outcome", "hit")],
            ),
            view_misses: registry.counter(
                "spanner_view_docs_total",
                "Documents per resident-store query, by view outcome",
                &[("outcome", "miss")],
            ),
            view_invalidations: registry.counter(
                "spanner_view_invalidations_total",
                "Retained view entries dropped because their document changed",
                &[],
            ),
            view_delta_docs: registry.histogram(
                "spanner_view_delta_docs",
                "Documents re-evaluated (the delta) per resident-store query",
                &[],
                DELTA_BUCKETS,
            ),
            view_hit_ratio: registry.histogram(
                "spanner_view_hit_ratio",
                "Share of documents served from the maintained view per resident-store query",
                &[],
                RATIO_BUCKETS,
            ),
            registry,
        }
    }

    /// The handles for one op label (`"invalid"` for unknown labels, which
    /// cannot occur for parsed requests).
    fn op(&self, op: &str) -> &OpMetrics {
        let idx = OPS.iter().position(|&o| o == op).unwrap_or(OPS.len() - 1);
        &self.ops[idx]
    }

    /// Counts a request as soon as it is decoded — before dispatch, so a
    /// `stats` or `metrics` response includes the request that asked.
    pub(crate) fn begin_request(&self, op: &str) {
        self.op(op).requests.inc();
    }

    /// Records the handled request's latency and — read off the response's
    /// `ok` field, so the tally can never drift from what the client saw —
    /// the error total.
    pub(crate) fn finish_request(&self, op: &str, elapsed: Duration, response: &Json) {
        let m = self.op(op);
        if response.get("ok").and_then(Json::as_bool) != Some(true) {
            m.errors.inc();
        }
        m.latency.observe_duration(elapsed);
    }

    /// [`ServerMetrics::begin_request`] + [`ServerMetrics::finish_request`]
    /// in one step, for lines that never dispatch (parse errors, oversized
    /// lines).
    pub(crate) fn record_request(&self, op: &str, elapsed: Duration, response: &Json) {
        self.begin_request(op);
        self.finish_request(op, elapsed, response);
    }

    /// Total requests across every op — derived from the per-op counters,
    /// never tracked separately (one source of truth).
    fn total_requests(&self) -> u64 {
        self.ops.iter().map(|m| m.requests.get()).sum()
    }

    /// Total error responses across every op.
    fn total_errors(&self) -> u64 {
        self.ops.iter().map(|m| m.errors.get()).sum()
    }
}

/// The resident mutable corpus plus its maintained query views.
///
/// Queries take the store's read lock (and run concurrently); mutations
/// take the write lock. `load_corpus` builds a whole new `ResidentStore`
/// *off*-lock and swaps the `Arc` in one pointer store, so queries
/// against the previous corpus stay live for the entire build.
struct ResidentStore {
    store: RwLock<Store>,
    views: ViewSet,
}

/// A bounded LRU map of maintained query views over one resident store,
/// keyed exactly like the prepared-query cache (trimmed program text +
/// compile options) so a view can never serve a plan it was not built by.
struct ViewSet {
    state: Mutex<ViewSetState>,
    /// Maximum resident views; `0` disables views.
    capacity: usize,
    /// Retention budget handed to each new view.
    budget: usize,
}

#[derive(Default)]
struct ViewSetState {
    views: HashMap<String, ViewSlot>,
    /// Monotonic recency clock; bumped on every touch.
    tick: u64,
}

struct ViewSlot {
    view: Arc<Mutex<QueryView>>,
    last_used: u64,
}

impl ViewSet {
    fn new(capacity: usize, budget: usize) -> ViewSet {
        ViewSet {
            state: Mutex::new(ViewSetState::default()),
            capacity,
            budget,
        }
    }

    /// The view for `key`, creating it (and evicting the least recently
    /// used one past capacity) on first use; `None` when views are
    /// disabled. The returned handle is locked *outside* the set mutex.
    fn get(&self, key: &str) -> Option<Arc<Mutex<QueryView>>> {
        if self.capacity == 0 {
            return None;
        }
        let mut state = self.state.lock().expect("view set poisoned");
        state.tick += 1;
        let tick = state.tick;
        if let Some(slot) = state.views.get_mut(key) {
            slot.last_used = tick;
            return Some(Arc::clone(&slot.view));
        }
        if state.views.len() >= self.capacity {
            if let Some(oldest) = state
                .views
                .iter()
                .min_by_key(|(_, slot)| slot.last_used)
                .map(|(k, _)| k.clone())
            {
                state.views.remove(&oldest);
            }
        }
        let view = Arc::new(Mutex::new(QueryView::new(self.budget)));
        state.views.insert(
            key.to_string(),
            ViewSlot {
                view: Arc::clone(&view),
                last_used: tick,
            },
        );
        Some(view)
    }

    /// Number of resident views.
    fn entries(&self) -> usize {
        self.state.lock().expect("view set poisoned").views.len()
    }

    /// Total retention cost across every resident view.
    fn retained_cost(&self) -> usize {
        let state = self.state.lock().expect("view set poisoned");
        state
            .views
            .values()
            .map(|slot| slot.view.lock().expect("view poisoned").retained_cost())
            .sum()
    }
}

/// State shared by the accept loop and every connection worker.
pub(crate) struct Shared {
    cache: QueryCache,
    pool: WorkerPool,
    pub(crate) options: ServeOptions,
    pub(crate) addr: SocketAddr,
    pub(crate) shutdown: AtomicBool,
    pub(crate) metrics: ServerMetrics,
    pub(crate) started: Instant,
    /// The shard router, when this front end routes to backend daemons
    /// instead of evaluating locally ([`Server::bind_router`]).
    router: Option<Router>,
    /// The resident corpus: loaded by `load_corpus`, mutated in place by
    /// `append_docs`/`update_doc`/`delete_docs`, and queried by
    /// `query_corpus` requests that omit `text` — documents stay on the
    /// server, selective queries prune through the trigram index, and
    /// repeat queries are served incrementally from maintained views.
    store: Mutex<Option<Arc<ResidentStore>>>,
}

impl Shared {
    /// The current resident store, if any (cheap pointer clone; the
    /// pointer mutex is never held across a query or a build).
    fn resident(&self) -> Option<Arc<ResidentStore>> {
        self.store.lock().expect("store poisoned").clone()
    }

    /// Renders the whole registry plus the scrape-time families (cache,
    /// resident store, uptime) as one Prometheus text exposition.
    pub(crate) fn render_metrics(&self) -> String {
        let mut out = Exposition::new();
        self.metrics.registry.export_into(&mut out);
        let cache = self.cache.stats();
        out.family(
            "spanner_cache_entries",
            "gauge",
            "Prepared queries resident in the cache",
        );
        out.sample("spanner_cache_entries", &[], cache.entries as f64);
        out.family(
            "spanner_cache_capacity",
            "gauge",
            "Configured prepared-query cache capacity",
        );
        out.sample("spanner_cache_capacity", &[], cache.capacity as f64);
        for (name, help, value) in [
            (
                "spanner_cache_hits_total",
                "Cache lookups served from a resident entry",
                cache.hits,
            ),
            (
                "spanner_cache_misses_total",
                "Cache lookups that compiled the program",
                cache.misses,
            ),
            (
                "spanner_cache_evictions_total",
                "Entries evicted to make room",
                cache.evictions,
            ),
        ] {
            out.family(name, "counter", help);
            out.sample(name, &[], value as f64);
        }
        if let Some(resident) = self.resident() {
            let store = resident.store.read().expect("store lock poisoned");
            for (name, help, value) in [
                (
                    "spanner_store_documents",
                    "Documents in the resident store",
                    store.len(),
                ),
                (
                    "spanner_store_bytes",
                    "Bytes in the resident store",
                    store.bytes(),
                ),
                (
                    "spanner_store_trigrams",
                    "Distinct trigrams in the resident store's index",
                    store.trigram_count(),
                ),
                (
                    "spanner_store_delta_postings",
                    "Posting entries in the resident store's delta segment",
                    store.delta_postings(),
                ),
                (
                    "spanner_store_deleted_documents",
                    "Resident documents tombstoned since load",
                    store.deleted_count(),
                ),
                (
                    "spanner_views",
                    "Maintained query views over the resident store",
                    resident.views.entries(),
                ),
                (
                    "spanner_view_retained_cost",
                    "Total retention cost across the maintained query views",
                    resident.views.retained_cost(),
                ),
            ] {
                out.family(name, "gauge", help);
                out.sample(name, &[], value as f64);
            }
            for (name, help, value) in [
                (
                    "spanner_store_generation",
                    "Mutations applied to the resident store since load",
                    store.generation(),
                ),
                (
                    "spanner_store_compactions_total",
                    "Trigram-index compactions of the resident store",
                    store.compactions(),
                ),
            ] {
                out.family(name, "counter", help);
                out.sample(name, &[], value as f64);
            }
        }
        out.family(
            "spanner_uptime_seconds",
            "gauge",
            "Seconds since the daemon started",
        );
        out.sample(
            "spanner_uptime_seconds",
            &[],
            self.started.elapsed().as_secs_f64(),
        );
        out.finish()
    }
}

/// A bound, not-yet-running query daemon.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds the daemon to `addr` (e.g. `"127.0.0.1:7171"`; port `0` picks
    /// a free port, which [`Server::local_addr`] reports). The transport
    /// is chosen by [`ServeOptions::http`].
    pub fn bind(addr: &str, options: ServeOptions) -> io::Result<Server> {
        Server::bind_inner(addr, options, None)
    }

    /// Binds a shard-router front end: corpus operations partition and
    /// fan out across `router.backends` (see [`crate::router`]), while
    /// single-document operations are served locally. The transport is
    /// still chosen by [`ServeOptions::http`], so a router can also be
    /// the HTTP edge of a cluster.
    pub fn bind_router(
        addr: &str,
        options: ServeOptions,
        router: RouterOptions,
    ) -> io::Result<Server> {
        Server::bind_inner(addr, options, Some(router))
    }

    fn bind_inner(
        addr: &str,
        options: ServeOptions,
        router: Option<RouterOptions>,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let metrics = ServerMetrics::new();
        let router = match router {
            None => None,
            Some(router_options) => Some(Router::new(router_options, &metrics.registry)?),
        };
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                cache: QueryCache::new(options.cache_capacity),
                pool: WorkerPool::new(options.corpus_threads),
                options,
                addr,
                shutdown: AtomicBool::new(false),
                metrics,
                started: Instant::now(),
                router,
                store: Mutex::new(None),
            }),
        })
    }

    /// The bound address (useful after binding port `0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Runs the accept loop until a `shutdown` request arrives, then
    /// drains: in-flight requests complete, queued connections are served,
    /// and every worker is joined before this returns.
    pub fn run(&self) -> io::Result<()> {
        let threads = resolve_threads(self.shared.options.threads);
        let (sender, receiver) = channel::<TcpStream>();
        let receiver = Arc::new(Mutex::new(receiver));
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                let receiver: Arc<Mutex<Receiver<TcpStream>>> = Arc::clone(&receiver);
                let shared = Arc::clone(&self.shared);
                std::thread::spawn(move || loop {
                    let stream = match receiver.lock().expect("queue poisoned").recv() {
                        Ok(stream) => stream,
                        Err(_) => return, // accept loop closed the queue
                    };
                    shared.metrics.connections.inc();
                    // Connection-level I/O errors (peer reset, timeout on a
                    // dead socket) end that connection only.
                    let _ = if shared.options.http {
                        handle_http_connection(stream, &shared)
                    } else {
                        handle_connection(stream, &shared)
                    };
                })
            })
            .collect();
        for stream in self.listener.incoming() {
            if self.shared.shutdown.load(Ordering::SeqCst) {
                // The last accepted stream is the shutdown wake-up (or a
                // late client); it is dropped unserved.
                break;
            }
            match stream {
                Ok(stream) => {
                    let _ = sender.send(stream);
                }
                Err(e) if e.kind() == io::ErrorKind::ConnectionAborted => continue,
                Err(e) => return Err(e),
            }
        }
        drop(sender);
        for worker in workers {
            let _ = worker.join();
        }
        Ok(())
    }

    /// Runs the server on a background thread, returning its join handle —
    /// the shape the tests and the CLI smoke test use.
    pub fn spawn(self) -> (SocketAddr, std::thread::JoinHandle<io::Result<()>>) {
        let addr = self.local_addr();
        (addr, std::thread::spawn(move || self.run()))
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Server({})", self.shared.addr)
    }
}

/// Resolves the connection-worker count: the corpus pool's resolver
/// (`0` = one per CPU, clamped to `MAX_THREADS`) — a huge
/// `serve [addr [threads]]` argument must degrade to the cap, not abort
/// the daemon when the OS refuses to spawn.
fn resolve_threads(requested: usize) -> usize {
    spanner_corpus::resolve_pool_threads(requested)
}

/// How often an idle connection re-checks the shutdown flag.
pub(crate) const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// One request line, read under the byte cap.
enum LineRead {
    /// A complete line within the cap.
    Line(String),
    /// The line exceeded the cap; its bytes were drained, not buffered.
    TooLong,
    /// End of stream (or shutdown while idle).
    Closed,
}

/// Serves one connection until EOF or shutdown.
fn handle_connection(stream: TcpStream, shared: &Shared) -> io::Result<()> {
    // Request/response lines are small; without NODELAY the Nagle /
    // delayed-ACK interaction adds tens of milliseconds per round trip.
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(POLL_INTERVAL))?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    loop {
        // The latency clock starts once a complete line is in hand —
        // client idle time between requests is not handling time.
        let response = match read_request_line(&mut reader, shared)? {
            LineRead::Closed => return Ok(()),
            LineRead::TooLong => {
                let response = error_response(format!(
                    "request line exceeds the {}-byte limit",
                    shared.options.max_line_bytes
                ));
                shared
                    .metrics
                    .record_request("invalid", Duration::ZERO, &response);
                response
            }
            LineRead::Line(line) if line.trim().is_empty() => continue,
            LineRead::Line(line) => {
                let started = Instant::now();
                shared.metrics.bytes_read.add(line.len() as u64 + 1);
                match Request::parse(&line) {
                    Err(message) => {
                        let response = error_response(message);
                        shared
                            .metrics
                            .record_request("invalid", started.elapsed(), &response);
                        response
                    }
                    Ok(request) => {
                        let op = request.op_name();
                        let shutdown = request == Request::Shutdown;
                        shared.metrics.begin_request(op);
                        let response = dispatch_request(shared, request);
                        shared
                            .metrics
                            .finish_request(op, started.elapsed(), &response);
                        if shutdown {
                            write_response(&mut writer, &response, shared)?;
                            initiate_shutdown(shared);
                            return Ok(());
                        }
                        response
                    }
                }
            }
        };
        write_response(&mut writer, &response, shared)?;
    }
}

/// Writes one response line with a single syscall. Rendering straight
/// into the socket would issue one `write(2)` per formatting fragment —
/// under `TCP_NODELAY` that is one packet per fragment, which dominates
/// the round trip for any non-trivial response.
fn write_response(writer: &mut TcpStream, response: &Json, shared: &Shared) -> io::Result<()> {
    let mut line = response.to_string();
    line.push('\n');
    shared.metrics.bytes_written.add(line.len() as u64);
    writer.write_all(line.as_bytes())
}

/// Flags the shutdown and unblocks the accept loop with a wake-up
/// connection.
pub(crate) fn initiate_shutdown(shared: &Shared) {
    shared.shutdown.store(true, Ordering::SeqCst);
    let _ = TcpStream::connect(shared.addr);
}

/// Reads one `\n`-terminated line, enforcing the byte cap without
/// buffering past it, and polling the shutdown flag while idle.
///
/// Two liveness guards on the poll path: once the server is draining,
/// the connection closes on the next poll tick even with a partial line
/// buffered (a half-written line is not in-flight work — waiting for its
/// terminator could stall shutdown forever); and a connection that goes
/// longer than [`ServeOptions::idle_timeout`] without completing a line
/// is closed, so silent or slow-drip clients cannot permanently occupy
/// one of the fixed connection workers.
fn read_request_line(reader: &mut BufReader<TcpStream>, shared: &Shared) -> io::Result<LineRead> {
    let cap = shared.options.max_line_bytes;
    let mut buf: Vec<u8> = Vec::new();
    let mut too_long = false;
    let started = std::time::Instant::now();
    loop {
        // The deadline applies on every iteration, not only when the
        // socket is silent — a slow-drip client feeding one byte per poll
        // interval must not occupy the worker past the timeout either.
        if started.elapsed() >= shared.options.idle_timeout {
            return Ok(LineRead::Closed);
        }
        let chunk = match reader.fill_buf() {
            Ok(chunk) => chunk,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return Ok(LineRead::Closed);
                }
                continue;
            }
            Err(e) => return Err(e),
        };
        if chunk.is_empty() {
            // EOF: a final unterminated line still counts as a request.
            if buf.is_empty() || too_long {
                return Ok(if too_long {
                    LineRead::TooLong
                } else {
                    LineRead::Closed
                });
            }
            let line = String::from_utf8_lossy(&buf).into_owned();
            return Ok(LineRead::Line(line));
        }
        let newline = chunk.iter().position(|&b| b == b'\n');
        let take = newline.map_or(chunk.len(), |i| i + 1);
        if !too_long {
            if buf.len() + take > cap + 1 {
                too_long = true;
                buf.clear();
            } else {
                buf.extend_from_slice(&chunk[..take]);
            }
        }
        reader.consume(take);
        if newline.is_some() {
            if too_long {
                return Ok(LineRead::TooLong);
            }
            buf.pop(); // the newline
            if buf.last() == Some(&b'\r') {
                buf.pop();
            }
            let line = String::from_utf8_lossy(&buf).into_owned();
            return Ok(LineRead::Line(line));
        }
    }
}

/// Looks `program` up in the cache (compiling on a miss) and builds the
/// success response from the shared prepared query; compile errors become
/// the standard error response with the caret rendering.
fn with_query(
    shared: &Shared,
    program: &str,
    build: impl FnOnce(std::sync::Arc<spanner_ql::PreparedQuery>, bool) -> Json,
) -> Json {
    match shared
        .cache
        .get_or_prepare(program, shared.options.ra_options)
    {
        Err(e) => error_response(e.pretty(program)),
        Ok((query, cached)) => build(query, cached),
    }
}

/// Builds the shared `query_corpus` success response from a full-corpus
/// result: per-line mappings for matched documents, aggregate stats, plus
/// any path-specific fields (the store path appends candidate count and
/// selectivity). Also accumulates the daemon-wide fast-path counters.
fn corpus_response(
    shared: &Shared,
    cached: bool,
    docs: &[Document],
    out: &CorpusResult,
    extra: impl IntoIterator<Item = (&'static str, Json)>,
) -> Json {
    let skipped = out.stats.docs_skipped as u64;
    let rejected = out.stats.docs_rejected as u64;
    shared.metrics.docs_skipped.add(skipped);
    shared.metrics.docs_rejected.add(rejected);
    shared
        .metrics
        .docs_evaluated
        .add((out.stats.documents as u64).saturating_sub(skipped + rejected));
    let results: Vec<Json> = docs
        .iter()
        .zip(&out.results)
        .enumerate()
        .filter(|(_, (_, set))| !set.is_empty())
        .map(|(index, (doc, set))| {
            Json::object([
                ("line", Json::number(index)),
                ("count", Json::number(set.len())),
                ("mappings", mappings_to_json(doc, set)),
            ])
        })
        .collect();
    let mut fields = vec![
        ("ok", Json::Bool(true)),
        ("cached", Json::Bool(cached)),
        ("documents", Json::number(out.stats.documents)),
        ("matched", Json::number(out.stats.matched_documents)),
        ("mappings", Json::number(out.stats.mappings)),
        ("skipped", Json::number(out.stats.docs_skipped)),
        ("rejected", Json::number(out.stats.docs_rejected)),
    ];
    fields.extend(extra);
    fields.push(("results", Json::Array(results)));
    Json::object(fields)
}

/// Dispatches one decoded request: a router front end intercepts the
/// corpus-level operations and fans them out to its backend shards;
/// everything else (and everything, without a router) is handled
/// locally. Both transports funnel through this one function, so the
/// line-JSON and HTTP surfaces can never drift apart.
pub(crate) fn dispatch_request(shared: &Shared, request: Request) -> Json {
    if let Some(router) = &shared.router {
        if let Some(response) = router.route(&request) {
            return response;
        }
    }
    handle_request(shared, request)
}

/// Handles one decoded request locally.
fn handle_request(shared: &Shared, request: Request) -> Json {
    match request {
        Request::Prepare { program } => with_query(shared, &program, |query, cached| {
            Json::object([
                ("ok", Json::Bool(true)),
                ("cached", Json::Bool(cached)),
                (
                    "vars",
                    Json::Array(
                        query
                            .vars()
                            .iter()
                            .map(|v| Json::string(v.to_string()))
                            .collect(),
                    ),
                ),
                ("static", Json::Bool(query.plan().is_static())),
                ("outline", Json::string(query.plan_outline())),
            ])
        }),
        Request::Query { program, doc } => with_query(shared, &program, |query, cached| {
            let doc = Document::new(doc);
            match query.evaluate(&doc) {
                Err(e) => error_response(e),
                Ok(set) => Json::object([
                    ("ok", Json::Bool(true)),
                    ("cached", Json::Bool(cached)),
                    ("count", Json::number(set.len())),
                    ("mappings", mappings_to_json(&doc, &set)),
                ]),
            }
        }),
        Request::LoadCorpus { text } => {
            // The build is the expensive part; it runs before any lock is
            // taken, so queries against the previous resident corpus stay
            // live until the one-pointer swap below.
            let build_started = Instant::now();
            match Store::build(split_lines(&text)) {
                Err(e) => error_response(e),
                Ok(store) => {
                    shared
                        .metrics
                        .store_build_seconds
                        .observe_duration(build_started.elapsed());
                    let response = Json::object([
                        ("ok", Json::Bool(true)),
                        ("documents", Json::number(store.len())),
                        ("bytes", Json::number(store.bytes())),
                        ("trigrams", Json::number(store.trigram_count())),
                        ("generation", Json::number(store.generation() as usize)),
                    ]);
                    let resident = Arc::new(ResidentStore {
                        store: RwLock::new(store),
                        views: ViewSet::new(shared.options.max_views, shared.options.view_budget),
                    });
                    *shared.store.lock().expect("store poisoned") = Some(resident);
                    response
                }
            }
        }
        Request::AppendDocs { text } => match shared.resident() {
            None => error_response("no resident corpus (send `load_corpus` first)"),
            Some(resident) => {
                let mut store = resident.store.write().expect("store lock poisoned");
                let mut appended = 0usize;
                let mut failure = None;
                for line in text.lines() {
                    match store.append(line) {
                        Ok(_) => appended += 1,
                        Err(e) => {
                            failure = Some(e);
                            break;
                        }
                    }
                }
                shared.metrics.store_appends.add(appended as u64);
                match failure {
                    Some(e) => error_response(e),
                    None => Json::object([
                        ("ok", Json::Bool(true)),
                        ("appended", Json::number(appended)),
                        ("documents", Json::number(store.len())),
                        ("generation", Json::number(store.generation() as usize)),
                    ]),
                }
            }
        },
        Request::UpdateDoc { line, text } => match shared.resident() {
            None => error_response("no resident corpus (send `load_corpus` first)"),
            Some(resident) => {
                let mut store = resident.store.write().expect("store lock poisoned");
                match store.update(line, &text) {
                    Err(e) => error_response(e),
                    Ok(()) => {
                        shared.metrics.store_updates.inc();
                        Json::object([
                            ("ok", Json::Bool(true)),
                            ("documents", Json::number(store.len())),
                            ("generation", Json::number(store.generation() as usize)),
                        ])
                    }
                }
            }
        },
        Request::DeleteDocs { lines } => match shared.resident() {
            None => error_response("no resident corpus (send `load_corpus` first)"),
            Some(resident) => {
                let mut store = resident.store.write().expect("store lock poisoned");
                let mut deleted = 0usize;
                let mut failure = None;
                // Applied in order; the first bad id aborts (earlier
                // deletes stay applied — deletes are idempotent, so a
                // client can safely retry the whole batch).
                for id in lines {
                    match store.delete(id) {
                        Ok(()) => deleted += 1,
                        Err(e) => {
                            failure = Some(e);
                            break;
                        }
                    }
                }
                shared.metrics.store_deletes.add(deleted as u64);
                match failure {
                    Some(e) => error_response(e),
                    None => Json::object([
                        ("ok", Json::Bool(true)),
                        ("deleted", Json::number(deleted)),
                        ("documents", Json::number(store.len())),
                        ("generation", Json::number(store.generation() as usize)),
                    ]),
                }
            }
        },
        Request::QueryCorpus {
            program,
            text: Some(text),
        } => with_query(shared, &program, |query, cached| {
            let docs = Arc::new(split_lines(&text));
            match query.evaluate_corpus_on_pool(&docs, &shared.pool) {
                Err(e) => error_response(e),
                Ok(out) => corpus_response(shared, cached, &docs, &out, []),
            }
        }),
        Request::QueryCorpus {
            program,
            text: None,
        } => match shared.resident() {
            None => error_response("no resident corpus (send `load_corpus` first)"),
            Some(resident) => with_query(shared, &program, |query, cached| {
                let store = resident.store.read().expect("store lock poisoned");
                let threads = shared.pool.threads();
                // One maintained view per (program, options) key; with
                // views disabled a throwaway zero-budget view keeps the
                // code path (and the response shape) identical.
                let slot = resident
                    .views
                    .get(&cache_key(&program, shared.options.ra_options));
                let result = match &slot {
                    Some(slot) => {
                        let mut view = slot.lock().expect("view poisoned");
                        store.query_view(query.engine(), &mut view, threads)
                    }
                    None => store.query_view(query.engine(), &mut QueryView::new(0), threads),
                };
                match result {
                    Err(e) => error_response(e),
                    Ok(outcome) => {
                        let m = &shared.metrics;
                        m.store_selectivity.observe(outcome.selectivity());
                        m.view_hits.add(outcome.view_hits as u64);
                        m.view_misses.add(outcome.delta_docs as u64);
                        m.view_invalidations.add(outcome.invalidated as u64);
                        m.view_delta_docs.observe(outcome.delta_docs as f64);
                        let documents = outcome.output.stats.documents;
                        if documents > 0 {
                            m.view_hit_ratio
                                .observe(outcome.view_hits as f64 / documents as f64);
                        }
                        let candidates = match outcome.candidates {
                            Some(count) => Json::number(count),
                            // Full-scan fallback: no usable literal.
                            None => Json::Null,
                        };
                        corpus_response(
                            shared,
                            cached,
                            store.documents(),
                            &outcome.output,
                            [
                                ("candidates", candidates),
                                ("selectivity", Json::Number(outcome.selectivity())),
                                ("delta_docs", Json::number(outcome.delta_docs)),
                                ("view_hits", Json::number(outcome.view_hits)),
                                ("invalidated", Json::number(outcome.invalidated)),
                                ("generation", Json::number(outcome.generation as usize)),
                            ],
                        )
                    }
                }
            }),
        },
        Request::Explain {
            program,
            analyze: false,
            ..
        } => with_query(shared, &program, |query, cached| {
            Json::object([
                ("ok", Json::Bool(true)),
                ("cached", Json::Bool(cached)),
                ("explain", Json::string(query.explain())),
            ])
        }),
        Request::Explain {
            program,
            analyze: true,
            doc,
        } => {
            // The parser enforces `doc` whenever `analyze` is set; a
            // hand-built Request without one gets the same diagnosis.
            let Some(doc) = doc else {
                return error_response(
                    "`explain` with `\"analyze\": true` needs a `doc` field to run the query on",
                );
            };
            with_query(shared, &program, |query, cached| {
                let document = Document::new(doc);
                // One traced run feeds both the human rendering and the
                // structured trace, so they can never disagree.
                let (result, trace) = query.evaluate_traced(&document);
                let trace_json = Json::parse(&trace.to_json()).expect("trace JSON is well-formed");
                let ok = result.is_ok();
                let mut fields = vec![
                    ("ok", Json::Bool(ok)),
                    ("cached", Json::Bool(cached)),
                    (
                        "explain",
                        Json::string(query.render_analyze(&document, &result, &trace)),
                    ),
                    ("trace", trace_json),
                ];
                match result {
                    Ok(set) => fields.push(("count", Json::number(set.len()))),
                    Err(e) => fields.push(("error", Json::string(e.to_string()))),
                }
                Json::object(fields)
            })
        }
        Request::Stats => {
            let cache = shared.cache.stats();
            // Deliberately local even on a router front end: a stats
            // probe must answer when every backend is down, so the
            // router section reports topology and transport counters
            // without fanning out.
            let router = match &shared.router {
                None => Json::Null,
                Some(router) => router.stats(),
            };
            let store = match shared.resident() {
                None => Json::Null,
                Some(resident) => {
                    let store = resident.store.read().expect("store lock poisoned");
                    Json::object([
                        ("documents", Json::number(store.len())),
                        ("bytes", Json::number(store.bytes())),
                        ("trigrams", Json::number(store.trigram_count())),
                        ("generation", Json::number(store.generation() as usize)),
                        ("deleted", Json::number(store.deleted_count())),
                        ("delta_postings", Json::number(store.delta_postings())),
                        ("compactions", Json::number(store.compactions() as usize)),
                        ("views", Json::number(resident.views.entries())),
                    ])
                }
            };
            Json::object([
                ("ok", Json::Bool(true)),
                (
                    "cache",
                    Json::object([
                        ("capacity", Json::number(cache.capacity)),
                        ("entries", Json::number(cache.entries)),
                        ("hits", Json::number(cache.hits as usize)),
                        ("misses", Json::number(cache.misses as usize)),
                        ("evictions", Json::number(cache.evictions as usize)),
                    ]),
                ),
                (
                    "server",
                    Json::object([
                        (
                            "requests_total",
                            Json::number(shared.metrics.total_requests() as usize),
                        ),
                        (
                            "errors_total",
                            Json::number(shared.metrics.total_errors() as usize),
                        ),
                        (
                            "uptime_s",
                            Json::Number(shared.started.elapsed().as_secs_f64()),
                        ),
                        (
                            "connections",
                            Json::number(shared.metrics.connections.get() as usize),
                        ),
                        ("corpus_threads", Json::number(shared.pool.threads())),
                        (
                            "docs_skipped",
                            Json::number(shared.metrics.docs_skipped.get() as usize),
                        ),
                        (
                            "docs_rejected",
                            Json::number(shared.metrics.docs_rejected.get() as usize),
                        ),
                        (
                            "docs_evaluated",
                            Json::number(shared.metrics.docs_evaluated.get() as usize),
                        ),
                    ]),
                ),
                (
                    // Per-op request/error totals, so rates are computable
                    // per operation (the same counters `metrics` renders).
                    "ops",
                    Json::Object(
                        OPS.iter()
                            .map(|&op| {
                                let m = shared.metrics.op(op);
                                (
                                    op.to_string(),
                                    Json::object([
                                        ("requests", Json::number(m.requests.get() as usize)),
                                        ("errors", Json::number(m.errors.get() as usize)),
                                    ]),
                                )
                            })
                            .collect(),
                    ),
                ),
                ("store", store),
                ("router", router),
            ])
        }
        Request::Metrics => Json::object([
            ("ok", Json::Bool(true)),
            ("metrics", Json::string(shared.render_metrics())),
        ]),
        Request::Shutdown => Json::object([
            ("ok", Json::Bool(true)),
            ("shutting_down", Json::Bool(true)),
        ]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_counts_resolve_and_clamp() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
        // A huge request degrades to the shared ceiling instead of
        // attempting (and aborting on) a million thread spawns.
        assert_eq!(resolve_threads(1_000_000), spanner_corpus::MAX_THREADS);
    }
}
