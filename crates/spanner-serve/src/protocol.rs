//! The line-delimited JSON request/response protocol.
//!
//! Each request is one JSON object on one line; each response is one JSON
//! object on one line. A connection carries any number of requests in
//! sequence (the protocol is strictly request/response, no pipelining
//! required on the client side, though the server answers in order).
//!
//! Requests (`op` selects the operation):
//!
//! | `op` | fields | effect |
//! |---|---|---|
//! | `prepare` | `program` | compile into the cache, report the plan outline |
//! | `query` | `program`, `doc` | evaluate on one document |
//! | `load_corpus` | `text` | ingest every line of `text` into the resident trigram-indexed store |
//! | `append_docs` | `text` | append every line of `text` to the resident store |
//! | `update_doc` | `line`, `text` | replace resident document `line` (0-based) with `text` |
//! | `delete_docs` | `lines` | tombstone the given resident document ids (applied in order) |
//! | `query_corpus` | `program`, `text`? | evaluate every line of `text` as its own document; with `text` omitted, run against the resident store incrementally through its maintained query view and trigram index |
//! | `explain` | `program`, `analyze`?, `doc`? | the full multi-line explain, as a string; with `"analyze": true` (which requires `doc`) the query actually runs and the response adds the measured per-operator trace |
//! | `stats` | — | cache + server counters |
//! | `metrics` | — | the whole metrics registry, rendered in Prometheus text exposition format |
//! | `shutdown` | — | stop accepting, drain, exit |
//!
//! Every response carries `"ok"`; failures are
//! `{"ok":false,"error":"…"}` and never tear the connection down. Span
//! positions use the paper's 1-based `[start, end⟩` convention, matching
//! the rest of the workspace.

use crate::json::Json;
use spanner_core::{Document, MappingSet};

/// A decoded protocol request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Compile `program` into the cache without evaluating it.
    Prepare {
        /// SpannerQL program text.
        program: String,
    },
    /// Evaluate `program` on one document.
    Query {
        /// SpannerQL program text.
        program: String,
        /// The document text.
        doc: String,
    },
    /// Ingest a corpus into the resident trigram-indexed store, one line
    /// per document. Later `query_corpus` requests without `text` run
    /// against it without shipping documents per request.
    LoadCorpus {
        /// The corpus: one document per line.
        text: String,
    },
    /// Append every line of `text` to the resident store as new
    /// documents. The store's maintained query views pick the delta up on
    /// the next `query_corpus`.
    AppendDocs {
        /// The new documents: one per line.
        text: String,
    },
    /// Replace one resident document's content.
    UpdateDoc {
        /// The document id (0-based corpus line).
        line: u32,
        /// The new document text.
        text: String,
    },
    /// Tombstone resident documents (their slots become empty documents;
    /// ids stay stable). Applied in order; the first out-of-bounds id
    /// aborts with an error.
    DeleteDocs {
        /// The document ids to delete.
        lines: Vec<u32>,
    },
    /// Evaluate `program` over a corpus: every line of `text` as its own
    /// document, or — with `text` omitted — the resident store loaded by
    /// [`Request::LoadCorpus`], pruned through its trigram index.
    QueryCorpus {
        /// SpannerQL program text.
        program: String,
        /// The corpus, one document per line; `None` targets the resident
        /// store.
        text: Option<String>,
    },
    /// Render the full explain output of `program`; with `analyze` set,
    /// run it on `doc` through the traced executor and report the
    /// measured per-operator tree as well.
    Explain {
        /// SpannerQL program text.
        program: String,
        /// Whether to actually execute and report measurements
        /// (`"analyze": true`); requires `doc`.
        analyze: bool,
        /// The document to analyze on (required iff `analyze`).
        doc: Option<String>,
    },
    /// Report cache and server counters.
    Stats,
    /// Render the metrics registry in Prometheus text exposition format.
    Metrics,
    /// Stop accepting connections, drain in-flight work, and exit.
    Shutdown,
}

impl Request {
    /// Decodes one request line. Errors are human-readable strings, ready
    /// for an error response.
    pub fn parse(line: &str) -> Result<Request, String> {
        let value = Json::parse(line).map_err(|e| e.to_string())?;
        let op = value
            .get("op")
            .and_then(Json::as_str)
            .ok_or("request object needs a string `op` field")?;
        let field = |name: &str| -> Result<String, String> {
            value
                .get(name)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("`{op}` needs a string `{name}` field"))
        };
        match op {
            "prepare" => Ok(Request::Prepare {
                program: field("program")?,
            }),
            "query" => Ok(Request::Query {
                program: field("program")?,
                doc: field("doc")?,
            }),
            "load_corpus" => Ok(Request::LoadCorpus {
                text: field("text")?,
            }),
            "append_docs" => Ok(Request::AppendDocs {
                text: field("text")?,
            }),
            "update_doc" => Ok(Request::UpdateDoc {
                line: doc_id(&value, op, "line")?,
                text: field("text")?,
            }),
            "delete_docs" => {
                let lines = value
                    .get("lines")
                    .and_then(Json::as_array)
                    .ok_or_else(|| format!("`{op}` needs a `lines` array field"))?;
                let lines = lines
                    .iter()
                    .map(|v| {
                        v.as_usize()
                            .filter(|&id| id <= u32::MAX as usize)
                            .map(|id| id as u32)
                            .ok_or_else(|| {
                                format!("`{op}` needs `lines` entries to be document ids")
                            })
                    })
                    .collect::<Result<Vec<u32>, String>>()?;
                Ok(Request::DeleteDocs { lines })
            }
            "query_corpus" => Ok(Request::QueryCorpus {
                program: field("program")?,
                // `text` is optional (absent targets the resident store),
                // but when present it must be a string.
                text: match value.get("text") {
                    None => None,
                    Some(_) => Some(field("text")?),
                },
            }),
            "explain" => {
                let analyze = match value.get("analyze") {
                    None => false,
                    Some(v) => v
                        .as_bool()
                        .ok_or("`explain` needs a boolean `analyze` field")?,
                };
                let doc = match value.get("doc") {
                    None => None,
                    Some(_) => Some(field("doc")?),
                };
                if analyze && doc.is_none() {
                    return Err("`explain` with `\"analyze\": true` needs a `doc` field \
                                to run the query on"
                        .to_string());
                }
                Ok(Request::Explain {
                    program: field("program")?,
                    analyze,
                    doc,
                })
            }
            "stats" => Ok(Request::Stats),
            "metrics" => Ok(Request::Metrics),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!(
                "unknown op `{other}` (expected prepare, query, load_corpus, \
                 append_docs, update_doc, delete_docs, query_corpus, explain, \
                 stats, metrics, or shutdown)"
            )),
        }
    }

    /// The protocol op name of this request — the `op` label of the
    /// per-operation request metrics, so every counter family partitions
    /// over exactly these values (plus `"invalid"` for lines that never
    /// decode to a request).
    pub fn op_name(&self) -> &'static str {
        match self {
            Request::Prepare { .. } => "prepare",
            Request::Query { .. } => "query",
            Request::LoadCorpus { .. } => "load_corpus",
            Request::AppendDocs { .. } => "append_docs",
            Request::UpdateDoc { .. } => "update_doc",
            Request::DeleteDocs { .. } => "delete_docs",
            Request::QueryCorpus { .. } => "query_corpus",
            Request::Explain { .. } => "explain",
            Request::Stats => "stats",
            Request::Metrics => "metrics",
            Request::Shutdown => "shutdown",
        }
    }
}

/// Reads a whole-number JSON field as a `u32` document id.
fn doc_id(value: &Json, op: &str, name: &str) -> Result<u32, String> {
    value
        .get(name)
        .and_then(Json::as_usize)
        .filter(|&id| id <= u32::MAX as usize)
        .map(|id| id as u32)
        .ok_or_else(|| format!("`{op}` needs a document-id `{name}` field"))
}

/// Builds the standard failure response.
pub fn error_response(message: impl std::fmt::Display) -> Json {
    Json::object([
        ("ok", Json::Bool(false)),
        ("error", Json::string(message.to_string())),
    ])
}

/// Renders a relation as a JSON array of mapping objects; each mapping
/// maps a variable name to `{"span":[start,end],"text":…}` with the
/// 1-based span convention.
pub fn mappings_to_json(doc: &Document, set: &MappingSet) -> Json {
    Json::Array(
        set.iter()
            .map(|mapping| {
                Json::Object(
                    mapping
                        .iter()
                        .map(|(var, span)| {
                            (
                                var.to_string(),
                                Json::object([
                                    (
                                        "span",
                                        Json::Array(vec![
                                            Json::number(span.start as usize),
                                            Json::number(span.end as usize),
                                        ]),
                                    ),
                                    ("text", Json::string(doc.slice(span))),
                                ]),
                            )
                        })
                        .collect(),
                )
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use spanner_ql::PreparedQuery;

    #[test]
    fn every_op_parses() {
        let cases = [
            (r#"{"op":"prepare","program":"/a/"}"#, "prepare"),
            (r#"{"op":"query","program":"/a/","doc":"aa"}"#, "query"),
            (r#"{"op":"load_corpus","text":"a\nb"}"#, "load_corpus"),
            (r#"{"op":"append_docs","text":"a\nb"}"#, "append_docs"),
            (r#"{"op":"update_doc","line":3,"text":"new"}"#, "update_doc"),
            (r#"{"op":"delete_docs","lines":[0,2]}"#, "delete_docs"),
            (
                r#"{"op":"query_corpus","program":"/a/","text":"a\nb"}"#,
                "query_corpus",
            ),
            (r#"{"op":"query_corpus","program":"/a/"}"#, "query_corpus"),
            (r#"{"op":"explain","program":"/a/"}"#, "explain"),
            (
                r#"{"op":"explain","program":"/a/","analyze":true,"doc":"aa"}"#,
                "explain",
            ),
            (r#"{"op":"stats"}"#, "stats"),
            (r#"{"op":"metrics"}"#, "metrics"),
            (r#"{"op":"shutdown"}"#, "shutdown"),
        ];
        for (line, op) in cases {
            let request = Request::parse(line).unwrap();
            assert_eq!(request.op_name(), op, "{line}");
            match (op, &request) {
                ("prepare", Request::Prepare { .. })
                | ("query", Request::Query { .. })
                | ("load_corpus", Request::LoadCorpus { .. })
                | ("append_docs", Request::AppendDocs { .. })
                | ("update_doc", Request::UpdateDoc { .. })
                | ("delete_docs", Request::DeleteDocs { .. })
                | ("query_corpus", Request::QueryCorpus { .. })
                | ("explain", Request::Explain { .. })
                | ("stats", Request::Stats)
                | ("metrics", Request::Metrics)
                | ("shutdown", Request::Shutdown) => {}
                _ => panic!("{line} parsed to {request:?}"),
            }
        }
        // Plain explain defaults to no analysis; analyze carries the doc.
        assert_eq!(
            Request::parse(r#"{"op":"explain","program":"/a/"}"#).unwrap(),
            Request::Explain {
                program: "/a/".into(),
                analyze: false,
                doc: None,
            }
        );
        assert_eq!(
            Request::parse(r#"{"op":"explain","program":"/a/","analyze":true,"doc":"aa"}"#)
                .unwrap(),
            Request::Explain {
                program: "/a/".into(),
                analyze: true,
                doc: Some("aa".into()),
            }
        );
        // An omitted `text` targets the resident store, not an error.
        assert_eq!(
            Request::parse(r#"{"op":"query_corpus","program":"/a/"}"#).unwrap(),
            Request::QueryCorpus {
                program: "/a/".into(),
                text: None,
            }
        );
        // Mutation ops decode ids as numbers.
        assert_eq!(
            Request::parse(r#"{"op":"update_doc","line":3,"text":"new"}"#).unwrap(),
            Request::UpdateDoc {
                line: 3,
                text: "new".into(),
            }
        );
        assert_eq!(
            Request::parse(r#"{"op":"delete_docs","lines":[2,0,2]}"#).unwrap(),
            Request::DeleteDocs {
                lines: vec![2, 0, 2],
            }
        );
        assert_eq!(
            Request::parse(r#"{"op":"delete_docs","lines":[]}"#).unwrap(),
            Request::DeleteDocs { lines: vec![] }
        );
    }

    #[test]
    fn malformed_requests_are_diagnosed() {
        for (line, needle) in [
            ("", "invalid JSON"),
            ("not json", "invalid JSON"),
            ("[1,2]", "`op` field"),
            (r#"{"op":"frobnicate"}"#, "unknown op"),
            (r#"{"op":"query","program":"/a/"}"#, "`doc`"),
            (r#"{"op":"query","doc":"aa"}"#, "`program`"),
            (r#"{"op":"query","program":7,"doc":"aa"}"#, "`program`"),
            (r#"{"op":"load_corpus"}"#, "`text`"),
            (
                r#"{"op":"query_corpus","program":"/a/","text":7}"#,
                "`text`",
            ),
            (
                r#"{"op":"explain","program":"/a/","analyze":true}"#,
                "`doc`",
            ),
            (
                r#"{"op":"explain","program":"/a/","analyze":"yes"}"#,
                "`analyze`",
            ),
            (r#"{"op":"append_docs"}"#, "`text`"),
            (r#"{"op":"update_doc","text":"x"}"#, "`line`"),
            (r#"{"op":"update_doc","line":-1,"text":"x"}"#, "`line`"),
            (r#"{"op":"update_doc","line":1.5,"text":"x"}"#, "`line`"),
            (r#"{"op":"update_doc","line":0}"#, "`text`"),
            (r#"{"op":"delete_docs"}"#, "`lines`"),
            (r#"{"op":"delete_docs","lines":[0,"x"]}"#, "document ids"),
        ] {
            let err = Request::parse(line).unwrap_err();
            assert!(err.contains(needle), "{line:?}: {err}");
        }
    }

    #[test]
    fn mappings_render_with_paper_spans() {
        let q = PreparedQuery::prepare("/{x:a+}b/").unwrap();
        let doc = Document::new("aab");
        let set = q.evaluate(&doc).unwrap();
        let rendered = mappings_to_json(&doc, &set).to_string();
        // x = [1,3⟩ covering "aa" in the 1-based convention.
        assert_eq!(rendered, r#"[{"x":{"span":[1,3],"text":"aa"}}]"#);
    }

    #[test]
    fn error_response_shape() {
        let e = error_response("boom");
        assert_eq!(e.to_string(), r#"{"ok":false,"error":"boom"}"#);
    }
}
