//! The shard router: one front end over N backend daemons.
//!
//! PR 2 proved corpus evaluation bit-identical across *threads*; this
//! module lifts the same guarantee to *processes*. A router partitions a
//! corpus into contiguous shards ([`spanner_corpus::partition_ranges`]),
//! loads one shard per backend daemon over the ordinary line-JSON
//! protocol, fans every `query_corpus` out in parallel, and merges the
//! per-shard results back into corpus order. Because shards are
//! contiguous and each backend reports its results in local corpus
//! order, the merge is pure concatenation with a per-shard line offset —
//! the merged `results` array is bit-identical to a single daemon
//! holding the whole corpus, at any shard count (pinned by the 100-seed
//! `shard_oracle` suite).
//!
//! Robustness: every backend call is bounded by a connect timeout and an
//! overall response deadline, transport failures on idempotent
//! operations retry a bounded number of times with exponential backoff,
//! and a backend that stays unreachable produces a *degraded* response
//! that names the failed shard (`"degraded": true`, `"shard"`,
//! `"backend"`) instead of hanging the client or returning partial
//! results. Backend connections are pooled — one persistent connection
//! per shard, re-established only after a failure — so a request burst
//! does not pay (or leak) a TCP handshake per call.
//!
//! Operations that touch the corpus (`load_corpus`, `query_corpus`,
//! mutations) route to the shards; everything else (`prepare`, `query`,
//! `explain`, `stats`, `metrics`, `shutdown`) is served locally by the
//! front end, which runs the same engine. Shutting the router down does
//! *not* shut its backends down — they may serve other routers.

use crate::client::Client;
use crate::json::Json;
use crate::protocol::{error_response, Request};
use spanner_corpus::{partition_ranges, ShardMap};
use spanner_obs::{Counter, Histogram, Registry, LATENCY_BUCKETS};
use std::io;
use std::net::{SocketAddr, ToSocketAddrs};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Configuration of a shard router front end.
#[derive(Debug, Clone)]
pub struct RouterOptions {
    /// Backend daemon addresses, one per shard, in shard order.
    pub backends: Vec<String>,
    /// Per-backend TCP connect deadline.
    pub connect_timeout: Duration,
    /// Per-backend deadline for one full request/response round trip; a
    /// stalled or slow-dripping backend fails the call when it expires.
    pub read_timeout: Duration,
    /// Extra attempts after a transport failure, on idempotent
    /// operations only (`append_docs` is never retried — a duplicate
    /// append is worse than a degraded response).
    pub retries: usize,
    /// Backoff before the first retry; doubled per subsequent retry.
    pub retry_backoff: Duration,
}

impl Default for RouterOptions {
    fn default() -> RouterOptions {
        RouterOptions {
            backends: Vec::new(),
            connect_timeout: Duration::from_secs(1),
            read_timeout: Duration::from_secs(10),
            retries: 2,
            retry_backoff: Duration::from_millis(50),
        }
    }
}

/// Per-backend observability handles (all pre-registered; recording is
/// lock-free).
struct BackendMetrics {
    /// Request attempts sent to this backend (retries count again).
    requests: Counter,
    /// Calls that exhausted their retries and degraded.
    errors: Counter,
    /// Retry attempts (attempts beyond each call's first).
    retries: Counter,
    /// TCP connections established (stays flat while the pooled
    /// connection is healthy — the connection-reuse regression test
    /// watches this).
    connections: Counter,
    /// Round-trip latency of successful calls.
    latency: Histogram,
}

/// One backend daemon: its address and its pooled connection.
struct Backend {
    /// The configured address string (named in degraded responses).
    addr: String,
    /// The resolved socket address (resolved once, at bind).
    resolved: SocketAddr,
    /// The persistent pooled connection; `None` until first use and
    /// after any failure. Locked for the duration of a call, so
    /// concurrent router requests serialize per backend (and fan-out
    /// parallelism comes from the *shards*, which is the point).
    conn: Mutex<Option<Client>>,
    metrics: BackendMetrics,
}

/// What the router knows about the corpus it has sharded out.
struct RouterCorpus {
    /// Which global document ids live on which shard.
    map: ShardMap,
    /// Last-known store generation per shard (updated from every
    /// mutation response); the sum is the router-wide generation, equal
    /// to a single daemon's because every mutation lands on exactly one
    /// shard.
    generations: Vec<u64>,
}

impl RouterCorpus {
    fn generation(&self) -> u64 {
        self.generations.iter().sum()
    }
}

/// A shard router over N backend daemons. Owned by the serving `Shared`
/// state; its `route` method intercepts the corpus-level operations.
pub struct Router {
    options: RouterOptions,
    backends: Vec<Backend>,
    corpus: Mutex<Option<RouterCorpus>>,
    /// Degraded responses returned (any shard).
    degraded: Counter,
}

/// The typed degraded response: the standard error shape plus fields
/// that name the failed shard, so clients can distinguish "the query is
/// wrong" (plain error) from "a backend is down" (degraded).
fn degraded_response(shard: usize, backend: &str, error: &str) -> Json {
    Json::object([
        ("ok", Json::Bool(false)),
        (
            "error",
            Json::string(format!("shard {shard} ({backend}) unavailable: {error}")),
        ),
        ("degraded", Json::Bool(true)),
        ("shard", Json::number(shard)),
        ("backend", Json::string(backend)),
    ])
}

/// The single-daemon "nothing loaded" error, byte-identical to
/// `handle_request`'s so routed and unrouted deployments diagnose alike.
fn no_corpus() -> Json {
    error_response("no resident corpus (send `load_corpus` first)")
}

/// The store's out-of-bounds mutation error, mirrored byte-identically
/// (`spanner_store::StoreError::Mutation` through `Display`) so a router
/// rejects a bad document id with exactly the message a single daemon
/// would produce.
fn out_of_bounds(id: usize, len: usize) -> Json {
    error_response(format!(
        "invalid mutation: document id {id} out of bounds (corpus of {len})"
    ))
}

impl Router {
    /// Builds a router over `options.backends`, resolving every address
    /// and registering the per-shard metric families in `registry`. No
    /// connection is opened yet — backends may come up later.
    pub(crate) fn new(options: RouterOptions, registry: &Registry) -> io::Result<Router> {
        if options.backends.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "router needs at least one backend",
            ));
        }
        let shard_labels: Vec<String> =
            (0..options.backends.len()).map(|i| i.to_string()).collect();
        let requests = registry.counters(
            "spanner_router_backend_requests_total",
            "Backend request attempts, by shard",
            "shard",
            &shard_labels,
        );
        let errors = registry.counters(
            "spanner_router_backend_errors_total",
            "Backend calls that exhausted their retries, by shard",
            "shard",
            &shard_labels,
        );
        let retries = registry.counters(
            "spanner_router_backend_retries_total",
            "Backend retry attempts, by shard",
            "shard",
            &shard_labels,
        );
        let connections = registry.counters(
            "spanner_router_backend_connections_total",
            "Backend TCP connections established, by shard",
            "shard",
            &shard_labels,
        );
        let backends = options
            .backends
            .iter()
            .enumerate()
            .zip(requests)
            .zip(errors)
            .zip(retries)
            .zip(connections)
            .map(
                |(((((shard, addr), requests), errors), retries), connections)| {
                    let resolved = addr.to_socket_addrs()?.next().ok_or_else(|| {
                        io::Error::new(
                            io::ErrorKind::InvalidInput,
                            format!("backend address `{addr}` did not resolve"),
                        )
                    })?;
                    Ok(Backend {
                        addr: addr.clone(),
                        resolved,
                        conn: Mutex::new(None),
                        metrics: BackendMetrics {
                            requests,
                            errors,
                            retries,
                            connections,
                            latency: registry.histogram(
                                "spanner_router_backend_seconds",
                                "Backend round-trip latency of successful calls, by shard",
                                &[("shard", &shard.to_string())],
                                LATENCY_BUCKETS,
                            ),
                        },
                    })
                },
            )
            .collect::<io::Result<Vec<Backend>>>()?;
        Ok(Router {
            backends,
            corpus: Mutex::new(None),
            degraded: registry.counter(
                "spanner_router_degraded_total",
                "Degraded responses returned because a shard stayed unreachable",
                &[],
            ),
            options,
        })
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.backends.len()
    }

    /// Routes one request to the shards; `None` means the operation is
    /// local to the front end.
    pub(crate) fn route(&self, request: &Request) -> Option<Json> {
        match request {
            Request::LoadCorpus { text } => Some(self.load_corpus(text)),
            Request::QueryCorpus {
                program,
                text: Some(text),
            } => Some(self.query_text(program, text)),
            Request::QueryCorpus {
                program,
                text: None,
            } => Some(self.query_resident(program)),
            Request::AppendDocs { text } => Some(self.append_docs(text)),
            Request::UpdateDoc { line, text } => Some(self.update_doc(*line, text)),
            Request::DeleteDocs { lines } => Some(self.delete_docs(lines)),
            _ => None,
        }
    }

    /// One bounded backend call: pooled connection (re-established on
    /// demand), overall response deadline, bounded retry with backoff on
    /// idempotent operations. `Err` carries the fully-formed degraded
    /// response.
    fn call(&self, shard: usize, line: &str, idempotent: bool) -> Result<Json, Json> {
        let backend = &self.backends[shard];
        let mut conn = backend.conn.lock().expect("backend pool poisoned");
        let attempts = 1 + if idempotent { self.options.retries } else { 0 };
        let mut last_error = String::new();
        for attempt in 0..attempts {
            if attempt > 0 {
                backend.metrics.retries.inc();
                // Exponential, capped so a misconfigured retry count
                // cannot overflow the shift.
                std::thread::sleep(self.options.retry_backoff * (1u32 << (attempt - 1).min(16)));
            }
            backend.metrics.requests.inc();
            let started = Instant::now();
            match self.attempt(backend, &mut conn, line) {
                Ok(response) => {
                    backend.metrics.latency.observe_duration(started.elapsed());
                    return Ok(response);
                }
                Err(e) => {
                    // A failed connection is never reused: the next
                    // attempt (or call) reconnects from scratch.
                    *conn = None;
                    last_error = e.to_string();
                }
            }
        }
        backend.metrics.errors.inc();
        self.degraded.inc();
        Err(degraded_response(shard, &backend.addr, &last_error))
    }

    /// One attempt: connect if the pool slot is empty, send, read one
    /// response line under the deadline, decode.
    fn attempt(
        &self,
        backend: &Backend,
        conn: &mut Option<Client>,
        line: &str,
    ) -> io::Result<Json> {
        if conn.is_none() {
            let mut client =
                Client::connect_with_timeout(&backend.resolved, self.options.connect_timeout)?;
            client.set_deadline(Some(self.options.read_timeout))?;
            backend.metrics.connections.inc();
            *conn = Some(client);
        }
        let client = conn.as_mut().expect("slot just filled");
        let response = client.request_line(line)?;
        Json::parse(&response).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("malformed backend response: {e}"),
            )
        })
    }

    /// Sends one pre-rendered request line per shard in parallel;
    /// returns per-shard outcomes in shard order. The fan-out threads
    /// are scoped and every call is deadline-bounded, so the join — and
    /// therefore this function — is too: no worker can leak.
    fn fan_out(&self, lines: &[String], idempotent: bool) -> Vec<Result<Json, Json>> {
        std::thread::scope(|scope| {
            let handles: Vec<_> = lines
                .iter()
                .enumerate()
                .map(|(shard, line)| scope.spawn(move || self.call(shard, line, idempotent)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("fan-out worker panicked"))
                .collect()
        })
    }

    /// Re-encodes a contiguous slice of corpus lines as a protocol
    /// `text` field. `str::lines` cannot represent a *trailing* empty
    /// line, so a slice ending with an empty document gains one extra
    /// newline (`["a", ""]` encodes to `"a\n\n"`, which decodes back to
    /// exactly those two documents) — without it the shard would load
    /// one document short and the merge would no longer be bit-identical
    /// to the single daemon.
    fn slice_text(lines: &[&str]) -> String {
        let mut text = lines.join("\n");
        if lines.last().is_some_and(|last| last.is_empty()) {
            text.push('\n');
        }
        text
    }

    /// Routed `load_corpus`: partition the text contiguously into
    /// exactly N shards, load each shard's slice in parallel, record the
    /// shard map. Idempotent (a reload fully replaces every shard).
    fn load_corpus(&self, text: &str) -> Json {
        let lines: Vec<&str> = text.lines().collect();
        let ranges = partition_ranges(lines.len(), self.shards());
        let payloads: Vec<String> = ranges
            .iter()
            .map(|range| {
                Json::object([
                    ("op", Json::string("load_corpus")),
                    (
                        "text",
                        Json::string(Router::slice_text(&lines[range.clone()])),
                    ),
                ])
                .to_string()
            })
            .collect();
        let results = self.fan_out(&payloads, true);
        let mut sizes = Vec::with_capacity(results.len());
        let mut generations = Vec::with_capacity(results.len());
        let mut documents = 0usize;
        let mut bytes = 0usize;
        let mut trigrams = 0usize;
        for result in &results {
            let response = match result {
                Ok(response) => response,
                Err(degraded) => {
                    // A partial load is not a corpus: forget any previous
                    // map so resident queries fail loudly, not subtly.
                    *self.corpus.lock().expect("router corpus poisoned") = None;
                    return degraded.clone();
                }
            };
            if response.get("ok").and_then(Json::as_bool) != Some(true) {
                *self.corpus.lock().expect("router corpus poisoned") = None;
                return response.clone();
            }
            let count = field(response, "documents");
            sizes.push(count);
            documents += count;
            bytes += field(response, "bytes");
            trigrams += field(response, "trigrams");
            generations.push(field(response, "generation") as u64);
        }
        let map = ShardMap::new(sizes.clone());
        *self.corpus.lock().expect("router corpus poisoned") = Some(RouterCorpus {
            map,
            generations: generations.clone(),
        });
        Json::object([
            ("ok", Json::Bool(true)),
            ("documents", Json::number(documents)),
            ("bytes", Json::number(bytes)),
            // Per-shard sums: distinct trigrams can repeat across shards,
            // so this is an upper bound on the single-store count.
            ("trigrams", Json::number(trigrams)),
            (
                "generation",
                Json::number(generations.iter().sum::<u64>() as usize),
            ),
            (
                "shards",
                Json::Array(sizes.into_iter().map(Json::number).collect()),
            ),
        ])
    }

    /// Routed stateless `query_corpus`: partition the shipped text like
    /// `load_corpus` would, evaluate every slice in parallel, merge.
    fn query_text(&self, program: &str, text: &str) -> Json {
        let lines: Vec<&str> = text.lines().collect();
        let ranges = partition_ranges(lines.len(), self.shards());
        let payloads: Vec<String> = ranges
            .iter()
            .map(|range| {
                Json::object([
                    ("op", Json::string("query_corpus")),
                    ("program", Json::string(program)),
                    (
                        "text",
                        Json::string(Router::slice_text(&lines[range.clone()])),
                    ),
                ])
                .to_string()
            })
            .collect();
        let results = self.fan_out(&payloads, true);
        let bases: Vec<usize> = ranges.iter().map(|r| r.start).collect();
        merge_corpus_responses(results, &bases, None)
    }

    /// Routed resident `query_corpus`: fan the identical request out to
    /// every shard's resident store, merge with the shard map's offsets.
    fn query_resident(&self, program: &str) -> Json {
        let Some(bases) = ({
            let corpus = self.corpus.lock().expect("router corpus poisoned");
            corpus.as_ref().map(|c| {
                (0..c.map.shards())
                    .map(|s| c.map.base(s))
                    .collect::<Vec<usize>>()
            })
        }) else {
            return no_corpus();
        };
        let payload = Json::object([
            ("op", Json::string("query_corpus")),
            ("program", Json::string(program)),
        ])
        .to_string();
        let payloads = vec![payload; self.shards()];
        let results = self.fan_out(&payloads, true);
        merge_corpus_responses(results, &bases, Some(()))
    }

    /// Routed `append_docs`: new documents go to the last shard, keeping
    /// every existing id stable. Never retried (the one non-idempotent
    /// operation — a duplicated append would corrupt the corpus).
    fn append_docs(&self, text: &str) -> Json {
        let mut corpus = self.corpus.lock().expect("router corpus poisoned");
        let Some(corpus) = corpus.as_mut() else {
            return no_corpus();
        };
        let shard = self.shards() - 1;
        let payload = Json::object([
            ("op", Json::string("append_docs")),
            ("text", Json::string(text)),
        ])
        .to_string();
        let response = match self.call(shard, &payload, false) {
            Ok(response) => response,
            Err(degraded) => return degraded,
        };
        if response.get("ok").and_then(Json::as_bool) != Some(true) {
            return response;
        }
        let appended = field(&response, "appended");
        corpus.map.append(appended);
        corpus.generations[shard] = field(&response, "generation") as u64;
        Json::object([
            ("ok", Json::Bool(true)),
            ("appended", Json::number(appended)),
            ("documents", Json::number(corpus.map.len())),
            ("generation", Json::number(corpus.generation() as usize)),
        ])
    }

    /// Routed `update_doc`: locate the owning shard via the map's prefix
    /// sums, translate to the shard-local id, forward.
    fn update_doc(&self, line: u32, text: &str) -> Json {
        let mut corpus = self.corpus.lock().expect("router corpus poisoned");
        let Some(corpus) = corpus.as_mut() else {
            return no_corpus();
        };
        let Some((shard, local)) = corpus.map.locate(line as usize) else {
            return out_of_bounds(line as usize, corpus.map.len());
        };
        let payload = Json::object([
            ("op", Json::string("update_doc")),
            ("line", Json::number(local)),
            ("text", Json::string(text)),
        ])
        .to_string();
        // Idempotent in content (re-applying the same replacement
        // converges), so transport failures retry.
        let response = match self.call(shard, &payload, true) {
            Ok(response) => response,
            Err(degraded) => return degraded,
        };
        if response.get("ok").and_then(Json::as_bool) != Some(true) {
            return response;
        }
        corpus.generations[shard] = field(&response, "generation") as u64;
        Json::object([
            ("ok", Json::Bool(true)),
            ("documents", Json::number(corpus.map.len())),
            ("generation", Json::number(corpus.generation() as usize)),
        ])
    }

    /// Routed `delete_docs`: validate ids in order against the map
    /// (first bad id aborts with the single-daemon error, earlier ones
    /// still apply), group the valid prefix per owning shard preserving
    /// order, fan out, merge. Deletes are idempotent, so retried.
    fn delete_docs(&self, lines: &[u32]) -> Json {
        let mut corpus = self.corpus.lock().expect("router corpus poisoned");
        let Some(corpus) = corpus.as_mut() else {
            return no_corpus();
        };
        let mut per_shard: Vec<Vec<usize>> = vec![Vec::new(); self.shards()];
        let mut bad: Option<usize> = None;
        let mut deleted = 0usize;
        for &id in lines {
            match corpus.map.locate(id as usize) {
                Some((shard, local)) => {
                    per_shard[shard].push(local);
                    deleted += 1;
                }
                None => {
                    bad = Some(id as usize);
                    break;
                }
            }
        }
        let payloads: Vec<Option<String>> = per_shard
            .iter()
            .map(|ids| {
                if ids.is_empty() {
                    None
                } else {
                    Some(
                        Json::object([
                            ("op", Json::string("delete_docs")),
                            (
                                "lines",
                                Json::Array(ids.iter().map(|&id| Json::number(id)).collect()),
                            ),
                        ])
                        .to_string(),
                    )
                }
            })
            .collect();
        // Shards with nothing to delete are skipped entirely; ids within
        // one shard keep their request order, and ids on different shards
        // are independent, so grouping preserves the daemon's in-order
        // semantics.
        for (shard, payload) in payloads.iter().enumerate() {
            let Some(payload) = payload else { continue };
            let response = match self.call(shard, payload, true) {
                Ok(response) => response,
                Err(degraded) => return degraded,
            };
            if response.get("ok").and_then(Json::as_bool) != Some(true) {
                return response;
            }
            corpus.generations[shard] = field(&response, "generation") as u64;
        }
        if let Some(id) = bad {
            return out_of_bounds(id, corpus.map.len());
        }
        Json::object([
            ("ok", Json::Bool(true)),
            ("deleted", Json::number(deleted)),
            ("documents", Json::number(corpus.map.len())),
            ("generation", Json::number(corpus.generation() as usize)),
        ])
    }

    /// The router section of the `stats` response: topology, shard map,
    /// and per-backend transport counters. Deliberately local — a stats
    /// probe must answer even with every backend down.
    pub(crate) fn stats(&self) -> Json {
        let corpus = self.corpus.lock().expect("router corpus poisoned");
        let (shards, documents, generation) = match corpus.as_ref() {
            None => (Json::Null, Json::Null, Json::Null),
            Some(c) => (
                Json::Array(
                    (0..c.map.shards())
                        .map(|s| Json::number(c.map.size(s)))
                        .collect(),
                ),
                Json::number(c.map.len()),
                Json::number(c.generation() as usize),
            ),
        };
        Json::object([
            (
                "backends",
                Json::Array(
                    self.backends
                        .iter()
                        .map(|b| {
                            Json::object([
                                ("addr", Json::string(b.addr.clone())),
                                ("requests", Json::number(b.metrics.requests.get() as usize)),
                                ("errors", Json::number(b.metrics.errors.get() as usize)),
                                ("retries", Json::number(b.metrics.retries.get() as usize)),
                                (
                                    "connections",
                                    Json::number(b.metrics.connections.get() as usize),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("shards", shards),
            ("documents", documents),
            ("generation", generation),
            ("degraded_total", Json::number(self.degraded.get() as usize)),
        ])
    }
}

/// Reads a numeric response field, defaulting to zero — backend
/// responses are produced by our own daemon, so a missing field is a
/// version skew bug, not a condition to diagnose per call site.
fn field(response: &Json, name: &str) -> usize {
    response.get(name).and_then(Json::as_usize).unwrap_or(0)
}

/// Merges per-shard `query_corpus` responses back into the single-daemon
/// response, bit-identically:
///
/// * any degraded shard fails the whole query (degraded, never partial);
/// * any shard-level error response (e.g. a compile error — identical on
///   every shard, since they run the same program) is returned as-is;
/// * aggregate counters sum; `cached` ANDs (the merged query was cached
///   iff every shard had it cached);
/// * `results` concatenate in shard order with each entry's `line`
///   rebased by the shard's global offset — contiguous shards make this
///   exactly the single daemon's corpus-order array;
/// * resident extras (`with_store` set): `candidates` sums (`null` on
///   the full-scan fallback, which the shards decide identically because
///   it depends only on the program), `selectivity` is recomputed from
///   the summed numerator and denominator (same integers ⇒ same float ⇒
///   same rendering as a single daemon), delta/view counters sum.
fn merge_corpus_responses(
    results: Vec<Result<Json, Json>>,
    bases: &[usize],
    with_store: Option<()>,
) -> Json {
    let mut responses = Vec::with_capacity(results.len());
    for result in results {
        match result {
            Ok(response) => {
                if response.get("ok").and_then(Json::as_bool) != Some(true) {
                    return response;
                }
                responses.push(response);
            }
            Err(degraded) => return degraded,
        }
    }
    let mut cached = true;
    let mut documents = 0usize;
    let mut matched = 0usize;
    let mut mappings = 0usize;
    let mut skipped = 0usize;
    let mut rejected = 0usize;
    let mut candidates: Option<usize> = Some(0);
    let mut delta_docs = 0usize;
    let mut view_hits = 0usize;
    let mut invalidated = 0usize;
    let mut generation = 0usize;
    let mut merged_results: Vec<Json> = Vec::new();
    for (shard, response) in responses.iter().enumerate() {
        cached &= response.get("cached").and_then(Json::as_bool) == Some(true);
        documents += field(response, "documents");
        matched += field(response, "matched");
        mappings += field(response, "mappings");
        skipped += field(response, "skipped");
        rejected += field(response, "rejected");
        if with_store.is_some() {
            candidates = match (candidates, response.get("candidates")) {
                (Some(total), Some(Json::Number(n))) => Some(total + *n as usize),
                _ => None,
            };
            delta_docs += field(response, "delta_docs");
            view_hits += field(response, "view_hits");
            invalidated += field(response, "invalidated");
            generation += field(response, "generation");
        }
        let base = bases[shard];
        if let Some(entries) = response.get("results").and_then(Json::as_array) {
            for entry in entries {
                let Json::Object(pairs) = entry else { continue };
                merged_results.push(Json::Object(
                    pairs
                        .iter()
                        .map(|(key, value)| {
                            if key == "line" {
                                let local = value.as_usize().unwrap_or(0);
                                (key.clone(), Json::number(base + local))
                            } else {
                                (key.clone(), value.clone())
                            }
                        })
                        .collect(),
                ));
            }
        }
    }
    let mut fields = vec![
        ("ok", Json::Bool(true)),
        ("cached", Json::Bool(cached)),
        ("documents", Json::number(documents)),
        ("matched", Json::number(matched)),
        ("mappings", Json::number(mappings)),
        ("skipped", Json::number(skipped)),
        ("rejected", Json::number(rejected)),
    ];
    if with_store.is_some() {
        let selectivity = match (candidates, documents) {
            (Some(c), n) if n > 0 => c as f64 / n as f64,
            _ => 1.0,
        };
        fields.push((
            "candidates",
            match candidates {
                Some(c) => Json::number(c),
                None => Json::Null,
            },
        ));
        fields.push(("selectivity", Json::Number(selectivity)));
        fields.push(("delta_docs", Json::number(delta_docs)));
        fields.push(("view_hits", Json::number(view_hits)));
        fields.push(("invalidated", Json::number(invalidated)));
        fields.push(("generation", Json::number(generation)));
    }
    fields.push(("results", Json::Array(merged_results)));
    Json::object(fields)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degraded_responses_are_typed() {
        let d = degraded_response(2, "127.0.0.1:9", "connect timed out");
        assert_eq!(d.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(d.get("degraded").and_then(Json::as_bool), Some(true));
        assert_eq!(d.get("shard").and_then(Json::as_usize), Some(2));
        assert_eq!(d.get("backend").and_then(Json::as_str), Some("127.0.0.1:9"));
        let message = d.get("error").and_then(Json::as_str).unwrap();
        assert!(message.contains("shard 2"));
        assert!(message.contains("127.0.0.1:9"));
        assert!(message.contains("connect timed out"));
    }

    #[test]
    fn merge_is_concatenation_with_rebased_lines() {
        let shard = |lines: &[(usize, usize)], cached: bool| {
            Json::object([
                ("ok", Json::Bool(true)),
                ("cached", Json::Bool(cached)),
                ("documents", Json::number(3)),
                ("matched", Json::number(lines.len())),
                (
                    "mappings",
                    Json::number(lines.iter().map(|&(_, c)| c).sum()),
                ),
                ("skipped", Json::number(0)),
                ("rejected", Json::number(0)),
                (
                    "results",
                    Json::Array(
                        lines
                            .iter()
                            .map(|&(line, count)| {
                                Json::object([
                                    ("line", Json::number(line)),
                                    ("count", Json::number(count)),
                                    ("mappings", Json::Array(Vec::new())),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ])
        };
        let merged = merge_corpus_responses(
            vec![
                Ok(shard(&[(0, 1), (2, 2)], true)),
                Ok(shard(&[(1, 4)], false)),
            ],
            &[0, 3],
            None,
        );
        assert_eq!(merged.get("ok").and_then(Json::as_bool), Some(true));
        // cached only when every shard was cached.
        assert_eq!(merged.get("cached").and_then(Json::as_bool), Some(false));
        assert_eq!(merged.get("documents").and_then(Json::as_usize), Some(6));
        assert_eq!(merged.get("matched").and_then(Json::as_usize), Some(3));
        assert_eq!(merged.get("mappings").and_then(Json::as_usize), Some(7));
        let results = merged.get("results").and_then(Json::as_array).unwrap();
        let lines: Vec<usize> = results
            .iter()
            .map(|r| r.get("line").and_then(Json::as_usize).unwrap())
            .collect();
        // Shard 1's local line 1 rebased to global 4; corpus order kept.
        assert_eq!(lines, vec![0, 2, 4]);
    }

    #[test]
    fn merge_propagates_shard_errors_and_degradation() {
        let error = error_response("syntax error");
        let merged = merge_corpus_responses(vec![Ok(error.clone())], &[0], None);
        assert_eq!(merged.to_string(), error.to_string());
        let degraded = degraded_response(1, "x", "boom");
        let merged = merge_corpus_responses(vec![Ok(error), Err(degraded.clone())], &[0, 1], None);
        // A shard-level error wins only if no transport degradation is
        // seen first in shard order... degradation short-circuits in
        // encounter order; here shard 0's error response returns first.
        assert_eq!(
            merged.get("error").and_then(Json::as_str),
            Some("syntax error")
        );
        let merged = merge_corpus_responses(vec![Err(degraded.clone())], &[0], None);
        assert_eq!(merged.get("degraded").and_then(Json::as_bool), Some(true));
    }
}
