//! A minimal JSON value type with a parser and a serializer.
//!
//! The serve protocol is line-delimited JSON over TCP, and the workspace
//! builds offline (no serde), so this module implements the small JSON
//! subset the protocol needs: the full value grammar on input (objects,
//! arrays, strings with escapes, numbers, booleans, null), compact
//! single-line rendering on output. Object keys keep their insertion
//! order, so responses render deterministically.
//!
//! ```
//! use spanner_serve::json::Json;
//!
//! let v = Json::parse(r#"{"op":"query","threads":2}"#).unwrap();
//! assert_eq!(v.get("op").and_then(Json::as_str), Some("query"));
//! assert_eq!(v.get("threads").and_then(Json::as_usize), Some(2));
//! assert_eq!(v.to_string(), r#"{"op":"query","threads":2}"#);
//! ```

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as a double, like JavaScript).
    Number(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; keys keep insertion order and are not deduplicated on
    /// construction ([`Json::get`] returns the first match, like every
    /// first-wins JSON reader).
    Object(Vec<(String, Json)>),
}

/// A JSON parse error: what went wrong and the byte position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset into the input where the problem was detected.
    pub position: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid JSON at byte {}: {}",
            self.position, self.message
        )
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses one JSON value from the whole input (trailing non-whitespace
    /// is an error).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(err("trailing characters after the value", pos));
        }
        Ok(value)
    }

    /// Builds an object from key/value pairs, in order.
    pub fn object<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds a string value.
    pub fn string(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Builds a number value from any unsigned count.
    pub fn number(n: usize) -> Json {
        Json::Number(n as f64)
    }

    /// Member lookup on objects (first match); `None` on other values.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, when this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload, when this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer count, when this is a
    /// whole number in range.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u32::MAX as f64 => {
                Some(*n as usize)
            }
            _ => None,
        }
    }

    /// The element list, when this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Number(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Object(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Writes a JSON string literal with the mandatory escapes (quote,
/// backslash, control characters). Unescaped stretches are written as
/// one fragment each — per-character fragments would dominate the cost
/// of rendering large document payloads.
fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    let mut plain = 0; // start of the pending run of unescaped bytes
    for (i, c) in s.char_indices() {
        let escape: Option<&str> = match c {
            '"' => Some("\\\""),
            '\\' => Some("\\\\"),
            '\n' => Some("\\n"),
            '\r' => Some("\\r"),
            '\t' => Some("\\t"),
            c if (c as u32) < 0x20 => None, // \u escape, formatted below
            _ => continue,
        };
        f.write_str(&s[plain..i])?;
        match escape {
            Some(text) => f.write_str(text)?,
            None => write!(f, "\\u{:04x}", c as u32)?,
        }
        plain = i + c.len_utf8();
    }
    f.write_str(&s[plain..])?;
    f.write_str("\"")
}

fn err(message: &str, position: usize) -> JsonError {
    JsonError {
        message: message.to_string(),
        position,
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err("unexpected end of input", *pos)),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_keyword(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_keyword(bytes, pos, "null", Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        Some(c) => Err(err(&format!("unexpected character `{}`", *c as char), *pos)),
    }
}

fn parse_keyword(
    bytes: &[u8],
    pos: &mut usize,
    keyword: &str,
    value: Json,
) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(keyword.as_bytes()) {
        *pos += keyword.len();
        Ok(value)
    } else {
        Err(err(&format!("expected `{keyword}`"), *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && (bytes[*pos].is_ascii_digit() || matches!(bytes[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ASCII slice");
    text.parse::<f64>()
        .ok()
        // Overflowing literals like 1e999 parse to infinity, which has no
        // JSON rendering — reject them so every accepted value round-trips.
        .filter(|n| n.is_finite())
        .map(Json::Number)
        .ok_or_else(|| err(&format!("invalid number `{text}`"), start))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    debug_assert_eq!(bytes[*pos], b'"');
    let start = *pos;
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err("unterminated string", start)),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    None => return Err(err("dangling escape", *pos)),
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| err("truncated \\u escape", *pos))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| err("non-ASCII \\u escape", *pos))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| err("invalid \\u escape", *pos))?;
                        // Surrogate pairs: a high surrogate must be followed
                        // by an escaped low surrogate.
                        let c = if (0xD800..0xDC00).contains(&code) {
                            let rest = bytes.get(*pos + 5..*pos + 11);
                            let low = rest
                                .filter(|r| r.starts_with(b"\\u"))
                                .and_then(|r| std::str::from_utf8(&r[2..6]).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .filter(|l| (0xDC00..0xE000).contains(l))
                                .ok_or_else(|| err("unpaired surrogate", *pos))?;
                            *pos += 6;
                            let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                            char::from_u32(combined)
                                .ok_or_else(|| err("invalid code point", *pos))?
                        } else {
                            char::from_u32(code).ok_or_else(|| err("unpaired surrogate", *pos))?
                        };
                        out.push(c);
                        *pos += 4;
                    }
                    Some(c) => {
                        return Err(err(&format!("invalid escape `\\{}`", *c as char), *pos))
                    }
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume the maximal run of unescaped bytes in one copy.
                // The input is a &str, so the bytes are valid UTF-8 by
                // construction, and `"` / `\` are ASCII — never part of a
                // multi-byte character — so the run boundary is a char
                // boundary. (Per-character consumption here would rescan
                // the tail per char: quadratic on megabyte-sized
                // `load_corpus` strings.)
                let run = *pos;
                while *pos < bytes.len() && !matches!(bytes[*pos], b'"' | b'\\') {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&bytes[run..*pos]).expect("input is UTF-8"));
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    *pos += 1; // consume '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            _ => return Err(err("expected `,` or `]`", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    *pos += 1; // consume '{'
    let mut pairs = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Object(pairs));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(err("expected a string key", *pos));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(err("expected `:` after the key", *pos));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        pairs.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Object(pairs));
            }
            _ => return Err(err("expected `,` or `}`", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_the_protocol_shapes() {
        for text in [
            r#"{"op":"query","program":"/{x:a+}/","doc":"aa"}"#,
            r#"{"ok":true,"mappings":[{"x":{"span":[1,3],"text":"ab"}}]}"#,
            r#"{"ok":false,"error":"boom"}"#,
            r#"[1,2.5,-3,null,true,false,"s"]"#,
            r#"{}"#,
            r#"[]"#,
        ] {
            let v = Json::parse(text).unwrap();
            assert_eq!(v.to_string(), text, "round trip of {text}");
        }
    }

    #[test]
    fn escapes_round_trip() {
        let original = "line\nbreak\ttab \"quote\" back\\slash π∪⋈";
        let rendered = Json::Str(original.to_string()).to_string();
        let parsed = Json::parse(&rendered).unwrap();
        assert_eq!(parsed.as_str(), Some(original));
        // Unicode escapes on input.
        assert_eq!(
            Json::parse(r#""\u03c0 \ud83d\ude00""#).unwrap().as_str(),
            Some("π 😀")
        );
    }

    #[test]
    fn accessors() {
        let v = Json::parse(r#"{"a":1,"b":"x","c":[true],"d":null,"e":2.5}"#).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_usize), Some(1));
        assert_eq!(v.get("b").and_then(Json::as_str), Some("x"));
        assert_eq!(
            v.get("c").and_then(Json::as_array).map(<[Json]>::len),
            Some(1)
        );
        assert_eq!(v.get("d"), Some(&Json::Null));
        assert_eq!(v.get("e").and_then(Json::as_usize), None);
        assert_eq!(v.get("e").and_then(Json::as_f64), Some(2.5));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn whitespace_is_tolerated() {
        let v = Json::parse(" { \"a\" : [ 1 , 2 ] } ").unwrap();
        assert_eq!(
            v.get("a").and_then(Json::as_array).map(<[Json]>::len),
            Some(2)
        );
    }

    #[test]
    fn malformed_inputs_error_with_positions() {
        for text in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "{a:1}",
            "\"unterminated",
            "nul",
            "1 2",
            "1e999",
            "-1e999",
            "{\"a\":1}extra",
            "\"bad \\q escape\"",
            "\"\\u12",
            "\"\\ud800\"",
        ] {
            let e = Json::parse(text).unwrap_err();
            assert!(e.position <= text.len(), "{text:?}: {e}");
        }
    }

    #[test]
    fn numbers_render_compactly() {
        assert_eq!(Json::number(42).to_string(), "42");
        assert_eq!(Json::Number(-1.5).to_string(), "-1.5");
        assert_eq!(Json::Number(0.0).to_string(), "0");
    }
}
