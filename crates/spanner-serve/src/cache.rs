//! The shared prepared-query cache.
//!
//! Every entry point before the serve layer re-parsed, re-planned, and
//! re-compiled its program per invocation. [`QueryCache`] is where the
//! compile-once amortization becomes serving throughput: queries are keyed
//! by their (trimmed) program text and held as `Arc<PreparedQuery>`, so
//! every concurrent request for a hot program evaluates against the *same*
//! compiled plan with zero per-request compilation. Eviction is
//! least-recently-used at a fixed capacity; hit/miss/eviction counters are
//! surfaced through [`CacheStats`] (the `stats` protocol request).

use spanner_algebra::RaOptions;
use spanner_ql::{PreparedQuery, QlError};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Counters describing a cache's lifetime behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Maximum number of resident prepared queries (0 = caching disabled).
    pub capacity: usize,
    /// Prepared queries currently resident.
    pub entries: usize,
    /// Requests answered from a resident entry.
    pub hits: u64,
    /// Requests that had to compile (including failed compilations).
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
}

/// An LRU cache of compiled queries, shared by every connection worker.
///
/// The map mutex is held only for bookkeeping (lookup, recency bump,
/// eviction, slot insertion) — never across compilation. On a miss the
/// entry is inserted as a pending *slot* ([`OnceLock`]) and compiled
/// after the lock is released: concurrent requests for the same new
/// program block on that one slot and share the single compilation,
/// while requests for other programs — cache hits in particular — are
/// never stalled behind someone else's slow compile.
pub struct QueryCache {
    capacity: usize,
    state: Mutex<CacheState>,
}

#[derive(Default)]
struct CacheState {
    entries: HashMap<String, CacheEntry>,
    /// Monotonic recency clock; bumped on every touch.
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// The per-program compilation slot: set exactly once, by whichever
/// request got there first; everyone else blocks on it outside the map
/// lock.
type PrepareSlot = OnceLock<Result<Arc<PreparedQuery>, QlError>>;

struct CacheEntry {
    slot: Arc<PrepareSlot>,
    last_used: u64,
}

/// The cache key: the trimmed program text *and* the compilation options.
/// A plan compiled under one `RaOptions` (optimizer off, different state
/// budgets, fast path off) is not interchangeable with one compiled under
/// another — keying on the pair keeps the cache correct if per-request
/// options ever reach the daemon. The server's maintained query views key
/// on the same string, so a view can never be shared across plans that
/// could disagree.
pub(crate) fn cache_key(program: &str, options: RaOptions) -> String {
    format!(
        "{}:{}:{}:{}\n{}",
        options.max_states,
        options.max_signatures,
        options.optimize,
        options.scan_fast_path,
        PreparedQuery::cache_key(program)
    )
}

impl QueryCache {
    /// A cache holding at most `capacity` prepared queries. Capacity `0`
    /// disables residency entirely — every request compiles (the cold
    /// baseline of the serve benchmark).
    pub fn new(capacity: usize) -> QueryCache {
        QueryCache {
            capacity,
            state: Mutex::new(CacheState::default()),
        }
    }

    /// Returns the prepared form of `program`, compiling and caching it on
    /// a miss. The boolean is `true` when the request found an existing
    /// entry (possibly still compiling — it shares that compilation rather
    /// than starting its own). Compilation failures are reported and the
    /// failed entry is dropped — a mistyped program never poisons a slot.
    pub fn get_or_prepare(
        &self,
        program: &str,
        options: RaOptions,
    ) -> Result<(Arc<PreparedQuery>, bool), QlError> {
        let key = cache_key(program, options);
        let (slot, hit) = {
            let mut state = self.state.lock().expect("cache mutex poisoned");
            state.tick += 1;
            let tick = state.tick;
            if let Some(entry) = state.entries.get_mut(&key) {
                entry.last_used = tick;
                let slot = Arc::clone(&entry.slot);
                state.hits += 1;
                (slot, true)
            } else {
                state.misses += 1;
                let slot: Arc<PrepareSlot> = Arc::new(OnceLock::new());
                if self.capacity > 0 {
                    while state.entries.len() >= self.capacity {
                        let oldest = state
                            .entries
                            .iter()
                            .min_by_key(|(_, e)| e.last_used)
                            .map(|(k, _)| k.clone())
                            .expect("non-empty above capacity");
                        state.entries.remove(&oldest);
                        state.evictions += 1;
                    }
                    state.entries.insert(
                        key.clone(),
                        CacheEntry {
                            slot: Arc::clone(&slot),
                            last_used: tick,
                        },
                    );
                }
                (slot, false)
            }
        };
        // Compile (or wait for the compiling request) outside the lock.
        let result = slot
            .get_or_init(|| PreparedQuery::prepare_with_options(program, options).map(Arc::new));
        match result {
            Ok(query) => Ok((Arc::clone(query), hit)),
            Err(e) => {
                // Failed compilations are never served from the cache:
                // drop the entry (only if it is still *this* slot — a
                // concurrent retry may already have replaced it).
                let mut state = self.state.lock().expect("cache mutex poisoned");
                if let Some(entry) = state.entries.get(&key) {
                    if Arc::ptr_eq(&entry.slot, &slot) {
                        state.entries.remove(&key);
                    }
                }
                Err(e.clone())
            }
        }
    }

    /// Whether the program is resident under these options (does not touch
    /// recency).
    pub fn contains(&self, program: &str, options: RaOptions) -> bool {
        self.state
            .lock()
            .expect("cache mutex poisoned")
            .entries
            .contains_key(&cache_key(program, options))
    }

    /// A snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        let state = self.state.lock().expect("cache mutex poisoned");
        CacheStats {
            capacity: self.capacity,
            entries: state.entries.len(),
            hits: state.hits,
            misses: state.misses,
            evictions: state.evictions,
        }
    }
}

impl std::fmt::Debug for QueryCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        write!(
            f,
            "QueryCache({}/{} entries, {} hits, {} misses, {} evictions)",
            s.entries, s.capacity, s.hits, s.misses, s.evictions
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache_with(capacity: usize) -> QueryCache {
        QueryCache::new(capacity)
    }

    #[test]
    fn hit_returns_the_same_compiled_plan() {
        let cache = cache_with(4);
        let (first, hit1) = cache
            .get_or_prepare("/{x:a+}/", RaOptions::default())
            .unwrap();
        let (second, hit2) = cache
            .get_or_prepare("  /{x:a+}/  ", RaOptions::default())
            .unwrap();
        assert!(!hit1);
        assert!(hit2, "trimmed program must hit the same key");
        assert!(Arc::ptr_eq(&first, &second), "one compiled plan, shared");
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn lru_eviction_order() {
        let cache = cache_with(2);
        let opts = RaOptions::default();
        cache.get_or_prepare("/{x:a}/", opts).unwrap(); // A
        cache.get_or_prepare("/{x:b}/", opts).unwrap(); // B
        cache.get_or_prepare("/{x:a}/", opts).unwrap(); // touch A: B is now LRU
        cache.get_or_prepare("/{x:c}/", opts).unwrap(); // C evicts B
        assert!(
            cache.contains("/{x:a}/", opts),
            "recently-touched entry survives"
        );
        assert!(
            !cache.contains("/{x:b}/", opts),
            "least-recently-used is evicted"
        );
        assert!(cache.contains("/{x:c}/", opts));
        let s = cache.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.entries, 2);
    }

    #[test]
    fn differing_options_do_not_share_an_entry() {
        let cache = cache_with(4);
        let on = RaOptions::default();
        let off = RaOptions {
            scan_fast_path: false,
            ..RaOptions::default()
        };
        let (a, hit_a) = cache.get_or_prepare("/{x:a+}/", on).unwrap();
        let (b, hit_b) = cache.get_or_prepare("/{x:a+}/", off).unwrap();
        assert!(!hit_a && !hit_b, "distinct options compile separately");
        assert!(!Arc::ptr_eq(&a, &b), "each option set gets its own plan");
        assert_eq!(cache.stats().entries, 2);
        assert!(cache.contains("/{x:a+}/", on));
        assert!(cache.contains("/{x:a+}/", off));
        // And the same options still hit.
        let (_, hit) = cache.get_or_prepare("/{x:a+}/", off).unwrap();
        assert!(hit);
    }

    #[test]
    fn errors_are_not_cached() {
        let cache = cache_with(2);
        let opts = RaOptions::default();
        assert!(cache.get_or_prepare("let a = ;", opts).is_err());
        assert!(cache.get_or_prepare("let a = ;", opts).is_err());
        let s = cache.stats();
        assert_eq!(s.entries, 0);
        assert_eq!(s.misses, 2, "every failed compile is a miss");
    }

    #[test]
    fn zero_capacity_disables_residency() {
        let cache = cache_with(0);
        let opts = RaOptions::default();
        let (_, hit1) = cache.get_or_prepare("/{x:a}/", opts).unwrap();
        let (_, hit2) = cache.get_or_prepare("/{x:a}/", opts).unwrap();
        assert!(!hit1 && !hit2);
        assert_eq!(cache.stats().entries, 0);
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn concurrent_requests_share_one_entry() {
        let cache = Arc::new(cache_with(4));
        let plans: Vec<Arc<PreparedQuery>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let cache = Arc::clone(&cache);
                    scope.spawn(move || {
                        cache
                            .get_or_prepare("let a = /{x:a+}b*/; a;", RaOptions::default())
                            .unwrap()
                            .0
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for plan in &plans[1..] {
            assert!(Arc::ptr_eq(&plans[0], plan), "all threads share one plan");
        }
        let s = cache.stats();
        assert_eq!(s.misses, 1, "exactly one compilation");
        assert_eq!(s.hits, 7);
    }
}
