//! End-to-end protocol and cache tests against a live daemon: malformed
//! and oversized request lines, concurrent clients sharing one cache
//! entry, LRU eviction order observed through `stats`, counter accounting,
//! and graceful shutdown draining in-flight work.

use spanner_serve::{Client, Json, ServeOptions, Server};
use std::net::SocketAddr;
use std::thread::JoinHandle;

/// Starts a daemon with the given options, returns its address and join
/// handle.
fn start(options: ServeOptions) -> (SocketAddr, JoinHandle<std::io::Result<()>>) {
    Server::bind("127.0.0.1:0", options)
        .expect("bind to an ephemeral port")
        .spawn()
}

fn ok(v: &Json) -> bool {
    v.get("ok").and_then(Json::as_bool) == Some(true)
}

fn field(v: &Json, path: [&str; 2]) -> usize {
    v.get(path[0])
        .and_then(|o| o.get(path[1]))
        .and_then(Json::as_usize)
        .unwrap_or_else(|| panic!("missing {path:?} in {v}"))
}

#[test]
fn query_round_trip_and_cache_hit() {
    let (addr, handle) = start(ServeOptions::default());
    let mut client = Client::connect(addr).unwrap();

    let cold = client.query("/{x:a+}b/", "aab").unwrap();
    assert!(ok(&cold), "{cold}");
    assert_eq!(cold.get("cached").and_then(Json::as_bool), Some(false));
    assert_eq!(cold.get("count").and_then(Json::as_usize), Some(1));
    let mappings = cold.get("mappings").and_then(Json::as_array).unwrap();
    let x = mappings[0].get("x").unwrap();
    assert_eq!(x.get("text").and_then(Json::as_str), Some("aa"));
    assert_eq!(x.get("span").unwrap().to_string(), "[1,3]");

    // Same program (modulo outer whitespace): served from the cache, same
    // result.
    let warm = client.query("  /{x:a+}b/ ", "aab").unwrap();
    assert_eq!(warm.get("cached").and_then(Json::as_bool), Some(true));
    assert_eq!(warm.get("mappings"), cold.get("mappings"));

    client.shutdown().unwrap();
    handle.join().unwrap().unwrap();
}

#[test]
fn prepare_explain_and_corpus() {
    let (addr, handle) = start(ServeOptions::default());
    let mut client = Client::connect(addr).unwrap();

    let prepared = client
        .prepare("let a = /{x:a+}/; a minus /{x:aa}/;")
        .unwrap();
    assert!(ok(&prepared), "{prepared}");
    assert_eq!(prepared.get("static").and_then(Json::as_bool), Some(false));
    assert_eq!(
        prepared.get("vars").unwrap().to_string(),
        r#"["x"]"#,
        "{prepared}"
    );
    assert!(prepared
        .get("outline")
        .and_then(Json::as_str)
        .unwrap()
        .contains("dynamic plan"));

    let explained = client.explain("/{x:a}/").unwrap();
    assert!(ok(&explained));
    assert!(explained
        .get("explain")
        .and_then(Json::as_str)
        .unwrap()
        .contains("CompiledScan"));

    let corpus = client.query_corpus("/{x:a+}/", "aa\nb\na\n\naaa").unwrap();
    assert!(ok(&corpus), "{corpus}");
    assert_eq!(corpus.get("documents").and_then(Json::as_usize), Some(5));
    assert_eq!(corpus.get("matched").and_then(Json::as_usize), Some(3));
    let results = corpus.get("results").and_then(Json::as_array).unwrap();
    assert_eq!(results.len(), 3, "only matching lines are reported");
    assert_eq!(results[0].get("line").and_then(Json::as_usize), Some(0));
    assert_eq!(results[2].get("line").and_then(Json::as_usize), Some(4));
    // "b" fails the required-factor prefilter and "" the length filter.
    assert_eq!(corpus.get("skipped").and_then(Json::as_usize), Some(2));
    assert_eq!(corpus.get("rejected").and_then(Json::as_usize), Some(0));

    // The daemon-wide stats accumulate the same fast-path counters.
    let stats = client.stats().unwrap();
    assert_eq!(field(&stats, ["server", "docs_skipped"]), 2, "{stats}");
    assert_eq!(field(&stats, ["server", "docs_rejected"]), 0, "{stats}");

    client.shutdown().unwrap();
    handle.join().unwrap().unwrap();
}

#[test]
fn resident_store_round_trip() {
    let (addr, handle) = start(ServeOptions::default());
    let mut client = Client::connect(addr).unwrap();

    // Querying the store before loading one is a protocol error, not a
    // connection teardown.
    let early = client.query_store("/{x:a}/").unwrap();
    assert!(!ok(&early));
    assert!(early
        .get("error")
        .and_then(Json::as_str)
        .unwrap()
        .contains("load_corpus"));

    let corpus: String = (0..100)
        .map(|i| {
            if i % 20 == 0 {
                format!("line {i}: needle here\n")
            } else {
                format!("line {i}: nothing\n")
            }
        })
        .collect();
    let corpus = corpus.trim_end();
    let loaded = client.load_corpus(corpus).unwrap();
    assert!(ok(&loaded), "{loaded}");
    assert_eq!(loaded.get("documents").and_then(Json::as_usize), Some(100));
    assert!(loaded.get("trigrams").and_then(Json::as_usize).unwrap() > 0);

    // A selective query prunes through the trigram index: candidates far
    // below the corpus size, non-candidates skipped without being read.
    let program = "/.*needle{x: .*}/";
    let indexed = client.query_store(program).unwrap();
    assert!(ok(&indexed), "{indexed}");
    assert_eq!(indexed.get("documents").and_then(Json::as_usize), Some(100));
    assert_eq!(indexed.get("matched").and_then(Json::as_usize), Some(5));
    assert_eq!(indexed.get("candidates").and_then(Json::as_usize), Some(5));
    let selectivity = indexed.get("selectivity").and_then(Json::as_f64).unwrap();
    assert!(selectivity <= 0.05 + f64::EPSILON, "{indexed}");
    assert!(indexed.get("skipped").and_then(Json::as_usize).unwrap() >= 95);

    // Bit-identical to shipping the same corpus inline.
    let inline = client.query_corpus(program, corpus).unwrap();
    assert_eq!(indexed.get("results"), inline.get("results"));

    // No usable literal: the store falls back to a full scan and reports
    // `candidates: null`, still with the full result set.
    let fallback = client.query_store("/{x:[nh]+}/").unwrap();
    assert!(ok(&fallback), "{fallback}");
    assert_eq!(fallback.get("candidates"), Some(&Json::Null));
    assert_eq!(
        fallback.get("selectivity").and_then(Json::as_f64),
        Some(1.0)
    );

    // The resident store shows up in the daemon stats.
    let stats = client.stats().unwrap();
    assert_eq!(field(&stats, ["store", "documents"]), 100, "{stats}");
    assert!(field(&stats, ["store", "trigrams"]) > 0, "{stats}");

    client.shutdown().unwrap();
    handle.join().unwrap().unwrap();
}

#[test]
fn mutations_propagate_through_the_maintained_view() {
    let (addr, handle) = start(ServeOptions::default());
    let mut client = Client::connect(addr).unwrap();

    // Mutating before a corpus is loaded is a protocol error, not a
    // teardown.
    let early = client.append_docs("x").unwrap();
    assert!(!ok(&early));
    assert!(early
        .get("error")
        .and_then(Json::as_str)
        .unwrap()
        .contains("load_corpus"));

    let corpus: String = (0..50).map(|i| format!("line {i}: nothing\n")).collect();
    let loaded = client.load_corpus(corpus.trim_end()).unwrap();
    assert!(ok(&loaded), "{loaded}");
    let gen0 = loaded.get("generation").and_then(Json::as_usize).unwrap();

    // Cold query: every document is a view miss (the non-candidates are
    // recorded as empty without being read — all 50 here, since nothing
    // contains the literal).
    let program = "/.*needle{x: .*}/";
    let cold = client.query_store(program).unwrap();
    assert!(ok(&cold), "{cold}");
    assert_eq!(cold.get("matched").and_then(Json::as_usize), Some(0));
    assert_eq!(cold.get("delta_docs").and_then(Json::as_usize), Some(50));
    assert_eq!(cold.get("view_hits").and_then(Json::as_usize), Some(0));

    // Warm repeat: answered entirely from the maintained view.
    let warm = client.query_store(program).unwrap();
    assert_eq!(warm.get("delta_docs").and_then(Json::as_usize), Some(0));
    assert_eq!(warm.get("view_hits").and_then(Json::as_usize), Some(50));

    // Mutate: two appends, one rewrite, one delete — four changed ids.
    let appended = client
        .append_docs("new needle alpha\nnew needle beta")
        .unwrap();
    assert!(ok(&appended), "{appended}");
    assert_eq!(appended.get("appended").and_then(Json::as_usize), Some(2));
    assert_eq!(appended.get("documents").and_then(Json::as_usize), Some(52));
    let updated = client.update_doc(3, "line 3: needle now").unwrap();
    assert!(ok(&updated), "{updated}");
    let deleted = client.delete_docs(&[10]).unwrap();
    assert!(ok(&deleted), "{deleted}");
    assert_eq!(deleted.get("deleted").and_then(Json::as_usize), Some(1));
    let gen = deleted.get("generation").and_then(Json::as_usize).unwrap();
    assert!(
        gen > gen0,
        "mutations advance the generation: {gen0} -> {gen}"
    );

    // Only the four changed documents are re-evaluated; the other 48 are
    // served from the view. The update and the delete invalidate retained
    // entries; the appends never had any.
    let delta = client.query_store(program).unwrap();
    assert!(ok(&delta), "{delta}");
    assert_eq!(delta.get("documents").and_then(Json::as_usize), Some(52));
    assert_eq!(delta.get("delta_docs").and_then(Json::as_usize), Some(4));
    assert_eq!(delta.get("view_hits").and_then(Json::as_usize), Some(48));
    assert_eq!(delta.get("invalidated").and_then(Json::as_usize), Some(2));
    // The rewritten doc and the two appends match; the tombstoned slot is
    // empty and does not.
    assert_eq!(delta.get("matched").and_then(Json::as_usize), Some(3));
    assert_eq!(delta.get("generation").and_then(Json::as_usize), Some(gen));

    // And the refreshed view serves the whole corpus on the next repeat.
    let warm2 = client.query_store(program).unwrap();
    assert_eq!(warm2.get("delta_docs").and_then(Json::as_usize), Some(0));
    assert_eq!(warm2.get("view_hits").and_then(Json::as_usize), Some(52));
    assert_eq!(warm2.get("results"), delta.get("results"));

    // An out-of-range id is an error response, with earlier state intact.
    let bad = client.update_doc(999, "nope").unwrap();
    assert!(!ok(&bad), "{bad}");
    let stats = client.stats().unwrap();
    assert_eq!(field(&stats, ["store", "documents"]), 52, "{stats}");
    assert_eq!(field(&stats, ["store", "deleted"]), 1, "{stats}");
    assert!(field(&stats, ["store", "generation"]) >= 4, "{stats}");
    assert_eq!(field(&stats, ["store", "views"]), 1, "{stats}");

    client.shutdown().unwrap();
    handle.join().unwrap().unwrap();
}

#[test]
fn queries_stay_live_during_a_large_load_corpus() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    let (addr, handle) = start(ServeOptions {
        threads: 4,
        max_line_bytes: 64 << 20,
        ..ServeOptions::default()
    });
    let mut client = Client::connect(addr).unwrap();
    let loaded = client
        .load_corpus("alpha needle\nbeta\ngamma needle")
        .unwrap();
    assert!(ok(&loaded), "{loaded}");

    // A second connection replaces the corpus with a large one; the build
    // happens off the resident pointer, so queries on the first connection
    // must keep being answered (by the old store) for the whole duration.
    // Big enough that the build visibly overlaps the query loop, small
    // enough to stay quick in unoptimized test builds.
    const BIG: usize = 30_000;
    let done = Arc::new(AtomicBool::new(false));
    let loader_done = Arc::clone(&done);
    let loader = std::thread::spawn(move || {
        let mut loader = Client::connect(addr).unwrap();
        let big: String = (0..BIG)
            .map(|i| format!("filler document {i} with some text\n"))
            .collect();
        let response = loader.load_corpus(big.trim_end()).unwrap();
        loader_done.store(true, Ordering::SeqCst);
        response
    });

    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
    let mut live_during_load = 0;
    loop {
        assert!(
            std::time::Instant::now() < deadline,
            "load_corpus did not finish within a minute"
        );
        let before = done.load(Ordering::SeqCst);
        let response = client.query_store("/.*needle{x:.*}/").unwrap();
        assert!(ok(&response), "{response}");
        let documents = response.get("documents").and_then(Json::as_usize).unwrap();
        assert!(
            documents == 3 || documents == BIG,
            "a query observed a half-swapped store: {response}"
        );
        if !before && documents == 3 {
            live_during_load += 1;
        }
        if documents == BIG {
            break;
        }
    }
    assert!(
        live_during_load > 0,
        "no query was served while the load was in flight"
    );

    let response = loader.join().unwrap();
    assert!(ok(&response), "{response}");
    assert_eq!(
        response.get("documents").and_then(Json::as_usize),
        Some(BIG)
    );

    client.shutdown().unwrap();
    handle.join().unwrap().unwrap();
}

#[test]
fn malformed_requests_error_without_closing_the_connection() {
    let (addr, handle) = start(ServeOptions::default());
    let mut client = Client::connect(addr).unwrap();

    for bad in [
        "not json",
        "[]",
        r#"{"op":"frobnicate"}"#,
        r#"{"op":"query"}"#,
        r#"{"op":"query","program":17,"doc":"x"}"#,
    ] {
        let line = client.request_line(bad).unwrap();
        let response = Json::parse(&line).unwrap();
        assert_eq!(
            response.get("ok").and_then(Json::as_bool),
            Some(false),
            "{bad}"
        );
        assert!(response.get("error").is_some(), "{bad}");
    }
    // A compile error in the program text is an error response with the
    // pretty rendering, not a connection teardown.
    let response = client.query("let a = /x/; b", "x").unwrap();
    assert!(!ok(&response));
    assert!(response
        .get("error")
        .and_then(Json::as_str)
        .unwrap()
        .contains("unknown extractor"));

    // The connection still serves after all those errors.
    let good = client.query("/{x:a}/", "a").unwrap();
    assert!(ok(&good));

    client.shutdown().unwrap();
    handle.join().unwrap().unwrap();
}

#[test]
fn oversized_request_lines_are_rejected_and_drained() {
    let (addr, handle) = start(ServeOptions {
        max_line_bytes: 256,
        ..ServeOptions::default()
    });
    let mut client = Client::connect(addr).unwrap();

    // Far past the cap; the server must refuse without buffering it all.
    let huge = format!(
        r#"{{"op":"query","program":"/{{x:a}}/","doc":"{}"}}"#,
        "a".repeat(4096)
    );
    let line = client.request_line(&huge).unwrap();
    let response = Json::parse(&line).unwrap();
    assert!(!ok(&response));
    assert!(
        response
            .get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("256-byte limit"),
        "{response}"
    );

    // The oversized line was fully drained: the next request parses clean.
    let good = client.query("/{x:a}/", "a").unwrap();
    assert!(ok(&good), "{good}");

    client.shutdown().unwrap();
    handle.join().unwrap().unwrap();
}

#[test]
fn hostile_query_fails_fast_with_the_request_limits() {
    let (addr, handle) = start(ServeOptions {
        ra_options: spanner_algebra::RaOptions {
            max_signatures: 3,
            ..spanner_algebra::RaOptions::default()
        },
        ..ServeOptions::default()
    });
    let mut client = Client::connect(addr).unwrap();
    // The left scan yields all subspans of the document — far past the
    // 3-mapping intermediate limit; the server answers with an error
    // instead of materializing it.
    let response = client
        .query("/.*{x:.*}.*/ minus /{x:zz}/", "abcdefgh")
        .unwrap();
    assert!(!ok(&response), "{response}");
    assert!(
        response
            .get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("limit"),
        "{response}"
    );
    // The process survived; a benign query still works.
    let good = client.query("/{x:a}/", "a").unwrap();
    assert!(ok(&good));
    client.shutdown().unwrap();
    handle.join().unwrap().unwrap();
}

#[test]
fn concurrent_clients_share_one_cache_entry() {
    const PROGRAM: &str = "let a = /{x:a+}b*/; project x (a);";
    let (addr, handle) = start(ServeOptions {
        threads: 4,
        ..ServeOptions::default()
    });

    let clients: Vec<JoinHandle<()>> = (0..6)
        .map(|_| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for _ in 0..5 {
                    let response = client.query(PROGRAM, "aab").unwrap();
                    assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));
                    assert_eq!(response.get("count").and_then(Json::as_usize), Some(1));
                }
            })
        })
        .collect();
    for c in clients {
        c.join().unwrap();
    }

    let mut client = Client::connect(addr).unwrap();
    let stats = client.stats().unwrap();
    // 6 clients × 5 queries = 30 requests on one program: exactly one
    // compilation, 29 hits, one resident entry.
    assert_eq!(field(&stats, ["cache", "misses"]), 1, "{stats}");
    assert_eq!(field(&stats, ["cache", "hits"]), 29, "{stats}");
    assert_eq!(field(&stats, ["cache", "entries"]), 1, "{stats}");
    assert_eq!(field(&stats, ["cache", "evictions"]), 0, "{stats}");

    client.shutdown().unwrap();
    handle.join().unwrap().unwrap();
}

#[test]
fn lru_eviction_order_over_the_protocol() {
    let (addr, handle) = start(ServeOptions {
        cache_capacity: 2,
        ..ServeOptions::default()
    });
    let mut client = Client::connect(addr).unwrap();

    client.query("/{x:a}/", "a").unwrap(); // A: miss
    client.query("/{x:b}/", "b").unwrap(); // B: miss
    client.query("/{x:a}/", "a").unwrap(); // A: hit (B becomes LRU)
    client.query("/{x:c}/", "c").unwrap(); // C: miss, evicts B
    client.query("/{x:a}/", "a").unwrap(); // A: hit (survived eviction)
    let after_b_evicted = client.query("/{x:b}/", "b").unwrap(); // B: miss again

    assert_eq!(
        after_b_evicted.get("cached").and_then(Json::as_bool),
        Some(false),
        "B was the least-recently-used entry and must have been evicted"
    );
    let stats = client.stats().unwrap();
    assert_eq!(field(&stats, ["cache", "evictions"]), 2, "{stats}"); // B, then C or A
    assert_eq!(field(&stats, ["cache", "entries"]), 2, "{stats}");
    assert_eq!(field(&stats, ["cache", "misses"]), 4, "{stats}");
    assert_eq!(field(&stats, ["cache", "hits"]), 2, "{stats}");

    client.shutdown().unwrap();
    handle.join().unwrap().unwrap();
}

#[test]
fn stats_count_requests_and_connections() {
    let (addr, handle) = start(ServeOptions::default());
    let mut client = Client::connect(addr).unwrap();
    client.query("/{x:a}/", "a").unwrap();
    client.prepare("/{x:a}/").unwrap();
    let stats = client.stats().unwrap();
    assert!(ok(&stats));
    // query + prepare + this stats request (counted on arrival, so the
    // in-flight stats request is included in its own report).
    assert_eq!(field(&stats, ["server", "requests_total"]), 3, "{stats}");
    assert_eq!(field(&stats, ["server", "errors_total"]), 0, "{stats}");
    assert_eq!(field(&stats, ["server", "connections"]), 1, "{stats}");
    assert!(field(&stats, ["server", "corpus_threads"]) >= 1);
    assert!(
        stats
            .get("server")
            .and_then(|s| s.get("uptime_s"))
            .and_then(Json::as_f64)
            .is_some_and(|u| u >= 0.0),
        "{stats}"
    );
    // The per-op breakdown sums to the totals and partitions them right.
    let ops = stats.get("ops").unwrap();
    for (op, requests) in [("query", 1), ("prepare", 1), ("stats", 1)] {
        let entry = ops.get(op).unwrap_or_else(|| panic!("no ops.{op}"));
        assert_eq!(
            entry.get("requests").and_then(Json::as_usize),
            Some(requests)
        );
        assert_eq!(entry.get("errors").and_then(Json::as_usize), Some(0));
    }

    client.shutdown().unwrap();
    handle.join().unwrap().unwrap();
}

#[test]
fn error_requests_are_tallied_per_op() {
    let (addr, handle) = start(ServeOptions::default());
    let mut client = Client::connect(addr).unwrap();

    // One good query, one compile error, one undecodable line.
    assert!(ok(&client.query("/{x:a}/", "a").unwrap()));
    assert!(!ok(&client.query("let a = /x/; b", "x").unwrap()));
    let bad = client.request_line("not json").unwrap();
    assert!(!ok(&Json::parse(&bad).unwrap()));

    let stats = client.stats().unwrap();
    assert_eq!(field(&stats, ["server", "requests_total"]), 4, "{stats}");
    assert_eq!(field(&stats, ["server", "errors_total"]), 2, "{stats}");
    let ops = stats.get("ops").unwrap();
    let query = ops.get("query").unwrap();
    assert_eq!(query.get("requests").and_then(Json::as_usize), Some(2));
    assert_eq!(query.get("errors").and_then(Json::as_usize), Some(1));
    let invalid = ops.get("invalid").unwrap();
    assert_eq!(invalid.get("requests").and_then(Json::as_usize), Some(1));
    assert_eq!(invalid.get("errors").and_then(Json::as_usize), Some(1));

    client.shutdown().unwrap();
    handle.join().unwrap().unwrap();
}

#[test]
fn metrics_op_returns_prometheus_exposition() {
    let (addr, handle) = start(ServeOptions::default());
    let mut client = Client::connect(addr).unwrap();

    client.query("/{x:a+}/", "aaa").unwrap();
    client.query("/{x:a+}/", "aaa").unwrap(); // cache hit
    client.query_corpus("/{x:a+}/", "aa\nb\na").unwrap();

    let response = client.metrics().unwrap();
    assert!(ok(&response), "{response}");
    let text = response.get("metrics").and_then(Json::as_str).unwrap();

    // Structurally valid Prometheus text exposition.
    spanner_obs::expo::check_exposition(text).unwrap_or_else(|e| panic!("{e}\n---\n{text}"));

    // The families the daemon promises are present with the right types.
    for needle in [
        "# TYPE spanner_requests_total counter",
        "# TYPE spanner_request_seconds histogram",
        "# TYPE spanner_connections_total counter",
        "# TYPE spanner_cache_hits_total counter",
        "# TYPE spanner_corpus_docs_total counter",
        "# TYPE spanner_uptime_seconds gauge",
        r#"spanner_requests_total{op="query"} 2"#,
        r#"spanner_requests_total{op="query_corpus"} 1"#,
        // Second query + query_corpus both reuse the first query's entry.
        r#"spanner_cache_hits_total 2"#,
        r#"spanner_corpus_docs_total{outcome="skipped"} 1"#,
        r#"le="+Inf"#,
    ] {
        assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
    }
    // Histogram invariants on the wire: the query latency series has a
    // count of 2 observed requests.
    assert!(
        text.contains(r#"spanner_request_seconds_count{op="query"} 2"#),
        "{text}"
    );

    client.shutdown().unwrap();
    handle.join().unwrap().unwrap();
}

#[test]
fn explain_analyze_round_trip() {
    let (addr, handle) = start(ServeOptions::default());
    let mut client = Client::connect(addr).unwrap();

    // `.*{x:a+}b`: two mappings on "aab" (x = "aa" and x = "a").
    let response = client
        .explain_analyze("let a = /.*{x:a+}b/; project x (a);", "aab")
        .unwrap();
    assert!(ok(&response), "{response}");
    assert_eq!(response.get("count").and_then(Json::as_usize), Some(2));

    // The human rendering carries the measured annotations.
    let text = response.get("explain").and_then(Json::as_str).unwrap();
    assert!(text.contains("analyze    :"), "{text}");
    assert!(text.contains("mappings in"), "{text}");
    assert!(text.contains("rows="), "{text}");

    // The structured trace mirrors the optimized plan: the projection is
    // fused into the scan, so the root is one CompiledScan leaf carrying
    // the measured row count and prescan verdict.
    let trace = response.get("trace").unwrap();
    let label = trace.get("label").and_then(Json::as_str).unwrap();
    assert!(label.starts_with("CompiledScan"), "{trace}");
    assert_eq!(trace.get("rows").and_then(Json::as_usize), Some(2));
    assert!(trace.get("nanos").and_then(Json::as_usize).is_some());
    assert_eq!(
        trace
            .get("children")
            .and_then(Json::as_array)
            .map(|c| c.len()),
        Some(0),
        "{trace}"
    );
    assert_eq!(
        trace
            .get("counters")
            .and_then(|c| c.get("prescan_accept"))
            .and_then(Json::as_usize),
        Some(1),
        "{trace}"
    );

    // Analyze on an erroring query still reports ok:false with the error,
    // not a teardown.
    let bad = client.explain_analyze("let a = /x/; b", "x").unwrap();
    assert!(!ok(&bad), "{bad}");

    client.shutdown().unwrap();
    handle.join().unwrap().unwrap();
}

#[test]
fn shutdown_drains_in_flight_work() {
    let (addr, handle) = start(ServeOptions {
        threads: 3,
        ..ServeOptions::default()
    });

    // A client with a request in flight when the shutdown lands: the
    // response must still arrive (the worker finishes its work before the
    // server exits). The corpus request is big enough to still be running
    // when the other connection fires the shutdown.
    let (connected, on_connect) = std::sync::mpsc::channel();
    let worker = std::thread::spawn(move || {
        let mut busy = Client::connect(addr).unwrap();
        connected.send(()).unwrap();
        let corpus = "aab\n".repeat(2_000);
        busy.query_corpus("let a = /{x:a+}b/; project x (a);", &corpus)
            .unwrap()
    });
    // Wait for the busy client to be connected, give its request a head
    // start, then shut down.
    on_connect.recv().unwrap();
    std::thread::sleep(std::time::Duration::from_millis(20));
    let mut killer = Client::connect(addr).unwrap();
    let response = killer.shutdown().unwrap();
    assert_eq!(
        response.get("shutting_down").and_then(Json::as_bool),
        Some(true)
    );

    let drained = worker.join().unwrap();
    assert_eq!(drained.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(
        drained.get("documents").and_then(Json::as_usize),
        Some(2_000)
    );

    // The server exits cleanly and stops accepting new connections.
    handle.join().unwrap().unwrap();
    assert!(
        Client::connect(addr).is_err() || {
            // The OS may accept briefly on some platforms; a request must fail.
            let mut c = Client::connect(addr).unwrap();
            c.query("/{x:a}/", "a").is_err()
        }
    );
}

#[test]
fn shutdown_is_not_stalled_by_a_partial_request_line() {
    use std::io::Write;
    let (addr, handle) = start(ServeOptions {
        threads: 2,
        ..ServeOptions::default()
    });

    // A connection holding an unterminated line open: half a request is
    // not in-flight work, so it must not block the drain.
    let mut partial = std::net::TcpStream::connect(addr).unwrap();
    partial.write_all(br#"{"op":"que"#).unwrap();
    partial.flush().unwrap();
    std::thread::sleep(std::time::Duration::from_millis(20));

    let mut killer = Client::connect(addr).unwrap();
    killer.shutdown().unwrap();
    // The join completes even though `partial` never sent its newline
    // (the test harness timeout is the failure mode if it regresses).
    handle.join().unwrap().unwrap();
}

#[test]
fn idle_connections_are_closed_and_release_their_worker() {
    use std::io::Read;
    // One connection worker and a short idle timeout: a silent client
    // must not starve the daemon.
    let (addr, handle) = start(ServeOptions {
        threads: 1,
        idle_timeout: std::time::Duration::from_millis(150),
        ..ServeOptions::default()
    });

    let mut silent = std::net::TcpStream::connect(addr).unwrap();
    std::thread::sleep(std::time::Duration::from_millis(20));

    // The silent connection occupies the only worker until the idle
    // timeout closes it; then this client must get served.
    let mut client = Client::connect(addr).unwrap();
    let response = client.query("/{x:a}/", "a").unwrap();
    assert!(ok(&response), "{response}");

    // The silent connection was closed by the server (EOF).
    silent
        .set_read_timeout(Some(std::time::Duration::from_secs(5)))
        .unwrap();
    let mut buf = [0u8; 1];
    assert_eq!(silent.read(&mut buf).unwrap(), 0, "expected EOF");

    client.shutdown().unwrap();
    handle.join().unwrap().unwrap();
}

#[test]
fn slow_drip_clients_cannot_hold_a_worker_past_the_idle_timeout() {
    use std::io::{Read, Write};
    let (addr, handle) = start(ServeOptions {
        threads: 1,
        idle_timeout: std::time::Duration::from_millis(200),
        ..ServeOptions::default()
    });

    // Feed bytes steadily but never complete a line: the deadline must
    // apply even though the socket is never idle long enough to time out
    // a single read.
    let mut drip = std::net::TcpStream::connect(addr).unwrap();
    drip.set_read_timeout(Some(std::time::Duration::from_secs(10)))
        .unwrap();
    let dripper = std::thread::spawn(move || {
        for _ in 0..100 {
            if drip.write_all(b"x").is_err() {
                break; // server closed us: the guard worked
            }
            std::thread::sleep(std::time::Duration::from_millis(25));
        }
        let mut buf = [0u8; 1];
        drip.read(&mut buf)
    });

    // Well before the dripper would finish on its own, the only worker
    // must be free again to serve a real client.
    std::thread::sleep(std::time::Duration::from_millis(400));
    let mut client = Client::connect(addr).unwrap();
    let response = client.query("/{x:a}/", "a").unwrap();
    assert!(ok(&response), "{response}");

    // The drip connection saw EOF (or a write error) from the server.
    assert_eq!(dripper.join().unwrap().unwrap_or(0), 0, "expected EOF");

    client.shutdown().unwrap();
    handle.join().unwrap().unwrap();
}
