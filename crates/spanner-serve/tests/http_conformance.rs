//! HTTP/1.1 conformance and fuzz tests for the front end.
//!
//! The HTTP layer shares one dispatch path with the line protocol, so
//! its correctness claims are (a) protocol-level: torn, pipelined, and
//! oversized requests are contained with the right status codes (431
//! past the head cap, 413 past the body cap, 400/404/405/501 where HTTP
//! says so), keep-alive reuses one connection, and the chunked
//! `query_corpus` stream reassembles to the **byte-identical** JSON the
//! line protocol emits; and (b) robustness: a seed-driven mutation
//! fuzzer over raw request bytes never kills the server — every
//! connection is answered or closed cleanly, and `/healthz` still
//! answers after each case.

use spanner_serve::{Client, HttpClient, Json, ServeOptions, Server};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::thread::JoinHandle;
use std::time::Duration;

type Handle = JoinHandle<std::io::Result<()>>;

fn http_options() -> ServeOptions {
    ServeOptions {
        http: true,
        threads: 4,
        // Small caps so the rejection paths are cheap to reach.
        max_head_bytes: 2 << 10,
        max_body_bytes: 8 << 10,
        idle_timeout: Duration::from_secs(2),
        ..ServeOptions::default()
    }
}

fn start_http(options: ServeOptions) -> (SocketAddr, Handle) {
    Server::bind("127.0.0.1:0", options)
        .expect("bind HTTP server")
        .spawn()
}

fn shutdown(addr: SocketAddr, handle: Handle) {
    let mut client = HttpClient::connect(addr).unwrap();
    let response = client
        .post_json("/v1/shutdown", &Json::object::<&str>([]))
        .unwrap();
    assert_eq!(response.status, 200);
    handle.join().unwrap().unwrap();
}

/// Sends raw bytes on a fresh connection; returns everything read until
/// EOF or timeout.
fn raw_exchange(addr: SocketAddr, bytes: &[u8]) -> Vec<u8> {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let _ = stream.write_all(bytes);
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut out = Vec::new();
    let _ = stream.read_to_end(&mut out);
    out
}

fn status_of(response: &[u8]) -> Option<u16> {
    let text = String::from_utf8_lossy(response);
    let mut parts = text.split_ascii_whitespace();
    let _version = parts.next()?;
    parts.next()?.parse().ok()
}

#[test]
fn endpoints_round_trip_with_keep_alive() {
    let (addr, handle) = start_http(http_options());
    let mut client = HttpClient::connect(addr).unwrap();

    let health = client.get("/healthz").unwrap();
    assert_eq!(health.status, 200);
    assert_eq!(
        health.json().unwrap().get("ok").and_then(Json::as_bool),
        Some(true)
    );

    let query = client
        .post_json(
            "/v1/query",
            &Json::object([
                ("program", Json::string("/{x:a+}b/")),
                ("doc", Json::string("aab")),
            ]),
        )
        .unwrap();
    assert_eq!(query.status, 200);
    let body = query.json().unwrap();
    assert_eq!(body.get("count").and_then(Json::as_usize), Some(1));

    let explain = client
        .post_json(
            "/v1/explain",
            &Json::object([("program", Json::string("/{x:a+}/"))]),
        )
        .unwrap();
    assert_eq!(explain.status, 200);

    // A bad program is a 400 carrying the protocol's JSON error.
    let bad = client
        .post_json(
            "/v1/query",
            &Json::object([
                ("program", Json::string("/{x:/")),
                ("doc", Json::string("a")),
            ]),
        )
        .unwrap();
    assert_eq!(bad.status, 400);
    assert_eq!(
        bad.json().unwrap().get("ok").and_then(Json::as_bool),
        Some(false)
    );

    // /metrics is the Prometheus exposition, and it has seen this very
    // connection's requests — all on one kept-alive connection.
    let metrics = client.get("/metrics").unwrap();
    assert_eq!(metrics.status, 200);
    assert!(metrics
        .header("content-type")
        .is_some_and(|v| v.starts_with("text/plain")));
    let text = metrics.text();
    assert!(
        text.contains("spanner_http_requests_total{class=\"2xx\"}"),
        "{text}"
    );
    assert!(
        text.contains("spanner_http_requests_total{class=\"4xx\"}"),
        "{text}"
    );

    let stats = client.get("/v1/stats").unwrap();
    assert_eq!(stats.status, 200);
    let connections = stats
        .json()
        .unwrap()
        .get("server")
        .and_then(|s| s.get("connections"))
        .and_then(Json::as_usize)
        .unwrap();
    assert_eq!(
        connections, 1,
        "every request above must share one connection"
    );
    shutdown(addr, handle);
}

/// The chunked `query_corpus` stream reassembles to the byte-identical
/// JSON the line protocol returns for the same state and request.
#[test]
fn chunked_corpus_stream_matches_line_protocol_bytes() {
    // Two daemons, same options modulo transport.
    let (http_addr, http_handle) = start_http(http_options());
    let (line_addr, line_handle) = Server::bind(
        "127.0.0.1:0",
        ServeOptions {
            http: false,
            ..http_options()
        },
    )
    .expect("bind line server")
    .spawn();

    let corpus = "aa\nb\nabab\n\naaa bb";
    let program = "/{x:a+}/";

    let mut http = HttpClient::connect(http_addr).unwrap();
    let loaded = http.post_text("/v1/corpus", corpus).unwrap();
    assert_eq!(loaded.status, 200, "{}", loaded.text());

    let mut line = Client::connect(line_addr).unwrap();
    line.load_corpus(corpus).unwrap();

    for text in [None, Some(corpus)] {
        let mut fields = vec![("program", Json::string(program))];
        if let Some(text) = text {
            fields.push(("text", Json::string(text)));
        }
        let request = Json::object(fields.clone());
        let http_response = http.post_json("/v1/query_corpus", &request).unwrap();
        assert_eq!(http_response.status, 200);
        assert!(
            http_response
                .header("transfer-encoding")
                .is_some_and(|v| v.contains("chunked")),
            "corpus responses must stream chunked"
        );
        let mut line_fields = vec![("op", Json::string("query_corpus"))];
        line_fields.extend(fields);
        let line_response = line
            .request_line(&Json::object(line_fields).to_string())
            .unwrap();
        assert_eq!(
            http_response.text(),
            line_response,
            "chunked reassembly must be byte-identical to the line protocol"
        );
        // And it decodes to a successful response with results.
        let decoded = http_response.json().unwrap();
        assert_eq!(decoded.get("ok").and_then(Json::as_bool), Some(true));
        assert!(decoded.get("results").and_then(Json::as_array).is_some());
    }

    shutdown(http_addr, http_handle);
    line.shutdown().unwrap();
    line_handle.join().unwrap().unwrap();
}

#[test]
fn cap_and_method_rejections_use_the_right_status_codes() {
    let (addr, handle) = start_http(http_options());

    // Oversized head: a header far past max_head_bytes → 431.
    let huge_header = format!(
        "GET /healthz HTTP/1.1\r\nX-Filler: {}\r\n\r\n",
        "x".repeat(4 << 10)
    );
    let response = raw_exchange(addr, huge_header.as_bytes());
    assert_eq!(status_of(&response), Some(431), "oversized head");

    // Oversized body, declared up front: rejected without reading → 413.
    let huge_body = format!(
        "POST /v1/query HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
        1 << 20
    );
    let response = raw_exchange(addr, huge_body.as_bytes());
    assert_eq!(status_of(&response), Some(413), "oversized body");

    // Unparseable Content-Length → 400.
    let response = raw_exchange(
        addr,
        b"POST /v1/query HTTP/1.1\r\nContent-Length: banana\r\n\r\n",
    );
    assert_eq!(status_of(&response), Some(400), "bad content-length");

    // Chunked request bodies are not supported → 501.
    let response = raw_exchange(
        addr,
        b"POST /v1/query HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n0\r\n\r\n",
    );
    assert_eq!(status_of(&response), Some(501), "chunked request");

    // Unknown path → 404; known path, wrong method → 405 with Allow.
    let response = raw_exchange(addr, b"GET /nope HTTP/1.1\r\n\r\n");
    assert_eq!(status_of(&response), Some(404), "unknown path");
    let response = raw_exchange(addr, b"DELETE /v1/query HTTP/1.1\r\n\r\n");
    assert_eq!(status_of(&response), Some(405), "wrong method");
    assert!(
        String::from_utf8_lossy(&response).contains("Allow: POST"),
        "405 must carry Allow"
    );

    // Unsupported version → 400. Malformed request line → 400.
    let response = raw_exchange(addr, b"GET /healthz HTTP/2\r\n\r\n");
    assert_eq!(status_of(&response), Some(400), "bad version");
    let response = raw_exchange(addr, b"GARBAGE\r\n\r\n");
    assert_eq!(status_of(&response), Some(400), "garbage request line");

    // Malformed JSON body → 400 with the parse error in the JSON body.
    let body = b"{\"program\": ";
    let request = format!(
        "POST /v1/query HTTP/1.1\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    let mut bytes = request.into_bytes();
    bytes.extend_from_slice(body);
    let response = raw_exchange(addr, &bytes);
    assert_eq!(status_of(&response), Some(400), "malformed JSON body");

    shutdown(addr, handle);
}

#[test]
fn torn_and_pipelined_requests_are_framed_correctly() {
    let (addr, handle) = start_http(http_options());

    // Torn request: half a head, then close. The server must just close
    // (nothing to respond to) and stay healthy.
    let response = raw_exchange(addr, b"GET /heal");
    assert!(response.is_empty(), "torn head gets no response");

    // Torn body: head promises more bytes than arrive.
    let response = raw_exchange(
        addr,
        b"POST /v1/query HTTP/1.1\r\nContent-Length: 50\r\n\r\n{",
    );
    assert!(response.is_empty(), "torn body gets no response");

    // Pipelined: two requests in one write; two responses, in order, on
    // one connection.
    let response = raw_exchange(
        addr,
        b"GET /healthz HTTP/1.1\r\n\r\nGET /v1/stats HTTP/1.1\r\nConnection: close\r\n\r\n",
    );
    let text = String::from_utf8_lossy(&response);
    let responses = text.matches("HTTP/1.1 200 OK").count();
    assert_eq!(
        responses, 2,
        "pipelined requests each get a response:\n{text}"
    );
    assert!(text.contains("\"uptime_s\""), "{text}");
    assert!(text.contains("\"cache\""), "{text}");

    // An Expect: 100-continue request gets the interim response before
    // the final one.
    let body = b"{\"program\":\"/{x:a}/\",\"doc\":\"a\"}";
    let head = format!(
        "POST /v1/query HTTP/1.1\r\nExpect: 100-continue\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    let mut bytes = head.into_bytes();
    bytes.extend_from_slice(body);
    let response = raw_exchange(addr, &bytes);
    let text = String::from_utf8_lossy(&response);
    assert!(text.starts_with("HTTP/1.1 100 Continue"), "{text}");
    assert!(text.contains("HTTP/1.1 200 OK"), "{text}");

    // HTTP/1.0 defaults to close: the server answers and closes.
    let response = raw_exchange(addr, b"GET /healthz HTTP/1.0\r\n\r\n");
    assert_eq!(status_of(&response), Some(200));
    assert!(
        String::from_utf8_lossy(&response).contains("Connection: close"),
        "HTTP/1.0 must not keep alive"
    );

    shutdown(addr, handle);
}

/// A tiny deterministic generator for the fuzzer.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        x ^= x >> 30;
        x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x ^= x >> 27;
        self.0 = x;
        x
    }
}

/// Seed-driven mutation fuzz over raw request bytes: whatever arrives,
/// the server answers or closes cleanly — it never panics, never hangs,
/// and `/healthz` answers after every case.
#[test]
fn fuzzed_request_bytes_never_kill_the_server() {
    let (addr, handle) = start_http(http_options());

    let bases: Vec<Vec<u8>> = vec![
        b"GET /healthz HTTP/1.1\r\n\r\n".to_vec(),
        b"GET /metrics HTTP/1.1\r\n\r\n".to_vec(),
        b"POST /v1/query HTTP/1.1\r\nContent-Type: application/json\r\nContent-Length: 31\r\n\r\n{\"program\":\"/{x:a}/\",\"doc\":\"a\"}".to_vec(),
        b"POST /v1/corpus HTTP/1.1\r\nContent-Length: 8\r\n\r\naa\nb\naaa".to_vec(),
        b"POST /v1/query_corpus HTTP/1.1\r\nContent-Type: application/json\r\nContent-Length: 40\r\n\r\n{\"program\":\"/{x:a+}/\",\"text\":\"aa\\nb\\na\"}".to_vec(),
    ];

    for seed in 0..120u64 {
        let mut rng = XorShift(seed);
        let mut bytes = bases[(rng.next() as usize) % bases.len()].clone();
        // 1–4 mutations: truncate, flip, insert garbage, duplicate a
        // slice, or scramble a digit (Content-Length corruption).
        for _ in 0..1 + rng.next() % 4 {
            if bytes.is_empty() {
                break;
            }
            let at = (rng.next() as usize) % bytes.len();
            match rng.next() % 5 {
                0 => bytes.truncate(at),
                1 => bytes[at] = (rng.next() & 0xff) as u8,
                2 => {
                    let garbage: Vec<u8> = (0..rng.next() % 16)
                        .map(|_| (rng.next() & 0xff) as u8)
                        .collect();
                    bytes.splice(at..at, garbage);
                }
                3 => {
                    let end = at + ((rng.next() as usize) % (bytes.len() - at));
                    let copy: Vec<u8> = bytes[at..end].to_vec();
                    bytes.extend_from_slice(&copy);
                }
                _ => {
                    if let Some(digit) = bytes.iter().position(u8::is_ascii_digit) {
                        bytes[digit] = b'0' + (rng.next() % 10) as u8;
                    }
                }
            }
        }
        // The server must resolve the connection: a response or a clean
        // close, within the read timeout — never a hang, never a panic.
        let _ = raw_exchange(addr, &bytes);

        // Liveness probe after every case.
        let mut probe = HttpClient::connect(addr).expect("server still accepting");
        let health = probe.get("/healthz").expect("server still answering");
        assert_eq!(health.status, 200, "seed {seed}: healthz after fuzz case");
    }

    shutdown(addr, handle);
}
