//! Fault injection against the shard router.
//!
//! A router is only as good as its failure handling: this suite stands up
//! misbehaving backend stubs — accepts-then-stalls, closes mid-line,
//! answers malformed JSON, drips bytes slower than the response deadline
//! — plus plainly dead addresses, and asserts the router's containment
//! contract: every backend call resolves within its configured timeout, a
//! failed idempotent call is retried a bounded number of times (observed
//! from the stub's accept counter), the caller gets a *typed* degraded
//! response naming the failed shard and backend instead of a hang or a
//! generic error, the router stays answerable (`stats` is served locally)
//! with every backend down, and a healthy shard keeps serving. A
//! connection-reuse regression pins the pooled-backend fix: a burst of
//! router queries adds exactly one connection to a backend, not one per
//! request.

use spanner_serve::{Client, Json, RouterOptions, ServeOptions, Server};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How a stub backend mistreats each accepted connection.
#[derive(Clone, Copy, Debug)]
enum Misbehavior {
    /// Accept, read the request, never answer.
    Stall,
    /// Accept, read the request, answer half a line, close.
    CloseMidLine,
    /// Accept, read the request, answer something that is not JSON.
    MalformedJson,
    /// Accept, read the request, then drip one byte per poll interval —
    /// slower than any deadline, but never idle.
    SlowDrip,
}

/// A misbehaving backend: counts accepted connections, applies one
/// [`Misbehavior`] per connection.
struct Stub {
    addr: SocketAddr,
    connections: Arc<AtomicUsize>,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl Stub {
    fn start(behavior: Misbehavior) -> Stub {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind stub");
        let addr = listener.local_addr().unwrap();
        let connections = Arc::new(AtomicUsize::new(0));
        let stop = Arc::new(AtomicBool::new(false));
        let (accepted, stopped) = (Arc::clone(&connections), Arc::clone(&stop));
        let handle = std::thread::spawn(move || {
            // One handler thread per connection: a stalled connection must
            // not block the accept loop, or a retrying router could never
            // even reconnect and the attempt count would be meaningless.
            let mut workers = Vec::new();
            for stream in listener.incoming() {
                if stopped.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(mut stream) = stream else { continue };
                accepted.fetch_add(1, Ordering::SeqCst);
                let stopped = Arc::clone(&stopped);
                workers.push(std::thread::spawn(move || {
                    // Read (some of) the request so the router's write
                    // succeeds; a stub never parses it.
                    let mut buf = [0u8; 4096];
                    let _ = stream.read(&mut buf);
                    match behavior {
                        Misbehavior::Stall => {
                            // Hold the connection open, saying nothing,
                            // until the router gives up and the test
                            // stops us.
                            while !stopped.load(Ordering::SeqCst) {
                                std::thread::sleep(Duration::from_millis(10));
                            }
                        }
                        Misbehavior::CloseMidLine => {
                            let _ = stream.write_all(b"{\"ok\":tr");
                            // Dropped: closed without a newline.
                        }
                        Misbehavior::MalformedJson => {
                            let _ = stream.write_all(b"certainly not json\n");
                        }
                        Misbehavior::SlowDrip => {
                            for byte in b"{\"ok\":true}\n" {
                                if stopped.load(Ordering::SeqCst) {
                                    break;
                                }
                                if stream.write_all(&[*byte]).is_err() {
                                    break;
                                }
                                std::thread::sleep(Duration::from_millis(80));
                            }
                        }
                    }
                }));
            }
            for worker in workers {
                worker.join().expect("stub connection handler panicked");
            }
        });
        Stub {
            addr,
            connections,
            stop,
            handle: Some(handle),
        }
    }

    fn connections(&self) -> usize {
        self.connections.load(Ordering::SeqCst)
    }
}

impl Drop for Stub {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.handle.take() {
            handle.join().expect("stub thread panicked");
        }
    }
}

/// Short timeouts so every scenario resolves in well under a second per
/// attempt.
fn fast_router(backends: Vec<String>, retries: usize) -> RouterOptions {
    RouterOptions {
        backends,
        connect_timeout: Duration::from_millis(200),
        read_timeout: Duration::from_millis(200),
        retries,
        retry_backoff: Duration::from_millis(10),
    }
}

/// Backend options with enough connection workers for the router's
/// persistent pooled connection *plus* a direct assertion client — the
/// default (one worker per CPU) is a single worker on small CI boxes,
/// and a held pooled connection would starve the second client until the
/// idle timeout.
fn backend_options() -> ServeOptions {
    ServeOptions {
        threads: 4,
        ..ServeOptions::default()
    }
}

fn start_router(options: RouterOptions) -> (Client, JoinHandle<std::io::Result<()>>) {
    let (addr, handle) = Server::bind_router("127.0.0.1:0", ServeOptions::default(), options)
        .expect("bind router")
        .spawn();
    (Client::connect(addr).unwrap(), handle)
}

/// The degraded-response contract: `ok:false`, `degraded:true`, and the
/// failing shard's index and address spelled out.
fn assert_degraded(response: &Json, shard: usize, backend: &SocketAddr) {
    assert_eq!(
        response.get("ok").and_then(Json::as_bool),
        Some(false),
        "{response}"
    );
    assert_eq!(
        response.get("degraded").and_then(Json::as_bool),
        Some(true),
        "{response}"
    );
    assert_eq!(
        response.get("shard").and_then(Json::as_usize),
        Some(shard),
        "{response}"
    );
    assert_eq!(
        response.get("backend").and_then(Json::as_str),
        Some(backend.to_string().as_str()),
        "{response}"
    );
    let error = response.get("error").and_then(Json::as_str).unwrap_or("");
    assert!(
        error.contains(&format!("shard {shard}")) && error.contains(&backend.to_string()),
        "error must name the shard and backend: {response}"
    );
}

fn query_line() -> String {
    Json::object([
        ("op", Json::string("query_corpus")),
        ("program", Json::string("/{x:a+}/")),
        ("text", Json::string("aa\nb\naaa")),
    ])
    .to_string()
}

/// Every misbehavior resolves within the deadline budget, with exactly
/// `1 + retries` attempts (one connection per attempt — the pooled
/// connection is dropped on failure), and yields the typed degraded
/// response.
#[test]
fn misbehaving_backends_yield_bounded_typed_degradation() {
    for behavior in [
        Misbehavior::Stall,
        Misbehavior::CloseMidLine,
        Misbehavior::MalformedJson,
        Misbehavior::SlowDrip,
    ] {
        let retries = 2usize;
        let stub = Stub::start(behavior);
        let (mut client, handle) = start_router(fast_router(vec![stub.addr.to_string()], retries));

        let started = Instant::now();
        let response = client.request_line(&query_line()).unwrap();
        let elapsed = started.elapsed();
        let response = Json::parse(&response).unwrap();
        assert_degraded(&response, 0, &stub.addr);

        // Bounded retry: one connection per attempt, no more. (Stall and
        // SlowDrip cost one read deadline per attempt; the budget below
        // is 3 × 200 ms deadlines + backoffs + slack.)
        assert_eq!(
            stub.connections(),
            1 + retries,
            "{behavior:?}: attempts must be bounded"
        );
        assert!(
            elapsed < Duration::from_secs(3),
            "{behavior:?}: resolved in {elapsed:?}, deadline budget blown"
        );

        // The router is still alive and answerable: stats is served
        // locally and reports the backend's error/retry counters.
        let stats = client.stats().unwrap();
        assert_eq!(stats.get("ok").and_then(Json::as_bool), Some(true));
        let backends = stats
            .get("router")
            .and_then(|r| r.get("backends"))
            .and_then(Json::as_array)
            .expect("router backends in stats");
        assert_eq!(backends[0].get("errors").and_then(Json::as_usize), Some(1));
        assert_eq!(
            backends[0].get("retries").and_then(Json::as_usize),
            Some(retries),
            "{behavior:?}"
        );

        // Clean drain: shutdown joins every worker; a leaked fan-out
        // thread would hang this join.
        client.shutdown().unwrap();
        handle.join().unwrap().unwrap();
    }
}

/// A dead address (nothing listening) degrades fast — connect errors do
/// not consume the read deadline.
#[test]
fn dead_backend_degrades_without_burning_the_deadline() {
    // Grab a port and release it: nothing listens there afterwards.
    let dead = TcpListener::bind("127.0.0.1:0")
        .unwrap()
        .local_addr()
        .unwrap();
    let (mut client, handle) = start_router(fast_router(vec![dead.to_string()], 1));
    let started = Instant::now();
    let response = client.request_line(&query_line()).unwrap();
    let response = Json::parse(&response).unwrap();
    assert_degraded(&response, 0, &dead);
    assert!(
        started.elapsed() < Duration::from_secs(2),
        "refused connections must fail fast, took {:?}",
        started.elapsed()
    );
    client.shutdown().unwrap();
    handle.join().unwrap().unwrap();
}

/// With one healthy daemon and one stalling stub, the degraded response
/// names the *failing* shard — and after the stub is replaced by silence,
/// non-routed ops and stats keep working.
#[test]
fn mixed_cluster_names_the_failing_shard_and_keeps_serving() {
    let (healthy_addr, healthy_handle) = Server::bind("127.0.0.1:0", backend_options())
        .expect("bind healthy backend")
        .spawn();
    let stub = Stub::start(Misbehavior::Stall);
    let (mut client, handle) = start_router(fast_router(
        vec![healthy_addr.to_string(), stub.addr.to_string()],
        0,
    ));

    // The fan-out reaches both shards; the response is the first failing
    // shard's degraded report, not a hang and not a generic error.
    let response = Json::parse(&client.request_line(&query_line()).unwrap()).unwrap();
    assert_degraded(&response, 1, &stub.addr);

    // Non-routed ops are local: a single-document query works with a
    // stalled shard in the cluster.
    let local = client.query("/{x:a+}/", "aa").unwrap();
    assert_eq!(local.get("ok").and_then(Json::as_bool), Some(true));

    // The healthy backend saw its slice exactly once per fan-out.
    let mut healthy = Client::connect(healthy_addr).unwrap();
    let stats = healthy.stats().unwrap();
    let served = stats
        .get("server")
        .and_then(|s| s.get("requests_total"))
        .and_then(Json::as_usize)
        .unwrap();
    assert!(served >= 1, "healthy shard must have served its slice");

    client.shutdown().unwrap();
    handle.join().unwrap().unwrap();
    healthy.shutdown().unwrap();
    healthy_handle.join().unwrap().unwrap();
}

/// Append (non-idempotent) is never retried: a failed append costs
/// exactly one attempt.
#[test]
fn appends_are_never_retried() {
    let (healthy_addr, healthy_handle) = Server::bind("127.0.0.1:0", backend_options())
        .expect("bind healthy backend")
        .spawn();
    let stub = Stub::start(Misbehavior::CloseMidLine);
    let (mut client, handle) = start_router(fast_router(
        vec![healthy_addr.to_string(), stub.addr.to_string()],
        3,
    ));

    // Loading fails (shard 1 is a stub) and that is fine here: the
    // append must be rejected *before* reaching any backend when no
    // corpus is resident — the daemon's exact error, not a degraded one.
    let load = Json::object([
        ("op", Json::string("load_corpus")),
        ("text", Json::string("a\nb")),
    ])
    .to_string();
    let response = Json::parse(&client.request_line(&load).unwrap()).unwrap();
    assert_degraded(&response, 1, &stub.addr);
    let connections_after_load = stub.connections();
    assert_eq!(
        connections_after_load, 4,
        "idempotent load: 1 + 3 retries attempts"
    );

    let append = Json::object([
        ("op", Json::string("append_docs")),
        ("text", Json::string("c")),
    ])
    .to_string();
    let response = Json::parse(&client.request_line(&append).unwrap()).unwrap();
    assert_eq!(response.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(
        response.get("error").and_then(Json::as_str),
        Some("no resident corpus (send `load_corpus` first)"),
    );
    assert_eq!(
        stub.connections(),
        connections_after_load,
        "an append without a resident corpus must not reach any backend"
    );

    client.shutdown().unwrap();
    handle.join().unwrap().unwrap();
    let mut healthy = Client::connect(healthy_addr).unwrap();
    healthy.shutdown().unwrap();
    healthy_handle.join().unwrap().unwrap();
}

/// The pooled-connection regression: a 10-request burst through the
/// router adds exactly one connection to the backend — the router holds
/// one persistent [`Client`] per shard instead of dialing per request.
#[test]
fn router_reuses_one_backend_connection_across_a_burst() {
    let (backend_addr, backend_handle) = Server::bind("127.0.0.1:0", backend_options())
        .expect("bind backend")
        .spawn();
    let mut backend = Client::connect(backend_addr).unwrap();
    let (mut client, handle) = start_router(fast_router(vec![backend_addr.to_string()], 2));

    let connections = |backend: &mut Client| {
        backend
            .stats()
            .unwrap()
            .get("server")
            .and_then(|s| s.get("connections"))
            .and_then(Json::as_usize)
            .unwrap()
    };
    let before = connections(&mut backend);
    for _ in 0..10 {
        let response = Json::parse(&client.request_line(&query_line()).unwrap()).unwrap();
        assert_eq!(
            response.get("ok").and_then(Json::as_bool),
            Some(true),
            "{response}"
        );
    }
    let after = connections(&mut backend);
    assert_eq!(
        after - before,
        1,
        "a 10-request burst must reuse one pooled backend connection"
    );

    client.shutdown().unwrap();
    handle.join().unwrap().unwrap();
    backend.shutdown().unwrap();
    backend_handle.join().unwrap().unwrap();
}
