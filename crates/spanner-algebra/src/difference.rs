//! Evaluation of the difference operator (Section 4).
//!
//! Three algorithms are provided, all returning the same relation
//! `VA₁ \ A₂W(d) = { µ₁ ∈ VA₁W(d) | no µ₂ ∈ VA₂W(d) is compatible with µ₁ }`:
//!
//! * [`difference_filter`] — the naive baseline: enumerate `VA₁W(d)` and drop
//!   every mapping that has a compatible counterpart. Its total running time
//!   is proportional to `|VA₁W(d)|`, which can be exponentially larger than
//!   the output (experiment E7 exercises exactly that failure mode).
//!
//! * [`difference_adhoc`] — the marker construction of Lemma 4.2 /
//!   Appendix B.1: project `A₂` onto the common variables `V`, extend `A₁`
//!   with marker variables encoding which common variables a mapping defines,
//!   build the complement relation `B` over extended signatures, join with
//!   the FPT join of Lemma 3.2, and project the markers away. Polynomial for
//!   any fixed bound on `|V|` (Theorem 4.3); the result is an *ad-hoc*
//!   sequential VA valid for the given document, so it can then be enumerated
//!   with polynomial delay.
//!
//! * [`difference_product`] — an ad-hoc product construction in the spirit of
//!   Theorem 4.8: make `A₁` semi-functional for the common variables, split
//!   it by skip-set, and simulate `A₂`'s match graph alongside each part with
//!   a constrained subset simulation. The construction is polynomial whenever
//!   the number of common variables is bounded (Theorem 4.3) *or* `A₂` is
//!   synchronized for the common variables (Theorem 4.8); it is correct for
//!   every sequential input, with the state limit guarding the remaining
//!   worst cases.

use crate::adhoc::mapping_set_to_vsa;
use spanner_core::{
    Document, Mapping, MappingSet, Span, SpannerError, SpannerResult, VarSet, Variable,
};
use spanner_enum::{evaluate, Enumerator};
use spanner_vset::automaton::{Label, StateId, Vsa};
use spanner_vset::semifunctional::{make_semi_functional, SemiFunctionalVsa};
use spanner_vset::{analysis, join, VarStatus};
use std::collections::{BTreeSet, HashMap};

/// Options shared by the difference constructions.
#[derive(Debug, Clone, Copy)]
pub struct DifferenceOptions {
    /// Bound on the number of states of intermediate / output automata.
    pub max_states: usize,
    /// Bound on the number of materialized signatures in the Lemma 4.2
    /// construction.
    pub max_signatures: usize,
}

impl Default for DifferenceOptions {
    fn default() -> Self {
        DifferenceOptions {
            max_states: 4_000_000,
            max_signatures: 1_000_000,
        }
    }
}

fn require_sequential(a: &Vsa, side: &str) -> SpannerResult<()> {
    if analysis::is_sequential(a) {
        Ok(())
    } else {
        Err(SpannerError::requirement(
            "sequential",
            format!("the {side} operand of the difference is not sequential"),
        ))
    }
}

// ---------------------------------------------------------------------------
// Baseline: enumerate-and-filter.
// ---------------------------------------------------------------------------

/// The naive baseline: enumerate `VA₁W(d)` and keep the mappings with no
/// compatible mapping in `VA₂W(d)` (which is materialized once, projected to
/// the common variables).
pub fn difference_filter(a1: &Vsa, a2: &Vsa, doc: &Document) -> SpannerResult<MappingSet> {
    require_sequential(a1, "left")?;
    require_sequential(a2, "right")?;
    let common = a1.vars().intersection(a2.vars());
    // Only the common variables matter for compatibility.
    let right = evaluate(&a2.project(a1.vars()), doc)?;
    let right: Vec<Mapping> = right.to_vec();
    let mut out = MappingSet::new();
    for m1 in Enumerator::new(a1, doc)? {
        let m1 = m1?;
        let sig = m1.restrict(&common);
        if !right.iter().any(|m2| sig.is_compatible_with(m2)) {
            out.insert(m1);
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Lemma 4.2: the marker construction.
// ---------------------------------------------------------------------------

/// Generates a marker variable name guaranteed not to clash with existing
/// variables.
fn marker_variable(x: &Variable, taken: &VarSet) -> Variable {
    let mut name = format!("{}\u{2020}", x.name()); // x†
    while taken.contains(&Variable::new(&name)) {
        name.push('\u{2020}');
    }
    Variable::new(name)
}

/// Compiles `VA₁ \ A₂W(d)` into an ad-hoc sequential VA using the marker
/// construction of Lemma 4.2. The output automaton is valid only for `doc`;
/// its mappings (obtained with `spanner_enum::evaluate`) are exactly the
/// difference.
pub fn difference_adhoc(
    a1: &Vsa,
    a2: &Vsa,
    doc: &Document,
    options: DifferenceOptions,
) -> SpannerResult<Vsa> {
    require_sequential(a1, "left")?;
    require_sequential(a2, "right")?;

    // Only the common variables matter: VA₁ \ A₂W = VA₁ \ π_{Vars(A₁)} A₂W.
    let common = a1.vars().intersection(a2.vars());
    let a2p = a2.project(a1.vars()).trim();

    // Empty-document special case (as in the paper's proof).
    if doc.is_empty() {
        return if spanner_enum::is_nonempty(&a2p, doc)? {
            Ok(Vsa::new()) // empty language: every mapping is compatible on ε
        } else {
            Ok(a1.clone())
        };
    }

    // The relation of the right-hand side over the common variables.
    let m2 = evaluate(&a2p.project(&common), doc)?;
    // The signatures the left-hand side can actually produce.
    let m1v = evaluate(&a1.project(&common), doc)?;
    if m1v.len() > options.max_signatures {
        return Err(SpannerError::LimitExceeded {
            what: "difference signatures",
            limit: options.max_signatures,
            actual: m1v.len(),
        });
    }

    // Marker variables x† for every common variable x.
    let taken = a1.vars().union(a2.vars());
    let markers: Vec<(Variable, Variable)> = common
        .iter()
        .map(|x| (x.clone(), marker_variable(x, &taken)))
        .collect();
    let n = doc.len() as u32;
    let present = Span::new(1, 1);
    let absent = Span::new(n + 1, n + 1);

    // --- A: the marked extension of A₁. -----------------------------------
    let a1sf = make_semi_functional(a1, &common);
    let marked_a = build_marked_extension(&a1sf, &markers, &common);

    // --- B: extended signatures with no compatible mapping in m2. ----------
    let mut b_mappings = MappingSet::new();
    for sigma in m1v.iter() {
        if m2.iter().any(|mu2| sigma.is_compatible_with(mu2)) {
            continue;
        }
        let mut extended = sigma.clone();
        for (x, marker) in &markers {
            let value = if sigma.contains(x) { present } else { absent };
            extended.insert(marker.clone(), value);
        }
        b_mappings.insert(extended);
    }
    let b = mapping_set_to_vsa(&b_mappings, doc)?;

    // --- Join and project the markers away. --------------------------------
    let joined = join::join_with_options(
        &marked_a,
        &b,
        join::JoinOptions {
            max_states: options.max_states,
        },
    )?;
    Ok(joined.project(a1.vars()).trim())
}

/// Builds the automaton `A` of the Lemma 4.2 proof: for every realizable
/// subset `X` of the common variables (the set of common variables an
/// accepting run closes), a copy of `A₁` prefixed by marker operations
/// `x† ↦ [1,1⟩` for `x ∈ X` and suffixed by `x† ↦ [n+1,n+1⟩` for the rest.
fn build_marked_extension(
    a1sf: &SemiFunctionalVsa,
    markers: &[(Variable, Variable)],
    common: &VarSet,
) -> Vsa {
    let base = &a1sf.vsa;
    // Realizable closed-subsets, read off the accepting states' status
    // vectors (at most |F| of them, never 2^{|common|}).
    let mut realizable: BTreeSet<Vec<bool>> = BTreeSet::new();
    for q in base.accepting_states() {
        let closed: Vec<bool> = markers
            .iter()
            .map(|(x, _)| match a1sf.var_index(x) {
                Some(i) => a1sf.status(q, i) == VarStatus::Closed,
                None => false,
            })
            .collect();
        realizable.insert(closed);
    }

    let mut out = Vsa::new();
    for closed in realizable {
        // Copy of the base automaton.
        let offset = Vsa::copy_into(&mut out, base);
        // Restrict acceptance to the states whose closed-set equals `closed`,
        // and route them through the suffix marker chain.
        let mut suffix_targets: Vec<StateId> = Vec::new();
        for q in base.accepting_states() {
            let q_closed: Vec<bool> = markers
                .iter()
                .map(|(x, _)| match a1sf.var_index(x) {
                    Some(i) => a1sf.status(q, i) == VarStatus::Closed,
                    None => false,
                })
                .collect();
            out.set_accepting(q + offset, false);
            if q_closed == closed {
                suffix_targets.push(q + offset);
            }
        }
        // Prefix chain: markers of the closed variables at position 1.
        let mut cur = 0; // the fresh global initial state
        for ((_, marker), is_closed) in markers.iter().zip(&closed) {
            if *is_closed {
                let mid = out.add_state();
                let next = out.add_state();
                out.add_transition(cur, Label::Open(marker.clone()), mid);
                out.add_transition(mid, Label::Close(marker.clone()), next);
                cur = next;
            }
        }
        out.add_transition(cur, Label::Epsilon, base.initial() + offset);

        // Suffix chain: markers of the not-closed variables at the end.
        let mut suffix_entry = out.add_state();
        let first_suffix = suffix_entry;
        for ((_, marker), is_closed) in markers.iter().zip(&closed) {
            if !*is_closed {
                let mid = out.add_state();
                let next = out.add_state();
                out.add_transition(suffix_entry, Label::Open(marker.clone()), mid);
                out.add_transition(mid, Label::Close(marker.clone()), next);
                suffix_entry = next;
            }
        }
        out.set_accepting(suffix_entry, true);
        for q in suffix_targets {
            out.add_transition(q, Label::Epsilon, first_suffix);
        }

        let _ = common; // the common set is implicit in `markers`
    }
    out
}

/// Evaluates `VA₁ \ A₂W(d)` through the Lemma 4.2 compilation (compile, then
/// enumerate).
pub fn difference_adhoc_eval(
    a1: &Vsa,
    a2: &Vsa,
    doc: &Document,
    options: DifferenceOptions,
) -> SpannerResult<MappingSet> {
    let ad = difference_adhoc(a1, a2, doc, options)?;
    if ad.accepting_states().is_empty() {
        return Ok(MappingSet::new());
    }
    evaluate(&ad, doc)
}

// ---------------------------------------------------------------------------
// Theorem 4.8-style product construction.
// ---------------------------------------------------------------------------

/// Compiles `VA₁ \ A₂W(d)` into an ad-hoc sequential VA by simulating the
/// match graph of `A₂` alongside `A₁` (see the module documentation).
pub fn difference_product(
    a1: &Vsa,
    a2: &Vsa,
    doc: &Document,
    options: DifferenceOptions,
) -> SpannerResult<Vsa> {
    require_sequential(a1, "left")?;
    require_sequential(a2, "right")?;

    let common = a1.vars().intersection(a2.vars());
    let a2p = a2.project(&common).trim();

    // If the right-hand side is empty on this document the difference is A₁.
    if a2p.accepting_states().is_empty() || !spanner_enum::is_nonempty(&a2p, doc)? {
        return Ok(a1.clone());
    }

    // Decompose the right operand by the set of common variables its
    // accepting runs use: each class is functional over its usage set, so a
    // compatible mapping from that class must agree on *all* of the usage
    // variables the left mapping also defines. (For a synchronized A₂ there
    // is exactly one class — the Theorem 4.8 situation.)
    let right_classes = usage_classes(&a2p, &common);

    // Make A₁ semi-functional for the common variables and split it by the
    // set of common variables its accepting runs close (skip-set classes).
    let a1sf = make_semi_functional(a1, &common);
    let left = a1sf.vsa.clone();
    let state_map: Vec<StateId> = (0..left.state_count()).collect();

    // Group accepting states by closed-set over `common`.
    let mut groups: HashMap<Vec<bool>, Vec<StateId>> = HashMap::new();
    for q in left.states() {
        if left.is_accepting(q) {
            let closed: Vec<bool> = common
                .iter()
                .map(|x| match a1sf.var_index(x) {
                    Some(i) => a1sf.status(q, i) == VarStatus::Closed,
                    None => false,
                })
                .collect();
            groups.entry(closed).or_default().push(q);
        }
    }

    let mut out = Vsa::new();
    for (closed, accepting_group) in groups {
        // Variables this group of left mappings defines among the common ones.
        let defined: VarSet = common
            .iter()
            .zip(&closed)
            .filter(|(_, is_closed)| **is_closed)
            .map(|(x, _)| x.clone())
            .collect();
        let entry = build_difference_group(
            &left,
            &a1sf,
            &state_map,
            &accepting_group,
            &defined,
            &right_classes,
            doc,
            &mut out,
            options,
        )?;
        if let Some(entry) = entry {
            out.add_transition(0, Label::Epsilon, entry);
        }
    }
    Ok(out.trim())
}

/// One usage class of the right operand: a sub-automaton all of whose
/// accepting runs use exactly the variables in `used`.
struct RightClass {
    vsa: Vsa,
    used: VarSet,
}

/// Splits the right operand into usage classes over the common variables.
fn usage_classes(a2p: &Vsa, common: &VarSet) -> Vec<RightClass> {
    let a2sf = make_semi_functional(a2p, common);
    let base = &a2sf.vsa;
    let mut by_used: HashMap<Vec<bool>, Vec<StateId>> = HashMap::new();
    for q in base.accepting_states() {
        let used: Vec<bool> = common
            .iter()
            .map(|x| match a2sf.var_index(x) {
                Some(i) => a2sf.status(q, i) == VarStatus::Closed,
                None => false,
            })
            .collect();
        by_used.entry(used).or_default().push(q);
    }
    let mut out = Vec::new();
    for (used_flags, accepting) in by_used {
        let mut vsa = base.clone();
        for q in vsa.states().collect::<Vec<_>>() {
            vsa.set_accepting(q, false);
        }
        for q in accepting {
            vsa.set_accepting(q, true);
        }
        let used: VarSet = common
            .iter()
            .zip(&used_flags)
            .filter(|(_, f)| **f)
            .map(|(x, _)| x.clone())
            .collect();
        let vsa = vsa.trim();
        if !vsa.accepting_states().is_empty() {
            out.push(RightClass { vsa, used });
        }
    }
    out
}

/// Evaluates the difference through [`difference_product`].
pub fn difference_product_eval(
    a1: &Vsa,
    a2: &Vsa,
    doc: &Document,
    options: DifferenceOptions,
) -> SpannerResult<MappingSet> {
    let ad = difference_product(a1, a2, doc, options)?;
    if ad.accepting_states().is_empty() {
        return Ok(MappingSet::new());
    }
    evaluate(&ad, doc)
}

/// A subset of the right operand's states (sorted, deduplicated).
// A sorted vector of right-operand states (not the bitset `spanner_vset::StateSet`;
// this evaluator predates the compiled engine and tracks small sorted sets).
type RightStates = Vec<StateId>;

/// A variable operation: `(variable, is_open)`.
type VarOp = (Variable, bool);

/// Advances a subset of states of one right-operand class over one document
/// position: performs any sequence of ε / variable operations whose
/// restriction to the *constrained* variables equals exactly `required`,
/// then — unless `pos` is the final position — the letter `doc[pos]`.
///
/// When `pos` is the final position (`|d| + 1`) the second component reports
/// whether an accepting state is reachable (i.e. the class contains a
/// compatible mapping).
fn advance_class(
    class: &RightClass,
    doc: &Document,
    states: &RightStates,
    pos: u32,
    required: &BTreeSet<VarOp>,
    constrained: &VarSet,
) -> (RightStates, bool) {
    let a2 = &class.vsa;
    let n = doc.len() as u32;
    // BFS over (state, subset of `required` already performed).
    let mut seen: BTreeSet<(StateId, Vec<VarOp>)> = BTreeSet::new();
    let mut stack: Vec<(StateId, BTreeSet<VarOp>)> = Vec::new();
    let mut complete: Vec<StateId> = Vec::new();
    for &q in states {
        if seen.insert((q, Vec::new())) {
            if required.is_empty() {
                complete.push(q);
            }
            stack.push((q, BTreeSet::new()));
        }
    }
    while let Some((q, done)) = stack.pop() {
        for t in a2.transitions_from(q) {
            let next_done = match &t.label {
                Label::Epsilon => done.clone(),
                Label::Class(_) => continue,
                Label::Open(v) | Label::Close(v) => {
                    let is_open = matches!(t.label, Label::Open(_));
                    if constrained.contains(v) {
                        let op = (v.clone(), is_open);
                        if !required.contains(&op) || done.contains(&op) {
                            continue; // forbidden or duplicate constrained op
                        }
                        let mut d = done.clone();
                        d.insert(op);
                        d
                    } else {
                        done.clone()
                    }
                }
            };
            let key = (t.target, next_done.iter().cloned().collect::<Vec<_>>());
            if seen.insert(key) {
                if next_done == *required {
                    complete.push(t.target);
                }
                stack.push((t.target, next_done));
            }
        }
    }
    if pos == n + 1 {
        let accepted = complete.iter().any(|&q| a2.is_accepting(q));
        (Vec::new(), accepted)
    } else {
        let symbol = doc.symbol_at(pos).expect("position in range");
        let mut next: BTreeSet<StateId> = BTreeSet::new();
        for &q in &complete {
            for t in a2.transitions_from(q) {
                if let Label::Class(c) = &t.label {
                    if c.contains(symbol) {
                        next.insert(t.target);
                    }
                }
            }
        }
        (next.into_iter().collect(), false)
    }
}

/// A state of the per-group difference product.
#[derive(Clone, PartialEq, Eq, Hash)]
struct DiffState {
    /// State of the left operand at the previous letter boundary.
    boundary: StateId,
    /// Current state of the left operand.
    q1: StateId,
    /// Document position of the next letter to consume (1-based).
    pos: u32,
    /// For every right-operand usage class, the subset of its states
    /// consistent with the constrained operations performed so far (empty =
    /// that class can no longer produce a compatible mapping).
    right: Vec<RightStates>,
}

/// Builds the product for one skip-set group of the left operand.
#[allow(clippy::too_many_arguments)]
fn build_difference_group(
    a1: &Vsa,
    a1sf: &SemiFunctionalVsa,
    state_map: &[StateId],
    accepting_group: &[StateId],
    defined: &VarSet,
    right_classes: &[RightClass],
    doc: &Document,
    out: &mut Vsa,
    options: DifferenceOptions,
) -> SpannerResult<Option<StateId>> {
    if accepting_group.is_empty() {
        return Ok(None);
    }
    let accepting: BTreeSet<StateId> = accepting_group.iter().copied().collect();
    let n = doc.len() as u32;

    // Per class, the variables both sides define (the constrained ones).
    let constrained: Vec<VarSet> = right_classes
        .iter()
        .map(|c| c.used.intersection(defined))
        .collect();

    // The constrained operations the left operand performs between two states
    // are recovered from the status vectors of the semi-functional automaton.
    let status_of = |q: StateId, x: &Variable| -> VarStatus {
        match a1sf.var_index(x) {
            Some(i) => a1sf.status(state_map[q], i),
            None => VarStatus::Unseen,
        }
    };
    let ops_between = |from: StateId, to: StateId, vars: &VarSet| -> BTreeSet<VarOp> {
        let mut ops = BTreeSet::new();
        for x in vars.iter() {
            let before = status_of(from, x);
            let after = status_of(to, x);
            match (before, after) {
                (VarStatus::Unseen, VarStatus::Open) => {
                    ops.insert((x.clone(), true));
                }
                (VarStatus::Open, VarStatus::Closed) => {
                    ops.insert((x.clone(), false));
                }
                (VarStatus::Unseen, VarStatus::Closed) => {
                    ops.insert((x.clone(), true));
                    ops.insert((x.clone(), false));
                }
                _ => {}
            }
        }
        ops
    };

    let mut index: HashMap<DiffState, StateId> = HashMap::new();
    let start = DiffState {
        boundary: a1.initial(),
        q1: a1.initial(),
        pos: 1,
        right: right_classes
            .iter()
            .map(|c| vec![c.vsa.initial()])
            .collect(),
    };
    // Many product states share the same (class, position, subset, required
    // ops) advance; memoize it — this matters when the right operand is a
    // large ad-hoc path automaton (black-box leaves in RA trees).
    type AdvanceKey = (usize, u32, Vec<StateId>, Vec<VarOp>);
    let advance_memo: std::cell::RefCell<HashMap<AdvanceKey, (RightStates, bool)>> =
        std::cell::RefCell::new(HashMap::new());
    let advance_cached = |i: usize, states: &RightStates, pos: u32, required: &BTreeSet<VarOp>| {
        let key = (
            i,
            pos,
            states.clone(),
            required.iter().cloned().collect::<Vec<_>>(),
        );
        if let Some(hit) = advance_memo.borrow().get(&key) {
            return hit.clone();
        }
        let value = advance_class(
            &right_classes[i],
            doc,
            states,
            pos,
            required,
            &constrained[i],
        );
        advance_memo.borrow_mut().insert(key, value.clone());
        value
    };
    let is_accepting = |ds: &DiffState| -> bool {
        if ds.pos != n + 1 || !accepting.contains(&ds.q1) {
            return false;
        }
        // A left mapping is in the difference iff *no* class matches.
        !right_classes.iter().enumerate().any(|(i, _)| {
            if ds.right[i].is_empty() {
                return false;
            }
            let required = ops_between(ds.boundary, ds.q1, &constrained[i]);
            advance_cached(i, &ds.right[i], ds.pos, &required).1
        })
    };
    let entry = out.add_state();
    out.set_accepting(entry, is_accepting(&start));
    index.insert(start.clone(), entry);
    let mut work = vec![start];

    while let Some(ds) = work.pop() {
        let from = index[&ds];
        for t in a1.transitions_from(ds.q1) {
            let (next, label) = match &t.label {
                Label::Epsilon | Label::Open(_) | Label::Close(_) => (
                    DiffState {
                        q1: t.target,
                        ..ds.clone()
                    },
                    t.label.clone(),
                ),
                Label::Class(c) => {
                    if ds.pos > n {
                        continue;
                    }
                    let symbol = doc.symbol_at(ds.pos).expect("position in range");
                    if !c.contains(symbol) {
                        continue;
                    }
                    let right: Vec<RightStates> = right_classes
                        .iter()
                        .enumerate()
                        .map(|(i, _)| {
                            if ds.right[i].is_empty() {
                                Vec::new()
                            } else {
                                let required = ops_between(ds.boundary, ds.q1, &constrained[i]);
                                advance_cached(i, &ds.right[i], ds.pos, &required).0
                            }
                        })
                        .collect();
                    (
                        DiffState {
                            boundary: t.target,
                            q1: t.target,
                            pos: ds.pos + 1,
                            right,
                        },
                        Label::symbol(symbol),
                    )
                }
            };
            let to = match index.get(&next) {
                Some(&id) => id,
                None => {
                    if out.state_count() >= options.max_states {
                        return Err(SpannerError::LimitExceeded {
                            what: "difference product states",
                            limit: options.max_states,
                            actual: out.state_count() + 1,
                        });
                    }
                    let id = out.add_state();
                    out.set_accepting(id, is_accepting(&next));
                    index.insert(next.clone(), id);
                    work.push(next);
                    id
                }
            };
            out.add_transition(from, label, to);
        }
    }
    Ok(Some(entry))
}

#[cfg(test)]
mod tests {
    use super::*;
    use spanner_rgx::parse;
    use spanner_vset::{compile, interpret};

    fn compiled(pattern: &str) -> Vsa {
        compile(&parse(pattern).unwrap())
    }

    /// The materialized oracle for the difference.
    fn oracle(a1: &Vsa, a2: &Vsa, doc: &Document) -> MappingSet {
        interpret(a1, doc).difference(&interpret(a2, doc))
    }

    fn check_all(a1: &Vsa, a2: &Vsa, texts: &[&str]) {
        for text in texts {
            let doc = Document::new(*text);
            let expected = oracle(a1, a2, &doc);
            let opts = DifferenceOptions::default();
            assert_eq!(
                difference_filter(a1, a2, &doc).unwrap(),
                expected,
                "filter mismatch on {text:?}"
            );
            assert_eq!(
                difference_adhoc_eval(a1, a2, &doc, opts).unwrap(),
                expected,
                "adhoc (Lemma 4.2) mismatch on {text:?}"
            );
            assert_eq!(
                difference_product_eval(a1, a2, &doc, opts).unwrap(),
                expected,
                "product (Theorem 4.8) mismatch on {text:?}"
            );
        }
    }

    #[test]
    fn functional_operands_same_schema() {
        // Both bind x; the difference removes exact span matches.
        let a1 = compiled(".*{x:\\d+}.*");
        let a2 = compiled(".*{x:\\d\\d}.*");
        check_all(&a1, &a2, &["a12b", "1", "99", ""]);
    }

    #[test]
    fn paper_example_2_4_filter_uk_addresses() {
        // Simplified Example 2.4: extract name / optional phone / mail
        // tuples, then subtract the UK-mail extractor.
        let a1 = compiled(r".*{name:\u\l+} ({phone:\d+} )?{mail:\l+@\l+\.\l+}.*");
        let a2 = compiled(r".*{mail:\l+@\l+\.uk}.*");
        check_all(
            &a1,
            &a2,
            &[
                "Bob 42 b@edu.uk ",
                "Bob 42 b@edu.ru ",
                "Ann a@x.uk Bob b@y.ru ",
            ],
        );
    }

    #[test]
    fn schemaless_left_operand() {
        // The left operand sometimes skips x entirely; any right mapping with
        // a disjoint domain then removes it (the Lemma 4.2 subtlety).
        let a1 = compiled("({x:a})?{y:b+}");
        let a2 = compiled("a?{z:b}b*|{x:a}.*");
        check_all(&a1, &a2, &["b", "ab", "abb", "bb"]);
    }

    #[test]
    fn disjoint_variables_make_the_difference_empty_or_full() {
        // No common variables: if VA₂W(d) is nonempty every µ₁ is compatible
        // with every µ₂ (disjoint domains), so the difference is empty;
        // otherwise it is VA₁W(d).
        let a1 = compiled("{x:a*}b");
        let a2 = compiled("{y:a}.*");
        check_all(&a1, &a2, &["ab", "b", "aab"]);
    }

    #[test]
    fn empty_document_cases() {
        let a1 = compiled("{x:()}|()");
        let a2 = compiled("{x:()}");
        check_all(&a1, &a2, &[""]);
        let a3 = compiled("a{x:()}");
        check_all(&a1, &a3, &[""]);
    }

    #[test]
    fn boolean_difference() {
        // No variables at all: the difference behaves like language
        // difference on the single empty mapping.
        let a1 = compiled("(a|b)*");
        let a2 = compiled(".*ab.*");
        check_all(&a1, &a2, &["ab", "ba", "", "bab"]);
    }

    #[test]
    fn synchronized_right_operand_with_many_common_variables() {
        // A₂ is synchronized for all common variables; A₁ is functional.
        // Use 4 common variables to exercise the Theorem 4.8 path.
        let a1 = compiled("{a:\\d}{b:\\d}{c:\\d}{d:\\d}");
        let a2 = compiled("{a:1}{b:\\d}{c:\\d}{d:\\d}|{a:\\d}{b:2}{c:\\d}{d:\\d}");
        // a2 is *not* synchronized (variables under a disjunction), but the
        // construction is still correct; also test a synchronized one.
        let a3 = compiled("{a:\\d}{b:\\d}(){c:\\d}{d:[0-4]}");
        check_all(&a1, &a2, &["1234", "9234", "1334", "9999"]);
        check_all(&a1, &a3, &["1234", "1239", "0000"]);
        assert!(analysis::is_synchronized(
            &compiled("{a:\\d}{b:\\d}(){c:\\d}{d:[0-4]}"),
            &VarSet::from_iter(["a", "b", "c", "d"])
        ));
    }

    #[test]
    fn adhoc_output_is_a_sequential_va_for_the_document() {
        let a1 = compiled("({x:a})?{y:b+}");
        let a2 = compiled("{x:a}b*");
        let doc = Document::new("abb");
        let ad = difference_adhoc(&a1, &a2, &doc, DifferenceOptions::default()).unwrap();
        assert!(analysis::is_sequential(&ad));
        assert_eq!(evaluate(&ad, &doc).unwrap(), oracle(&a1, &a2, &doc));
        let pd = difference_product(&a1, &a2, &doc, DifferenceOptions::default()).unwrap();
        assert!(analysis::is_sequential(&pd));
        assert_eq!(evaluate(&pd, &doc).unwrap(), oracle(&a1, &a2, &doc));
    }

    #[test]
    fn non_sequential_inputs_are_rejected() {
        let mut bad = Vsa::new();
        let q1 = bad.add_state();
        bad.add_transition(0, Label::Open(Variable::new("x")), q1);
        bad.set_accepting(q1, true);
        let good = compiled("{x:a}");
        let doc = Document::new("a");
        assert!(difference_filter(&bad, &good, &doc).is_err());
        assert!(difference_adhoc(&good, &bad, &doc, DifferenceOptions::default()).is_err());
        assert!(difference_product(&bad, &good, &doc, DifferenceOptions::default()).is_err());
    }

    #[test]
    fn hard_case_for_the_filter_baseline() {
        // VA₁W(d) is large but the difference is empty: the ad-hoc
        // constructions detect this without enumerating the left side.
        let a1 = compiled(".*{x:.*}.*");
        let a2 = compiled(".*{x:.*}.*");
        let doc = Document::new("abcdefgh");
        let expected = MappingSet::new();
        let opts = DifferenceOptions::default();
        assert_eq!(
            difference_adhoc_eval(&a1, &a2, &doc, opts).unwrap(),
            expected
        );
        assert_eq!(
            difference_product_eval(&a1, &a2, &doc, opts).unwrap(),
            expected
        );
        assert_eq!(difference_filter(&a1, &a2, &doc).unwrap(), expected);
    }
}
