//! RA trees and extraction complexity (Section 5).
//!
//! An *RA tree* is a logical query plan whose inner nodes are the relational
//! operators (projection, union, natural join, difference) and whose leaves
//! are placeholders for atomic spanners. An [`Instantiation`] assigns an
//! atomic spanner — a regex formula, a vset-automaton, or an arbitrary
//! tractable degree-bounded black box — to every placeholder.
//!
//! The paper's *extraction complexity* regards the RA tree as fixed and takes
//! the instantiation and the document as input. Theorem 5.2 / Corollary 5.3:
//! if every join and difference node shares at most `k` variables between its
//! subtrees, the instantiated tree can be evaluated with polynomial delay.
//! [`compile_ra`] implements the paper's ad-hoc recipe literally: positive
//! operators are compiled statically (automaton product / union /
//! projection), the difference and black-box leaves use ad-hoc
//! (document-dependent) compilation, and the final automaton is enumerated
//! with the polynomial-delay enumerator. [`evaluate_ra`] — the production
//! entry point — instead lowers the tree onto the physical operator
//! executor ([`crate::exec`]) via [`crate::plan::CompiledPlan`], which keeps
//! the static compilation but evaluates difference and black-box
//! composition at the relation level, with no per-document recomposition.

use crate::adhoc::mapping_set_to_vsa;
use crate::difference::{difference_product, DifferenceOptions};
use crate::spanner::{Spanner, SpannerRef};
use spanner_core::{Document, MappingSet, SpannerError, SpannerResult, VarSet};
use spanner_rgx::Rgx;
use spanner_vset::{join, Vsa};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Identifier of a leaf placeholder in an RA tree.
pub type LeafId = usize;

/// An RA tree over the operators of Section 2.4 with placeholder leaves.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RaTree {
    /// A placeholder for an atomic spanner.
    Leaf(LeafId),
    /// Projection `π_Y`.
    Project(VarSet, Box<RaTree>),
    /// Union.
    Union(Box<RaTree>, Box<RaTree>),
    /// Natural join.
    Join(Box<RaTree>, Box<RaTree>),
    /// Difference.
    Difference(Box<RaTree>, Box<RaTree>),
}

impl RaTree {
    /// A leaf placeholder.
    pub fn leaf(id: LeafId) -> RaTree {
        RaTree::Leaf(id)
    }

    /// `π_vars(child)`.
    pub fn project<V: Into<VarSet>>(vars: V, child: RaTree) -> RaTree {
        RaTree::Project(vars.into(), Box::new(child))
    }

    /// `left ∪ right`.
    pub fn union(left: RaTree, right: RaTree) -> RaTree {
        RaTree::Union(Box::new(left), Box::new(right))
    }

    /// `left ⋈ right`.
    pub fn join(left: RaTree, right: RaTree) -> RaTree {
        RaTree::Join(Box::new(left), Box::new(right))
    }

    /// `left \ right`.
    pub fn difference(left: RaTree, right: RaTree) -> RaTree {
        RaTree::Difference(Box::new(left), Box::new(right))
    }

    /// All placeholder ids occurring in the tree.
    pub fn leaves(&self) -> Vec<LeafId> {
        let mut out = Vec::new();
        self.collect_leaves(&mut out);
        out
    }

    fn collect_leaves(&self, out: &mut Vec<LeafId>) {
        match self {
            RaTree::Leaf(id) => out.push(*id),
            RaTree::Project(_, child) => child.collect_leaves(out),
            RaTree::Union(l, r) | RaTree::Join(l, r) | RaTree::Difference(l, r) => {
                l.collect_leaves(out);
                r.collect_leaves(out);
            }
        }
    }

    /// Renders the tree as an indented multi-line outline, one node per
    /// line, leaves annotated with the atom the instantiation assigns them
    /// (the `explain` output of the query-language front end).
    pub fn describe(&self, inst: &Instantiation) -> String {
        fn node_label(tree: &RaTree, inst: &Instantiation) -> String {
            match tree {
                RaTree::Leaf(id) => match inst.atom(*id) {
                    Some(atom) => format!("?{id} = {}", atom.describe()),
                    None => format!("?{id} (unassigned)"),
                },
                RaTree::Project(vars, _) => {
                    let names: Vec<String> = vars.iter().map(|v| v.to_string()).collect();
                    format!("π{{{}}}", names.join(","))
                }
                RaTree::Union(_, _) => "∪".to_string(),
                RaTree::Join(_, _) => "⋈".to_string(),
                RaTree::Difference(_, _) => "\\".to_string(),
            }
        }
        fn walk(tree: &RaTree, inst: &Instantiation, prefix: &str, out: &mut String) {
            let children: Vec<&RaTree> = match tree {
                RaTree::Leaf(_) => Vec::new(),
                RaTree::Project(_, child) => vec![child],
                RaTree::Union(l, r) | RaTree::Join(l, r) | RaTree::Difference(l, r) => {
                    vec![l, r]
                }
            };
            for (i, child) in children.iter().enumerate() {
                let last = i + 1 == children.len();
                out.push('\n');
                out.push_str(prefix);
                out.push_str(if last { "└─ " } else { "├─ " });
                out.push_str(&node_label(child, inst));
                let extended = format!("{prefix}{}", if last { "   " } else { "│  " });
                walk(child, inst, &extended, out);
            }
        }
        let mut out = node_label(self, inst);
        walk(self, inst, "", &mut out);
        out
    }

    /// Number of operator nodes (a size measure).
    pub fn size(&self) -> usize {
        match self {
            RaTree::Leaf(_) => 1,
            RaTree::Project(_, child) => 1 + child.size(),
            RaTree::Union(l, r) | RaTree::Join(l, r) | RaTree::Difference(l, r) => {
                1 + l.size() + r.size()
            }
        }
    }
}

impl fmt::Display for RaTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RaTree::Leaf(id) => write!(f, "?{id}"),
            RaTree::Project(vars, child) => {
                write!(f, "π{{")?;
                for (i, v) in vars.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "}}({child})")
            }
            RaTree::Union(l, r) => write!(f, "({l} ∪ {r})"),
            RaTree::Join(l, r) => write!(f, "({l} ⋈ {r})"),
            RaTree::Difference(l, r) => write!(f, "({l} \\ {r})"),
        }
    }
}

/// The atomic spanner assigned to a placeholder.
#[derive(Clone)]
pub enum Atom {
    /// A sequential regex formula.
    Rgx(Rgx),
    /// A sequential vset-automaton.
    Vsa(Vsa),
    /// A tractable, degree-bounded black-box spanner (Corollary 5.3).
    BlackBox(SpannerRef),
}

impl Atom {
    /// The declared variables of the atom.
    pub fn vars(&self) -> VarSet {
        match self {
            Atom::Rgx(r) => r.vars(),
            Atom::Vsa(a) => a.vars().clone(),
            Atom::BlackBox(s) => s.vars(),
        }
    }

    /// A short description.
    pub fn describe(&self) -> String {
        match self {
            Atom::Rgx(r) => format!("rgx({r})"),
            Atom::Vsa(a) => format!("vsa({} states)", a.state_count()),
            Atom::BlackBox(s) => format!("blackbox({})", s.name()),
        }
    }
}

impl fmt::Debug for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.describe())
    }
}

impl From<Rgx> for Atom {
    fn from(r: Rgx) -> Self {
        Atom::Rgx(r)
    }
}

impl From<Vsa> for Atom {
    fn from(a: Vsa) -> Self {
        Atom::Vsa(a)
    }
}

/// An instantiation of an RA tree: the assignment of atomic spanners to the
/// placeholders (Figure 2 in the paper).
#[derive(Clone, Debug, Default)]
pub struct Instantiation {
    atoms: BTreeMap<LeafId, Atom>,
}

impl Instantiation {
    /// An empty instantiation.
    pub fn new() -> Self {
        Instantiation::default()
    }

    /// Assigns an atom to a placeholder (builder style).
    pub fn with(mut self, id: LeafId, atom: impl Into<Atom>) -> Self {
        self.atoms.insert(id, atom.into());
        self
    }

    /// Assigns a black-box spanner to a placeholder (builder style).
    pub fn with_black_box(mut self, id: LeafId, spanner: impl Spanner + 'static) -> Self {
        self.atoms.insert(id, Atom::BlackBox(Arc::new(spanner)));
        self
    }

    /// The atom assigned to a placeholder.
    pub fn atom(&self, id: LeafId) -> Option<&Atom> {
        self.atoms.get(&id)
    }

    /// Number of assigned placeholders.
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// Whether no placeholder is assigned.
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }
}

/// Options controlling RA-tree evaluation.
#[derive(Debug, Clone, Copy)]
pub struct RaOptions {
    /// Bound on intermediate automaton sizes (the static FPT join product
    /// during plan compilation, and every construction of the ad-hoc
    /// [`compile_ra`] pipeline).
    pub max_states: usize,
    /// Bound on materialized intermediate relations in the physical
    /// executor (any relation feeding a dynamic operator — a difference's
    /// probe side, a join's build side, union/projection inputs), and on
    /// the Lemma 4.2 signature materialization in the ad-hoc
    /// constructions.
    pub max_signatures: usize,
    /// Run the logical plan optimizer ([`crate::plan::optimize_ra`]) before
    /// compiling. On by default; turn off to evaluate the tree exactly as
    /// written (the differential tests do).
    pub optimize: bool,
    /// Enable the scan-core fast path (literal prefilters + lazy boolean
    /// DFA pre-pass on every compiled scan; see `spanner_vset::scan`). On by
    /// default; semantics-invariant either way — turning it off only
    /// removes the boolean reject shortcut (the differential oracle in
    /// `tests/scan_fastpath_oracle.rs` runs both ways).
    pub scan_fast_path: bool,
}

impl Default for RaOptions {
    fn default() -> Self {
        RaOptions {
            max_states: 4_000_000,
            max_signatures: 1_000_000,
            optimize: true,
            scan_fast_path: true,
        }
    }
}

impl RaOptions {
    /// The default options with the plan optimizer disabled.
    pub fn unoptimized() -> Self {
        RaOptions {
            optimize: false,
            ..RaOptions::default()
        }
    }
}

/// The declared variable set of an instantiated subtree (used to compute the
/// shared-variable parameter of Theorem 5.2).
pub fn tree_vars(tree: &RaTree, inst: &Instantiation) -> SpannerResult<VarSet> {
    Ok(match tree {
        RaTree::Leaf(id) => {
            let atom = inst.atom(*id).ok_or_else(|| {
                SpannerError::Instantiation(format!("placeholder ?{id} unassigned"))
            })?;
            atom.vars()
        }
        RaTree::Project(vars, child) => tree_vars(child, inst)?.intersection(vars),
        RaTree::Union(l, r) | RaTree::Join(l, r) => tree_vars(l, inst)?.union(&tree_vars(r, inst)?),
        RaTree::Difference(l, _) => tree_vars(l, inst)?,
    })
}

/// The extraction-complexity parameter of Theorem 5.2: the maximum number of
/// variables shared between the two subtrees of any join or difference node.
pub fn shared_variable_bound(tree: &RaTree, inst: &Instantiation) -> SpannerResult<usize> {
    Ok(match tree {
        RaTree::Leaf(_) => 0,
        RaTree::Project(_, child) => shared_variable_bound(child, inst)?,
        RaTree::Union(l, r) => shared_variable_bound(l, inst)?.max(shared_variable_bound(r, inst)?),
        RaTree::Join(l, r) | RaTree::Difference(l, r) => {
            let here = tree_vars(l, inst)?.intersection(&tree_vars(r, inst)?).len();
            here.max(shared_variable_bound(l, inst)?)
                .max(shared_variable_bound(r, inst)?)
        }
    })
}

/// Compiles an instantiated RA tree into an **ad-hoc** sequential VA for the
/// given document (Theorem 5.2 / Corollary 5.3) and returns it.
///
/// Positive operators over automaton subtrees are compiled statically (the
/// same construction would be valid for every document); difference nodes and
/// black-box leaves force the compilation to become document-dependent.
pub fn compile_ra(
    tree: &RaTree,
    inst: &Instantiation,
    doc: &Document,
    options: RaOptions,
) -> SpannerResult<Vsa> {
    if options.optimize {
        let optimized = crate::plan::optimize_ra(tree, inst)?;
        return compile_ra_node(&optimized, inst, doc, options);
    }
    compile_ra_node(tree, inst, doc, options)
}

/// Looks up the atom assigned to a placeholder.
pub(crate) fn resolve_atom(inst: &Instantiation, id: LeafId) -> SpannerResult<&Atom> {
    inst.atom(id)
        .ok_or_else(|| SpannerError::Instantiation(format!("placeholder ?{id} unassigned")))
}

/// Compiles a regex-formula or automaton atom into a (document-independent)
/// automaton, checking sequentiality. Black boxes are rejected — they are
/// inherently document-dependent, and each pipeline incorporates them its
/// own way.
pub(crate) fn compile_static_atom(id: LeafId, atom: &Atom) -> SpannerResult<Vsa> {
    match atom {
        Atom::Rgx(r) => {
            if !spanner_rgx::is_sequential(r) {
                return Err(SpannerError::requirement(
                    "sequential",
                    format!("leaf ?{id}: regex formula is not sequential"),
                ));
            }
            Ok(spanner_vset::compile(r))
        }
        Atom::Vsa(a) => {
            if !spanner_vset::is_sequential(a) {
                return Err(SpannerError::requirement(
                    "sequential",
                    format!("leaf ?{id}: automaton is not sequential"),
                ));
            }
            Ok(a.clone())
        }
        Atom::BlackBox(s) => Err(SpannerError::Instantiation(format!(
            "leaf ?{id}: black box `{}` has no static compilation",
            s.name()
        ))),
    }
}

/// [`compile_ra`] without the optimizer pass (the recursive worker).
fn compile_ra_node(
    tree: &RaTree,
    inst: &Instantiation,
    doc: &Document,
    options: RaOptions,
) -> SpannerResult<Vsa> {
    let diff_options = DifferenceOptions {
        max_states: options.max_states,
        max_signatures: options.max_signatures,
    };
    Ok(match tree {
        RaTree::Leaf(id) => match resolve_atom(inst, *id)? {
            Atom::BlackBox(s) => {
                // Ad-hoc incorporation of a black box: evaluate it on the
                // document and compile the relation into a path automaton.
                let relation = s.eval(doc)?;
                mapping_set_to_vsa(&relation, doc)?
            }
            atom => compile_static_atom(*id, atom)?,
        },
        RaTree::Project(vars, child) => compile_ra_node(child, inst, doc, options)?.project(vars),
        RaTree::Union(l, r) => {
            let left = compile_ra_node(l, inst, doc, options)?;
            let right = compile_ra_node(r, inst, doc, options)?;
            left.union(&right)
        }
        RaTree::Join(l, r) => {
            let left = compile_ra_node(l, inst, doc, options)?;
            let right = compile_ra_node(r, inst, doc, options)?;
            join::join_with_options(
                &left,
                &right,
                join::JoinOptions {
                    max_states: options.max_states,
                },
            )?
        }
        RaTree::Difference(l, r) => {
            let left = compile_ra_node(l, inst, doc, options)?;
            let right = compile_ra_node(r, inst, doc, options)?;
            difference_product(&left, &right, doc, diff_options)?
        }
    })
}

/// Evaluates an instantiated RA tree on a document through the physical
/// operator executor: the tree is optimized (per `options`), its static
/// subtrees are compiled once, and the lowered plan runs on the one
/// evaluation pipeline every other consumer uses
/// ([`crate::plan::CompiledPlan`] / [`crate::exec`]).
///
/// To evaluate the same tree on many documents, compile the plan once with
/// [`crate::plan::CompiledPlan::compile`] (or use `spanner-corpus`) instead
/// of calling this per document. The ad-hoc compilation pipeline of
/// Theorem 5.2 / Corollary 5.3 remains available as [`compile_ra`]; it is
/// no longer an evaluation path, only a construction (and the differential
/// baseline the executor is measured against).
pub fn evaluate_ra(
    tree: &RaTree,
    inst: &Instantiation,
    doc: &Document,
    options: RaOptions,
) -> SpannerResult<MappingSet> {
    crate::plan::CompiledPlan::compile(tree, inst, options)?.evaluate(doc)
}

/// Evaluates an instantiated RA tree by materializing every node — the
/// semantic oracle for [`evaluate_ra`] (exponential in the worst case).
pub fn evaluate_ra_materialized(
    tree: &RaTree,
    inst: &Instantiation,
    doc: &Document,
) -> SpannerResult<MappingSet> {
    Ok(match tree {
        RaTree::Leaf(id) => {
            let atom = inst.atom(*id).ok_or_else(|| {
                SpannerError::Instantiation(format!("placeholder ?{id} unassigned"))
            })?;
            match atom {
                Atom::Rgx(r) => spanner_enum::evaluate_rgx(r, doc)?,
                Atom::Vsa(a) => spanner_enum::evaluate(a, doc)?,
                Atom::BlackBox(s) => s.eval(doc)?,
            }
        }
        RaTree::Project(vars, child) => evaluate_ra_materialized(child, inst, doc)?.project(vars),
        RaTree::Union(l, r) => {
            evaluate_ra_materialized(l, inst, doc)?.union(&evaluate_ra_materialized(r, inst, doc)?)
        }
        RaTree::Join(l, r) => {
            evaluate_ra_materialized(l, inst, doc)?.join(&evaluate_ra_materialized(r, inst, doc)?)
        }
        RaTree::Difference(l, r) => evaluate_ra_materialized(l, inst, doc)?
            .difference(&evaluate_ra_materialized(r, inst, doc)?),
    })
}

/// Builds the RA tree of the paper's Figure 2:
/// `π_{xstdnt}((?0 ⋈ ?1) \ ?2)`.
pub fn figure_2_tree(projected: impl Into<VarSet>) -> RaTree {
    RaTree::project(
        projected,
        RaTree::difference(
            RaTree::join(RaTree::leaf(0), RaTree::leaf(1)),
            RaTree::leaf(2),
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blackbox::{SentimentSpanner, TokenizerSpanner};
    use spanner_rgx::parse;

    fn opts() -> RaOptions {
        RaOptions::default()
    }

    /// Ad-hoc pipeline and materialized oracle must agree.
    fn check(tree: &RaTree, inst: &Instantiation, texts: &[&str]) {
        for text in texts {
            let doc = Document::new(*text);
            let expected = evaluate_ra_materialized(tree, inst, &doc).unwrap();
            let actual = evaluate_ra(tree, inst, &doc, opts()).unwrap();
            assert_eq!(actual, expected, "mismatch on {text:?} for {tree}");
        }
    }

    #[test]
    fn tree_structure_helpers() {
        let tree = figure_2_tree(VarSet::from_iter(["xstdnt"]));
        assert_eq!(tree.leaves(), vec![0, 1, 2]);
        assert_eq!(tree.size(), 6);
        assert_eq!(format!("{tree}"), "π{xstdnt}(((?0 ⋈ ?1) \\ ?2))");
    }

    #[test]
    fn describe_renders_an_outline() {
        let tree = figure_2_tree(VarSet::from_iter(["student"]));
        let inst = Instantiation::new()
            .with(0, parse("{student:a}{mail:b}").unwrap())
            .with(1, parse("{student:a}{phone:b?}").unwrap());
        let outline = tree.describe(&inst);
        let lines: Vec<&str> = outline.lines().collect();
        assert_eq!(lines[0], "π{student}");
        assert!(lines[1].contains('\\'), "{outline}");
        assert!(
            outline.contains("?0 = rgx({student:a}{mail:b})"),
            "{outline}"
        );
        assert!(outline.contains("?2 (unassigned)"), "{outline}");
    }

    #[test]
    fn missing_placeholder_is_reported() {
        let tree = RaTree::join(RaTree::leaf(0), RaTree::leaf(7));
        let inst = Instantiation::new().with(0, parse("{x:a}").unwrap());
        let doc = Document::new("a");
        assert!(matches!(
            evaluate_ra(&tree, &inst, &doc, opts()),
            Err(SpannerError::Instantiation(_))
        ));
        assert!(tree_vars(&tree, &inst).is_err());
    }

    #[test]
    fn positive_tree_over_regex_formulas() {
        // (emails ⋈ names) ∪ phones, projected.
        let tree = RaTree::project(
            VarSet::from_iter(["name", "mail", "phone"]),
            RaTree::union(
                RaTree::join(RaTree::leaf(0), RaTree::leaf(1)),
                RaTree::leaf(2),
            ),
        );
        let inst = Instantiation::new()
            .with(0, parse(r".*{name:\u\l+} {mail:\l+@\l+}.*").unwrap())
            .with(1, parse(r".*{name:\u\l+}.*").unwrap())
            .with(2, parse(r".*{phone:\d\d\d}.*").unwrap());
        check(&tree, &inst, &["Bob bob@edu 123", "Ann x@y", "42"]);
    }

    #[test]
    fn figure_2_query_with_regex_atoms() {
        // π_{student}((mail ⋈ phone) \ recommended)
        let tree = figure_2_tree(VarSet::from_iter(["student"]));
        let inst = Instantiation::new()
            .with(0, parse(r".*{student:\u\l+} mail:{mail:\l+}.*").unwrap())
            .with(
                1,
                parse(r".*{student:\u\l+} .*phone:{phone:\d+}.*").unwrap(),
            )
            .with(2, parse(r".*{student:\u\l+} .*rec:{rec:\l+}.*").unwrap());
        check(
            &tree,
            &inst,
            &[
                "Bob mail:b phone:1 rec:good",
                "Ann mail:a phone:2",
                "Cid mail:c phone:3 rec:fine Ann mail:a phone:2",
            ],
        );
    }

    #[test]
    fn black_box_leaf_via_adhoc_compilation() {
        // Tokens that are not "student names" (difference with a black box on
        // the right), Corollary 5.3 style.
        let tree = RaTree::difference(RaTree::leaf(0), RaTree::leaf(1));
        let inst = Instantiation::new()
            .with(
                0,
                parse(r".* {tok:\l+} .*|{tok:\l+} .*|.* {tok:\l+}|{tok:\l+}").unwrap(),
            )
            .with_black_box(1, SentimentSpanner::new("tok", "rest", ["good"]));
        check(&tree, &inst, &["alpha beta", "good beta", "x good y"]);
    }

    #[test]
    fn black_box_tokenizer_join() {
        // Join a tokenizer black box with a regex that extracts the token
        // right after a marker word.
        let tree = RaTree::join(RaTree::leaf(0), RaTree::leaf(1));
        let inst = Instantiation::new()
            .with_black_box(0, TokenizerSpanner::new("t"))
            .with(1, parse(r".*important {t:\w+}.*").unwrap());
        check(
            &tree,
            &inst,
            &["this is important stuff here", "important x"],
        );
    }

    #[test]
    fn shared_variable_bound_computation() {
        let tree = figure_2_tree(VarSet::from_iter(["student"]));
        let inst = Instantiation::new()
            .with(0, parse(r"{student:\l+}{mail:\l+}").unwrap())
            .with(1, parse(r"{student:\l+}{phone:\d+}").unwrap())
            .with(2, parse(r"{student:\l+}{rec:\l+}").unwrap());
        // Join shares {student}; difference shares {student}.
        assert_eq!(shared_variable_bound(&tree, &inst).unwrap(), 1);

        let wide = RaTree::join(RaTree::leaf(0), RaTree::leaf(1));
        let inst2 = Instantiation::new()
            .with(0, parse(r"{a:x}{b:x}{c:x}").unwrap())
            .with(1, parse(r"{a:x}{b:x}{c:x}").unwrap());
        assert_eq!(shared_variable_bound(&wide, &inst2).unwrap(), 3);
    }

    #[test]
    fn non_sequential_atoms_are_rejected() {
        let tree = RaTree::leaf(0);
        let inst = Instantiation::new().with(0, parse("({x:a})*").unwrap());
        let doc = Document::new("aa");
        assert!(matches!(
            evaluate_ra(&tree, &inst, &doc, opts()),
            Err(SpannerError::Requirement { .. })
        ));
    }

    #[test]
    fn projection_and_union_compose() {
        let tree = RaTree::project(
            VarSet::from_iter(["x"]),
            RaTree::union(RaTree::leaf(0), RaTree::leaf(1)),
        );
        let inst = Instantiation::new()
            .with(0, parse("{x:a+}{y:b*}").unwrap())
            .with(1, parse("{y:a*}{x:b+}").unwrap());
        check(&tree, &inst, &["ab", "aab", "b", "a", ""]);
    }
}
