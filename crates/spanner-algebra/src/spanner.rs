//! The schemaless-spanner abstraction.

use spanner_core::{Document, MappingSet, SpannerResult, VarSet};
use spanner_rgx::Rgx;
use spanner_vset::{CompiledVsa, Vsa};
use std::fmt;
use std::sync::{Arc, OnceLock};

/// A schemaless document spanner: a function from documents to finite sets of
/// mappings (Section 2.1).
///
/// The trait is deliberately minimal so that arbitrary *black-box* extractors
/// (Section 5 / Corollary 5.3) can participate in RA trees: a POS tagger, a
/// sentiment classifier, a string-equality check, … anything that can produce
/// mappings in polynomial time and has bounded degree.
pub trait Spanner: Send + Sync {
    /// A human-readable name (used in plans and error messages).
    fn name(&self) -> String;

    /// The variables this spanner may bind. Every mapping it produces has a
    /// domain contained in this set.
    fn vars(&self) -> VarSet;

    /// The spanner's *degree*: the maximum cardinality of a produced mapping
    /// over all documents (Section 5). Defaults to the declared variable
    /// count.
    fn degree(&self) -> usize {
        self.vars().len()
    }

    /// Applies the spanner to a document.
    fn eval(&self, doc: &Document) -> SpannerResult<MappingSet>;
}

impl fmt::Debug for dyn Spanner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Spanner({})", self.name())
    }
}

/// A spanner defined by a sequential vset-automaton, evaluated with the
/// polynomial-delay enumerator.
///
/// The automaton is compiled to a [`CompiledVsa`] on first evaluation and
/// the compilation is shared by all clones, so evaluating the same spanner
/// over many documents (the RA-tree and benchmark pattern) pays the
/// compilation cost once.
#[derive(Clone, Debug)]
pub struct VsaSpanner {
    name: String,
    vsa: Vsa,
    compiled: Arc<OnceLock<CompiledVsa>>,
}

impl VsaSpanner {
    /// Wraps an automaton.
    pub fn new(name: impl Into<String>, vsa: Vsa) -> Self {
        VsaSpanner {
            name: name.into(),
            vsa,
            compiled: Arc::new(OnceLock::new()),
        }
    }

    /// The underlying automaton.
    pub fn vsa(&self) -> &Vsa {
        &self.vsa
    }

    /// The compiled form (compiled on first use).
    pub fn compiled(&self) -> &CompiledVsa {
        self.compiled
            .get_or_init(|| CompiledVsa::compile(&self.vsa))
    }
}

impl Spanner for VsaSpanner {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn vars(&self) -> VarSet {
        self.vsa.vars().clone()
    }

    fn eval(&self, doc: &Document) -> SpannerResult<MappingSet> {
        spanner_enum::evaluate_compiled(self.compiled(), doc)
    }
}

/// A spanner defined by a sequential regex formula (compiled to an automaton
/// once, at construction time).
#[derive(Clone, Debug)]
pub struct RgxSpanner {
    name: String,
    formula: Rgx,
    vsa: Vsa,
    compiled: Arc<OnceLock<CompiledVsa>>,
}

impl RgxSpanner {
    /// Compiles a regex formula into a spanner.
    pub fn new(name: impl Into<String>, formula: Rgx) -> Self {
        let vsa = spanner_vset::compile(&formula);
        RgxSpanner {
            name: name.into(),
            formula,
            vsa,
            compiled: Arc::new(OnceLock::new()),
        }
    }

    /// Parses and compiles a regex formula from its text syntax.
    pub fn parse(name: impl Into<String>, pattern: &str) -> SpannerResult<Self> {
        Ok(RgxSpanner::new(name, spanner_rgx::parse(pattern)?))
    }

    /// The regex formula.
    pub fn formula(&self) -> &Rgx {
        &self.formula
    }

    /// The compiled automaton.
    pub fn vsa(&self) -> &Vsa {
        &self.vsa
    }

    /// The compiled evaluation form (compiled on first use).
    pub fn compiled(&self) -> &CompiledVsa {
        self.compiled
            .get_or_init(|| CompiledVsa::compile(&self.vsa))
    }
}

impl Spanner for RgxSpanner {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn vars(&self) -> VarSet {
        self.formula.vars()
    }

    fn eval(&self, doc: &Document) -> SpannerResult<MappingSet> {
        spanner_enum::evaluate_compiled(self.compiled(), doc)
    }
}

/// A spanner backed by a fixed, pre-materialized relation (useful in tests
/// and as the result of evaluating a black box).
#[derive(Clone, Debug)]
pub struct MaterializedSpanner {
    name: String,
    vars: VarSet,
    mappings: MappingSet,
}

impl MaterializedSpanner {
    /// Wraps a materialized relation.
    pub fn new(name: impl Into<String>, mappings: MappingSet) -> Self {
        let vars = mappings.active_domain();
        MaterializedSpanner {
            name: name.into(),
            vars,
            mappings,
        }
    }
}

impl Spanner for MaterializedSpanner {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn vars(&self) -> VarSet {
        self.vars.clone()
    }

    fn degree(&self) -> usize {
        self.mappings.degree()
    }

    fn eval(&self, _doc: &Document) -> SpannerResult<MappingSet> {
        Ok(self.mappings.clone())
    }
}

/// A reference-counted spanner object, the form used inside RA trees.
pub type SpannerRef = Arc<dyn Spanner>;

#[cfg(test)]
mod tests {
    use super::*;
    use spanner_core::{Mapping, Span};

    #[test]
    fn rgx_spanner_end_to_end() {
        let s = RgxSpanner::parse("emails", r".*{user:\l+}@{host:\l+}.*").unwrap();
        assert_eq!(s.vars(), VarSet::from_iter(["user", "host"]));
        assert_eq!(s.degree(), 2);
        let doc = Document::new("to bob@edu now");
        let out = s.eval(&doc).unwrap();
        assert!(out
            .iter()
            .any(|m| doc.slice(m.get(&"user".into()).unwrap()) == "bob"
                && doc.slice(m.get(&"host".into()).unwrap()) == "edu"));
    }

    #[test]
    fn vsa_spanner_delegates_to_enumerator() {
        let vsa = spanner_vset::compile(&spanner_rgx::parse("{x:a+}").unwrap());
        let s = VsaSpanner::new("as", vsa);
        assert_eq!(s.name(), "as");
        let out = s.eval(&Document::new("aaa")).unwrap();
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn materialized_spanner_is_constant() {
        let ms = MappingSet::from_mappings([Mapping::from_pairs([("x", Span::new(1, 2))])]);
        let s = MaterializedSpanner::new("fixed", ms.clone());
        assert_eq!(s.degree(), 1);
        assert_eq!(s.eval(&Document::new("whatever")).unwrap(), ms);
        assert_eq!(s.vars(), VarSet::from_iter(["x"]));
    }
}
