//! The physical operator executor: one Volcano-style pipeline behind every
//! evaluation path.
//!
//! Before this module existed the workspace had three divergent ways of
//! evaluating an RA tree on a document: the recursive ad-hoc compilation of
//! `evaluate_ra`, `CompiledPlan`'s per-document automaton *recomposition*
//! for dynamic (difference / black-box) nodes, and the static-only
//! `PlanStream`. They are now one layer:
//!
//! * [`PhysOp`] is the physical operator tree. Leaves are
//!   [`PhysOp::CompiledScan`] (a static RA subtree compiled **once** into a
//!   shared [`CompiledVsa`], enumerated with polynomial delay — Theorem 5.2)
//!   and [`PhysOp::BlackBoxScan`] (a Corollary 5.3 black box). Inner nodes
//!   are relational operators over mapping streams:
//!   [`PhysOp::HashJoin`], [`PhysOp::UnionAll`] (with set-semantics dedup),
//!   [`PhysOp::Difference`] (an anti-join over a materialized probe side —
//!   no per-document `Vsa` recomposition), and [`PhysOp::Project`].
//! * [`PhysicalPlan::lower`] obtains the operator tree of a
//!   [`CompiledPlan`]; lowering happens exactly once at plan-compile time
//!   and the operators share their automata through `Arc`, so the handle is
//!   cheap and every consumer (`evaluate_ra`, `CompiledPlan::evaluate` /
//!   `stream`, the corpus engine, `PreparedQuery`) runs through the same
//!   executor.
//! * Every operator exposes both a materializing [`PhysOp::execute`] (bulk
//!   relational evaluation — hash join, hash anti-join, builder-based union)
//!   and a pull-iterator [`PhysOp::stream`] ([`OpStream`]). A fully static
//!   plan streams straight off its compiled automaton with polynomial
//!   delay, exactly as before; plans with a difference at the root now
//!   stream too (the probe side is materialized once, the input side is
//!   enumerated lazily and filtered), which the old recomposition path
//!   could not do.
//!
//! The executor evaluates difference and black-box composition at the
//! *relation* level (the `spanner-core` operators, which are the paper's
//! semantics by definition), while static subtrees keep the paper's
//! automaton-level compilation (union / FPT join product / automaton
//! projection). The ad-hoc constructions of Section 4
//! (`difference_adhoc`, `difference_product`) remain available as library
//! functions and as the differential baseline (`compile_ra`), but no plan
//! evaluates through them anymore.

use crate::plan::CompiledPlan;
use crate::spanner::SpannerRef;
use spanner_core::{Document, FxHashSet, Mapping, MappingSet, SpannerResult, VarSet};
use spanner_enum::{enumerate_compiled, Enumerator};
use spanner_vset::{CompiledVsa, PreScan, Vsa};
use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

/// Per-operator execution trace (re-exported from `spanner-obs`): one
/// [`TraceNode`](spanner_obs::TraceNode) per physical operator, produced
/// by [`PhysOp::execute_traced_bounded`].
pub use spanner_obs::TraceNode as ExecTrace;

/// A node of the physical operator tree (see the module docs).
///
/// Operators are read-only after lowering and share their compiled automata
/// through `Arc`, so a `PhysOp` tree is `Send + Sync` and cheap to clone —
/// one plan serves any number of worker threads.
#[derive(Clone)]
pub enum PhysOp {
    /// A maximal static RA subtree, compiled once into a shared automaton;
    /// enumerated per document with polynomial delay.
    CompiledScan {
        /// The construction-time automaton (kept for schema/size reporting
        /// and the empty-language fast path).
        vsa: Arc<Vsa>,
        /// The compile-once evaluation form the enumerator runs on.
        compiled: Arc<CompiledVsa>,
        /// Whether the scan fast path (prefilters + lazy-DFA boolean
        /// pre-pass) is consulted before enumeration
        /// ([`RaOptions::scan_fast_path`](crate::RaOptions)).
        fast_path: bool,
    },
    /// A tractable, degree-bounded black-box spanner (Corollary 5.3),
    /// evaluated per document through its own `eval`.
    BlackBoxScan(SpannerRef),
    /// Projection `π_keep` with set-semantics dedup.
    Project {
        /// Variables to keep.
        keep: VarSet,
        /// Input operator.
        input: Box<PhysOp>,
    },
    /// N-ary union with set-semantics dedup.
    UnionAll(Vec<PhysOp>),
    /// Natural join; the materializing path runs as a hash join on the
    /// common-variable span vector whenever both inputs bind all common
    /// variables.
    HashJoin {
        /// Probe side (streamed by [`PhysOp::stream`]).
        left: Box<PhysOp>,
        /// Build side (always materialized).
        right: Box<PhysOp>,
    },
    /// The paper's difference operator as an anti-join: the probe side is
    /// materialized once and every input mapping survives iff it is
    /// incompatible with all probe mappings. No automaton recomposition.
    Difference {
        /// Input side (streamed by [`PhysOp::stream`]).
        input: Box<PhysOp>,
        /// Probe side (always materialized).
        probe: Box<PhysOp>,
    },
}

impl PhysOp {
    /// Evaluates the operator on one document into a materialized relation,
    /// with no bound on intermediate sizes (see [`PhysOp::execute_bounded`]).
    pub fn execute(&self, doc: &Document) -> SpannerResult<MappingSet> {
        self.execute_bounded(doc, usize::MAX)
    }

    /// [`PhysOp::execute`] with a resource guard: every relation that feeds
    /// a relational operator (a dynamic operator's input or probe/build
    /// side) may hold at most `limit` mappings — the executor's counterpart
    /// of the automaton state limits of the ad-hoc pipeline
    /// (`RaOptions::max_signatures` is threaded through here by
    /// [`CompiledPlan`]). The *root* result is not bounded: like the old
    /// pipeline's final enumeration, the caller asked for it.
    pub fn execute_bounded(&self, doc: &Document, limit: usize) -> SpannerResult<MappingSet> {
        match self {
            PhysOp::CompiledScan {
                vsa,
                compiled,
                fast_path,
            } => {
                if vsa.accepting_states().is_empty() {
                    return Ok(MappingSet::new());
                }
                // The boolean pre-pass: documents with no accepting run are
                // rejected without building enumeration machinery. Exact, so
                // results are unchanged (see `spanner_vset::scan`).
                if *fast_path && compiled.prescan(doc) != PreScan::Accept {
                    return Ok(MappingSet::new());
                }
                spanner_enum::evaluate_compiled(compiled, doc)
            }
            PhysOp::BlackBoxScan(s) => s.eval(doc),
            PhysOp::Project { keep, input } => {
                Ok(checked(input.execute_bounded(doc, limit)?, limit)?.project(keep))
            }
            PhysOp::UnionAll(inputs) => {
                let mut out = MappingSet::builder();
                for op in inputs {
                    out.extend(checked(op.execute_bounded(doc, limit)?, limit)?);
                }
                Ok(out.finish())
            }
            PhysOp::HashJoin { left, right } => {
                let left = checked(left.execute_bounded(doc, limit)?, limit)?;
                if left.is_empty() {
                    // ∅ ⋈ R = ∅ — skip the build side.
                    return Ok(left);
                }
                let right = checked(right.execute_bounded(doc, limit)?, limit)?;
                Ok(left.join(&right))
            }
            PhysOp::Difference { input, probe } => {
                let input = checked(input.execute_bounded(doc, limit)?, limit)?;
                if input.is_empty() {
                    // ∅ \ R = ∅ — skip the probe side entirely (with the
                    // scan pre-pass this makes misses on the input side
                    // free).
                    return Ok(input);
                }
                let probe = checked(probe.execute_bounded(doc, limit)?, limit)?;
                Ok(input.anti_join(&probe))
            }
        }
    }

    /// A zero-valued [`ExecTrace`] with the shape and labels of this plan.
    ///
    /// The traced executor attaches a skeleton for every subtree it
    /// short-circuits (a skipped join build side, a skipped difference
    /// probe side, union inputs after an error), so **every** trace of a
    /// given plan has exactly this shape — which is what lets traces from
    /// different documents and different worker shards
    /// [`merge`](ExecTrace::merge) into one aggregate.
    pub fn trace_skeleton(&self) -> ExecTrace {
        let mut node = ExecTrace::new(self.label());
        node.children = self
            .children()
            .into_iter()
            .map(PhysOp::trace_skeleton)
            .collect();
        node
    }

    /// [`PhysOp::execute_traced_bounded`] without a resource guard.
    pub fn execute_traced(&self, doc: &Document) -> (SpannerResult<MappingSet>, ExecTrace) {
        self.execute_traced_bounded(doc, usize::MAX)
    }

    /// [`PhysOp::execute_bounded`] with per-operator instrumentation.
    ///
    /// Semantically identical to the untraced path (same results, same
    /// errors, same short-circuits); it is a **separate** recursion so the
    /// hot path pays nothing when tracing is off. The trace is returned
    /// alongside the result — also on error, so a `LimitExceeded` trip is
    /// visible in the trace of the operator whose guard fired
    /// (`limit_trips`). Per node: `rows` (mappings produced), `nanos`
    /// (inclusive wall time), and operator-specific counters —
    /// `prescan_skip`/`prescan_reject`/`prescan_accept` and
    /// `bool_dfa`/`bool_nfa` on compiled scans, `build_rows`/
    /// `build_skipped` on joins, `probe_rows`/`probe_skipped` on
    /// differences.
    pub fn execute_traced_bounded(
        &self,
        doc: &Document,
        limit: usize,
    ) -> (SpannerResult<MappingSet>, ExecTrace) {
        let start = Instant::now();
        let mut node = ExecTrace::new(self.label());
        let result = self.execute_traced_inner(doc, limit, &mut node);
        if let Ok(set) = &result {
            node.rows = set.len() as u64;
        }
        node.observe_elapsed(start.elapsed());
        (result, node)
    }

    fn execute_traced_inner(
        &self,
        doc: &Document,
        limit: usize,
        node: &mut ExecTrace,
    ) -> SpannerResult<MappingSet> {
        match self {
            PhysOp::CompiledScan {
                vsa,
                compiled,
                fast_path,
            } => {
                if vsa.accepting_states().is_empty() {
                    node.add("prescan_skip", 1);
                    return Ok(MappingSet::new());
                }
                if *fast_path {
                    let verdict = compiled.prescan(doc);
                    // The pre-pass ran its boolean scan (unless a static
                    // prefilter skipped first); report which tier answered.
                    // `dfa_states` is the non-forcing probe, so recording
                    // never builds machinery the untraced path would not.
                    if verdict != PreScan::Skip {
                        match compiled.scan_plan().dfa_states() {
                            Some(Some(_)) => node.add("bool_dfa", 1),
                            Some(None) => node.add("bool_nfa", 1),
                            None => {}
                        }
                    }
                    match verdict {
                        PreScan::Skip => {
                            node.add("prescan_skip", 1);
                            return Ok(MappingSet::new());
                        }
                        PreScan::Reject => {
                            node.add("prescan_reject", 1);
                            return Ok(MappingSet::new());
                        }
                        PreScan::Accept => node.add("prescan_accept", 1),
                    }
                }
                spanner_enum::evaluate_compiled(compiled, doc)
            }
            PhysOp::BlackBoxScan(s) => s.eval(doc),
            PhysOp::Project { keep, input } => {
                let (result, child) = input.execute_traced_bounded(doc, limit);
                node.children.push(child);
                let set = result.and_then(|s| checked_traced(s, limit, node))?;
                Ok(set.project(keep))
            }
            PhysOp::UnionAll(inputs) => {
                let mut out = MappingSet::builder();
                let mut failed = None;
                for op in inputs {
                    if failed.is_some() {
                        // Keep the trace shape stable past the error.
                        node.children.push(op.trace_skeleton());
                        continue;
                    }
                    let (result, child) = op.execute_traced_bounded(doc, limit);
                    node.children.push(child);
                    match result.and_then(|s| checked_traced(s, limit, node)) {
                        Ok(set) => out.extend(set),
                        Err(e) => failed = Some(e),
                    }
                }
                match failed {
                    Some(e) => Err(e),
                    None => Ok(out.finish()),
                }
            }
            PhysOp::HashJoin { left, right } => {
                let (result, child) = left.execute_traced_bounded(doc, limit);
                node.children.push(child);
                let left_set = match result.and_then(|s| checked_traced(s, limit, node)) {
                    Ok(set) => set,
                    Err(e) => {
                        node.children.push(right.trace_skeleton());
                        return Err(e);
                    }
                };
                if left_set.is_empty() {
                    // ∅ ⋈ R = ∅ — skip the build side.
                    node.add("build_skipped", 1);
                    node.children.push(right.trace_skeleton());
                    return Ok(left_set);
                }
                let (result, child) = right.execute_traced_bounded(doc, limit);
                node.children.push(child);
                let right_set = result.and_then(|s| checked_traced(s, limit, node))?;
                node.add("build_rows", right_set.len() as u64);
                Ok(left_set.join(&right_set))
            }
            PhysOp::Difference { input, probe } => {
                let (result, child) = input.execute_traced_bounded(doc, limit);
                node.children.push(child);
                let input_set = match result.and_then(|s| checked_traced(s, limit, node)) {
                    Ok(set) => set,
                    Err(e) => {
                        node.children.push(probe.trace_skeleton());
                        return Err(e);
                    }
                };
                if input_set.is_empty() {
                    // ∅ \ R = ∅ — skip the probe side entirely.
                    node.add("probe_skipped", 1);
                    node.children.push(probe.trace_skeleton());
                    return Ok(input_set);
                }
                let (result, child) = probe.execute_traced_bounded(doc, limit);
                node.children.push(child);
                let probe_set = result.and_then(|s| checked_traced(s, limit, node))?;
                node.add("probe_rows", probe_set.len() as u64);
                Ok(input_set.anti_join(&probe_set))
            }
        }
    }

    /// Opens a pull iterator over the operator's mappings on one document,
    /// with no bound on materialized sides (see [`PhysOp::stream_bounded`]).
    pub fn stream<'a>(&'a self, doc: &'a Document) -> SpannerResult<OpStream<'a>> {
        self.stream_bounded(doc, usize::MAX)
    }

    /// [`PhysOp::stream`] with the [`PhysOp::execute_bounded`] resource
    /// guard applied to the sides the stream materializes at open time (a
    /// join's build side, a difference's probe side).
    ///
    /// The stream is duplicate-free. A [`PhysOp::CompiledScan`] streams with
    /// polynomial delay; [`PhysOp::Difference`] and [`PhysOp::HashJoin`]
    /// materialize only their probe/build side and stream the other;
    /// [`PhysOp::Project`] and [`PhysOp::UnionAll`] stream their inputs
    /// through a dedup filter.
    pub fn stream_bounded<'a>(
        &'a self,
        doc: &'a Document,
        limit: usize,
    ) -> SpannerResult<OpStream<'a>> {
        let kind = match self {
            PhysOp::CompiledScan {
                vsa,
                compiled,
                fast_path,
            } => {
                if vsa.accepting_states().is_empty()
                    || (*fast_path && compiled.prescan(doc) != PreScan::Accept)
                {
                    StreamKind::Empty
                } else {
                    StreamKind::Scan(Box::new(enumerate_compiled(compiled, doc)?))
                }
            }
            PhysOp::BlackBoxScan(s) => StreamKind::Drain(s.eval(doc)?.into_iter()),
            PhysOp::Project { keep, input } => StreamKind::Project {
                input: Box::new(input.stream_bounded(doc, limit)?),
                keep,
                seen: FxHashSet::default(),
            },
            PhysOp::UnionAll(inputs) => StreamKind::Union {
                inputs: inputs
                    .iter()
                    .map(|op| op.stream_bounded(doc, limit))
                    .collect::<SpannerResult<Vec<_>>>()?,
                idx: 0,
                seen: FxHashSet::default(),
            },
            PhysOp::HashJoin { left, right } => {
                let probe = left.stream_bounded(doc, limit)?;
                if matches!(probe.kind, StreamKind::Empty) {
                    // ∅ ⋈ R = ∅ — skip materializing the build side.
                    StreamKind::Empty
                } else {
                    StreamKind::Join {
                        probe: Box::new(probe),
                        build: RelationIndex::new(checked(
                            right.execute_bounded(doc, limit)?,
                            limit,
                        )?),
                        pending: VecDeque::new(),
                        seen: FxHashSet::default(),
                    }
                }
            }
            PhysOp::Difference { input, probe } => {
                let input = input.stream_bounded(doc, limit)?;
                if matches!(input.kind, StreamKind::Empty) {
                    // ∅ \ R = ∅ — skip materializing the probe side.
                    StreamKind::Empty
                } else {
                    StreamKind::AntiJoin {
                        input: Box::new(input),
                        probe: RelationIndex::new(checked(
                            probe.execute_bounded(doc, limit)?,
                            limit,
                        )?),
                    }
                }
            }
        };
        Ok(OpStream { kind })
    }

    /// The operator's direct inputs.
    pub fn children(&self) -> Vec<&PhysOp> {
        match self {
            PhysOp::CompiledScan { .. } | PhysOp::BlackBoxScan(_) => Vec::new(),
            PhysOp::Project { input, .. } => vec![input],
            PhysOp::UnionAll(inputs) => inputs.iter().collect(),
            PhysOp::HashJoin { left, right } => vec![left, right],
            PhysOp::Difference { input, probe } => vec![input, probe],
        }
    }

    /// One-line label for outlines and debugging.
    pub fn label(&self) -> String {
        match self {
            PhysOp::CompiledScan { vsa, .. } => format!(
                "CompiledScan({} states, vars {{{}}})",
                vsa.state_count(),
                vsa.vars()
                    .iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            ),
            PhysOp::BlackBoxScan(s) => format!("BlackBoxScan({})", s.name()),
            PhysOp::Project { keep, .. } => format!(
                "Project{{{}}}",
                keep.iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            ),
            PhysOp::UnionAll(inputs) => format!("UnionAll({} inputs, dedup)", inputs.len()),
            PhysOp::HashJoin { .. } => "HashJoin".to_string(),
            PhysOp::Difference { .. } => "Difference(anti-join)".to_string(),
        }
    }

    /// Number of operators in the tree.
    pub fn operator_count(&self) -> usize {
        1 + self
            .children()
            .into_iter()
            .map(PhysOp::operator_count)
            .sum::<usize>()
    }

    /// Document-level boolean pre-pass for multi-document engines: returns
    /// `Some(verdict)` when the pre-pass *proves* the operator yields no
    /// mappings on `doc` ([`PreScan::Skip`] = a static prefilter fired
    /// without scanning a state, [`PreScan::Reject`] = a boolean scan ran
    /// and rejected), or `None` when the document must be evaluated. The
    /// proof composes through the relational operators (`∅ \ R`, `∅ ⋈ R`
    /// and `π(∅)` are empty; a union is empty iff all inputs are) and only
    /// consults scans with the fast path enabled, so it returns `None`
    /// everywhere when [`RaOptions::scan_fast_path`](crate::RaOptions) is
    /// off.
    pub fn prescan_reject(&self, doc: &Document) -> Option<PreScan> {
        match self {
            PhysOp::CompiledScan {
                vsa,
                compiled,
                fast_path,
            } => {
                if !*fast_path {
                    return None;
                }
                if vsa.accepting_states().is_empty() {
                    return Some(PreScan::Skip);
                }
                match compiled.prescan(doc) {
                    PreScan::Accept => None,
                    verdict => Some(verdict),
                }
            }
            PhysOp::BlackBoxScan(_) => None,
            PhysOp::Project { input, .. } => input.prescan_reject(doc),
            PhysOp::UnionAll(inputs) => {
                // Empty iff every input is provably empty; report Reject if
                // any input needed an actual scan to prove it.
                let mut verdict = PreScan::Skip;
                for op in inputs {
                    if op.prescan_reject(doc)? == PreScan::Reject {
                        verdict = PreScan::Reject;
                    }
                }
                Some(verdict)
            }
            PhysOp::HashJoin { left, right } => left
                .prescan_reject(doc)
                .or_else(|| right.prescan_reject(doc)),
            PhysOp::Difference { input, .. } => input.prescan_reject(doc),
        }
    }

    /// Byte strings that every document with a *non-empty* result must
    /// contain as a factor — the document-independent counterpart of
    /// [`PhysOp::prescan_reject`], consumed by corpus-level indexes to
    /// prune documents without visiting them. The proof composes the same
    /// way: a join result needs both sides non-empty (union of the sides'
    /// literals), a union result needs some input non-empty (a literal
    /// survives only if *every* input requires it — witnessed by an
    /// extracted literal containing it), difference and projection are
    /// bounded by their input, and a black-box scan constrains nothing.
    /// Unlike the pre-pass this is pure static analysis, sound for any
    /// `scan_fast_path` setting. An empty set means "no constraint".
    pub fn required_literals(&self) -> Vec<Vec<u8>> {
        let mut literals = match self {
            PhysOp::CompiledScan { compiled, .. } => {
                compiled.scan_plan().required_literals().to_vec()
            }
            PhysOp::BlackBoxScan(_) => Vec::new(),
            PhysOp::Project { input, .. } => input.required_literals(),
            PhysOp::UnionAll(inputs) => {
                let sets: Vec<Vec<Vec<u8>>> =
                    inputs.iter().map(PhysOp::required_literals).collect();
                if sets.iter().any(Vec::is_empty) {
                    // One unconstrained branch makes the union unconstrained.
                    return Vec::new();
                }
                // A literal is required by the union iff every branch
                // requires it; a branch requiring a superstring requires
                // every factor of it.
                let mut candidates: Vec<Vec<u8>> = sets.concat();
                candidates.retain(|l| sets.iter().all(|s| s.iter().any(|k| contains_factor(k, l))));
                candidates
            }
            PhysOp::HashJoin { left, right } => {
                let mut literals = left.required_literals();
                literals.extend(right.required_literals());
                literals
            }
            PhysOp::Difference { input, .. } => input.required_literals(),
        };
        dedup_subsumed(&mut literals);
        literals
    }
}

/// Whether `needle` occurs in `haystack` as a contiguous factor.
fn contains_factor(haystack: &[u8], needle: &[u8]) -> bool {
    haystack.windows(needle.len()).any(|w| w == needle)
}

/// Keeps the longest literals, dropping duplicates and literals occurring
/// inside a kept one (they constrain nothing extra).
fn dedup_subsumed(literals: &mut Vec<Vec<u8>>) {
    literals.sort_by(|a, b| b.len().cmp(&a.len()).then_with(|| a.cmp(b)));
    let mut kept: Vec<Vec<u8>> = Vec::new();
    for lit in literals.drain(..) {
        if !kept.iter().any(|k| contains_factor(k, &lit)) {
            kept.push(lit);
        }
    }
    *literals = kept;
}

impl fmt::Debug for PhysOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// The lowered, executable form of a [`CompiledPlan`]: a shared physical
/// operator tree (see the module docs).
#[derive(Clone)]
pub struct PhysicalPlan {
    root: Arc<PhysOp>,
    /// Resource guard: maximum size of any relation feeding a relational
    /// operator (see [`PhysOp::execute_bounded`]).
    max_intermediate: usize,
}

impl PhysicalPlan {
    pub(crate) fn with_limit(root: PhysOp, max_intermediate: usize) -> PhysicalPlan {
        PhysicalPlan {
            root: Arc::new(root),
            max_intermediate,
        }
    }

    /// The lowering step from the compiled logical plan to the physical
    /// operator tree.
    ///
    /// Lowering itself runs exactly once, inside [`CompiledPlan::compile`]
    /// (every static subtree is compiled to its shared automaton there);
    /// this accessor hands out the shared operator tree, so it is cheap and
    /// can be called per consumer.
    pub fn lower(plan: &CompiledPlan) -> PhysicalPlan {
        plan.physical().clone()
    }

    /// The root operator.
    pub fn root(&self) -> &PhysOp {
        &self.root
    }

    /// Whether the whole plan lowered to a single compiled scan (no
    /// per-document composition work at all).
    pub fn is_fully_compiled(&self) -> bool {
        matches!(*self.root, PhysOp::CompiledScan { .. })
    }

    /// Number of physical operators.
    pub fn operator_count(&self) -> usize {
        self.root.operator_count()
    }

    /// Evaluates the plan on one document into a materialized relation
    /// (intermediate relations bounded by the plan's resource guard).
    pub fn execute(&self, doc: &Document) -> SpannerResult<MappingSet> {
        self.root.execute_bounded(doc, self.max_intermediate)
    }

    /// [`PhysicalPlan::execute`] with per-operator instrumentation (see
    /// [`PhysOp::execute_traced_bounded`]); a separate recursion, so
    /// untraced execution pays nothing for it.
    pub fn execute_traced(&self, doc: &Document) -> (SpannerResult<MappingSet>, ExecTrace) {
        self.root.execute_traced_bounded(doc, self.max_intermediate)
    }

    /// A zero-valued trace with this plan's shape
    /// (see [`PhysOp::trace_skeleton`]).
    pub fn trace_skeleton(&self) -> ExecTrace {
        self.root.trace_skeleton()
    }

    /// Opens a pull iterator over the plan's mappings on one document
    /// (materialized sides bounded by the plan's resource guard).
    pub fn stream<'a>(&'a self, doc: &'a Document) -> SpannerResult<OpStream<'a>> {
        self.root.stream_bounded(doc, self.max_intermediate)
    }

    /// The document-level pre-pass of the root operator
    /// (see [`PhysOp::prescan_reject`]).
    pub fn prescan_reject(&self, doc: &Document) -> Option<PreScan> {
        self.root.prescan_reject(doc)
    }

    /// The root operator's required literals
    /// (see [`PhysOp::required_literals`]).
    pub fn required_literals(&self) -> Vec<Vec<u8>> {
        self.root.required_literals()
    }

    /// Renders the operator tree as an indented multi-line outline (the
    /// physical half of the query-language `explain` output).
    pub fn describe(&self) -> String {
        fn walk(op: &PhysOp, prefix: &str, out: &mut String) {
            let children = op.children();
            for (i, child) in children.iter().enumerate() {
                let last = i + 1 == children.len();
                out.push('\n');
                out.push_str(prefix);
                out.push_str(if last { "└─ " } else { "├─ " });
                out.push_str(&child.label());
                let extended = format!("{prefix}{}", if last { "   " } else { "│  " });
                walk(child, &extended, out);
            }
        }
        let mut out = self.root.label();
        walk(&self.root, "", &mut out);
        out
    }
}

impl fmt::Debug for PhysicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.describe())
    }
}

/// [`checked`] for the traced path: a tripped guard is recorded on the
/// operator that enforced it (`limit_trips`) before the error propagates.
fn checked_traced(
    set: MappingSet,
    limit: usize,
    node: &mut ExecTrace,
) -> SpannerResult<MappingSet> {
    let result = checked(set, limit);
    if result.is_err() {
        node.add("limit_trips", 1);
    }
    result
}

/// Enforces the intermediate-relation resource guard of
/// [`PhysOp::execute_bounded`].
fn checked(set: MappingSet, limit: usize) -> SpannerResult<MappingSet> {
    if set.len() > limit {
        return Err(spanner_core::SpannerError::LimitExceeded {
            what: "executor intermediate relation",
            limit,
            actual: set.len(),
        });
    }
    Ok(set)
}

/// A materialized relation with lazily-built hash indexes for compatibility
/// lookups, keyed by the *overlap* — the variables a streamed mapping
/// shares with the relation's active domain.
///
/// Two mappings are compatible iff they agree on their common variables;
/// when every indexed mapping binds all of a given overlap set, agreement
/// reduces to equality of the overlap's span vector, so the lookup is one
/// hash probe (the streaming counterpart of the `MappingSet::join` /
/// `anti_join` fast paths). Overlaps where some mapping misses a variable
/// fall back to the wildcard-correct linear scan. One index is built per
/// distinct overlap set encountered, each in one pass over the relation.
struct RelationIndex {
    mappings: Vec<Mapping>,
    /// Active domain of the relation (union of all mapping domains).
    domain: VarSet,
    /// Per overlap set: a span-vector index, or `None` when some mapping
    /// misses an overlap variable (scan fallback).
    by_overlap: spanner_core::FxHashMap<VarSet, Option<OverlapIndex>>,
}

type OverlapIndex = spanner_core::FxHashMap<Vec<spanner_core::Span>, Vec<u32>>;

impl RelationIndex {
    fn new(set: MappingSet) -> RelationIndex {
        RelationIndex {
            domain: set.active_domain(),
            mappings: set.into_iter().collect(),
            by_overlap: spanner_core::FxHashMap::default(),
        }
    }

    fn overlap_with(&self, m: &Mapping) -> VarSet {
        m.domain().intersection(&self.domain)
    }

    /// Builds (once) and returns the index for `overlap`, or `None` when
    /// hashing is unsound for it.
    fn index_for(&mut self, overlap: &VarSet) -> Option<&OverlapIndex> {
        let mappings = &self.mappings;
        self.by_overlap
            .entry(overlap.clone())
            .or_insert_with(|| {
                let total = mappings
                    .iter()
                    .all(|b| overlap.iter().all(|v| b.contains(v)));
                total.then(|| {
                    let mut idx = OverlapIndex::default();
                    for (i, b) in mappings.iter().enumerate() {
                        let key: Vec<spanner_core::Span> = overlap
                            .iter()
                            .map(|v| b.get(v).expect("checked total"))
                            .collect();
                        idx.entry(key).or_default().push(i as u32);
                    }
                    idx
                })
            })
            .as_ref()
    }

    /// Whether some mapping of the relation is compatible with `m`.
    fn has_compatible(&mut self, m: &Mapping) -> bool {
        let overlap = self.overlap_with(m);
        let key: Vec<spanner_core::Span> = overlap
            .iter()
            .map(|v| m.get(v).expect("overlap ⊆ dom(m)"))
            .collect();
        if self.index_for(&overlap).is_some() {
            let idx = self.by_overlap[&overlap].as_ref().expect("just built");
            idx.contains_key(&key)
        } else {
            self.mappings.iter().any(|b| m.is_compatible_with(b))
        }
    }

    /// Pushes the union of `m` with every compatible mapping through `emit`.
    fn for_each_join(&mut self, m: &Mapping, mut emit: impl FnMut(Mapping)) {
        let overlap = self.overlap_with(m);
        let key: Vec<spanner_core::Span> = overlap
            .iter()
            .map(|v| m.get(v).expect("overlap ⊆ dom(m)"))
            .collect();
        if self.index_for(&overlap).is_some() {
            let idx = self.by_overlap[&overlap].as_ref().expect("just built");
            if let Some(matches) = idx.get(&key) {
                for &i in matches {
                    let u = m
                        .union(&self.mappings[i as usize])
                        .expect("indexed mappings agree on the whole overlap");
                    emit(u);
                }
            }
        } else {
            for b in &self.mappings {
                if let Some(u) = m.union(b) {
                    emit(u);
                }
            }
        }
    }
}

/// A pull iterator over one operator's mappings (the item type matches the
/// polynomial-delay [`Enumerator`]): duplicate-free, fused after the first
/// error.
pub struct OpStream<'a> {
    kind: StreamKind<'a>,
}

enum StreamKind<'a> {
    /// The operator provably produces nothing on this document.
    Empty,
    /// Lazy polynomial-delay enumeration off a shared compiled automaton.
    Scan(Box<Enumerator<'a>>),
    /// Drains a relation that was materialized when the stream opened.
    Drain(<MappingSet as IntoIterator>::IntoIter),
    /// Restricts the input stream, deduplicating collapsed mappings.
    Project {
        input: Box<OpStream<'a>>,
        keep: &'a VarSet,
        seen: FxHashSet<Mapping>,
    },
    /// Chains the input streams, deduplicating across them.
    Union {
        inputs: Vec<OpStream<'a>>,
        idx: usize,
        seen: FxHashSet<Mapping>,
    },
    /// Streams the probe side against a materialized, hash-indexed build
    /// side.
    Join {
        probe: Box<OpStream<'a>>,
        build: RelationIndex,
        pending: VecDeque<Mapping>,
        seen: FxHashSet<Mapping>,
    },
    /// Streams the input side, dropping every mapping compatible with some
    /// mapping of the materialized, hash-indexed probe side.
    AntiJoin {
        input: Box<OpStream<'a>>,
        probe: RelationIndex,
    },
}

impl OpStream<'_> {
    fn advance(&mut self) -> Option<SpannerResult<Mapping>> {
        match &mut self.kind {
            StreamKind::Empty => None,
            StreamKind::Scan(e) => e.next(),
            StreamKind::Drain(iter) => iter.next().map(Ok),
            StreamKind::Project { input, keep, seen } => loop {
                match input.next() {
                    None => return None,
                    Some(Err(e)) => return Some(Err(e)),
                    Some(Ok(m)) => {
                        let restricted = m.restrict(keep);
                        if seen.insert(restricted.clone()) {
                            return Some(Ok(restricted));
                        }
                    }
                }
            },
            StreamKind::Union { inputs, idx, seen } => {
                while *idx < inputs.len() {
                    match inputs[*idx].next() {
                        None => *idx += 1,
                        Some(Err(e)) => return Some(Err(e)),
                        Some(Ok(m)) => {
                            if seen.insert(m.clone()) {
                                return Some(Ok(m));
                            }
                        }
                    }
                }
                None
            }
            StreamKind::Join {
                probe,
                build,
                pending,
                seen,
            } => loop {
                if let Some(m) = pending.pop_front() {
                    return Some(Ok(m));
                }
                match probe.next() {
                    None => return None,
                    Some(Err(e)) => return Some(Err(e)),
                    Some(Ok(m1)) => {
                        build.for_each_join(&m1, |u| {
                            if seen.insert(u.clone()) {
                                pending.push_back(u);
                            }
                        });
                    }
                }
            },
            StreamKind::AntiJoin { input, probe } => loop {
                match input.next() {
                    None => return None,
                    Some(Err(e)) => return Some(Err(e)),
                    Some(Ok(m1)) => {
                        if !probe.has_compatible(&m1) {
                            return Some(Ok(m1));
                        }
                    }
                }
            },
        }
    }
}

impl Iterator for OpStream<'_> {
    type Item = SpannerResult<Mapping>;

    fn next(&mut self) -> Option<Self::Item> {
        let item = self.advance();
        if matches!(item, Some(Err(_))) {
            // Fuse after an error: the underlying state may be inconsistent.
            self.kind = StreamKind::Empty;
        }
        item
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blackbox::TokenizerSpanner;
    use crate::ratree::{evaluate_ra_materialized, Instantiation, RaOptions, RaTree};
    use spanner_rgx::parse;

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn physical_plan_is_send_and_sync() {
        assert_send_sync::<PhysOp>();
        assert_send_sync::<PhysicalPlan>();
    }

    fn lower(tree: &RaTree, inst: &Instantiation) -> PhysicalPlan {
        let plan = CompiledPlan::compile(tree, inst, RaOptions::default()).unwrap();
        PhysicalPlan::lower(&plan)
    }

    #[test]
    fn static_tree_lowers_to_one_compiled_scan() {
        let tree = RaTree::project(
            VarSet::from_iter(["x"]),
            RaTree::union(RaTree::leaf(0), RaTree::leaf(1)),
        );
        let inst = Instantiation::new()
            .with(0, parse("{x:a+}{y:b*}").unwrap())
            .with(1, parse("{y:a*}{x:b+}").unwrap());
        let physical = lower(&tree, &inst);
        assert!(physical.is_fully_compiled());
        assert_eq!(physical.operator_count(), 1);
        assert!(physical.describe().starts_with("CompiledScan("));
    }

    #[test]
    fn difference_lowers_to_anti_join_over_compiled_scans() {
        let tree = RaTree::difference(
            RaTree::join(RaTree::leaf(0), RaTree::leaf(1)),
            RaTree::leaf(2),
        );
        let inst = Instantiation::new()
            .with(0, parse("{x:a+}b*").unwrap())
            .with(1, parse("{x:a+}{y:b*}").unwrap())
            .with(2, parse("{x:a}b").unwrap());
        let physical = lower(&tree, &inst);
        assert!(!physical.is_fully_compiled());
        // The static join collapsed into one compiled scan; the difference
        // is a physical anti-join over two scans, not a recomposed Vsa.
        assert_eq!(physical.operator_count(), 3);
        let outline = physical.describe();
        assert!(outline.starts_with("Difference(anti-join)"), "{outline}");
        assert_eq!(outline.matches("CompiledScan(").count(), 2, "{outline}");
        for text in ["ab", "aab", "a", ""] {
            let doc = Document::new(text);
            assert_eq!(
                physical.execute(&doc).unwrap(),
                evaluate_ra_materialized(&tree, &inst, &doc).unwrap(),
                "text {text:?}"
            );
        }
    }

    #[test]
    fn black_box_lowers_to_a_scan_operator() {
        let tree = RaTree::union(RaTree::leaf(0), RaTree::leaf(1));
        let inst = Instantiation::new()
            .with(0, parse(r"{t:\l+}").unwrap())
            .with_black_box(1, TokenizerSpanner::new("t"));
        let physical = lower(&tree, &inst);
        let outline = physical.describe();
        assert!(outline.contains("UnionAll(2 inputs, dedup)"), "{outline}");
        assert!(outline.contains("BlackBoxScan(tokenize(t))"), "{outline}");
    }

    #[test]
    fn streams_are_duplicate_free_and_match_execute() {
        // A projection over a union whose operands overlap heavily: the
        // stream must dedup both across union inputs and across collapsed
        // projections.
        let tree = RaTree::project(
            VarSet::from_iter(["x"]),
            RaTree::union(
                RaTree::difference(RaTree::leaf(0), RaTree::leaf(2)),
                RaTree::difference(RaTree::leaf(1), RaTree::leaf(2)),
            ),
        );
        let inst = Instantiation::new()
            .with(0, parse("{x:a+}{y:b*}").unwrap())
            .with(1, parse("{x:a+}{z:b*}").unwrap())
            .with(2, parse("{x:aa}bb").unwrap());
        let physical = lower(&tree, &inst);
        for text in ["aabb", "aab", "ab", ""] {
            let doc = Document::new(text);
            let streamed: Vec<Mapping> = physical
                .stream(&doc)
                .unwrap()
                .collect::<SpannerResult<_>>()
                .unwrap();
            let unique: MappingSet = streamed.iter().cloned().collect();
            assert_eq!(streamed.len(), unique.len(), "duplicates on {text:?}");
            assert_eq!(unique, physical.execute(&doc).unwrap(), "on {text:?}");
        }
    }

    #[test]
    fn intermediate_relation_limit_is_enforced() {
        // On "abcd" the left scan yields all 15 subspan mappings — past a
        // tight `max_signatures`, both evaluate and stream must fail fast
        // with a limit error instead of materializing unbounded inputs.
        let tree = RaTree::difference(RaTree::leaf(0), RaTree::leaf(1));
        let inst = Instantiation::new()
            .with(0, parse(".*{x:.*}.*").unwrap())
            .with(1, parse("{x:zz}").unwrap());
        let tight = RaOptions {
            max_signatures: 3,
            ..RaOptions::default()
        };
        let plan = CompiledPlan::compile(&tree, &inst, tight).unwrap();
        let doc = Document::new("abcd");
        let err = plan.evaluate(&doc).unwrap_err();
        assert!(
            matches!(err, spanner_core::SpannerError::LimitExceeded { .. }),
            "{err}"
        );
        // A difference root only materializes its probe side (0 mappings
        // here, under the limit); the input side streams lazily, so the
        // stream opens and drains fine — the guard bounds materialization,
        // not lazy enumeration.
        assert!(plan.stream(&doc).is_ok());
        // A join build side past the limit fails at stream open.
        let join_tree = RaTree::join(
            RaTree::difference(RaTree::leaf(0), RaTree::leaf(1)),
            RaTree::leaf(0),
        );
        let join_plan = CompiledPlan::compile(&join_tree, &inst, tight).unwrap();
        assert!(join_plan.evaluate(&doc).is_err());
        assert!(join_plan.stream(&doc).is_err());
        // The default limit is far away: the same plans evaluate fine.
        let plan = CompiledPlan::compile(&join_tree, &inst, RaOptions::default()).unwrap();
        assert!(plan.evaluate(&doc).is_ok());
    }

    #[test]
    fn traced_execution_matches_untraced_and_keeps_shape() {
        let tree = RaTree::project(
            VarSet::from_iter(["x"]),
            RaTree::difference(
                RaTree::join(RaTree::leaf(0), RaTree::leaf(1)),
                RaTree::leaf(2),
            ),
        );
        let inst = Instantiation::new()
            .with(0, parse("{x:a+}b*").unwrap())
            .with(1, parse("{x:a+}{y:b*}").unwrap())
            .with(2, parse("{x:aa}").unwrap());
        let physical = lower(&tree, &inst);
        let skeleton = physical.trace_skeleton();
        let mut merged = physical.trace_skeleton();
        for text in ["ab", "aab", "a", "", "zzz"] {
            let doc = Document::new(text);
            let (traced, trace) = physical.execute_traced(&doc);
            assert_eq!(
                traced.unwrap(),
                physical.execute(&doc).unwrap(),
                "traced result differs on {text:?}"
            );
            // Shape (labels + child arity) is data-independent: the trace of
            // a skipped document merges cleanly with a fully-evaluated one.
            merged.merge(&trace);
            assert_eq!(trace.label, skeleton.label, "on {text:?}");
        }
        assert_eq!(merged.label, skeleton.label);
        // "zzz" and "" must have been pruned or rejected by the scan
        // pre-pass somewhere in the tree; "aab" survives to enumeration.
        let flat = merged.render();
        assert!(flat.contains("prescan_accept"), "{flat}");
        assert!(merged.total_rows() > 0 && flat.contains("rows="), "{flat}");
    }

    #[test]
    fn traced_execution_records_prescan_and_limit_counters() {
        // Difference with a tight limit: the input side yields 15 mappings
        // on "abcd" (> 3), so the guard trips on the Difference node and
        // the trace says so — while the result is the same error as the
        // untraced path.
        let tree = RaTree::difference(RaTree::leaf(0), RaTree::leaf(1));
        let inst = Instantiation::new()
            .with(0, parse(".*{x:.*}.*").unwrap())
            .with(1, parse("{x:zz}").unwrap());
        let tight = RaOptions {
            max_signatures: 3,
            ..RaOptions::default()
        };
        let plan = CompiledPlan::compile(&tree, &inst, tight).unwrap();
        let doc = Document::new("abcd");
        let (result, trace) = plan.evaluate_traced(&doc);
        assert!(matches!(
            result,
            Err(spanner_core::SpannerError::LimitExceeded { .. })
        ));
        assert_eq!(trace.counter("limit_trips"), 1, "{}", trace.render());
        assert_eq!(
            trace.children.len(),
            2,
            "skeleton keeps the skipped probe side: {}",
            trace.render()
        );
        // A scan that the pre-pass rejects reports the verdict and which
        // boolean tier answered.
        let miss = Instantiation::new().with(0, parse("q{x:a+}").unwrap());
        let physical = lower(&RaTree::leaf(0), &miss);
        let (result, trace) = physical.execute_traced(&Document::new("aaa"));
        assert!(result.unwrap().is_empty());
        assert_eq!(
            trace.counter("prescan_skip") + trace.counter("prescan_reject"),
            1,
            "{}",
            trace.render()
        );
    }

    #[test]
    fn stream_errors_fuse_the_iterator() {
        // A plan over more variables than the enumerator supports fails at
        // stream-open time with a clean error.
        let mut parts = Vec::new();
        for i in 0..=spanner_enum::MAX_VARS {
            parts.push(format!("{{v{i:02}:a?}}"));
        }
        let inst = Instantiation::new().with(0, parse(&parts.concat()).unwrap());
        let physical = lower(&RaTree::leaf(0), &inst);
        let doc = Document::new("aaa");
        assert!(physical.stream(&doc).is_err());
        assert!(physical.execute(&doc).is_err());
    }
}
