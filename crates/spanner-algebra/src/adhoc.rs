//! Ad-hoc (document-dependent) automata.
//!
//! Several constructions in the paper compile a *relation of mappings* into a
//! vset-automaton that is only valid for one specific document: the automaton
//! `B` in the proof of Lemma 4.2, and the automata used to incorporate
//! black-box spanners into RA trees (Corollary 5.3). This module provides
//! that compilation.

use spanner_core::{Document, Mapping, MappingSet, Span, SpannerError, SpannerResult};
use spanner_vset::{Label, StateId, Vsa};

/// Compiles a materialized relation into an *ad-hoc* sequential VA `B` with
/// `VBW(doc) = mappings` (valid only for this document).
///
/// Every mapping becomes a path that reads the document and performs the
/// mapping's variable operations at the correct positions; the paths are
/// united under a fresh initial state. The construction is linear in
/// `|mappings| · (|doc| + degree)`.
///
/// Fails if a mapping mentions a span that does not fit the document.
pub fn mapping_set_to_vsa(mappings: &MappingSet, doc: &Document) -> SpannerResult<Vsa> {
    let mut out = Vsa::new();
    for mapping in mappings.iter() {
        let entry = add_mapping_path(&mut out, mapping, doc)?;
        out.add_transition(0, Label::Epsilon, entry);
    }
    Ok(out)
}

/// Adds a path accepting exactly `doc` while performing the operations of
/// `mapping`; returns the path's entry state.
pub(crate) fn add_mapping_path(
    out: &mut Vsa,
    mapping: &Mapping,
    doc: &Document,
) -> SpannerResult<StateId> {
    let n = doc.len() as u32;
    for (v, s) in mapping.iter() {
        if !s.fits(doc.len()) {
            return Err(SpannerError::Invalid(format!(
                "mapping assigns {v} the span {s}, which does not fit a document of length {n}"
            )));
        }
    }
    let entry = out.add_state();
    let mut cur = entry;
    for pos in 1..=n + 1 {
        cur = emit_ops_at(out, cur, mapping, pos);
        if pos <= n {
            let next = out.add_state();
            out.add_transition(cur, Label::symbol(doc.symbol_at(pos).unwrap()), next);
            cur = next;
        }
    }
    out.set_accepting(cur, true);
    Ok(entry)
}

/// Emits the open/close operations of `mapping` scheduled at `pos`, starting
/// from state `cur`; returns the last state.
fn emit_ops_at(out: &mut Vsa, mut cur: StateId, mapping: &Mapping, pos: u32) -> StateId {
    // Close non-empty spans ending here first, then open spans starting here,
    // then handle empty spans [pos, pos⟩ (open immediately followed by close).
    let ops: Vec<(bool, spanner_core::Variable)> = {
        let mut v = Vec::new();
        for (var, span) in mapping.iter() {
            if span.end == pos && span.start < pos {
                v.push((false, var.clone()));
            }
        }
        for (var, span) in mapping.iter() {
            if span.start == pos && !span.is_empty() {
                v.push((true, var.clone()));
            }
        }
        for (var, span) in mapping.iter() {
            if span == Span::empty(pos) {
                v.push((true, var.clone()));
                v.push((false, var.clone()));
            }
        }
        v
    };
    for (is_open, var) in ops {
        let next = out.add_state();
        let label = if is_open {
            Label::Open(var)
        } else {
            Label::Close(var)
        };
        out.add_transition(cur, label, next);
        cur = next;
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use spanner_vset::{analysis, interpret};

    fn sp(a: u32, b: u32) -> Span {
        Span::new(a, b)
    }

    #[test]
    fn round_trip_through_adhoc_automaton() {
        let doc = Document::new("abcd");
        let mappings = MappingSet::from_mappings([
            Mapping::from_pairs([("x", sp(1, 3)), ("y", sp(3, 5))]),
            Mapping::from_pairs([("x", sp(2, 2))]),
            Mapping::new(),
        ]);
        let vsa = mapping_set_to_vsa(&mappings, &doc).unwrap();
        assert!(analysis::is_sequential(&vsa));
        assert_eq!(interpret(&vsa, &doc), mappings);
        // On a different document of the same length the automaton rejects
        // (the letters differ), which is what "ad hoc" means.
        assert!(interpret(&vsa, &Document::new("abce")).is_empty());
    }

    #[test]
    fn empty_relation_and_empty_document() {
        let doc = Document::new("");
        let empty = mapping_set_to_vsa(&MappingSet::new(), &doc).unwrap();
        assert!(interpret(&empty, &doc).is_empty());

        let unit = mapping_set_to_vsa(&MappingSet::unit(), &doc).unwrap();
        assert_eq!(interpret(&unit, &doc), MappingSet::unit());
    }

    #[test]
    fn empty_spans_at_every_position() {
        let doc = Document::new("ab");
        let mappings = MappingSet::from_mappings([
            Mapping::from_pairs([("x", sp(1, 1))]),
            Mapping::from_pairs([("x", sp(2, 2))]),
            Mapping::from_pairs([("x", sp(3, 3))]),
        ]);
        let vsa = mapping_set_to_vsa(&mappings, &doc).unwrap();
        assert_eq!(interpret(&vsa, &doc), mappings);
    }

    #[test]
    fn span_out_of_range_is_rejected() {
        let doc = Document::new("a");
        let bad = MappingSet::from_mappings([Mapping::from_pairs([("x", sp(1, 5))])]);
        assert!(mapping_set_to_vsa(&bad, &doc).is_err());
    }
}
