//! Relational algebra over document spanners.
//!
//! This crate is the top of the stack: it combines the representations
//! (`spanner-rgx`, `spanner-vset`) and the polynomial-delay enumerator
//! (`spanner-enum`) into the algebraic query facilities studied in
//! *Complexity Bounds for Relational Algebra over Document Spanners*
//! (PODS 2019):
//!
//! * [`spanner`] — the [`Spanner`](trait@spanner::Spanner) trait and wrappers for
//!   regex formulas, vset-automata, and materialized relations;
//! * [`blackbox`] — tractable, degree-bounded black-box extractors
//!   (tokenizer, dictionary, string equality, sentiment) usable inside RA
//!   trees (Corollary 5.3);
//! * [`adhoc`] — compilation of materialized relations into ad-hoc
//!   (document-specific) automata;
//! * [`difference`] — the difference operator: the naive filter baseline, the
//!   Lemma 4.2 marker construction, and the Theorem 4.8-style product
//!   construction;
//! * [`ratree`] — RA trees, instantiations, the extraction-complexity
//!   parameter of Theorem 5.2, and the ad-hoc compilation pipeline;
//! * [`plan`] — the logical plan optimizer (projection pushdown, union
//!   flattening with canonical operand order, greedy join reordering) and
//!   compiled plans ([`CompiledPlan`]) whose static subtrees are compiled
//!   once and shared across documents and threads;
//! * [`exec`] — the physical operator executor ([`PhysOp`] /
//!   [`PhysicalPlan`]): the single Volcano-style pipeline every evaluation
//!   path (`evaluate_ra`, `CompiledPlan`, the corpus engine, SpannerQL)
//!   runs through, with both materializing and pull-iterator operators.
//!
//! # Example: the paper's Example 2.4
//!
//! ```
//! use spanner_algebra::difference::{difference_product_eval, DifferenceOptions};
//! use spanner_core::Document;
//! use spanner_rgx::parse;
//! use spanner_vset::compile;
//!
//! // Extract (name, mail) pairs ...
//! let info = compile(&parse(r".*{name:\u\l+} {mail:\l+@\l+\.\l+}.*").unwrap());
//! // ... and subtract the pairs whose mail address ends in ".uk".
//! let uk = compile(&parse(r".*{mail:\l+@\l+\.uk}.*").unwrap());
//! let doc = Document::new("Ann ann@edu.uk Bob bob@edu.ru ");
//! let kept = difference_product_eval(&info, &uk, &doc, DifferenceOptions::default()).unwrap();
//! assert!(!kept.is_empty());
//! assert!(kept
//!     .iter()
//!     .all(|m| !doc.slice(m.get(&"mail".into()).unwrap()).ends_with(".uk")));
//! ```

#![warn(missing_docs)]

pub mod adhoc;
pub mod blackbox;
pub mod difference;
pub mod exec;
pub mod plan;
pub mod ratree;
pub mod spanner;

pub use adhoc::mapping_set_to_vsa;
pub use blackbox::{DictionarySpanner, SentimentSpanner, TokenEqualitySpanner, TokenizerSpanner};
pub use difference::{
    difference_adhoc, difference_adhoc_eval, difference_filter, difference_product,
    difference_product_eval, DifferenceOptions,
};
pub use exec::{ExecTrace, OpStream, PhysOp, PhysicalPlan};
pub use plan::{optimize_ra, optimize_ra_with_stats, CompiledPlan, PlanStats, PlanStream};
pub use ratree::{
    compile_ra, evaluate_ra, evaluate_ra_materialized, figure_2_tree, shared_variable_bound,
    tree_vars, Atom, Instantiation, LeafId, RaOptions, RaTree,
};
pub use spanner::{MaterializedSpanner, RgxSpanner, Spanner, SpannerRef, VsaSpanner};
pub use spanner_vset::PreScan;
