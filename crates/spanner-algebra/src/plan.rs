//! Logical plan optimization and compiled physical plans for RA trees.
//!
//! [`compile_ra`](crate::compile_ra) evaluates an RA tree exactly as
//! written. This module adds the query-planner layer on top:
//!
//! * [`optimize_ra`] — a semantics-preserving rewrite pass over [`RaTree`]:
//!   nested unions are flattened (and syntactically duplicate operands
//!   dropped), projections are pushed below unions and joins down to the
//!   leaves (where [`compile_ra`](crate::compile_ra) applies them at the
//!   automaton level, before any product construction), nested projections
//!   are collapsed, and join chains are reordered greedily by the
//!   shared-variable estimate of Theorem 5.2. Projections are **not**
//!   pushed through the difference operator: `π_Y(P1 \ P2)` and
//!   `π_Y(P1) \ π_Y(P2)` differ whenever distinct survivors of `P1` collapse
//!   under `π_Y` (the rewrite is unsound on either operand), so difference
//!   nodes act as optimization barriers.
//! * [`CompiledPlan`] — the compiled plan. Maximal *static* subtrees (no
//!   difference node, no black-box leaf) are compiled into a single
//!   automaton **once** and the whole tree is lowered onto the physical
//!   operator executor ([`crate::exec`]): every leaf of the operator tree
//!   is a compiled scan or a black box, and difference / black-box
//!   composition happens at the relation level — nothing is re-composed
//!   into a per-document `Vsa` anymore. A fully static plan evaluates
//!   through one shared [`CompiledVsa`] with zero per-document composition
//!   work, which is what makes multi-document engines such as
//!   `spanner-corpus` cheap: the lowered plan is read-only and `Sync`, so
//!   one plan serves any number of worker threads.
//!
//! The rewrite rules maintain three invariants (checked by the planner
//! property tests): the declared variable set [`tree_vars`] of the tree is
//! preserved, the [`shared_variable_bound`](crate::shared_variable_bound)
//! never increases (join reorders
//! that would increase it are discarded), and the pass is idempotent —
//! optimizing an optimized plan returns it unchanged.

use crate::exec::{OpStream, PhysOp, PhysicalPlan};
use crate::ratree::{
    compile_static_atom, resolve_atom, tree_vars, Atom, Instantiation, LeafId, RaOptions, RaTree,
};
use spanner_core::{Document, Mapping, MappingSet, SpannerResult, VarSet};
use std::fmt;
use std::sync::Arc;

/// Counters describing what [`optimize_ra_with_stats`] did to a tree.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PlanStats {
    /// Projections pushed below at least one union or join node.
    pub projections_pushed: usize,
    /// Projection nodes that disappeared (no-ops, or merged into a child
    /// projection).
    pub projections_removed: usize,
    /// Union nodes whose operand lists were flattened into one n-ary union.
    pub unions_flattened: usize,
    /// Syntactically duplicate union operands dropped.
    pub union_duplicates_removed: usize,
    /// Join chains whose operand order changed.
    pub joins_reordered: usize,
    /// Projections that stopped at a difference node (the blocked rewrite).
    pub projections_blocked_at_difference: usize,
}

/// Rewrites an instantiated RA tree into an equivalent, cheaper-to-compile
/// plan (see the module documentation for the rule set).
///
/// The instantiation is only consulted for the declared variable sets of the
/// leaves; the returned tree is valid for any instantiation with the same
/// leaf schemas.
///
/// ```
/// use spanner_algebra::{optimize_ra, shared_variable_bound, Instantiation, RaTree};
///
/// // (?0{x} ⋈ ?1{y}) ⋈ ?2{x,y}: bound 2 as written; joining ?2 second
/// // keeps every step at 1 shared variable.
/// let tree = RaTree::join(
///     RaTree::join(RaTree::leaf(0), RaTree::leaf(1)),
///     RaTree::leaf(2),
/// );
/// let inst = Instantiation::new()
///     .with(0, spanner_rgx::parse("{x:a}b*").unwrap())
///     .with(1, spanner_rgx::parse("a{y:b+}").unwrap())
///     .with(2, spanner_rgx::parse("{x:a}{y:b+}").unwrap());
/// assert_eq!(shared_variable_bound(&tree, &inst).unwrap(), 2);
/// let optimized = optimize_ra(&tree, &inst).unwrap();
/// assert_eq!(shared_variable_bound(&optimized, &inst).unwrap(), 1);
/// ```
pub fn optimize_ra(tree: &RaTree, inst: &Instantiation) -> SpannerResult<RaTree> {
    Ok(optimize_ra_with_stats(tree, inst)?.0)
}

/// [`optimize_ra`], also returning counters of the rewrites applied (from
/// the initial rewrite pass, which does the bulk of the work).
///
/// A single pass can expose new opportunities — e.g. a projection that
/// dissolves uncovers a nested union or join chain — so the rewrite runs to
/// a fixed point (each follow-up pass only flattens/dedups further, and
/// those steps are monotone, so the loop terminates; the size-based cap is
/// a safety net).
pub fn optimize_ra_with_stats(
    tree: &RaTree,
    inst: &Instantiation,
) -> SpannerResult<(RaTree, PlanStats)> {
    let mut stats = PlanStats::default();
    let mut current = rewrite(tree, inst, None, &mut stats)?;
    for _ in 0..4 + tree.size() {
        let mut ignored = PlanStats::default();
        let next = rewrite(&current, inst, None, &mut ignored)?;
        if next == current {
            break;
        }
        current = next;
    }
    Ok((current, stats))
}

/// Rewrites `tree` under a projection context: the result is equivalent to
/// `π_ctx(tree)` (or to `tree` when `ctx` is `None`), and its declared
/// variable set is exactly `tree_vars(tree) ∩ ctx`.
fn rewrite(
    tree: &RaTree,
    inst: &Instantiation,
    ctx: Option<&VarSet>,
    stats: &mut PlanStats,
) -> SpannerResult<RaTree> {
    match tree {
        RaTree::Leaf(id) => {
            let vars = tree_vars(tree, inst)?;
            Ok(wrap_projection(RaTree::Leaf(*id), &vars, ctx))
        }
        RaTree::Project(keep, child) => {
            let child_vars = tree_vars(child, inst)?;
            let mut inner = keep.intersection(&child_vars);
            if let Some(outer) = ctx {
                inner = inner.intersection(outer);
            }
            if child_vars.is_subset(&inner) {
                // The projection keeps everything: drop it entirely.
                stats.projections_removed += 1;
                return rewrite(child, inst, ctx, stats);
            }
            match child.as_ref() {
                // The projection cannot sink any further; keep it here (with
                // a canonical, intersected variable set).
                RaTree::Leaf(_) | RaTree::Difference(_, _) => {}
                RaTree::Project(_, _) => stats.projections_removed += 1,
                RaTree::Union(_, _) | RaTree::Join(_, _) => stats.projections_pushed += 1,
            }
            rewrite(child, inst, Some(&inner), stats)
        }
        RaTree::Union(_, _) => {
            let mut operands = Vec::new();
            collect_union_operands(tree, &mut operands);
            if operands.len() > 2 {
                stats.unions_flattened += 1;
            }
            let mut rewritten: Vec<RaTree> = Vec::with_capacity(operands.len());
            for op in operands {
                let op = rewrite(op, inst, ctx, stats)?;
                // Rewriting can expose nested unions (a projection that
                // dissolved); flatten those into the operand list too.
                push_union_operand(op, &mut rewritten, stats);
            }
            // Canonical operand order (union is commutative): the same set
            // of operands always rebuilds the same tree, so union subtrees
            // that differ only by operand order become syntactically equal
            // after one pass — and commuted duplicates nested inside sibling
            // operands (e.g. `(A ∪ B) ⋈ C` next to `(B ∪ A) ⋈ C`) then
            // collapse under the syntactic dedup above on the next pass.
            // Sorting is deterministic and order-independent, so the pass
            // stays idempotent and the planner invariants are untouched.
            rewritten.sort_by_cached_key(|op| op.to_string());
            let mut iter = rewritten.into_iter();
            let first = iter.next().expect("union has at least one operand");
            Ok(iter.fold(first, RaTree::union))
        }
        RaTree::Join(_, _) => rewrite_join_chain(tree, inst, ctx, stats),
        RaTree::Difference(left, right) => {
            // π does not distribute over difference (see the module docs);
            // both operands are rewritten without a projection context and
            // the context materializes as a projection *above* this node.
            let vars = tree_vars(tree, inst)?;
            if ctx.is_some_and(|keep| !vars.is_subset(keep)) {
                stats.projections_blocked_at_difference += 1;
            }
            let left = rewrite(left, inst, None, stats)?;
            let right = rewrite(right, inst, None, stats)?;
            Ok(wrap_projection(RaTree::difference(left, right), &vars, ctx))
        }
    }
}

/// Wraps `tree` in `π_{ctx ∩ vars}` when the context actually removes a
/// variable; emits the canonical (intersected) projection set so repeated
/// optimization reproduces the same tree.
fn wrap_projection(tree: RaTree, vars: &VarSet, ctx: Option<&VarSet>) -> RaTree {
    match ctx {
        Some(keep) if !vars.is_subset(keep) => RaTree::project(keep.intersection(vars), tree),
        _ => tree,
    }
}

/// Appends a rewritten operand to a union's operand list, flattening nested
/// unions and dropping syntactic duplicates.
fn push_union_operand(op: RaTree, out: &mut Vec<RaTree>, stats: &mut PlanStats) {
    match op {
        RaTree::Union(l, r) => {
            push_union_operand(*l, out, stats);
            push_union_operand(*r, out, stats);
        }
        other => {
            if out.contains(&other) {
                stats.union_duplicates_removed += 1;
            } else {
                out.push(other);
            }
        }
    }
}

/// Collects the operands of a maximal nested-union subtree, left to right.
fn collect_union_operands<'t>(tree: &'t RaTree, out: &mut Vec<&'t RaTree>) {
    match tree {
        RaTree::Union(l, r) => {
            collect_union_operands(l, out);
            collect_union_operands(r, out);
        }
        other => out.push(other),
    }
}

/// Collects the operands of a maximal nested-join subtree, left to right.
fn collect_join_operands<'t>(tree: &'t RaTree, out: &mut Vec<&'t RaTree>) {
    match tree {
        RaTree::Join(l, r) => {
            collect_join_operands(l, out);
            collect_join_operands(r, out);
        }
        other => out.push(other),
    }
}

/// Rewrites a maximal join chain: pushes the projection context into every
/// operand (keeping all variables shared with *any* sibling — dropping those
/// would change the join), then greedily reorders the chain so that each
/// step introduces as few shared variables as possible (the FPT parameter of
/// Lemma 3.2 governs the product cost). The reorder is kept only when its
/// step-wise shared-variable bound does not exceed the original shape's.
fn rewrite_join_chain(
    tree: &RaTree,
    inst: &Instantiation,
    ctx: Option<&VarSet>,
    stats: &mut PlanStats,
) -> SpannerResult<RaTree> {
    let mut operands = Vec::new();
    collect_join_operands(tree, &mut operands);
    let n = operands.len();
    let vars: Vec<VarSet> = operands
        .iter()
        .map(|op| tree_vars(op, inst))
        .collect::<SpannerResult<_>>()?;

    // Variables an operand shares with at least one sibling; the projection
    // context must preserve them or the join would relate different spans.
    let shared: Vec<VarSet> = (0..n)
        .map(|i| {
            let mut others = VarSet::new();
            for (j, v) in vars.iter().enumerate() {
                if j != i {
                    others = others.union(v);
                }
            }
            vars[i].intersection(&others)
        })
        .collect();

    let mut rewritten = Vec::with_capacity(n);
    let mut new_vars = Vec::with_capacity(n);
    for i in 0..n {
        let inner = ctx.map(|keep| keep.union(&shared[i]).intersection(&vars[i]));
        rewritten.push(rewrite(operands[i], inst, inner.as_ref(), stats)?);
        new_vars.push(match inner {
            Some(keep) => keep,
            None => vars[i].clone(),
        });
    }

    // Guard: accept the chosen left-deep chain only when its step-wise
    // shared-variable bound does not exceed the bound of the original join
    // shape (over the same, already-projected operand schemas); otherwise
    // keep the original shape. This is what makes the pass monotone in
    // `shared_variable_bound`.
    let order: Vec<usize> = best_join_order(&new_vars);
    let joined = if chain_bound(&new_vars, &order) <= shape_bound(tree, &new_vars) {
        if order.iter().enumerate().any(|(pos, &i)| i != pos) {
            stats.joins_reordered += 1;
        }
        build_left_deep(&order, &mut rewritten)
    } else {
        rebuild_shape(tree, &mut rewritten.iter_mut())
    };

    let mut out_vars = VarSet::new();
    for v in &new_vars {
        out_vars = out_vars.union(v);
    }
    Ok(wrap_projection(joined, &out_vars, ctx))
}

/// Picks the left-deep operand order minimizing the step-wise
/// shared-variable bound (the Lemma 3.2 exponent). Short chains (≤ 4
/// operands, the overwhelmingly common case) are searched exhaustively with
/// a lexicographic tie-break — so an already-optimal chain maps to itself
/// and the pass stays idempotent; longer chains fall back to the greedy
/// order, kept only when it strictly improves on the syntactic order.
fn best_join_order(vars: &[VarSet]) -> Vec<usize> {
    let n = vars.len();
    if n <= 4 {
        let mut best: Option<(usize, Vec<usize>)> = None;
        let mut perm: Vec<usize> = (0..n).collect();
        // Lexicographic permutation walk (identity first), so the first
        // minimizer found is the lexicographically smallest.
        loop {
            let bound = chain_bound(vars, &perm);
            if best.as_ref().is_none_or(|(b, _)| bound < *b) {
                best = Some((bound, perm.clone()));
            }
            if !next_permutation(&mut perm) {
                break;
            }
        }
        best.expect("at least one permutation").1
    } else {
        let identity: Vec<usize> = (0..n).collect();
        let greedy = greedy_join_order(vars);
        if chain_bound(vars, &greedy) < chain_bound(vars, &identity) {
            greedy
        } else {
            identity
        }
    }
}

/// Advances `perm` to the next lexicographic permutation; `false` at the
/// last one.
fn next_permutation(perm: &mut [usize]) -> bool {
    let n = perm.len();
    if n < 2 {
        return false;
    }
    let Some(i) = (0..n - 1).rev().find(|&i| perm[i] < perm[i + 1]) else {
        return false;
    };
    let j = (i + 1..n).rev().find(|&j| perm[j] > perm[i]).unwrap();
    perm.swap(i, j);
    perm[i + 1..].reverse();
    true
}

/// Greedy join ordering: start from the first operand, then repeatedly pick
/// the operand sharing the fewest variables with everything accumulated so
/// far (ties broken by operand position, which makes the order stable and
/// the pass idempotent).
fn greedy_join_order(vars: &[VarSet]) -> Vec<usize> {
    let n = vars.len();
    let mut used = vec![false; n];
    used[0] = true;
    let mut acc = vars[0].clone();
    let mut order = vec![0usize];
    while order.len() < n {
        let mut best: Option<(usize, usize)> = None; // (shared count, index)
        for (i, v) in vars.iter().enumerate() {
            if used[i] {
                continue;
            }
            let shared = acc.intersection(v).len();
            if best.is_none_or(|(s, _)| shared < s) {
                best = Some((shared, i));
            }
        }
        let (_, i) = best.expect("unused operand remains");
        used[i] = true;
        acc = acc.union(&vars[i]);
        order.push(i);
    }
    order
}

/// The maximum number of shared variables introduced by any step of a
/// left-deep chain over `order`.
fn chain_bound(vars: &[VarSet], order: &[usize]) -> usize {
    let mut acc = vars[order[0]].clone();
    let mut bound = 0;
    for &i in &order[1..] {
        bound = bound.max(acc.intersection(&vars[i]).len());
        acc = acc.union(&vars[i]);
    }
    bound
}

/// The shared-variable bound of the *original* join shape, evaluated over
/// the operands' post-projection schemas (`new_vars`, in operand order).
fn shape_bound(tree: &RaTree, new_vars: &[VarSet]) -> usize {
    fn walk(tree: &RaTree, vars: &mut std::slice::Iter<'_, VarSet>) -> (VarSet, usize) {
        match tree {
            RaTree::Join(l, r) => {
                let (lv, lb) = walk(l, vars);
                let (rv, rb) = walk(r, vars);
                let here = lv.intersection(&rv).len();
                (lv.union(&rv), here.max(lb).max(rb))
            }
            _ => (vars.next().expect("operand count matches shape").clone(), 0),
        }
    }
    walk(tree, &mut new_vars.iter()).1
}

/// Rebuilds the original join shape over the rewritten operands (taken in
/// operand order).
fn rebuild_shape(tree: &RaTree, operands: &mut std::slice::IterMut<'_, RaTree>) -> RaTree {
    match tree {
        RaTree::Join(l, r) => {
            let left = rebuild_shape(l, operands);
            let right = rebuild_shape(r, operands);
            RaTree::join(left, right)
        }
        _ => std::mem::replace(
            operands.next().expect("operand count matches shape"),
            RaTree::Leaf(LeafId::MAX),
        ),
    }
}

/// Joins rewritten operands left-deep in the given order.
fn build_left_deep(order: &[usize], operands: &mut [RaTree]) -> RaTree {
    let mut iter = order.iter();
    let first = *iter.next().expect("join has at least one operand");
    let mut acc = std::mem::replace(&mut operands[first], RaTree::Leaf(LeafId::MAX));
    for &i in iter {
        let op = std::mem::replace(&mut operands[i], RaTree::Leaf(LeafId::MAX));
        acc = RaTree::join(acc, op);
    }
    acc
}

// ---------------------------------------------------------------------------
// Compiled plans: lowering onto the physical operator executor.
// ---------------------------------------------------------------------------

use spanner_vset::{join, CompiledVsa, Vsa};

/// A compiled plan: the document-independent parts of an RA tree are
/// compiled into shared automata once and the whole tree is lowered onto
/// the physical operator executor ([`crate::exec`]), so evaluating the plan
/// over many documents only pays relational work — never per-document
/// automaton composition.
///
/// `CompiledPlan` is `Send + Sync`: after [`CompiledPlan::compile`] it is
/// read-only, so one plan can be shared by any number of worker threads
/// (the `spanner-corpus` engine does exactly that).
pub struct CompiledPlan {
    physical: PhysicalPlan,
    tree: RaTree,
    vars: VarSet,
    options: RaOptions,
}

/// Intermediate result of plan construction: either a static automaton
/// (document-independent so far, still growable by further static algebra)
/// or an already-lowered physical operator.
enum Built {
    Static(Vsa),
    Dynamic(PhysOp),
}

impl Built {
    /// Finalizes into a physical operator; a static subtree becomes a
    /// compiled scan here, which is the only place automata are compiled —
    /// every leaf of the operator tree is therefore compiled exactly once.
    fn into_op(self, options: RaOptions) -> PhysOp {
        match self {
            Built::Static(vsa) => compiled_scan(vsa, options),
            Built::Dynamic(op) => op,
        }
    }
}

/// Wraps a static automaton as a compiled-scan operator.
fn compiled_scan(vsa: Vsa, options: RaOptions) -> PhysOp {
    let compiled = CompiledVsa::compile(&vsa);
    PhysOp::CompiledScan {
        vsa: Arc::new(vsa),
        compiled: Arc::new(compiled),
        fast_path: options.scan_fast_path,
    }
}

/// Appends a lowered union input, splicing nested unions into one n-ary
/// operator (duplicate *operands* were already removed by the logical
/// rewrite; the executor dedups at the mapping level).
fn push_union_input(op: PhysOp, out: &mut Vec<PhysOp>) {
    match op {
        PhysOp::UnionAll(ops) => out.extend(ops),
        other => out.push(other),
    }
}

impl CompiledPlan {
    /// Optimizes (unless `options.optimize` is off) and compiles an
    /// instantiated RA tree, lowering it onto the physical executor.
    pub fn compile(
        tree: &RaTree,
        inst: &Instantiation,
        options: RaOptions,
    ) -> SpannerResult<CompiledPlan> {
        let tree = if options.optimize {
            optimize_ra(tree, inst)?
        } else {
            tree.clone()
        };
        let vars = tree_vars(&tree, inst)?;
        let root = Self::build(&tree, inst, options)?.into_op(options);
        Ok(CompiledPlan {
            // `max_signatures` bounds the executor's materialized
            // intermediate relations, the successor of its old role as the
            // Lemma 4.2 signature cap in the recomposition path.
            physical: PhysicalPlan::with_limit(root, options.max_signatures),
            tree,
            vars,
            options,
        })
    }

    fn build(tree: &RaTree, inst: &Instantiation, options: RaOptions) -> SpannerResult<Built> {
        Ok(match tree {
            RaTree::Leaf(id) => match resolve_atom(inst, *id)? {
                Atom::BlackBox(s) => Built::Dynamic(PhysOp::BlackBoxScan(Arc::clone(s))),
                atom => Built::Static(compile_static_atom(*id, atom)?),
            },
            RaTree::Project(keep, child) => match Self::build(child, inst, options)? {
                // Static projection happens at the automaton level, before
                // any product construction (the planner pushed it down for
                // exactly that reason).
                Built::Static(vsa) => Built::Static(vsa.project(keep)),
                Built::Dynamic(op) => Built::Dynamic(PhysOp::Project {
                    keep: keep.clone(),
                    input: Box::new(op),
                }),
            },
            RaTree::Union(l, r) => {
                let left = Self::build(l, inst, options)?;
                let right = Self::build(r, inst, options)?;
                match (left, right) {
                    (Built::Static(a), Built::Static(b)) => Built::Static(a.union(&b)),
                    (left, right) => {
                        let mut inputs = Vec::new();
                        push_union_input(left.into_op(options), &mut inputs);
                        push_union_input(right.into_op(options), &mut inputs);
                        Built::Dynamic(PhysOp::UnionAll(inputs))
                    }
                }
            }
            RaTree::Join(l, r) => {
                let left = Self::build(l, inst, options)?;
                let right = Self::build(r, inst, options)?;
                match (left, right) {
                    // Static joins keep the paper's FPT product (Lemma 3.2):
                    // the automaton compiles once and the shared-variable
                    // bound governs its size.
                    (Built::Static(a), Built::Static(b)) => Built::Static(join::join_with_options(
                        &a,
                        &b,
                        join::JoinOptions {
                            max_states: options.max_states,
                        },
                    )?),
                    (left, right) => Built::Dynamic(PhysOp::HashJoin {
                        left: Box::new(left.into_op(options)),
                        right: Box::new(right.into_op(options)),
                    }),
                }
            }
            RaTree::Difference(l, r) => {
                // Difference is always a physical anti-join: both operands
                // are lowered (compiling their static parts once) and the
                // probe side is evaluated as a relation — the per-document
                // `difference_product` recomposition is gone from plans.
                let left = Self::build(l, inst, options)?.into_op(options);
                let right = Self::build(r, inst, options)?.into_op(options);
                Built::Dynamic(PhysOp::Difference {
                    input: Box::new(left),
                    probe: Box::new(right),
                })
            }
        })
    }

    /// Evaluates the plan on one document through the physical executor.
    pub fn evaluate(&self, doc: &Document) -> SpannerResult<MappingSet> {
        self.physical.execute(doc)
    }

    /// [`CompiledPlan::evaluate`] with a per-operator execution trace (see
    /// [`PhysicalPlan::execute_traced`]). The trace is returned alongside
    /// the result — also when evaluation fails, so limit trips stay
    /// observable.
    pub fn evaluate_traced(
        &self,
        doc: &Document,
    ) -> (SpannerResult<MappingSet>, crate::exec::ExecTrace) {
        self.physical.execute_traced(doc)
    }

    /// Streams the plan's mappings on one document.
    ///
    /// Fully static plans enumerate straight off the shared compiled
    /// automaton with polynomial delay (Theorem 5.2) and never materialize
    /// the result. Plans with dynamic operators stream through the executor
    /// pipeline: a difference root materializes only its probe side and
    /// streams the input side lazily.
    pub fn stream<'a>(&'a self, doc: &'a Document) -> SpannerResult<PlanStream<'a>> {
        Ok(PlanStream(self.physical.stream(doc)?))
    }

    /// Cheap document-level pre-pass: returns `Some(verdict)` when the scan
    /// fast path can prove the plan's result on `doc` is empty without
    /// evaluating it (see [`PhysicalPlan::prescan_reject`]). `None` means
    /// the document must be evaluated (or the fast path is disabled).
    pub fn prescan_reject(&self, doc: &Document) -> Option<spanner_vset::PreScan> {
        self.physical.prescan_reject(doc)
    }

    /// Byte strings every document with a non-empty result must contain
    /// (see [`PhysOp::required_literals`]); empty = no constraint. Corpus
    /// indexes use these to prune documents without visiting them.
    pub fn required_literals(&self) -> Vec<Vec<u8>> {
        self.physical.required_literals()
    }

    /// Whether the whole plan compiled into one static automaton (no
    /// per-document composition at all).
    pub fn is_static(&self) -> bool {
        self.physical.is_fully_compiled()
    }

    /// The lowered physical operator tree (shared, cheap to clone; see also
    /// [`PhysicalPlan::lower`]).
    pub fn physical(&self) -> &PhysicalPlan {
        &self.physical
    }

    /// The optimized logical tree the plan was compiled from.
    pub fn tree(&self) -> &RaTree {
        &self.tree
    }

    /// The declared variable set of the plan's output.
    pub fn vars(&self) -> &VarSet {
        &self.vars
    }

    /// The options the plan was compiled with.
    pub fn options(&self) -> RaOptions {
        self.options
    }
}

/// The mapping stream of [`CompiledPlan::stream`]: a thin wrapper around the
/// executor's pull iterator ([`OpStream`]).
pub struct PlanStream<'a>(OpStream<'a>);

impl Iterator for PlanStream<'_> {
    type Item = SpannerResult<Mapping>;

    fn next(&mut self) -> Option<Self::Item> {
        self.0.next()
    }
}

impl fmt::Debug for CompiledPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CompiledPlan({}, {})",
            if self.is_static() {
                "static".to_string()
            } else {
                "dynamic".to_string()
            },
            self.tree
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blackbox::TokenizerSpanner;
    use crate::ratree::{evaluate_ra_materialized, figure_2_tree, shared_variable_bound};
    use spanner_rgx::parse;

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn compiled_plan_is_send_and_sync() {
        assert_send_sync::<CompiledPlan>();
    }

    #[test]
    fn projection_is_pushed_below_union_and_join() {
        // π_{x}((?0 ∪ ?1) ⋈ ?2): the projection must sink below the union
        // operands and into the join, keeping the join variable x.
        let tree = RaTree::project(
            VarSet::from_iter(["x"]),
            RaTree::join(
                RaTree::union(RaTree::leaf(0), RaTree::leaf(1)),
                RaTree::leaf(2),
            ),
        );
        let inst = Instantiation::new()
            .with(0, parse("{x:a}{y:b?}").unwrap())
            .with(1, parse("{x:b}{z:a?}").unwrap())
            .with(2, parse("{x:a|b}{w:b*}").unwrap());
        let (optimized, stats) = optimize_ra_with_stats(&tree, &inst).unwrap();
        assert!(stats.projections_pushed >= 1, "{stats:?}");
        // y, z, w are gone before the join: every leaf sits under its own
        // minimal projection.
        assert_eq!(
            tree_vars(&optimized, &inst).unwrap(),
            VarSet::from_iter(["x"])
        );
        let doc = Document::new("ab");
        assert_eq!(
            evaluate_ra_materialized(&optimized, &inst, &doc).unwrap(),
            evaluate_ra_materialized(&tree, &inst, &doc).unwrap()
        );
    }

    #[test]
    fn duplicate_union_operands_are_dropped() {
        let tree = RaTree::union(
            RaTree::union(RaTree::leaf(0), RaTree::leaf(1)),
            RaTree::leaf(0),
        );
        let inst = Instantiation::new()
            .with(0, parse("{x:a}").unwrap())
            .with(1, parse("{x:b}").unwrap());
        let (optimized, stats) = optimize_ra_with_stats(&tree, &inst).unwrap();
        assert_eq!(stats.union_duplicates_removed, 1);
        assert_eq!(optimized.leaves(), vec![0, 1]);
    }

    #[test]
    fn commuted_duplicate_union_operands_collapse() {
        // ((?0 ∪ ?1) ⋈ ?2) ∪ ((?1 ∪ ?0) ⋈ ?2): the two join operands are the
        // same subtree modulo the order of the nested union. Canonical union
        // operand ordering makes them syntactically equal, so the n-ary
        // union dedup collapses them.
        let j1 = RaTree::join(
            RaTree::union(RaTree::leaf(0), RaTree::leaf(1)),
            RaTree::leaf(2),
        );
        let j2 = RaTree::join(
            RaTree::union(RaTree::leaf(1), RaTree::leaf(0)),
            RaTree::leaf(2),
        );
        let tree = RaTree::union(j1, j2);
        let inst = Instantiation::new()
            .with(0, parse("{x:a}b*").unwrap())
            .with(1, parse("{x:b+}").unwrap())
            .with(2, parse("{x:a|b+}{y:b*}").unwrap());
        let optimized = optimize_ra(&tree, &inst).unwrap();
        assert_eq!(
            optimized.leaves().len(),
            3,
            "commuted duplicate must collapse: {optimized}"
        );
        assert_eq!(optimized, optimize_ra(&optimized, &inst).unwrap());
        for text in ["ab", "b", "a", "abb", ""] {
            let doc = Document::new(text);
            assert_eq!(
                evaluate_ra_materialized(&optimized, &inst, &doc).unwrap(),
                evaluate_ra_materialized(&tree, &inst, &doc).unwrap(),
                "text {text:?}"
            );
        }
    }

    #[test]
    fn join_chain_is_reordered_to_lower_the_bound() {
        // (?0{x} ⋈ ?1{y}) ⋈ ?2{x,y}: as written the root join shares
        // {x, y} (bound 2); joining ?2 second keeps every step at 1.
        let tree = RaTree::join(
            RaTree::join(RaTree::leaf(0), RaTree::leaf(1)),
            RaTree::leaf(2),
        );
        let inst = Instantiation::new()
            .with(0, parse("{x:a}b*").unwrap())
            .with(1, parse("a{y:b+}").unwrap())
            .with(2, parse("{x:a}{y:b+}").unwrap());
        assert_eq!(shared_variable_bound(&tree, &inst).unwrap(), 2);
        let (optimized, stats) = optimize_ra_with_stats(&tree, &inst).unwrap();
        assert_eq!(stats.joins_reordered, 1, "{optimized}");
        assert_eq!(shared_variable_bound(&optimized, &inst).unwrap(), 1);
        for text in ["ab", "abb", "a", ""] {
            let doc = Document::new(text);
            assert_eq!(
                evaluate_ra_materialized(&optimized, &inst, &doc).unwrap(),
                evaluate_ra_materialized(&tree, &inst, &doc).unwrap(),
                "text {text:?}"
            );
        }
    }

    #[test]
    fn projection_stops_at_difference() {
        let tree = figure_2_tree(VarSet::from_iter(["student"]));
        let inst = Instantiation::new()
            .with(0, parse("{student:a}{mail:b}").unwrap())
            .with(1, parse("{student:a}{phone:b?}").unwrap())
            .with(2, parse("{student:a}{rec:b}").unwrap());
        let (optimized, stats) = optimize_ra_with_stats(&tree, &inst).unwrap();
        assert_eq!(stats.projections_blocked_at_difference, 1);
        assert!(
            matches!(&optimized, RaTree::Project(_, child) if matches!(child.as_ref(), RaTree::Difference(_, _))),
            "projection must stay above the difference: {optimized}"
        );
    }

    #[test]
    fn optimizer_is_idempotent_on_figure_2() {
        let tree = figure_2_tree(VarSet::from_iter(["student"]));
        let inst = Instantiation::new()
            .with(0, parse("{student:a}{mail:b}").unwrap())
            .with(1, parse("{student:a}{phone:b?}").unwrap())
            .with(2, parse("{student:a}{rec:b}").unwrap());
        let once = optimize_ra(&tree, &inst).unwrap();
        let twice = optimize_ra(&once, &inst).unwrap();
        assert_eq!(once, twice);
        assert!(
            shared_variable_bound(&once, &inst).unwrap()
                <= shared_variable_bound(&tree, &inst).unwrap()
        );
    }

    #[test]
    fn static_tree_compiles_to_static_plan() {
        let tree = RaTree::project(
            VarSet::from_iter(["x"]),
            RaTree::union(RaTree::leaf(0), RaTree::leaf(1)),
        );
        let inst = Instantiation::new()
            .with(0, parse("{x:a+}{y:b*}").unwrap())
            .with(1, parse("{y:a*}{x:b+}").unwrap());
        let plan = CompiledPlan::compile(&tree, &inst, RaOptions::default()).unwrap();
        assert!(plan.is_static());
        for text in ["ab", "aab", "b", "a", ""] {
            let doc = Document::new(text);
            assert_eq!(
                plan.evaluate(&doc).unwrap(),
                evaluate_ra_materialized(&tree, &inst, &doc).unwrap(),
                "text {text:?}"
            );
        }
    }

    #[test]
    fn stream_matches_evaluate_on_static_and_dynamic_plans() {
        let static_tree = RaTree::union(RaTree::leaf(0), RaTree::leaf(1));
        let dynamic_tree = RaTree::difference(RaTree::leaf(0), RaTree::leaf(1));
        let inst = Instantiation::new()
            .with(0, parse("{x:a+}b*").unwrap())
            .with(1, parse("{x:a}b").unwrap());
        for tree in [static_tree, dynamic_tree] {
            let plan = CompiledPlan::compile(&tree, &inst, RaOptions::default()).unwrap();
            for text in ["ab", "aab", "b", ""] {
                let doc = Document::new(text);
                let streamed: MappingSet = plan
                    .stream(&doc)
                    .unwrap()
                    .collect::<SpannerResult<Vec<_>>>()
                    .unwrap()
                    .into_iter()
                    .collect();
                assert_eq!(streamed, plan.evaluate(&doc).unwrap(), "{tree} on {text:?}");
            }
        }
    }

    #[test]
    fn required_literals_compose_through_the_operators() {
        let lits = |tree: &RaTree, inst: &Instantiation| {
            CompiledPlan::compile(tree, inst, RaOptions::default())
                .unwrap()
                .required_literals()
        };
        // A single scan surfaces its automaton's literals.
        let inst = Instantiation::new()
            .with(0, parse(".*foo{x:a+}.*").unwrap())
            .with(1, parse(".*bar{x:a+}.*").unwrap());
        let has = |set: &[Vec<u8>], needle: &[u8]| {
            set.iter()
                .any(|l| l.windows(needle.len()).any(|w| w == needle))
        };
        let leaf = lits(&RaTree::leaf(0), &inst);
        assert!(has(&leaf, b"foo"), "{leaf:?}");

        // Difference: bounded by the input side only.
        let diff = lits(&RaTree::difference(RaTree::leaf(0), RaTree::leaf(1)), &inst);
        assert!(has(&diff, b"foo"), "{diff:?}");
        assert!(!has(&diff, b"bar"), "{diff:?}");

        // Union: only literals every branch requires survive — "foo" and
        // "bar" don't, though their common capture factor "a" does.
        let union = lits(&RaTree::union(RaTree::leaf(0), RaTree::leaf(1)), &inst);
        assert!(!has(&union, b"foo") && !has(&union, b"bar"), "{union:?}");
        assert!(has(&union, b"a"), "{union:?}");
        // ...but a common factor of both branches survives.
        let inst2 = Instantiation::new()
            .with(0, parse(".*foobar{x:a+}.*").unwrap())
            .with(1, parse(".*oba{x:a+}.*").unwrap());
        let union2 = lits(&RaTree::union(RaTree::leaf(0), RaTree::leaf(1)), &inst2);
        assert!(has(&union2, b"oba"), "{union2:?}");

        // A black-box operand constrains nothing, and poisons a union.
        let inst3 = Instantiation::new()
            .with(0, parse(".*foo{t:a+}.*").unwrap())
            .with_black_box(1, TokenizerSpanner::new("t"));
        assert!(lits(&RaTree::leaf(1), &inst3).is_empty());
        assert!(lits(&RaTree::union(RaTree::leaf(0), RaTree::leaf(1)), &inst3).is_empty());
        // A join needs both sides: the static side's literals remain.
        let join = lits(&RaTree::join(RaTree::leaf(0), RaTree::leaf(1)), &inst3);
        assert!(has(&join, b"foo"), "{join:?}");
    }

    #[test]
    fn dynamic_plan_reuses_static_subtrees() {
        // (?0 ⋈ ?1) \ ?2 with a black-box ?2: the join is static, the
        // difference is per-document.
        let tree = RaTree::difference(
            RaTree::join(RaTree::leaf(0), RaTree::leaf(1)),
            RaTree::leaf(2),
        );
        let inst = Instantiation::new()
            .with(
                0,
                parse(r".* {t:\l+} .*|{t:\l+} .*|.* {t:\l+}|{t:\l+}").unwrap(),
            )
            .with(1, parse(r".*{t:\l+}.*").unwrap())
            .with_black_box(2, TokenizerSpanner::new("t"));
        let plan = CompiledPlan::compile(&tree, &inst, RaOptions::default()).unwrap();
        assert!(!plan.is_static());
        for text in ["alpha beta", "x", ""] {
            let doc = Document::new(text);
            assert_eq!(
                plan.evaluate(&doc).unwrap(),
                evaluate_ra_materialized(&tree, &inst, &doc).unwrap(),
                "text {text:?}"
            );
        }
    }
}
