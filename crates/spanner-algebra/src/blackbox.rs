//! Black-box spanners (Section 5, Corollary 5.3).
//!
//! The ad-hoc compilation approach lets an RA tree incorporate *any*
//! polynomial-time, degree-bounded extractor, including ones that are not
//! expressible as RA expressions over regular spanners. This module provides
//! the examples the paper mentions — string equality, dictionaries /
//! gazetteers, tokenizers, and a toy sentiment classifier standing in for the
//! `PosRec` black box of Example 5.4.

use crate::spanner::Spanner;
use spanner_core::{Document, Mapping, MappingSet, Span, SpannerResult, VarSet, Variable};
use std::collections::BTreeSet;

/// Returns the spans of all maximal word tokens (`[A-Za-z0-9_]+` runs).
fn token_spans(doc: &Document) -> Vec<Span> {
    let bytes = doc.bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        if bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            out.push(Span::from_range(start..i));
        } else {
            i += 1;
        }
    }
    out
}

/// Returns the spans of all lines (separated by `\n`, excluding the newline).
fn line_spans(doc: &Document) -> Vec<Span> {
    let bytes = doc.bytes();
    let mut out = Vec::new();
    let mut start = 0usize;
    for (i, &b) in bytes.iter().enumerate() {
        if b == b'\n' {
            out.push(Span::from_range(start..i));
            start = i + 1;
        }
    }
    if start <= bytes.len() {
        out.push(Span::from_range(start..bytes.len()));
    }
    out
}

/// A tokenizer: binds its variable to every maximal word token of the
/// document. Degree 1.
#[derive(Clone, Debug)]
pub struct TokenizerSpanner {
    var: Variable,
}

impl TokenizerSpanner {
    /// Creates a tokenizer binding `var`.
    pub fn new(var: impl Into<Variable>) -> Self {
        TokenizerSpanner { var: var.into() }
    }
}

impl Spanner for TokenizerSpanner {
    fn name(&self) -> String {
        format!("tokenize({})", self.var)
    }

    fn vars(&self) -> VarSet {
        VarSet::from_iter([self.var.clone()])
    }

    fn degree(&self) -> usize {
        1
    }

    fn eval(&self, doc: &Document) -> SpannerResult<MappingSet> {
        Ok(token_spans(doc)
            .into_iter()
            .map(|s| Mapping::from_pairs([(self.var.clone(), s)]))
            .collect())
    }
}

/// A dictionary (gazetteer) lookup: binds its variable to every token whose
/// text appears in the dictionary. Degree 1.
#[derive(Clone, Debug)]
pub struct DictionarySpanner {
    var: Variable,
    entries: BTreeSet<String>,
    case_insensitive: bool,
}

impl DictionarySpanner {
    /// Creates a dictionary spanner.
    pub fn new<I, S>(var: impl Into<Variable>, entries: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        DictionarySpanner {
            var: var.into(),
            entries: entries.into_iter().map(Into::into).collect(),
            case_insensitive: false,
        }
    }

    /// Makes the lookup case-insensitive.
    pub fn case_insensitive(mut self) -> Self {
        self.entries = self.entries.iter().map(|e| e.to_lowercase()).collect();
        self.case_insensitive = true;
        self
    }
}

impl Spanner for DictionarySpanner {
    fn name(&self) -> String {
        format!("dictionary({}, {} entries)", self.var, self.entries.len())
    }

    fn vars(&self) -> VarSet {
        VarSet::from_iter([self.var.clone()])
    }

    fn degree(&self) -> usize {
        1
    }

    fn eval(&self, doc: &Document) -> SpannerResult<MappingSet> {
        Ok(token_spans(doc)
            .into_iter()
            .filter(|s| {
                let text = doc.slice(*s);
                if self.case_insensitive {
                    self.entries.contains(&text.to_lowercase())
                } else {
                    self.entries.contains(text)
                }
            })
            .map(|s| Mapping::from_pairs([(self.var.clone(), s)]))
            .collect())
    }
}

/// String equality over tokens: binds two variables to every pair of
/// *distinct* token spans with equal text. Degree 2.
///
/// String equality is the paper's canonical example of a spanner that cannot
/// be expressed as an RA expression over regular spanners (Section 5,
/// citing Fagin et al.).
#[derive(Clone, Debug)]
pub struct TokenEqualitySpanner {
    var_left: Variable,
    var_right: Variable,
}

impl TokenEqualitySpanner {
    /// Creates the spanner binding `(var_left, var_right)`.
    pub fn new(var_left: impl Into<Variable>, var_right: impl Into<Variable>) -> Self {
        TokenEqualitySpanner {
            var_left: var_left.into(),
            var_right: var_right.into(),
        }
    }
}

impl Spanner for TokenEqualitySpanner {
    fn name(&self) -> String {
        format!("token_eq({}, {})", self.var_left, self.var_right)
    }

    fn vars(&self) -> VarSet {
        VarSet::from_iter([self.var_left.clone(), self.var_right.clone()])
    }

    fn degree(&self) -> usize {
        2
    }

    fn eval(&self, doc: &Document) -> SpannerResult<MappingSet> {
        let tokens = token_spans(doc);
        let mut out = MappingSet::new();
        for (i, &s1) in tokens.iter().enumerate() {
            for &s2 in &tokens[i + 1..] {
                if doc.slice(s1) == doc.slice(s2) {
                    out.insert(Mapping::from_pairs([
                        (self.var_left.clone(), s1),
                        (self.var_right.clone(), s2),
                    ]));
                    out.insert(Mapping::from_pairs([
                        (self.var_left.clone(), s2),
                        (self.var_right.clone(), s1),
                    ]));
                }
            }
        }
        Ok(out)
    }
}

/// A toy sentiment classifier standing in for the `PosRec` black box of
/// Example 5.4: for every line whose text contains at least one word of the
/// positive lexicon, binds `var_subject` to the first token of the line and
/// `var_content` to the rest of the line. Degree 2.
#[derive(Clone, Debug)]
pub struct SentimentSpanner {
    var_subject: Variable,
    var_content: Variable,
    positive_lexicon: BTreeSet<String>,
}

impl SentimentSpanner {
    /// Creates the spanner with the given positive-word lexicon.
    pub fn new<I, S>(
        var_subject: impl Into<Variable>,
        var_content: impl Into<Variable>,
        positive_lexicon: I,
    ) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        SentimentSpanner {
            var_subject: var_subject.into(),
            var_content: var_content.into(),
            positive_lexicon: positive_lexicon
                .into_iter()
                .map(|s| s.into().to_lowercase())
                .collect(),
        }
    }

    /// The default lexicon used by the examples.
    pub fn default_lexicon() -> Vec<&'static str> {
        vec![
            "excellent",
            "outstanding",
            "great",
            "brilliant",
            "recommend",
            "recommended",
            "strong",
            "impressive",
        ]
    }
}

impl Spanner for SentimentSpanner {
    fn name(&self) -> String {
        format!("sentiment({}, {})", self.var_subject, self.var_content)
    }

    fn vars(&self) -> VarSet {
        VarSet::from_iter([self.var_subject.clone(), self.var_content.clone()])
    }

    fn degree(&self) -> usize {
        2
    }

    fn eval(&self, doc: &Document) -> SpannerResult<MappingSet> {
        let mut out = MappingSet::new();
        for line in line_spans(doc) {
            if line.is_empty() {
                continue;
            }
            let text = doc.slice(line);
            let positive = text
                .split(|c: char| !c.is_ascii_alphanumeric())
                .any(|w| self.positive_lexicon.contains(&w.to_lowercase()));
            if !positive {
                continue;
            }
            // Subject = first token of the line, content = remainder.
            let line_start = line.start;
            let rel_tokens: Vec<(usize, usize)> = {
                let bytes = text.as_bytes();
                let mut v = Vec::new();
                let mut i = 0;
                while i < bytes.len() {
                    if bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' {
                        let s = i;
                        while i < bytes.len()
                            && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_')
                        {
                            i += 1;
                        }
                        v.push((s, i));
                    } else {
                        i += 1;
                    }
                }
                v
            };
            let Some(&(first_s, first_e)) = rel_tokens.first() else {
                continue;
            };
            let subject = Span::new(line_start + first_s as u32, line_start + first_e as u32);
            let content = Span::new(line_start + first_e as u32, line.end);
            out.insert(Mapping::from_pairs([
                (self.var_subject.clone(), subject),
                (self.var_content.clone(), content),
            ]));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizer_extracts_word_runs() {
        let s = TokenizerSpanner::new("tok");
        let doc = Document::new("ab, cd_7 !x");
        let out = s.eval(&doc).unwrap();
        let texts: Vec<&str> = out
            .iter()
            .map(|m| doc.slice(m.get(&"tok".into()).unwrap()))
            .collect();
        assert_eq!(texts, vec!["ab", "cd_7", "x"]);
        assert_eq!(s.degree(), 1);
    }

    #[test]
    fn dictionary_matches_tokens_only() {
        let s = DictionarySpanner::new("name", ["Pyotr", "Rodion"]);
        let doc = Document::new("Pyotr Luzhin and rodion");
        let out = s.eval(&doc).unwrap();
        assert_eq!(out.len(), 1);
        let ci = DictionarySpanner::new("name", ["Pyotr", "Rodion"]).case_insensitive();
        assert_eq!(ci.eval(&doc).unwrap().len(), 2);
    }

    #[test]
    fn token_equality_pairs() {
        let s = TokenEqualitySpanner::new("l", "r");
        let doc = Document::new("aa bb aa cc bb");
        let out = s.eval(&doc).unwrap();
        // Pairs (ordered, both directions): aa@1↔aa@3, bb@2↔bb@5 → 4 mappings.
        assert_eq!(out.len(), 4);
        for m in out.iter() {
            let l = doc.slice(m.get(&"l".into()).unwrap());
            let r = doc.slice(m.get(&"r".into()).unwrap());
            assert_eq!(l, r);
        }
        assert_eq!(s.degree(), 2);
    }

    #[test]
    fn sentiment_spanner_detects_positive_lines() {
        let s = SentimentSpanner::new("student", "rec", SentimentSpanner::default_lexicon());
        let doc = Document::new(
            "Rodion shows excellent analytical skills\nPyotr was absent most of the term\nZosimov outstanding work throughout",
        );
        let out = s.eval(&doc).unwrap();
        assert_eq!(out.len(), 2);
        let subjects: Vec<&str> = out
            .iter()
            .map(|m| doc.slice(m.get(&"student".into()).unwrap()))
            .collect();
        assert!(subjects.contains(&"Rodion"));
        assert!(subjects.contains(&"Zosimov"));
        assert!(!subjects.contains(&"Pyotr"));
    }

    #[test]
    fn line_and_token_helpers() {
        let doc = Document::new("a\n\nbc");
        assert_eq!(line_spans(&doc).len(), 3);
        assert_eq!(token_spans(&doc).len(), 2);
        let empty = Document::new("");
        assert_eq!(line_spans(&empty).len(), 1);
        assert!(token_spans(&empty).is_empty());
    }
}
