//! The match graph of a vset-automaton on a document.
//!
//! The match graph (called "match structure" when viewed as an NFA over
//! variable configurations in Freydenberger et al. and in the proof of
//! Theorem 4.8) has one node per pair `(position, state)`. The enumerator of
//! this crate and the ad-hoc difference constructions of `spanner-algebra`
//! both work on top of it.

use crate::opset::{OpSet, OpTable};
use spanner_core::{Document, SpannerError, SpannerResult};
use spanner_vset::{analysis, Label, StateId, Vsa};
use std::collections::HashMap;

/// The match graph of an automaton on a document.
pub struct MatchGraph<'a> {
    /// The (trimmed) automaton.
    pub vsa: &'a Vsa,
    /// The document.
    pub doc: &'a Document,
    /// Operation-bit table over `Vars(A)`.
    pub ops: OpTable,
    /// `coaccessible[p - 1][q]`: whether some accepting configuration is
    /// reachable from state `q` at position `p` (1-based positions up to
    /// `|d| + 1`).
    coaccessible: Vec<Vec<bool>>,
}

impl<'a> MatchGraph<'a> {
    /// Builds the match graph.
    ///
    /// The automaton must be sequential (Theorem 2.5's precondition); this is
    /// checked and an error is returned otherwise.
    pub fn build(vsa: &'a Vsa, doc: &'a Document) -> SpannerResult<Self> {
        if !analysis::is_sequential(vsa) {
            return Err(SpannerError::requirement(
                "sequential",
                "polynomial-delay enumeration requires a sequential vset-automaton",
            ));
        }
        let ops = OpTable::new(vsa.vars())?;
        let n = doc.len();
        let states = vsa.state_count();

        // Backward dynamic programming over positions.
        // `zero_reach[q]` = states reachable from q via ε / variable ops only.
        let zero_reach: Vec<Vec<StateId>> = (0..states)
            .map(|q| {
                let mut seen = vec![false; states];
                let mut stack = vec![q];
                seen[q] = true;
                let mut out = vec![q];
                while let Some(s) = stack.pop() {
                    for t in vsa.transitions_from(s) {
                        if !t.label.consumes_input() && !seen[t.target] {
                            seen[t.target] = true;
                            stack.push(t.target);
                            out.push(t.target);
                        }
                    }
                }
                out
            })
            .collect();

        let mut coaccessible = vec![vec![false; states]; n + 1];
        // Position n + 1: co-accessible iff an accepting state is reachable
        // without consuming input.
        for q in 0..states {
            coaccessible[n][q] = zero_reach[q].iter().any(|&r| vsa.is_accepting(r));
        }
        // Positions n .. 1: reachable-without-input to a state with a letter
        // transition on d[p] into a co-accessible state at p + 1.
        for p in (1..=n).rev() {
            let symbol = doc.symbol_at(p as u32).expect("position in range");
            for q in 0..states {
                let ok = zero_reach[q].iter().any(|&r| {
                    vsa.transitions_from(r).iter().any(|t| match &t.label {
                        Label::Class(c) => c.contains(symbol) && coaccessible[p][t.target],
                        _ => false,
                    })
                });
                coaccessible[p - 1][q] = ok;
            }
        }

        Ok(MatchGraph {
            vsa,
            doc,
            ops,
            coaccessible,
        })
    }

    /// Whether state `q` at position `pos` can still reach acceptance.
    #[inline]
    pub fn is_coaccessible(&self, pos: u32, q: StateId) -> bool {
        self.coaccessible[pos as usize - 1][q]
    }

    /// Whether the automaton has any valid accepting run on the document.
    pub fn is_nonempty(&self) -> bool {
        self.is_coaccessible(1, self.vsa.initial())
    }

    /// Computes, from the set `from` of states at position `pos`, every pair
    /// `(op_set, state)` reachable by performing exactly `op_set` (via ε and
    /// variable-operation transitions, no operation twice) such that the
    /// reached state is useful:
    ///
    /// * if `pos ≤ |d|`: the state has a letter transition on `d[pos]` into a
    ///   co-accessible state of position `pos + 1`;
    /// * if `pos = |d| + 1`: the state is accepting.
    ///
    /// The result groups, for every such useful operation set, the full set
    /// of reachable states (useful or not — they matter for later
    /// positions).
    pub fn op_closures(&self, pos: u32, from: &[StateId]) -> Vec<(OpSet, Vec<StateId>)> {
        let n = self.doc.len() as u32;
        // Explore (state, opset) pairs.
        let mut seen: HashMap<(StateId, OpSet), ()> = HashMap::new();
        let mut stack: Vec<(StateId, OpSet)> = Vec::new();
        for &q in from {
            if seen.insert((q, OpSet::EMPTY), ()).is_none() {
                stack.push((q, OpSet::EMPTY));
            }
        }
        // opset -> (states reached, any useful state reached)
        let mut by_set: HashMap<OpSet, (Vec<StateId>, bool)> = HashMap::new();
        let record = |q: StateId, set: OpSet, by_set: &mut HashMap<OpSet, (Vec<StateId>, bool)>| {
            let entry = by_set.entry(set).or_default();
            entry.0.push(q);
            let useful = if pos == n + 1 {
                self.vsa.is_accepting(q)
            } else {
                let symbol = self.doc.symbol_at(pos).expect("position in range");
                self.vsa.transitions_from(q).iter().any(|t| match &t.label {
                    Label::Class(c) => c.contains(symbol) && self.is_coaccessible(pos + 1, t.target),
                    _ => false,
                })
            };
            entry.1 |= useful;
        };
        for &q in from {
            record(q, OpSet::EMPTY, &mut by_set);
        }
        while let Some((q, set)) = stack.pop() {
            for t in self.vsa.transitions_from(q) {
                let next_set = match &t.label {
                    Label::Epsilon => set,
                    Label::Open(v) => {
                        let bit = self.ops.open_bit(v).expect("variable registered");
                        if set.contains(bit) {
                            continue;
                        }
                        set.with(bit)
                    }
                    Label::Close(v) => {
                        let bit = self.ops.close_bit(v).expect("variable registered");
                        if set.contains(bit) {
                            continue;
                        }
                        set.with(bit)
                    }
                    Label::Class(_) => continue,
                };
                if seen.insert((t.target, next_set), ()).is_none() {
                    record(t.target, next_set, &mut by_set);
                    stack.push((t.target, next_set));
                }
            }
        }
        let mut out: Vec<(OpSet, Vec<StateId>)> = by_set
            .into_iter()
            .filter(|(_, (_, useful))| *useful)
            .map(|(set, (states, _))| (set, states))
            .collect();
        // Canonical (deterministic) order of candidates.
        out.sort_by_key(|(set, _)| *set);
        out
    }

    /// Advances a set of states over the letter at `pos` (1-based, `≤ |d|`),
    /// keeping only co-accessible successors.
    pub fn advance(&self, pos: u32, states: &[StateId]) -> Vec<StateId> {
        let symbol = self.doc.symbol_at(pos).expect("position in range");
        let mut out: Vec<StateId> = Vec::new();
        let mut seen = vec![false; self.vsa.state_count()];
        for &q in states {
            for t in self.vsa.transitions_from(q) {
                if let Label::Class(c) = &t.label {
                    if c.contains(symbol)
                        && self.is_coaccessible(pos + 1, t.target)
                        && !seen[t.target]
                    {
                        seen[t.target] = true;
                        out.push(t.target);
                    }
                }
            }
        }
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spanner_rgx::parse;
    use spanner_vset::compile;

    #[test]
    fn coaccessibility_and_nonemptiness() {
        let a = compile(&parse("a{x:b*}c").unwrap());
        let doc = Document::new("abbc");
        let g = MatchGraph::build(&a, &doc).unwrap();
        assert!(g.is_nonempty());

        let doc2 = Document::new("abb");
        let g2 = MatchGraph::build(&a, &doc2).unwrap();
        assert!(!g2.is_nonempty());
    }

    #[test]
    fn non_sequential_automata_are_rejected() {
        use spanner_core::Variable;
        let mut a = Vsa::new();
        let q1 = a.add_state();
        a.add_transition(0, Label::Open(Variable::new("x")), q1);
        a.set_accepting(q1, true);
        let doc = Document::new("");
        assert!(MatchGraph::build(&a, &doc).is_err());
    }

    #[test]
    fn op_closures_enumerate_candidate_sets() {
        // ({x:a})?a* on "a": at position 1 the useful op sets are ∅ (skip x)
        // and {x⊢} is not complete without the close... the closures group
        // whole per-position op sets, so the useful sets are ∅, {x⊢}, and
        // {x⊢, ⊣x} (empty capture).
        let a = compile(&parse("({x:a})?a*").unwrap());
        let doc = Document::new("a");
        let g = MatchGraph::build(&a, &doc).unwrap();
        let closures = g.op_closures(1, &[a.initial()]);
        assert!(!closures.is_empty());
        // All candidate sets must be distinct.
        let mut sets: Vec<OpSet> = closures.iter().map(|(s, _)| *s).collect();
        sets.dedup();
        assert_eq!(sets.len(), closures.len());
    }
}
