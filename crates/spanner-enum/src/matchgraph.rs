//! The match graph of a vset-automaton on a document.
//!
//! The match graph (called "match structure" when viewed as an NFA over
//! variable configurations in Freydenberger et al. and in the proof of
//! Theorem 4.8) has one node per pair `(position, state)`. The enumerator of
//! this crate and the ad-hoc difference constructions of `spanner-algebra`
//! both work on top of it.
//!
//! Since the compiled-engine rework, the graph is built on a
//! [`CompiledVsa`]: ε-reachability comes from precomputed closures instead
//! of per-position graph searches, per-position state sets (coaccessibility
//! and usefulness certificates) are [`StateSet`] bitsets, and letter
//! transitions dispatch through the byte-class tables. Building the graph
//! from a borrowed `&Vsa` compiles on the fly; callers that evaluate the
//! same automaton on many documents should compile once and use
//! [`MatchGraph::from_compiled`].

use crate::opset::{OpSet, OpTable};
use spanner_core::{Document, SpannerError, SpannerResult, VarSet};
use spanner_vset::{CompiledVsa, StateId, StateSet, Vsa};
use std::borrow::Cow;

/// The match graph of an automaton on a document.
pub struct MatchGraph<'a> {
    /// The compiled automaton (owned when built from a `&Vsa`).
    compiled: Cow<'a, CompiledVsa>,
    /// The document.
    pub doc: &'a Document,
    /// Operation-bit table over `Vars(A)`.
    pub ops: OpTable,
    /// `coaccessible[p - 1]`: the states from which some accepting
    /// configuration is reachable at position `p` (1-based positions up to
    /// `|d| + 1`).
    coaccessible: Vec<StateSet>,
    /// `useful[p - 1]`: the states that *immediately* progress at position
    /// `p` — for `p ≤ |d|` those with a letter transition on `d[p]` into a
    /// co-accessible state of `p + 1`, for `p = |d| + 1` the accepting
    /// states.
    useful: Vec<StateSet>,
}

impl<'a> MatchGraph<'a> {
    /// Builds the match graph, compiling the automaton on the fly.
    ///
    /// The automaton must be sequential (Theorem 2.5's precondition); this is
    /// checked and an error is returned otherwise.
    pub fn build(vsa: &'a Vsa, doc: &'a Document) -> SpannerResult<Self> {
        Self::new(Cow::Owned(CompiledVsa::compile(vsa)), doc)
    }

    /// Builds the match graph over an already-compiled automaton
    /// (the compile-once, evaluate-many path).
    pub fn from_compiled(compiled: &'a CompiledVsa, doc: &'a Document) -> SpannerResult<Self> {
        Self::new(Cow::Borrowed(compiled), doc)
    }

    fn new(compiled: Cow<'a, CompiledVsa>, doc: &'a Document) -> SpannerResult<Self> {
        if !compiled.is_sequential() {
            return Err(SpannerError::requirement(
                "sequential",
                "polynomial-delay enumeration requires a sequential vset-automaton",
            ));
        }
        let ops = OpTable::new(&VarSet::from_iter(
            compiled.var_table().vars().iter().cloned(),
        ))?;
        // `op_closures` encodes operation bits from the compiled `VarTable`
        // index while `ops` decodes them by its own index; both are in name
        // order today, but the encoding is only correct while they agree.
        assert_eq!(
            ops.vars(),
            compiled.var_table().vars(),
            "OpTable and VarTable must index variables identically"
        );
        let n = doc.len();
        let states = compiled.state_count();

        // Backward dynamic programming over positions, on bitsets.
        let mut coaccessible: Vec<StateSet> = vec![StateSet::new(states); n + 1];
        let mut useful: Vec<StateSet> = vec![StateSet::new(states); n + 1];
        // Position n + 1: co-accessible iff an accepting state is reachable
        // without consuming input; immediately useful iff accepting.
        useful[n] = compiled.accepting().clone();
        for q in 0..states {
            if compiled.accepts_without_input(q) {
                coaccessible[n].insert(q);
            }
        }
        // Positions n .. 1: a state is useful if some letter transition on
        // d[p] reaches a co-accessible state of p + 1, and co-accessible if
        // its zero closure contains a useful state. The step is a pure
        // function of (byte class, co-accessible set at p + 1) — and the
        // co-accessible sets saturate quickly on real documents — so the
        // computed transitions are memoized; on homogeneous documents the
        // backward pass degenerates to memo lookups.
        let mut memo: spanner_core::FxHashMap<(usize, StateSet), (StateSet, StateSet)> =
            spanner_core::FxHashMap::default();
        for p in (1..=n).rev() {
            let symbol = doc.symbol_at(p as u32).expect("position in range");
            let class = compiled.class_of(symbol);
            let key = (class, coaccessible[p].clone());
            if let Some((step_ok, coacc)) = memo.get(&key) {
                useful[p - 1] = step_ok.clone();
                coaccessible[p - 1] = coacc.clone();
                continue;
            }
            let mut step_ok = StateSet::new(states);
            for r in 0..states {
                if compiled
                    .byte_targets(r, class)
                    .iter()
                    .any(|&t| coaccessible[p].contains(t))
                {
                    step_ok.insert(r);
                }
            }
            for q in 0..states {
                if compiled.zero_closure(q).intersects(&step_ok) {
                    coaccessible[p - 1].insert(q);
                }
            }
            memo.insert(key, (step_ok.clone(), coaccessible[p - 1].clone()));
            useful[p - 1] = step_ok;
        }

        Ok(MatchGraph {
            compiled,
            doc,
            ops,
            coaccessible,
            useful,
        })
    }

    /// The compiled automaton driving the graph.
    #[inline]
    pub fn compiled(&self) -> &CompiledVsa {
        &self.compiled
    }

    /// Whether state `q` at position `pos` can still reach acceptance.
    #[inline]
    pub fn is_coaccessible(&self, pos: u32, q: StateId) -> bool {
        self.coaccessible[pos as usize - 1].contains(q)
    }

    /// Whether the automaton has any valid accepting run on the document.
    pub fn is_nonempty(&self) -> bool {
        self.is_coaccessible(1, self.compiled.initial())
    }

    /// Computes, from the set `from` of states at position `pos`, every pair
    /// `(op_set, states)` reachable by performing exactly `op_set` (via ε and
    /// variable-operation transitions, no operation twice) such that some
    /// reached state is useful:
    ///
    /// * if `pos ≤ |d|`: the state has a letter transition on `d[pos]` into a
    ///   co-accessible state of position `pos + 1`;
    /// * if `pos = |d| + 1`: the state is accepting.
    ///
    /// The result groups, for every such useful operation set, the full set
    /// of reachable states (useful or not — they matter for later
    /// positions), in a canonical order.
    pub fn op_closures(&self, pos: u32, from: &StateSet) -> Vec<(OpSet, StateSet)> {
        let compiled = &*self.compiled;
        let states = compiled.state_count();
        let useful = &self.useful[pos as usize - 1];

        // The ε-closure of the frontier: the states reachable with the empty
        // operation set.
        let mut closure = StateSet::new(states);
        for q in from.iter() {
            closure.union_with(compiled.eps_closure(q));
        }

        // Fast path: no reachable state can perform a variable operation —
        // the overwhelmingly common case on positions away from match
        // boundaries. The only candidate operation set is ∅.
        if !closure.intersects(compiled.states_with_var_ops()) {
            if closure.intersects(useful) {
                return vec![(OpSet::EMPTY, closure)];
            }
            return Vec::new();
        }

        // Slow path: explore (state, opset) pairs. Visited states are
        // tracked per operation set in `by_set` (a linear scan — the number
        // of distinct sets per position is small); ε-moves are collapsed
        // through the precomputed ε-closures, so the stack only carries
        // genuine operation steps.
        let mut by_set: Vec<(OpSet, StateSet, bool)> = Vec::new();
        by_set.push((OpSet::EMPTY, closure, false));
        by_set[0].2 = by_set[0].1.intersects(useful);
        let mut stack: Vec<(StateId, OpSet)> = by_set[0]
            .1
            .iter()
            .filter(|&q| compiled.has_var_ops(q))
            .map(|q| (q, OpSet::EMPTY))
            .collect();

        while let Some((q, set)) = stack.pop() {
            for &(op, target) in compiled.var_ops(q) {
                let bit = 1u64 << (2 * op.var as u64 + u64::from(op.is_close));
                if set.contains(bit) {
                    continue;
                }
                let next_set = set.with(bit);
                let slot = match by_set.iter().position(|(s, _, _)| *s == next_set) {
                    Some(slot) => slot,
                    None => {
                        by_set.push((next_set, StateSet::new(states), false));
                        by_set.len() - 1
                    }
                };
                for r in compiled.eps_closure(target).iter() {
                    if by_set[slot].1.insert(r) {
                        by_set[slot].2 |= useful.contains(r);
                        if compiled.has_var_ops(r) {
                            stack.push((r, next_set));
                        }
                    }
                }
            }
        }

        let mut out: Vec<(OpSet, StateSet)> = by_set
            .into_iter()
            .filter(|(_, _, useful)| *useful)
            .map(|(set, states, _)| (set, states))
            .collect();
        // Canonical (deterministic) order of candidates.
        out.sort_by_key(|(set, _)| *set);
        out
    }

    /// Advances a set of states over the letter at `pos` (1-based, `≤ |d|`),
    /// keeping only co-accessible successors.
    pub fn advance(&self, pos: u32, states: &StateSet) -> StateSet {
        let mut out = StateSet::new(self.compiled.state_count());
        self.advance_into(pos, states, &mut out);
        out
    }

    /// [`MatchGraph::advance`] into a caller-provided set (cleared first) —
    /// the allocation-free form the enumerator's hot loop uses.
    pub fn advance_into(&self, pos: u32, states: &StateSet, out: &mut StateSet) {
        let symbol = self.doc.symbol_at(pos).expect("position in range");
        self.compiled.step_frontier(states, symbol, out);
        out.intersect_with(&self.coaccessible[pos as usize]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spanner_rgx::parse;
    use spanner_vset::compile;

    #[test]
    fn coaccessibility_and_nonemptiness() {
        let a = compile(&parse("a{x:b*}c").unwrap());
        let doc = Document::new("abbc");
        let g = MatchGraph::build(&a, &doc).unwrap();
        assert!(g.is_nonempty());

        let doc2 = Document::new("abb");
        let g2 = MatchGraph::build(&a, &doc2).unwrap();
        assert!(!g2.is_nonempty());
    }

    #[test]
    fn non_sequential_automata_are_rejected() {
        use spanner_core::Variable;
        use spanner_vset::Label;
        let mut a = Vsa::new();
        let q1 = a.add_state();
        a.add_transition(0, Label::Open(Variable::new("x")), q1);
        a.set_accepting(q1, true);
        let doc = Document::new("");
        assert!(MatchGraph::build(&a, &doc).is_err());
    }

    #[test]
    fn op_closures_enumerate_candidate_sets() {
        // ({x:a})?a* on "a": the closures group whole per-position op sets,
        // so the useful sets are ∅, {x⊢}, and {x⊢, ⊣x} (empty capture).
        let a = compile(&parse("({x:a})?a*").unwrap());
        let doc = Document::new("a");
        let g = MatchGraph::build(&a, &doc).unwrap();
        let initial = StateSet::from_states(g.compiled().state_count(), [g.compiled().initial()]);
        let closures = g.op_closures(1, &initial);
        assert!(!closures.is_empty());
        // All candidate sets must be distinct.
        let mut sets: Vec<OpSet> = closures.iter().map(|(s, _)| *s).collect();
        sets.dedup();
        assert_eq!(sets.len(), closures.len());
    }

    #[test]
    fn borrowed_and_owned_compilation_agree() {
        let a = compile(&parse("a{x:b*}c").unwrap());
        let compiled = CompiledVsa::compile(&a);
        let doc = Document::new("abbc");
        let owned = MatchGraph::build(&a, &doc).unwrap();
        let borrowed = MatchGraph::from_compiled(&compiled, &doc).unwrap();
        assert_eq!(owned.is_nonempty(), borrowed.is_nonempty());
        for pos in 1..=5u32 {
            for q in 0..a.state_count() {
                assert_eq!(
                    owned.is_coaccessible(pos, q),
                    borrowed.is_coaccessible(pos, q)
                );
            }
        }
    }
}
